"""The compiled C execution backend: equivalence, fallback, caching.

The contract under test: ``backend='c'`` changes *how* compute steps
execute (cache-blocked C loop nests called through ctypes) and nothing
else — results are bitwise-identical to the NumPy backend in every
communication mode, every comm certificate reconciles the same, a host
without a toolchain degrades to NumPy with a visible warning, and a
cached compiled artifact whose shared object was deleted or tampered
with demotes to a cold rebuild instead of crashing or running stale
code.
"""

import os

import numpy as np
import pytest

from repro import (Eq, Grid, Operator, TimeFunction, configuration,
                   solve)
from repro.buildcache import BuildCache
from repro.codegen import jit
from repro.codegen.cgen import generate_c_steps
from repro.ir.schedule import build_schedule, plan_blocking
from repro.mpi import run_parallel

MODES = ('basic', 'diagonal', 'full')

needs_cc = pytest.mark.skipif(jit.find_compiler() is None,
                              reason='no C toolchain on this host')


@pytest.fixture(autouse=True)
def _no_cache():
    """Isolate from the ambient build cache; yields the ambient mode so
    the one test that *wants* it (the CI cold/warm .so round trip) can
    restore it."""
    saved = configuration['build_cache']
    configuration['build_cache'] = 'off'
    yield saved
    configuration['build_cache'] = saved


def _diffusion(shape=(28, 25), so=4, dtype=None):
    kwargs = {} if dtype is None else {'dtype': dtype}
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                **kwargs)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    rng = np.random.default_rng(42)
    u.data[0] = rng.standard_normal(shape).astype(u.dtype)
    eq = Eq(u.dt, u.laplace)
    return [Eq(u.forward, solve(eq, u.forward))], u


# -- backend resolution and fallback ------------------------------------------


class TestResolution:

    def test_numpy_aliases(self):
        for req in (None, False, 'numpy', 'py'):
            assert jit.resolve_backend(req) == 'numpy'

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            jit.resolve_backend('fortran')

    def test_configuration_rejects_unknown(self):
        with pytest.raises(ValueError):
            configuration['backend'] = 'fortran'

    def test_configuration_py_alias(self):
        saved = configuration['backend']
        try:
            configuration['backend'] = 'py'
            assert configuration['backend'] == 'numpy'
        finally:
            configuration['backend'] = saved

    def test_masked_toolchain_falls_back_with_warning(self):
        env = {'CC': '/nonexistent/compiler'}
        assert jit.find_compiler(env=env) is None
        with pytest.warns(jit.ToolchainWarning, match='falling back'):
            assert jit.resolve_backend('c', env=env) == 'numpy'

    def test_operator_fallback_end_to_end(self, monkeypatch):
        """CC masked: Operator(backend='c') must warn, run on NumPy and
        still produce the reference bits."""
        exprs, u = _diffusion()
        ref_init = np.array(u.data[0])
        op = Operator(exprs)
        op.apply(time_M=5, dt=0.01)
        ref = u.data.gather()

        monkeypatch.setenv('CC', '/nonexistent/compiler')
        exprs2, u2 = _diffusion()
        assert np.array_equal(np.array(u2.data[0]), ref_init)
        with pytest.warns(jit.ToolchainWarning):
            op2 = Operator(exprs2, backend='c')
        assert op2.backend == 'numpy'
        assert op2.kernel.so_path is None
        op2.apply(time_M=5, dt=0.01)
        assert np.array_equal(u2.data.gather(), ref)

    @needs_cc
    def test_unsupported_dtype_degrades(self):
        """An int grid cannot go through the C printer: the build warns
        and lands on NumPy rather than failing."""
        grid = Grid(shape=(12, 12))
        u = TimeFunction(name='u', grid=grid, space_order=2,
                         dtype=np.int32)
        with pytest.warns(jit.ToolchainWarning, match='unavailable'):
            op = Operator([Eq(u.forward, u + 1)], backend='c')
        assert op.backend == 'numpy'


# -- serial equivalence -------------------------------------------------------


@needs_cc
class TestSerialEquivalence:

    def test_bitwise_vs_numpy(self):
        exprs, u = _diffusion()
        op = Operator(exprs)
        op.apply(time_M=9, dt=0.01)
        ref = u.data.gather()

        exprs2, u2 = _diffusion()
        op2 = Operator(exprs2, backend='c')
        assert op2.backend == 'c'
        assert op2.kernel.so_path is not None
        assert os.path.isfile(op2.kernel.so_path)
        op2.apply(time_M=9, dt=0.01)
        assert np.array_equal(u2.data.gather(), ref)

    def test_bitwise_float64(self):
        exprs, u = _diffusion(dtype=np.float64)
        op = Operator(exprs)
        op.apply(time_M=9, dt=0.01)
        ref = u.data.gather()

        exprs2, u2 = _diffusion(dtype=np.float64)
        op2 = Operator(exprs2, backend='c')
        assert op2.backend == 'c'
        op2.apply(time_M=9, dt=0.01)
        assert np.array_equal(u2.data.gather(), ref)

    def test_env_var_selects_backend(self, monkeypatch):
        from repro.parameters import Configuration
        cfg = Configuration(environ={'REPRO_BACKEND': 'c'})
        assert cfg['backend'] == 'c'

    def test_acoustic_model_bitwise(self):
        """The full acoustic propagator (sparse source injection,
        receivers, damping) matches bitwise across backends."""
        from repro.models import acoustic_setup

        def run(backend):
            saved = configuration['backend']
            configuration['backend'] = backend
            try:
                solver, _ = acoustic_setup(shape=(36, 36), tn=80.0,
                                           space_order=4, nbl=6, nrec=4)
                rec, wf, _ = solver.forward()
                field = wf.data.gather() if hasattr(wf, 'data') \
                    else wf[0].data.gather()
                return field, np.array(rec.data), solver.op.backend
            finally:
                configuration['backend'] = saved

        field_np, rec_np, bk_np = run('numpy')
        field_c, rec_c, bk_c = run('c')
        assert (bk_np, bk_c) == ('numpy', 'c')
        assert np.array_equal(field_np, field_c)
        assert np.array_equal(rec_np, rec_c)


# -- distributed equivalence: every comm mode, certificates reconcile ---------


@needs_cc
class TestDistributedEquivalence:

    shape = (22, 19)

    def _job(self, comm, mode, backend, sanitizer=None):
        grid = Grid(shape=self.shape,
                    extent=tuple(float(s - 1) for s in self.shape),
                    comm=comm)
        u = TimeFunction(name='u', grid=grid, space_order=2)
        rng = np.random.default_rng(11)
        u.data[0] = rng.standard_normal(self.shape).astype(np.float32)
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))],
                      mpi=mode if comm is not None else None,
                      backend=backend, sanitizer=sanitizer)
        op.apply(time_M=6, dt=0.01)
        return u.data.gather(), op.backend

    @pytest.mark.parametrize('mode', MODES)
    def test_mode_matches_serial_numpy(self, mode):
        ref, _ = self._job(None, 'basic', 'numpy')
        out = run_parallel(lambda c: self._job(c, mode, 'c'), 4)
        for field, backend in out:
            assert backend == 'c'
            assert np.array_equal(field, ref), mode

    @pytest.mark.parametrize('mode', MODES)
    def test_certificates_reconcile(self, mode):
        """The reconcile sanitizer (static certificate vs runtime send
        ledger) passes identically under the compiled backend: the C
        steps change compute, never communication."""
        out = run_parallel(
            lambda c: self._job(c, mode, 'c', sanitizer='reconcile'), 2)
        assert all(backend == 'c' for _, backend in out)


# -- artifact caching: .so lifecycle ------------------------------------------


@needs_cc
class TestCompiledArtifacts:

    def _run(self, cache):
        exprs, u = _diffusion(shape=(20, 20), so=2)
        op = Operator(exprs, backend='c', cache=cache)
        op.apply(time_M=4, dt=0.01)
        return u.data.gather(), op

    def test_disk_roundtrip_serves_compiled_hit(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        ref, cold = self._run(cache)
        assert cold.cache_info()['status'] == 'miss'
        # the .so was copied out of the scratch dir, beside the entry
        so_dir = os.path.join(str(tmp_path), 'so')
        assert os.path.isdir(so_dir) and os.listdir(so_dir)

        warm_field, warm = self._run(cache)
        assert warm.cache_info()['status'] == 'hit'
        assert warm.backend == 'c'
        assert warm.kernel.so_path.startswith(so_dir)
        assert np.array_equal(warm_field, ref)

    def test_deleted_so_demotes_to_cold_rebuild(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        ref, _ = self._run(cache)
        so_dir = os.path.join(str(tmp_path), 'so')
        for name in os.listdir(so_dir):
            os.unlink(os.path.join(so_dir, name))

        field, op = self._run(cache)
        # never a crash, never stale code: cold rebuild, right answer
        assert op.cache_info()['status'] == 'miss'
        assert op.backend == 'c'
        assert np.array_equal(field, ref)

    def test_tampered_so_demotes_to_cold_rebuild(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        ref, _ = self._run(cache)
        so_dir = os.path.join(str(tmp_path), 'so')
        for name in os.listdir(so_dir):
            with open(os.path.join(so_dir, name), 'ab') as f:
                f.write(b'\0corrupted')

        field, op = self._run(cache)
        assert op.cache_info()['status'] == 'miss'
        assert op.backend == 'c'
        assert np.array_equal(field, ref)

    @needs_cc
    def test_ambient_cache_roundtrip(self, _no_cache):
        """Build a compiled operator under the *ambient* cache config
        (cache=None).  Locally that is the memory tier; in the CI
        ``test`` job (REPRO_CACHE=on) it parks the .so under
        ``$REPRO_CACHE_DIR/so`` during the cold tier-1 pass and
        rehydrates it in the warm pass — the cross-process .so cache
        proof."""
        configuration['build_cache'] = _no_cache
        exprs, u = _diffusion(shape=(26, 23), so=2)
        op = Operator(exprs, backend='c')
        assert op.backend == 'c'
        op.apply(time_M=4, dt=0.01)
        ref = u.data.gather()

        exprs2, u2 = _diffusion(shape=(26, 23), so=2)
        op2 = Operator(exprs2, backend='c')
        assert op2.cache_info()['status'] in ('hit', 'off')
        op2.apply(time_M=4, dt=0.01)
        assert np.array_equal(u2.data.gather(), ref)

    def test_memory_tier_reuses_dlopen_handle(self):
        cache = BuildCache('memory')
        ref, cold = self._run(cache)
        warm_field, warm = self._run(cache)
        assert warm.cache_info()['status'] == 'hit'
        assert warm.backend == 'c'
        assert np.array_equal(warm_field, ref)


# -- the cache-blocking plan --------------------------------------------------


class TestBlockingPlan:

    def test_innermost_never_tiled(self):
        assert plan_blocking([(0, 256), (0, 256)]) == [32, None]
        assert plan_blocking([(0, 256), (0, 256), (0, 256)]) == \
            [32, 32, None]

    def test_short_extents_left_whole(self):
        assert plan_blocking([(0, 48), (0, 256)]) == [None, None]
        assert plan_blocking([(0, 64), (0, 256)], block=32) == [32, None]

    def test_emitted_source_is_blocked(self):
        exprs, _ = _diffusion(shape=(128, 128), so=2)
        schedule = build_schedule(exprs)
        source, steps = generate_c_steps(schedule)
        assert steps, 'no compute steps emitted'
        assert 'xb' in source and '+= 32' in source  # outer dim tiled
        assert 'yb' not in source                    # innermost streams


# -- CLI surface --------------------------------------------------------------


class TestCLI:

    def test_doctor_reports_toolchain(self, capsys):
        from repro.cli import run_doctor
        status = run_doctor()
        text = capsys.readouterr().out
        assert 'compiler' in text
        assert 'backend' in text
        if jit.find_compiler() is None:
            assert status == 0  # informational without --require-c

    def test_doctor_require_c_gates(self, capsys, monkeypatch):
        from repro.cli import run_doctor
        monkeypatch.setenv('CC', '/nonexistent/compiler')
        assert run_doctor(require_c=True) == 1
        assert 'FAIL' in capsys.readouterr().out

    def test_doctor_json(self, capsys):
        import json
        from repro.cli import run_doctor
        run_doctor(as_json=True)
        report = json.loads(capsys.readouterr().out)
        for key in ('compiler', 'cffi', 'backend_effective', 'cache',
                    'backend_c_usable'):
            assert key in report

    @needs_cc
    def test_benchmark_backend_flag(self, capsys):
        from repro.cli import run_benchmark
        run_benchmark('acoustic', [32, 32], 40.0, 4, nbl=4,
                      backend='c', cache='off')
        text = capsys.readouterr().out
        assert 'compiled C' in text

    def test_sanitize_help_names_modes(self):
        """The --sanitize surface must present the mode choices, not a
        boolean flag."""
        from repro.cli import _parser
        helptext = _parser().format_help()
        assert 'poison' in helptext and 'reconcile' in helptext

    def test_sanitizer_error_names_modes(self):
        with pytest.raises(ValueError, match="poison.*reconcile"):
            configuration['sanitizer'] = 'bogus'
        with pytest.raises(ValueError, match="poison.*reconcile"):
            Operator._sanitize_mode('bogus')
