"""The content-addressed operator build cache (ISSUE 5 tentpole).

Covers the fingerprint (stability, and sensitivity to every build-
relevant input), both cache tiers (in-process memo, on-disk store),
cross-process disk reuse, the corruption/version/checksum fallbacks
(a bad entry must demote to a cold build, never to wrong results),
warm/cold bit-identity — including sparse operators, constants resolved
by name, the verify gate and the halo sanitizer — plus the stats
surface (``cache_info``, ``stats.json``, the ``repro cache`` CLI).
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import (Constant, Eq, Grid, Operator, SparseTimeFunction,
                   TimeFunction, configuration, solve)
from repro.buildcache import (BuildCache, clear_disk, disk_usage,
                              fingerprint_build, get_cache,
                              read_disk_stats)
from repro.buildcache.cache import _payload_checksum
from repro.codegen.artifact import ARTIFACT_VERSION, KernelArtifact
from repro.mpi import run_parallel

SRC = os.path.join(os.path.dirname(__file__), '..', 'src')


def _exprs(shape=(12, 12), so=4, mpi=None, comm=None, with_constant=None):
    grid = Grid(shape=shape, comm=comm)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    u.data[0, 3:7, 3:7] = 1.0
    eq = Eq(u.dt, (with_constant if with_constant is not None else 0.5)
            * u.laplace)
    return [Eq(u.forward, solve(eq, u.forward))], u


def _fp(exprs, **over):
    kwargs = dict(mpi_mode=None, opt=True, verify=False, sanitizer=False,
                  instrument=True, progress=False)
    kwargs.update(over)
    key, _ = fingerprint_build(exprs, **kwargs)
    return key


# -- fingerprint ----------------------------------------------------------------


class TestFingerprint:
    def test_stable_across_reconstruction(self):
        """Fresh symbolic objects with the same structure fingerprint
        identically — the property content-addressing rests on."""
        assert _fp(_exprs()[0]) == _fp(_exprs()[0])

    def test_constant_value_excluded(self):
        """Constants bind by *name* at apply-time; their current value
        must not invalidate the cache."""
        a = _exprs(with_constant=Constant('c0', value=0.5))[0]
        b = _exprs(with_constant=Constant('c0', value=0.25))[0]
        assert _fp(a) == _fp(b)

    @pytest.mark.parametrize('change', [
        dict(mpi_mode='basic'), dict(opt=False), dict(verify=True),
        dict(sanitizer=True), dict(instrument=False),
        dict(progress=True), dict(backend='c'),
    ])
    def test_config_sensitivity(self, change):
        exprs = _exprs()[0]
        assert _fp(exprs, **change) != _fp(exprs)

    @pytest.mark.parametrize('variant', [
        dict(shape=(13, 12)), dict(so=8),
        dict(with_constant=Constant('c1', value=0.5)),
    ])
    def test_structural_sensitivity(self, variant):
        assert _fp(_exprs(**variant)[0]) != _fp(_exprs()[0])

    def test_expression_sensitivity(self):
        grid = Grid(shape=(12, 12))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        a = [Eq(u.forward, solve(Eq(u.dt, 0.5 * u.laplace), u.forward))]
        b = [Eq(u.forward, solve(Eq(u.dt, 0.25 * u.laplace), u.forward))]
        assert _fp(a) != _fp(b)

    def test_rank_count_sensitivity(self):
        """The decomposition is part of the key: per-rank source differs
        (local shapes, neighbour sets), so ranks must not collide."""
        def job(comm):
            return _fp(_exprs(comm=comm, mpi='basic')[0],
                       mpi_mode='basic')
        keys = run_parallel(job, 2)
        assert keys[0] != keys[1]
        assert keys[0] != _fp(_exprs()[0], mpi_mode='basic')


# -- tiers ----------------------------------------------------------------------


class TestTiers:
    def test_memory_hit_bitwise_source(self):
        cache = BuildCache('memory')
        cold = Operator(_exprs()[0], cache=cache)
        warm = Operator(_exprs()[0], cache=cache)
        assert cold.cache_info()['status'] == 'miss'
        assert warm.cache_info()['status'] == 'hit'
        assert warm.cache_info()['tier'] == 'memory'
        assert warm.pycode == cold.pycode
        assert cache.stats['hits'] == 1
        assert cache.stats['misses'] == 1
        assert cache.stats['stores'] == 1

    def test_disk_survives_fresh_memo(self, tmp_path):
        """A second cache instance (fresh memo, same directory) serves
        from disk — the single-process stand-in for a new process."""
        Operator(_exprs()[0], cache=BuildCache('disk', str(tmp_path)))
        fresh = BuildCache('disk', str(tmp_path))
        warm = Operator(_exprs()[0], cache=fresh)
        assert warm.cache_info()['status'] == 'hit'
        assert warm.cache_info()['tier'] == 'disk'
        assert fresh.stats['disk_hits'] == 1

    def test_disk_hit_promoted_to_memory(self, tmp_path):
        Operator(_exprs()[0], cache=BuildCache('on', str(tmp_path)))
        cache = BuildCache('on', str(tmp_path))
        first = Operator(_exprs()[0], cache=cache)
        second = Operator(_exprs()[0], cache=cache)
        assert first.cache_info()['tier'] == 'disk'
        assert second.cache_info()['tier'] == 'memory'

    def test_off_means_off(self):
        op = Operator(_exprs()[0], cache=False)
        assert op.cache_info() == {'status': 'off', 'key': None,
                                   'tier': None, 'saved_seconds': 0.0,
                                   'nbytes': 0}

    def test_distinct_builds_distinct_entries(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        Operator(_exprs()[0], cache=cache)
        Operator(_exprs(so=8)[0], cache=cache)
        nentries, nbytes = disk_usage(str(tmp_path))
        assert nentries == 2 and nbytes > 0

    def test_cross_process_disk_reuse(self, tmp_path):
        """The real thing: two interpreters sharing one directory."""
        script = (
            "import sys; sys.path.insert(0, %r)\n"
            "from repro import Eq, Grid, Operator, TimeFunction, solve\n"
            "from repro.buildcache import BuildCache\n"
            "g = Grid(shape=(12, 12))\n"
            "u = TimeFunction(name='u', grid=g, space_order=4)\n"
            "eq = Eq(u.dt, 0.5 * u.laplace)\n"
            "op = Operator([Eq(u.forward, solve(eq, u.forward))],\n"
            "              cache=BuildCache('disk', %r))\n"
            "print(op.cache_info()['status'])\n"
            % (os.path.abspath(SRC), str(tmp_path)))
        out = [subprocess.run([sys.executable, '-c', script],
                              capture_output=True, text=True, check=True)
               .stdout.strip() for _ in range(2)]
        assert out == ['miss', 'hit']


# -- corruption and fallback -----------------------------------------------------


def _entry_paths(directory):
    paths = []
    for shard in sorted(os.listdir(directory)):
        sub = os.path.join(directory, shard)
        if len(shard) == 2 and os.path.isdir(sub):
            paths += [os.path.join(sub, n) for n in sorted(os.listdir(sub))]
    return paths


class TestFallback:
    """A defective disk entry must cost a cold build, never correctness:
    every tampering mode demotes the lookup to a miss + error count."""

    def _primed(self, tmp_path):
        Operator(_exprs()[0], cache=BuildCache('disk', str(tmp_path)))
        [path] = _entry_paths(str(tmp_path))
        return path

    def _expect_cold(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        op = Operator(_exprs()[0], cache=cache)
        assert op.cache_info()['status'] == 'miss'
        assert cache.stats['errors'] >= 1
        # and the rebuilt operator still runs correctly
        ref = Operator(_exprs()[0], cache=False)
        assert op.pycode == ref.pycode

    def test_truncated_entry(self, tmp_path):
        path = self._primed(tmp_path)
        blob = open(path, 'rb').read()
        with open(path, 'wb') as f:
            f.write(blob[:len(blob) // 2])
        self._expect_cold(tmp_path)

    def test_garbage_entry(self, tmp_path):
        path = self._primed(tmp_path)
        with open(path, 'w', encoding='utf-8') as f:
            f.write('not json {{{')
        self._expect_cold(tmp_path)

    def test_checksum_mismatch(self, tmp_path):
        path = self._primed(tmp_path)
        entry = json.load(open(path, encoding='utf-8'))
        entry['payload']['source'] += '\n# tampered\n'
        with open(path, 'w', encoding='utf-8') as f:
            json.dump(entry, f)
        self._expect_cold(tmp_path)

    def test_version_mismatch(self, tmp_path):
        path = self._primed(tmp_path)
        entry = json.load(open(path, encoding='utf-8'))
        entry['payload']['version'] = ARTIFACT_VERSION + 1
        # keep the checksum honest: versioning alone must reject it
        entry['checksum'] = _payload_checksum(entry['payload'])
        with open(path, 'w', encoding='utf-8') as f:
            json.dump(entry, f)
        self._expect_cold(tmp_path)

    def test_fingerprint_mismatch(self, tmp_path):
        path = self._primed(tmp_path)
        entry = json.load(open(path, encoding='utf-8'))
        entry['fingerprint'] = '0' * len(entry['fingerprint'])
        with open(path, 'w', encoding='utf-8') as f:
            json.dump(entry, f)
        self._expect_cold(tmp_path)


# -- warm/cold equivalence -------------------------------------------------------


class TestWarmEquivalence:
    def _run(self, cache, steps=8, **exprs_kwargs):
        exprs, u = _exprs(**exprs_kwargs)
        op = Operator(exprs, cache=cache)
        op.apply(time_M=steps, dt=0.01)
        return np.array(u.data.gather()), op.cache_info()['status']

    def test_bit_identity_dense(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        cold, _ = self._run(False)
        miss, s1 = self._run(cache)
        warm, s2 = self._run(BuildCache('disk', str(tmp_path)))
        assert (s1, s2) == ('miss', 'hit')
        assert np.array_equal(cold, miss)
        assert np.array_equal(cold, warm)

    def test_constant_rebinds_live_value(self):
        """A warm kernel picks up the *current* value of a same-named
        Constant — by-name rebinding, not by-value freezing."""
        cache = BuildCache('memory')

        def run(value, use_cache):
            exprs, u = _exprs(
                with_constant=Constant('c0', value=value))
            op = Operator(exprs, cache=cache if use_cache else False)
            op.apply(time_M=4, dt=0.01)
            return np.array(u.data.gather()), op.cache_info()['status']

        _, s0 = run(0.5, True)
        ref, _ = run(0.25, False)          # cold reference at 0.25
        warm, s1 = run(0.25, True)         # warm hit, live c0=0.25
        assert (s0, s1) == ('miss', 'hit')
        assert np.array_equal(warm, ref)

    def test_sparse_inject_interpolate(self):
        cache = BuildCache('memory')

        def run(use_cache):
            grid = Grid(shape=(12, 12), extent=(11.0, 11.0))
            u = TimeFunction(name='u', grid=grid, space_order=2)
            src = SparseTimeFunction(
                'src', grid, npoint=1, nt=6,
                coordinates=np.array([[5.5, 5.5]]))
            src.data[:] = 1.0
            rec = SparseTimeFunction(
                'rec', grid, npoint=2, nt=6,
                coordinates=np.array([[3.0, 3.0], [7.25, 7.25]]))
            eq = Eq(u.dt, 0.25 * u.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward)),
                           src.inject(field=u.forward, expr=src),
                           rec.interpolate(expr=u)],
                          cache=cache if use_cache else False)
            op.apply(time_M=4, dt=0.01)
            return (np.array(u.data.gather()), np.array(rec.data),
                    op.cache_info()['status'])

        u_cold, rec_cold, _ = run(False)
        _, _, s0 = run(True)
        u_warm, rec_warm, s1 = run(True)
        assert (s0, s1) == ('miss', 'hit')
        assert np.array_equal(u_cold, u_warm)
        assert np.array_equal(rec_cold, rec_warm)

    @pytest.mark.parametrize('mode', ['basic', 'diagonal', 'full'])
    def test_distributed_warm_matches_serial(self, mode, tmp_path):
        """Each communication pattern caches under its own key, and a
        warm distributed run (sanitizer on) gathers bit-identically to
        the serial reference."""
        serial, _ = self._run(False)
        cache = BuildCache('disk', str(tmp_path))

        def job(comm):
            exprs, u = _exprs(comm=comm)
            op = Operator(exprs, mpi=mode, sanitizer=True, cache=cache)
            op.apply(time_M=8, dt=0.01)
            return np.array(u.data.gather()), op.cache_info()['status']

        first = run_parallel(job, 2)
        second = run_parallel(job, 2)
        assert [s for _, s in first] == ['miss', 'miss']
        assert [s for _, s in second] == ['hit', 'hit']
        for field, _ in first + second:
            assert np.array_equal(field, serial)

    def test_verify_gate_cached(self):
        cache = BuildCache('memory')
        cold = Operator(_exprs()[0], opt='verify', cache=cache)
        warm = Operator(_exprs()[0], opt='verify', cache=cache)
        assert warm.cache_info()['status'] == 'hit'
        assert cold.analysis is not None and warm.analysis is not None
        assert bool(warm.analysis) == bool(cold.analysis)
        assert 'analysis' in warm.profiler.build_times
        # verify on/off are distinct keys (a gated build can never be
        # served an unverified artifact, or vice versa — note a plain
        # Operator under the global REPRO_OPT=verify gate is *also*
        # gated, and correctly shares the verified key)
        assert _fp(_exprs()[0], verify=True) != \
            _fp(_exprs()[0], verify=False)


# -- surface: cache_info, summary, stats, CLI ------------------------------------


class TestSurface:
    def test_cache_info_shape(self):
        cache = BuildCache('memory')
        Operator(_exprs()[0], cache=cache)
        info = Operator(_exprs()[0], cache=cache).cache_info()
        assert info['status'] == 'hit'
        assert isinstance(info['key'], str) and len(info['key']) == 32
        assert info['tier'] == 'memory'
        assert info['nbytes'] > 0
        assert info['saved_seconds'] >= 0.0

    def test_summary_reports_build(self):
        cache = BuildCache('memory')
        exprs, u = _exprs()
        s_miss = Operator(exprs, cache=cache).apply(time_M=2, dt=0.01)
        s_hit = Operator(exprs, cache=cache).apply(time_M=2, dt=0.01)
        assert s_miss.build['status'] == 'miss'
        assert s_hit.build['status'] == 'hit'
        assert s_hit.build['tier'] == 'memory'
        assert 'build' in s_hit.build['times']
        assert s_hit.to_dict()['build']['status'] == 'hit'
        assert 'build=hit' in repr(s_hit)

    def test_stats_json_roundtrip(self, tmp_path):
        cache = BuildCache('disk', str(tmp_path))
        Operator(_exprs()[0], cache=cache)
        Operator(_exprs()[0], cache=BuildCache('disk', str(tmp_path)))
        for c in (cache,):
            c.flush_stats()
        # second instance flushed its own hit
        stats = read_disk_stats(str(tmp_path))
        assert stats['stores'] >= 0  # file may lag the other instance
        cache2 = BuildCache('disk', str(tmp_path))
        Operator(_exprs()[0], cache=cache2)
        cache2.flush_stats()
        stats = read_disk_stats(str(tmp_path))
        assert stats['hits'] >= 1

    def test_clear(self, tmp_path):
        cache = BuildCache('on', str(tmp_path))
        Operator(_exprs()[0], cache=cache)
        assert disk_usage(str(tmp_path))[0] == 1
        cache.clear()
        assert disk_usage(str(tmp_path))[0] == 0
        assert Operator(_exprs()[0],
                        cache=cache).cache_info()['status'] == 'miss'

    def test_cli_stats_and_clear(self, tmp_path):
        from repro.cli import run_cache
        Operator(_exprs()[0],
                 cache=BuildCache('disk', str(tmp_path))).apply(
                     time_M=1, dt=0.01)
        warm_cache = BuildCache('disk', str(tmp_path))
        Operator(_exprs()[0], cache=warm_cache)
        warm_cache.flush_stats()
        assert run_cache('stats', cache_dir=str(tmp_path),
                         min_hits=1) == 0
        assert run_cache('stats', cache_dir=str(tmp_path),
                         min_hits=10 ** 6) == 1
        assert run_cache('clear', cache_dir=str(tmp_path)) == 0
        assert disk_usage(str(tmp_path))[0] == 0

    def test_get_cache_resolution(self, tmp_path):
        assert get_cache(False) is None
        assert get_cache('off') is None
        inst = BuildCache('memory')
        assert get_cache(inst) is inst
        saved = (configuration['build_cache'], configuration['cache_dir'])
        try:
            configuration['cache_dir'] = str(tmp_path)
            configuration['build_cache'] = 'off'
            assert get_cache(None) is None
            configuration['build_cache'] = 'disk'
            a = get_cache(None)
            b = get_cache('disk')
            assert a is b and a.mode == 'disk'
            assert get_cache(True).mode == 'on'
        finally:
            configuration['build_cache'], configuration['cache_dir'] = \
                saved
        with pytest.raises(ValueError):
            get_cache(3.14)
        with pytest.raises(ValueError):
            BuildCache('turbo')

    def test_artifact_payload_roundtrip(self):
        """extract -> to_payload -> JSON -> from_payload is lossless."""
        op = Operator(_exprs()[0], cache=False)
        art = KernelArtifact.extract(op, build_seconds=0.123)
        blob = json.dumps(art.to_payload())
        back = KernelArtifact.from_payload(json.loads(blob))
        assert back.source == art.source == op.pycode
        assert back.build_seconds == pytest.approx(0.123)
        assert back.nbytes > 0
