"""The hash-consed DAG contract: interning, memoization, lifetimes.

Four families of guarantees:

1. **Interning** — structurally equal construction yields the *same*
   object; direct ``__init__`` of an interned class outside its factory
   is an error; non-interned classes (Temp, DiscreteFunction) keep
   their identity-bearing semantics.
2. **Lifetimes** — the intern table holds nodes weakly: dropping the
   last external reference releases the entry (no leak), and the
   global :class:`WeakIdMemo` caches evict with their keys.
3. **Memoized traversals** — diff/subs/xreplace/expand/count_ops give
   the same answers on heavily shared DAGs as on the equivalent trees.
4. **Fingerprint stability** — the BLAKE2b content-address grammar is
   byte-for-byte what the seed emitted (hardcoded digests), and the
   per-node byte cache never changes a digest.
"""

import gc
import math
import warnings

import pytest

from repro.symbolics import (Add, Derivative, Expr, Float, Indexed, Integer,
                             Mul, Pow, Rational, S, Symbol, Temp, WeakIdMemo,
                             canonical_tokens, cos, preorder, sin, sqrt,
                             unique_nodes)
from repro.symbolics.expr import _INTERN
from repro.symbolics.hashing import TokenEmitter

x, y, z = Symbol('x'), Symbol('y'), Symbol('z')


class TestInterning:

    def test_atoms_are_interned(self):
        assert Symbol('pt_a') is Symbol('pt_a')
        assert Integer(1234567) is Integer(1234567)
        assert Rational(3, 7) is Rational(3, 7)
        assert Float(2.5) is Float(2.5)

    def test_rational_normalizes_to_interned_integer(self):
        r = Rational(4, 2)
        assert isinstance(r, Integer)
        assert r is Integer(2)

    def test_composites_are_interned(self):
        assert x + y is x + y
        assert x * y + 2 is x * y + 2
        assert (x + y) ** 2 is (x + y) ** 2
        assert sin(x + y) is sin(x + y)

    def test_structural_equality_is_pointer_identity(self):
        a = (x + y) * sqrt(z) - 3
        b = (y + x) * sqrt(z) - 3  # canonical ordering collapses these
        assert a is b
        assert a == b
        assert hash(a) == hash(b)

    def test_derivative_interning(self):
        d1 = Derivative(x * y, x, fd_order=4)
        d2 = Derivative(y * x, x, fd_order=4)
        assert d1 is d2
        # a different fd_order is a different node
        assert d1 is not Derivative(x * y, x, fd_order=8)

    def test_indexed_interning_is_per_base(self, fake_function):
        u = fake_function('u')
        assert Indexed(u, x, y) is Indexed(u, x, y)
        # a *distinct* base object with the same name must not conflate
        v = fake_function('u')
        assert Indexed(u, x, y) is not Indexed(v, x, y)

    def test_direct_init_outside_factory_raises(self):
        e = x + y
        with pytest.raises(TypeError):
            e.__init__(x, z)
        with pytest.raises(TypeError):
            Expr.__init__(Symbol('q'), 'q')

    def test_temps_are_not_interned(self):
        # compiler temporaries are identity-bearing: r0 from one CSE run
        # must never alias r0 from another
        assert Temp(0) is not Temp(0)
        assert Temp(0) == Temp(0)  # but still structurally equal

    def test_float_zero_signs_stay_distinct(self):
        assert Float(0.0) is not Float(-0.0)
        assert math.copysign(1.0, Float(-0.0).value) == -1.0


class TestLifetimes:

    def test_released_nodes_leave_the_intern_table(self):
        import weakref
        gc.collect()
        before = len(_INTERN)
        e = Symbol('lifetime_probe_sym') * 987654321 + \
            sin(Symbol('lifetime_probe_sym2'))
        refs = [weakref.ref(n) for n in unique_nodes(e)]
        assert len(_INTERN) > before
        del e
        gc.collect()
        # neither the intern table nor any global memo holds a strong
        # reference: every node of the expression is collectible
        assert all(r() is None for r in refs)
        assert len(_INTERN) <= before

    def test_interning_survives_a_release_cycle(self):
        e1 = Symbol('cycle_probe') + 42
        del e1
        gc.collect()
        # the table entry died with the node; re-construction re-interns
        e2 = Symbol('cycle_probe') + 42
        assert e2 is Symbol('cycle_probe') + 42

    def test_weak_id_memo_evicts_with_its_key(self):
        memo = WeakIdMemo()
        e = Symbol('memo_probe') * 3
        memo.set(e, 'payload')
        assert memo.get(e) == 'payload'
        assert len(memo) == 1
        del e
        gc.collect()
        assert len(memo) == 0

    def test_weak_id_memo_self_value_does_not_pin(self):
        memo = WeakIdMemo()
        e = Symbol('memo_self_probe') * 5
        memo.set(e, e)  # value is the key itself (identity rewrite)
        assert memo.get(e) is e
        del e
        gc.collect()
        assert len(memo) == 0


class TestMemoizedTraversals:

    def _shared(self, depth=12):
        """A chain whose tree size is exponential in ``depth`` but whose
        DAG size is linear — any non-memoized traversal times out."""
        e = x + y
        for _ in range(depth):
            e = e * e + e
        return e

    def test_deep_shared_dag_traversals_terminate(self):
        e = self._shared(depth=24)
        stats = e.dag_stats()
        assert stats['unique_nodes'] < 200
        assert e.count_ops() > 0
        assert e.free_symbols == {x, y}
        assert e.xreplace({z: x}) is e  # no-op rewrite returns self

    def test_xreplace_on_shared_subtrees(self):
        shared = (x + y) * (z + 1)
        e = shared + sin(shared)
        r = e.xreplace({y: z})
        expected = (x + z) * (z + 1) + sin((x + z) * (z + 1))
        assert r is expected

    def test_count_ops_charges_shared_subtrees_once(self):
        # count_ops is a *DAG* cost relative to its root: a shared
        # subtree is charged once, however many paths reach it — which
        # is why the memo is per-call, never global
        shared = x * y + z
        e = sin(shared) + cos(shared)
        assert e.count_ops() == (sin(shared).count_ops()
                                 + cos(shared).count_ops()
                                 + 1 - shared.count_ops())

    def test_diff_method(self):
        d = (x * x).diff(x)
        assert isinstance(d, Derivative)
        assert d.derivs == ((x, 1),)

    def test_expand_on_shared_dag(self):
        shared = x + y
        e = (shared * shared).expand()
        assert e == x * x + 2 * x * y + y * y

    def test_unique_nodes_vs_preorder(self):
        shared = x + y
        e = shared * sin(shared)
        assert len(list(preorder(e))) == 8   # tree walk, with multiplicity
        assert len(list(unique_nodes(e))) == 5

    def test_dag_stats(self):
        shared = x + y
        e = shared * sin(shared)
        stats = e.dag_stats()
        assert stats == {'unique_nodes': 5, 'tree_nodes': 8,
                         'sharing': 8 / 5, 'depth': 4}


class TestDeprecatedShims:

    def test_free_functions_warn_and_delegate(self):
        from repro import symbolics as sym
        e = (x + y) * 2
        for name, call, expect in [
                ('xreplace', lambda f: f(e, {y: z}), e.xreplace({y: z})),
                ('expand', lambda f: f(e), e.expand()),
                ('count_ops', lambda f: f(e), e.count_ops()),
                ('free_symbols', lambda f: f(e), e.free_symbols),
                ('diff', lambda f: f(e, x), e.diff(x)),
        ]:
            with pytest.warns(DeprecationWarning, match=name):
                got = call(getattr(sym, name))
            assert got == expect

    def test_method_api_does_not_warn(self):
        e = (x + y) * 2
        with warnings.catch_warnings():
            warnings.simplefilter('error', DeprecationWarning)
            e.xreplace({y: z})
            e.expand()
            e.count_ops()
            e.free_symbols
            e.diff(x)


class TestFingerprintStability:
    """The content-address grammar is frozen: these digests were
    captured from the seed implementation and must never drift (a drift
    silently invalidates every build cache in existence)."""

    SEED_DIGESTS = {
        'sym': '7e88461acb22676ded55ad2d2e685612',
        'int': 'd722c8e5b0407c11945dfa4fad797d04',
        'rat': 'e089f3bdba9c30ce5edc66e27ae69386',
        'flt': 'a0c2432045aa35409c23e53b70d6cfd4',
        'add': '4eb548400d058d71516f2be5b921cf86',
        'mul_pow': 'd7b8dc237a51f703ba9ac236bea34065',
        'fn': 'dd35c9c64e2c41cb17b19193ddf70c36',
    }

    def cases(self):
        return {
            'sym': x,
            'int': Integer(42),
            'rat': Rational(3, 7),
            'flt': Float(2.5),
            'add': x + 2 * y,
            'mul_pow': (x + y) ** 2 * Rational(1, 2),
            'fn': sin(x) * sqrt(y + 1),
        }

    def test_seed_digests(self):
        for name, expr in self.cases().items():
            assert canonical_tokens(expr) == self.SEED_DIGESTS[name], name

    def test_byte_cache_is_transparent(self):
        shared = (x + y) * sqrt(z)
        e = sin(shared) + cos(shared) * shared
        cached = TokenEmitter()
        cached.emit(e)
        uncached = TokenEmitter(cache=False)
        uncached.emit(e)
        assert cached.hexdigest() == uncached.hexdigest()


@pytest.fixture
def fake_function():
    """Minimal stand-in for a DiscreteFunction: identity-bearing (plain
    Python object, not interned), usable as an Indexed base."""

    class FakeFunction:
        def __init__(self, name):
            self.name = name

    return FakeFunction
