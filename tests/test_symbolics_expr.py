"""Unit tests for the core symbolic engine (expr.py)."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolics import (Add, Expr, Float, Indexed, Integer, Mul, Pow,
                             Rational, S, Symbol, Zero, One, contains,
                             linear_coeffs, preorder, sin, sympify)

x, y, z = Symbol('x'), Symbol('y'), Symbol('z')


class TestNumbers:
    def test_integer_identity(self):
        assert Integer(3) == Integer(3)
        assert Integer(3) == 3
        assert hash(Integer(3)) == hash(Integer(3))

    def test_rational_reduces(self):
        r = Rational(2, 4)
        assert r.value == Fraction(1, 2)

    def test_rational_collapses_to_integer(self):
        r = Rational(4, 2)
        assert isinstance(r, Integer)
        assert r.value == 2

    def test_rational_arithmetic_exact(self):
        assert Rational(1, 3) + Rational(1, 6) == Rational(1, 2)
        assert Rational(1, 3) * 3 == One

    def test_float_contaminates(self):
        result = Rational(1, 2) + Float(0.25)
        assert isinstance(result, Float)
        assert result.value == 0.75

    def test_float_equality(self):
        assert Float(1.5) == 1.5

    def test_number_comparison(self):
        assert Integer(2) < Integer(3)
        assert Rational(1, 2) <= Float(0.5)
        assert Integer(5) > Rational(9, 2)

    def test_sympify(self):
        assert sympify(3) == Integer(3)
        assert sympify(1.5) == Float(1.5)
        assert sympify(Fraction(1, 3)) == Rational(1, 3)

    def test_sympify_numpy_scalars(self):
        import numpy as np
        assert sympify(np.int64(3)) == Integer(3)
        assert sympify(np.float32(0.5)) == Float(0.5)

    def test_int_float_conversion(self):
        assert int(Integer(7)) == 7
        assert float(Rational(1, 4)) == 0.25


class TestAdd:
    def test_collects_like_terms(self):
        assert 2 * x + 3 * x == 5 * x

    def test_cancellation(self):
        assert x - x == Zero
        assert (x + y) - (x + y) == Zero

    def test_numeric_folding(self):
        assert S(1) + x + 2 == x + 3

    def test_flattening(self):
        e = Add.make(x, Add.make(y, Add.make(z, 1)))
        assert set(e.args) >= {x, y, z}

    def test_zero_identity(self):
        assert x + 0 == x

    def test_canonical_order_deterministic(self):
        assert str(x + y + z) == str(z + y + x)

    def test_empty_sum_is_zero(self):
        assert Add.make() == Zero

    def test_coefficient_merge_to_zero_drops_term(self):
        e = 2 * x * y - 2 * x * y + z
        assert e == z


class TestMul:
    def test_power_collection(self):
        assert x * x == Pow.make(x, 2)
        assert x * x * x == x ** 3

    def test_coefficient_first(self):
        e = x * 3
        assert e.args[0] == Integer(3)

    def test_zero_annihilates(self):
        assert x * 0 == Zero

    def test_one_identity(self):
        assert x * 1 == x

    def test_flattening(self):
        e = Mul.make(x, Mul.make(2, y))
        assert e == 2 * x * y

    def test_negation(self):
        assert -x == Mul.make(-1, x)
        assert -(-x) == x

    def test_division(self):
        e = x / y
        assert e == Mul.make(x, Pow.make(y, -1))

    def test_rational_power_combining(self):
        assert (x ** 2) * (x ** -2) == One


class TestPow:
    def test_zero_exponent(self):
        assert x ** 0 == One

    def test_one_exponent(self):
        assert x ** 1 == x

    def test_numeric_folding(self):
        assert S(2) ** 10 == Integer(1024)
        assert Rational(1, 2) ** 2 == Rational(1, 4)

    def test_nested_integer_power(self):
        assert (x ** 2) ** 3 == x ** 6

    def test_negative_power_of_number(self):
        assert S(4) ** -1 == Rational(1, 4)

    def test_mul_base_distributes(self):
        assert (x * y) ** 2 == x ** 2 * y ** 2

    def test_base_exp_accessors(self):
        p = x ** y
        assert p.base == x and p.exp == y


class TestEqualityHashing:
    def test_structural_equality(self):
        assert (x + y) * 2 == 2 * (y + x)

    def test_hash_consistency(self):
        a, b = (x + y) ** 2, (y + x) ** 2
        assert a == b and hash(a) == hash(b)

    def test_symbols_by_name(self):
        assert Symbol('a') == Symbol('a')
        assert Symbol('a') != Symbol('b')

    def test_dict_key_usage(self):
        d = {x + y: 1}
        assert d[y + x] == 1


class TestTraversal:
    def test_preorder_visits_all(self):
        e = (x + y) * z
        nodes = list(preorder(e))
        assert x in nodes and y in nodes and z in nodes

    def test_free_symbols(self):
        assert ((x + 2 * y) ** z).free_symbols == {x, y, z}

    def test_contains(self):
        assert contains((x + y) * z, y)
        assert not contains(x * z, y)

    def test_atoms_filter(self):
        e = 2 * x + y
        assert e.atoms(Symbol) == {x, y}


class TestXreplace:
    def test_symbol_replacement(self):
        assert (x + y).xreplace({x: z}) == z + y

    def test_subtree_replacement(self):
        e = (x + y) * z
        assert e.xreplace({x + y: z}) == z ** 2

    def test_identity_returns_same_object(self):
        e = x + y
        assert e.xreplace({z: x}) is e

    def test_replacement_recanonicalizes(self):
        e = 2 * x + y
        assert e.xreplace({y: -2 * x}) == Zero

    def test_replacement_with_plain_number(self):
        assert (x + y).xreplace({x: 2}) == y + 2


class TestExpand:
    def test_product_of_sums(self):
        assert ((x + y) * (x - y)).expand() == x ** 2 - y ** 2

    def test_power_of_sum(self):
        assert ((x + y) ** 2).expand() == x ** 2 + 2 * x * y + y ** 2

    def test_nested(self):
        e = (z * (x + y) + (x + 1) * (y + 1)).expand()
        assert e == x * z + y * z + x * y + x + y + 1


class TestLinearCoeffs:
    def test_simple(self):
        a, b = linear_coeffs(3 * x + 5, x)
        assert a == 3 and b == 5

    def test_symbolic_coefficient(self):
        a, b = linear_coeffs(y * x + z, x)
        assert a == y and b == z

    def test_unexpanded_product(self):
        a, b = linear_coeffs(y * (x + z), x)
        assert a == y and b == y * z

    def test_absent_target(self):
        a, b = linear_coeffs(y + z, x)
        assert a == Zero and b == y + z

    def test_nonlinear_raises(self):
        with pytest.raises(ValueError):
            linear_coeffs(x ** 2, x)

    def test_product_of_targets_raises(self):
        with pytest.raises(ValueError):
            linear_coeffs(x * (x + y), x)


class TestCountOps:
    def test_add(self):
        assert (x + y + z).count_ops() == 2

    def test_shared_subexpression_charged_once(self):
        e = (x + y) * (x + y)
        assert e.count_ops() <= 3

    def test_pow_small_integer(self):
        assert (x ** 3).count_ops() == 2

    def test_function_cost(self):
        assert sin(x).count_ops() >= 1


class TestEvalf:
    def test_arithmetic(self):
        e = (x + 2) * y
        assert e.evalf({x: 1.0, y: 3.0}) == 9.0

    def test_functions(self):
        assert abs(sin(x).evalf({x: math.pi / 2}) - 1.0) < 1e-12

    def test_unbound_raises(self):
        with pytest.raises(ValueError):
            (x + y).evalf({x: 1.0})


class TestIndexed:
    class FakeFunction:
        name = 'u'

    def test_construction(self):
        u = self.FakeFunction()
        acc = Indexed(u, x, y + 1)
        assert acc.indices == (x, y + 1)
        assert str(acc) == 'u[x, 1 + y]'

    def test_equality_by_base_name(self):
        u1, u2 = self.FakeFunction(), self.FakeFunction()
        assert Indexed(u1, x) == Indexed(u2, x)

    def test_participates_in_arithmetic(self):
        u = self.FakeFunction()
        acc = Indexed(u, x)
        e = 2 * acc + acc
        assert e == 3 * acc


# -- property-based tests -----------------------------------------------------

_small_ints = st.integers(min_value=-8, max_value=8)


@st.composite
def exprs(draw, depth=0):
    """Random small expressions over {x, y} and small integers."""
    if depth > 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return x
        if choice == 1:
            return y
        return S(draw(_small_ints))
    op = draw(st.integers(0, 2))
    a = draw(exprs(depth=depth + 1))
    b = draw(exprs(depth=depth + 1))
    if op == 0:
        return a + b
    if op == 1:
        return a * b
    return a - b


@given(exprs(), _small_ints, _small_ints)
@settings(max_examples=80, deadline=None)
def test_canonicalization_preserves_value(e, xv, yv):
    """Canonical construction must not change the numeric value."""
    expected = e.evalf({x: float(xv), y: float(yv)})
    rebuilt = e.xreplace({x: S(xv), y: S(yv)})
    assert isinstance(rebuilt, Expr)
    assert math.isclose(float(rebuilt.value), expected,
                        rel_tol=1e-9, abs_tol=1e-9)


@given(exprs(), exprs())
@settings(max_examples=60, deadline=None)
def test_addition_commutes_structurally(a, b):
    assert a + b == b + a


@given(exprs(), exprs())
@settings(max_examples=60, deadline=None)
def test_multiplication_commutes_structurally(a, b):
    assert a * b == b * a


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_subtraction_self_is_zero(e):
    assert e - e == Zero


@given(exprs())
@settings(max_examples=60, deadline=None)
def test_expand_preserves_value(e):
    expanded = e.expand()
    v1 = e.evalf({x: 1.37, y: -2.11})
    v2 = expanded.evalf({x: 1.37, y: -2.11})
    assert math.isclose(v1, v2, rel_tol=1e-9, abs_tol=1e-7)
