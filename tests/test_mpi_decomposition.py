"""Tests for block decomposition, distributor and distributed data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import (Data, Decomposition, DimSpec, Distributor,
                       run_parallel, serial_comm)


class TestDecomposition:
    def test_balanced_split(self):
        d = Decomposition(10, 3)
        assert d.sizes == (4, 3, 3)

    def test_exact_split(self):
        d = Decomposition(8, 4)
        assert d.sizes == (2, 2, 2, 2)

    def test_offsets(self):
        d = Decomposition(10, 3)
        assert [d.offset(i) for i in range(3)] == [0, 4, 7]

    def test_local_range(self):
        d = Decomposition(10, 3)
        assert d.local_range(1) == (4, 7)

    def test_owner(self):
        d = Decomposition(10, 3)
        assert [d.owner(i) for i in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_owner_out_of_range(self):
        d = Decomposition(10, 3)
        with pytest.raises(IndexError):
            d.owner(10)

    def test_glb_to_loc(self):
        d = Decomposition(10, 3)
        assert d.glb_to_loc(1, 5) == 1
        assert d.glb_to_loc(0, 5) is None

    def test_loc_to_glb(self):
        d = Decomposition(10, 3)
        assert d.loc_to_glb(2, 0) == 7
        with pytest.raises(IndexError):
            d.loc_to_glb(2, 3)

    def test_slice_conversion_basic(self):
        d = Decomposition(8, 2)
        loc, voff, count = d.slice_glb_to_loc(1, slice(2, 7))
        assert (loc.start, loc.stop) == (0, 3)
        assert voff == 2 and count == 3

    def test_slice_conversion_miss(self):
        d = Decomposition(8, 2)
        _, _, count = d.slice_glb_to_loc(1, slice(0, 3))
        assert count == 0

    def test_slice_with_step(self):
        d = Decomposition(10, 2)
        # global indices 1, 4, 7 with step 3; part 1 owns [5, 10)
        loc, voff, count = d.slice_glb_to_loc(1, slice(1, 10, 3))
        assert count == 1 and voff == 2
        assert loc.start == 2  # global 7 -> local 2

    def test_negative_step_unsupported(self):
        d = Decomposition(10, 2)
        with pytest.raises(NotImplementedError):
            d.slice_glb_to_loc(0, slice(9, 0, -1))

    def test_more_parts_than_points_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(2, 4)

    @given(st.integers(1, 200), st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, npoints, nparts):
        """Parts are disjoint, cover the domain, balanced within 1."""
        if nparts > npoints:
            return
        d = Decomposition(npoints, nparts)
        covered = []
        for p in range(nparts):
            start, stop = d.local_range(p)
            covered.extend(range(start, stop))
        assert covered == list(range(npoints))
        sizes = set(d.sizes)
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(2, 100), st.integers(1, 8),
           st.data())
    @settings(max_examples=100, deadline=None)
    def test_glb_loc_roundtrip(self, npoints, nparts, data):
        if nparts > npoints:
            return
        d = Decomposition(npoints, nparts)
        g = data.draw(st.integers(0, npoints - 1))
        p = d.owner(g)
        loc = d.glb_to_loc(p, g)
        assert loc is not None
        assert d.loc_to_glb(p, loc) == g
        # no other part owns it
        for q in range(nparts):
            if q != p:
                assert d.glb_to_loc(q, g) is None


class TestWeightedDecomposition:
    def test_proportional_split(self):
        d = Decomposition(16, 4, weights=(3.0, 1.0, 1.0, 3.0))
        assert d.sizes == (6, 2, 2, 6)
        assert sum(d.sizes) == 16

    def test_equal_weights_match_unweighted(self):
        for npoints, nparts in ((10, 3), (8, 4), (17, 5), (7, 7)):
            unweighted = Decomposition(npoints, nparts)
            weighted = Decomposition(npoints, nparts,
                                     weights=(1.0,) * nparts)
            assert weighted.sizes == unweighted.sizes

    def test_zero_weight_floored_to_one_point(self):
        d = Decomposition(10, 3, weights=(1.0, 0.0, 1.0))
        assert d.sizes[1] >= 1
        assert sum(d.sizes) == 10

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(10, 3, weights=(0.0, 0.0, 0.0))

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(10, 3, weights=(1.0, -1.0, 1.0))

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(10, 3, weights=(1.0, 2.0))

    def test_extreme_skew_keeps_every_part_nonempty(self):
        d = Decomposition(8, 4, weights=(1e9, 1.0, 1e-9, 1e-9))
        assert sum(d.sizes) == 8
        assert min(d.sizes) >= 1
        assert d.sizes[0] == max(d.sizes)

    def test_nparts_exceeding_npoints_rejected(self):
        with pytest.raises(ValueError):
            Decomposition(3, 5, weights=(1.0,) * 5)

    def test_weights_recorded(self):
        d = Decomposition(10, 2, weights=(3, 1))
        assert d.weights == (3.0, 1.0)
        assert Decomposition(10, 2).weights is None

    @given(st.integers(1, 120), st.integers(1, 8), st.data())
    @settings(max_examples=100, deadline=None)
    def test_weighted_partition_invariants(self, npoints, nparts, data):
        """Weighted parts are disjoint, cover the domain exactly, and
        are never empty — for any weights, however degenerate."""
        if nparts > npoints:
            return
        weights = data.draw(st.lists(
            st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
            min_size=nparts, max_size=nparts))
        if sum(weights) <= 0:
            return
        d = Decomposition(npoints, nparts, weights=weights)
        covered = []
        for p in range(nparts):
            start, stop = d.local_range(p)
            covered.extend(range(start, stop))
        assert covered == list(range(npoints))
        assert min(d.sizes) >= 1

    @given(st.integers(8, 200), st.integers(2, 6), st.data())
    @settings(max_examples=50, deadline=None)
    def test_weighted_split_tracks_proportions(self, npoints, nparts,
                                               data):
        """Each part's share is within one point of its exact quota
        (largest-remainder apportionment), pre-floor."""
        weights = data.draw(st.lists(st.floats(0.5, 10.0),
                                     min_size=nparts, max_size=nparts))
        total = sum(weights)
        if min(weights) / total * npoints < 1.0:
            # a sub-one quota triggers the no-empty-part floor, which
            # deliberately trades proportionality for validity
            return
        d = Decomposition(npoints, nparts, weights=weights)
        for p in range(nparts):
            quota = npoints * weights[p] / total
            assert abs(d.size(p) - quota) < 1.0 + 1e-9


class TestDistributor:
    def test_serial_distributor(self):
        dist = Distributor((8, 8))
        assert dist.nprocs == 1
        assert dist.shape_local == (8, 8)
        assert not dist.is_parallel

    def test_topology_override(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm, topology=(4, 1))
            return dist.topology, dist.shape_local

        out = run_parallel(job, 4)
        assert all(o[0] == (4, 1) for o in out)
        assert all(o[1] == (2, 8) for o in out)

    def test_local_ranges_tile_domain(self):
        def job(comm):
            dist = Distributor((9, 7), comm=comm)
            return dist.local_ranges()

        out = run_parallel(job, 4)
        cells = set()
        for ranges in out:
            (r0, r1), (c0, c1) = ranges
            for i in range(r0, r1):
                for j in range(c0, c1):
                    assert (i, j) not in cells
                    cells.add((i, j))
        assert len(cells) == 63

    def test_boundary_rank_detection(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            return (dist.is_boundary_rank(0, -1), dist.is_boundary_rank(0, 1),
                    dist.is_boundary_rank(1, -1), dist.is_boundary_rank(1, 1))

        out = run_parallel(job, 4)
        assert out[0] == (True, False, True, False)
        assert out[3] == (False, True, False, True)

    def test_owner_of_point(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            return dist.owner_of((0, 0)), dist.owner_of((7, 7)), \
                dist.owns((4, 4))

        out = run_parallel(job, 4)
        assert all(o[0] == 0 and o[1] == 3 for o in out)
        assert [o[2] for o in out] == [False, False, False, True]

    def test_is_distributed_per_dim(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm, topology=(2, 1))
            return dist.is_distributed(0), dist.is_distributed(1)

        out = run_parallel(job, 2)
        assert all(o == (True, False) for o in out)


class TestDistributedData:
    def _make(self, comm, shape=(8, 8), halo=2):
        dist = Distributor(shape, comm=comm)
        specs = [DimSpec(n, dist_index=i, halo=(halo, halo))
                 for i, n in enumerate(shape)]
        return dist, Data(specs, dist)

    def test_global_scalar_assignment(self):
        def job(comm):
            dist, d = self._make(comm)
            d[2:6, 2:6] = 7.0
            return d.gather()

        out = run_parallel(job, 4)
        expected = np.zeros((8, 8), dtype=np.float32)
        expected[2:6, 2:6] = 7.0
        assert all(np.array_equal(o, expected) for o in out)

    def test_global_array_assignment_distributes_slabs(self):
        def job(comm):
            dist, d = self._make(comm)
            d[:, :] = np.arange(64, dtype=np.float32).reshape(8, 8)
            return d.gather()

        out = run_parallel(job, 4)
        expected = np.arange(64, dtype=np.float32).reshape(8, 8)
        assert all(np.array_equal(o, expected) for o in out)

    def test_partial_global_array_assignment(self):
        def job(comm):
            dist, d = self._make(comm)
            d[1:7, 3:5] = np.ones((6, 2), dtype=np.float32) * 3
            return d.gather()

        out = run_parallel(job, 4)
        expected = np.zeros((8, 8), dtype=np.float32)
        expected[1:7, 3:5] = 3
        assert np.array_equal(out[0], expected)

    def test_getitem_returns_local_intersection(self):
        def job(comm):
            dist, d = self._make(comm)
            d[:, :] = np.arange(64, dtype=np.float32).reshape(8, 8)
            return d[2:6, 2:6]

        out = run_parallel(job, 4)
        glob = np.arange(64, dtype=np.float32).reshape(8, 8)[2:6, 2:6]
        assert np.array_equal(out[0], glob[:2, :2])
        assert np.array_equal(out[3], glob[2:, 2:])

    def test_int_index_off_owner_empty(self):
        def job(comm):
            dist, d = self._make(comm)
            d[:, :] = 1.0
            return d[0, 0]

        out = run_parallel(job, 4)
        assert out[0].size == 1  # owner sees the scalar selection
        assert out[3].size == 0  # off-owner gets empty

    def test_negative_index_normalized(self):
        def job(comm):
            dist, d = self._make(comm)
            d[-1, -1] = 5.0
            return d.gather()

        out = run_parallel(job, 4)
        assert out[0][7, 7] == 5.0
        assert out[0].sum() == 5.0

    def test_halo_region_untouched_by_global_writes(self):
        def job(comm):
            dist, d = self._make(comm)
            d[:, :] = 1.0
            return float(d.with_halo.sum()), float(d.local.sum())

        out = run_parallel(job, 4)
        for whole, inner in out:
            assert whole == inner  # halo stayed zero

    def test_plain_leading_dimension(self):
        def job(comm):
            dist = Distributor((4, 4), comm=comm)
            specs = [DimSpec(2),
                     DimSpec(4, dist_index=0, halo=(1, 1)),
                     DimSpec(4, dist_index=1, halo=(1, 1))]
            d = Data(specs, dist)
            d[0, 1:-1, 1:-1] = 1.0
            return d.gather()

        out = run_parallel(job, 4)
        expected = np.zeros((2, 4, 4), dtype=np.float32)
        expected[0, 1:-1, 1:-1] = 1.0
        assert np.array_equal(out[0], expected)

    def test_ellipsis_key(self):
        dist = Distributor((4, 4))
        specs = [DimSpec(2), DimSpec(4, dist_index=0), DimSpec(4,
                                                               dist_index=1)]
        d = Data(specs, dist)
        d[1, ...] = 2.0
        assert d.with_halo[1].sum() == 32.0

    def test_shape_properties(self):
        def job(comm):
            dist, d = self._make(comm, shape=(6, 8))
            return d.shape_global, d.shape_local

        out = run_parallel(job, 4)
        assert all(o[0] == (6, 8) for o in out)
        assert out[0][1] == (3, 4)

    def test_serial_matches_parallel_gather(self):
        def fill(d):
            d[1:5, 2:7] = 4.0
            d[0, :] = -1.0

        dist_s, ds = self._make(None)
        fill(ds)
        serial = ds.gather()

        def job(comm):
            dist, d = self._make(comm)
            fill(d)
            return d.gather()

        out = run_parallel(job, 4)
        assert all(np.array_equal(o, serial) for o in out)
