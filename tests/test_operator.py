"""Tests for the Operator: codegen, execution, arguments, summaries."""

import numpy as np
import pytest

from repro import (Constant, Eq, Function, Grid, Operator, TimeFunction,
                   solve)


@pytest.fixture
def grid():
    return Grid(shape=(6, 6), extent=(5.0, 5.0))


class TestDiffusionReference:
    """The paper's Listing 1 setup against a hand-written NumPy stencil."""

    def _reference(self, nx, ny, dt, steps):
        h = 2.0 / (nx - 1)
        u = np.zeros((2, nx, ny), dtype=np.float32)
        u[0, 1:-1, 1:-1] = 1
        for n in range(steps):
            t0, t1 = n % 2, (n + 1) % 2
            padded = np.pad(u[t0], 1)
            lap = ((padded[2:, 1:-1] - 2 * u[t0] + padded[:-2, 1:-1])
                   + (padded[1:-1, 2:] - 2 * u[t0] + padded[1:-1, :-2]))
            u[t1] = (u[t0] + dt * lap / h ** 2).astype(np.float32)
        return u

    @pytest.mark.parametrize('steps', [1, 2, 5])
    def test_matches_reference(self, steps):
        nx = ny = 8
        dt = 0.05
        grid = Grid(shape=(nx, ny), extent=(2.0, 2.0))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0, 1:-1, 1:-1] = 1
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))])
        op.apply(time_M=steps - 1, dt=dt)
        ref = self._reference(nx, ny, dt, steps)
        assert np.allclose(u.data[steps % 2], ref[steps % 2], atol=1e-5)


class TestGeneratedCode:
    def test_pycode_contains_invariants(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))])
        src = op.pycode
        assert 'r0 = ' in src and '1.0/dt' in src
        assert 'for time in range(time_m, time_M + 1):' in src

    def test_pycode_slices_are_halo_aligned(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)], opt=False)
        # domain [0, 6) with halo 2 -> slices 2:8
        assert '2:8' in op.pycode

    def test_ccode_listing11_shape(self):
        grid = Grid(shape=(4, 4), extent=(2.0, 2.0))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))])
        c = op.ccode
        assert 'float r0 = 1.0F/dt;' in c
        assert 'u[t1][2 + x][2 + y]' in c
        assert '#pragma omp simd' in c
        assert 'for (int time = time_m' in c
        assert '% (2)' in c.replace('%(2)', '% (2)')

    def test_opt_false_skips_temporaries(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))], opt=False)
        assert 'r0' not in op.pycode

    def test_opt_reduces_flops(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=8)
        pde = Eq(u.dt, u.laplace)
        op_plain = Operator([Eq(u.forward, solve(pde, u.forward))],
                            opt=False)
        op_opt = Operator([Eq(u.forward, solve(pde, u.forward))], opt=True)
        assert op_opt.flops_per_point < op_plain.flops_per_point

    def test_reserved_name_rejected(self, grid):
        bad = TimeFunction(name='time', grid=grid)
        with pytest.raises(ValueError):
            Operator([Eq(bad.forward, bad + 1)])

    def test_temp_style_name_rejected(self, grid):
        bad = TimeFunction(name='r1', grid=grid)
        with pytest.raises(ValueError):
            Operator([Eq(bad.forward, bad + 1)])


class TestExecution:
    def test_pointwise_update(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        op.apply(time_M=2, dt=1.0)
        # 3 steps: buffer (3 % 2) holds value 3
        assert (u.data[1] == 3).all()

    def test_two_coupled_fields(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1),
                       Eq(v.forward, u.forward * 2)])
        op.apply(time_M=0, dt=1.0)
        assert (np.asarray(v.data[1]) == 2).all()

    def test_function_parameter_used(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        m = Function(name='m', grid=grid, space_order=2)
        m.data[:, :] = 3.0
        op = Operator([Eq(u.forward, m)])
        op.apply(time_M=0, dt=1.0)
        assert (np.asarray(u.data[1]) == 3).all()

    def test_constant_binding(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        c = Constant('c0', value=5.0)
        op = Operator([Eq(u.forward, u + c)])
        op.apply(time_M=0, dt=1.0)
        assert (np.asarray(u.data[1]) == 5).all()

    def test_constant_override_at_apply(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        c = Constant('c0', value=5.0)
        op = Operator([Eq(u.forward, u + c)])
        op.apply(time_M=0, dt=1.0, c0=7.0)
        assert (np.asarray(u.data[1]) == 7).all()

    def test_spacing_override(self):
        grid = Grid(shape=(6, 6), extent=(5.0, 5.0))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        x, _ = grid.dimensions
        op = Operator([Eq(u.forward, x.spacing + 0 * u)])
        op.apply(time_M=0, dt=1.0, h_x=0.25)
        assert np.allclose(np.asarray(u.data[1]), 0.25)

    def test_missing_dt_raises(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))])
        with pytest.raises(ValueError, match='dt'):
            op.apply(time_M=1)

    def test_missing_time_M_raises(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        with pytest.raises(ValueError, match='time_M'):
            op.apply(dt=1.0)

    def test_dt_not_required_without_time_derivatives(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        op.apply(time_M=0)  # must not raise

    def test_unknown_kwarg_message_lists_options_alphabetically(self,
                                                                grid):
        from repro.dsl.operator import RESILIENCE_KWARGS, SERVICE_KWARGS
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        with pytest.raises(ValueError) as err:
            op.apply(time_M=0, chekpoint_every=5)
        message = str(err.value)
        assert "'chekpoint_every'" in message
        # every resilience/service key is listed, alphabetically, so
        # the near-miss above is findable right next to its fix
        listed = message.split('resilience/service options: ')[1]
        expected = ', '.join(sorted(RESILIENCE_KWARGS + SERVICE_KWARGS))
        assert listed == expected
        assert 'job_id' in listed

    def test_job_id_kwarg_accepted_and_on_summary(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        summary = op.apply(time_M=0, job_id='job-k')
        assert summary.job_id == 'job-k'
        assert op.apply(time_M=0).job_id is None

    def test_time_m_offset(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        op.apply(time_m=5, time_M=5, dt=1.0)
        # one step executed, writing buffer (5+1) % 2 = 0
        assert (np.asarray(u.data[0]) == 1).all()

    def test_three_buffer_rotation(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2, time_order=2)
        op = Operator([Eq(u.forward, u + u.backward + 1)])
        op.apply(time_M=3, dt=1.0)
        # Fibonacci-like: u(t+1) = u(t) + u(t-1) + 1, so with seq[0]=u(-1)
        # and seq[1]=u(0), after 4 steps u(4) = seq[5] = 7
        seq = [0, 0]
        for _ in range(4):
            seq.append(seq[-1] + seq[-2] + 1)
        assert (np.asarray(u.data[4 % 3]) == seq[5]).all()

    def test_summary_metrics(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))])
        summary = op.apply(time_M=9, dt=0.01)
        assert summary.timesteps == 10
        assert summary.points == 36
        assert summary.elapsed > 0
        assert summary.gpointss > 0
        assert summary.gflopss >= summary.gpointss
        assert summary.oi > 0

    def test_3d_grid(self):
        grid = Grid(shape=(6, 6, 6))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0, 3, 3, 3] = 1.0
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))])
        op.apply(time_M=1, dt=0.05)
        assert np.isfinite(np.asarray(u.data[0])).all()
        assert np.asarray(u.data[0]).sum() != 0
