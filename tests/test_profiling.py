"""Tests for the profiling/observability subsystem.

Covers the per-section instrumentation of generated kernels, per-rank
aggregation of section times and message/byte counts under all three
DMP patterns, counter reset across repeated applies, the compiled-out
``off`` level, the ``Configuration`` validation, and the advanced-mode
JSON artifact consumed by ``repro.perfmodel.report``.
"""

import numpy as np
import pytest

from repro import (Configuration, Eq, Grid, Operator, PerfEntry,
                   PerformanceSummary, SparseTimeFunction, TimeFunction,
                   configuration, solve)
from repro.mpi import run_parallel
from repro.profiling import Profiler, RankStats, Timer

MODES = ('basic', 'diagonal', 'full')


@pytest.fixture(autouse=True)
def _restore_configuration():
    saved = dict(configuration)
    yield
    for key, value in saved.items():
        configuration[key] = value


def _diffusion_op(grid, **kwargs):
    u = TimeFunction(name='u', grid=grid, space_order=2)
    u.data[0, 1:-1, 1:-1] = 1.0
    eq = Eq(u.dt, u.laplace)
    return Operator([Eq(u.forward, solve(eq, u.forward))], **kwargs), u


class TestSectionNames:
    def test_dense_section_present(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)))
        summary = op.apply(time_M=1, dt=0.01)
        assert 'section0' in summary
        assert summary['section0'].kind == 'compute'
        assert summary['section0'].time > 0
        assert summary['section0'].ncalls == 2  # one per timestep

    def test_sparse_and_dense_sections(self):
        grid = Grid(shape=(8, 8), extent=(7., 7.))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=1, nt=3,
                                 coordinates=np.array([[3.0, 4.0]]))
        rec = SparseTimeFunction('rec', grid, npoint=2, nt=3,
                                 coordinates=np.array([[1.0, 1.0],
                                                       [5.0, 5.0]]))
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward)),
                       src.inject(field=u.forward, expr=src),
                       rec.interpolate(expr=u)])
        summary = op.apply(time_M=1, dt=0.01)
        assert 'section0' in summary
        assert 'sparse0' in summary and 'sparse1' in summary
        assert summary['sparse0'].kind == 'sparse'

    @pytest.mark.parametrize('mode', MODES)
    def test_halo_sections_distributed(self, mode):
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi=mode)
            return op.apply(time_M=1, dt=0.01)

        summaries = run_parallel(job, 4)
        for s in summaries:
            halo = [n for n in s if n.startswith('halo')]
            compute = [n for n in s if n.startswith('section')]
            assert halo and compute
        # full mode splits into begin/CORE/wait/REMAINDER
        if mode == 'full':
            assert 'halowait0' in summaries[0]
            assert 'section1' in summaries[0]

    def test_preamble_halo_named_section(self):
        """Time-invariant functions get a hoisted haloupdate section."""
        from repro import Function

        def job(comm):
            grid = Grid(shape=(16, 16), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            m = Function(name='m', grid=grid, space_order=2)
            m.data[:, :] = 1.0
            eq = Eq(u.dt, u.laplace + m.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward))],
                          mpi='basic')
            return op.apply(time_M=0, dt=0.01), op.pycode

        summary, pycode = run_parallel(job, 4)[0]
        assert 'haloupdate0' in summary  # the hoisted exchange of m
        assert 'haloupdate1' in summary  # the per-timestep exchange of u
        assert "__EX['pre_m']" in pycode


class TestPerRankAggregation:
    @pytest.mark.parametrize('mode', MODES)
    def test_min_max_avg_across_ranks(self, mode):
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi=mode)
            return op.apply(time_M=3, dt=0.01)

        summaries = run_parallel(job, 4)
        for s in summaries:
            assert s.nranks == 4
            halo = next(n for n in s if n.startswith('haloupdate'))
            e = s[halo]
            # time stats: 4 ranks, ordered min <= avg <= max, all > 0
            assert len(e.ranks['time']) == 4
            assert 0 < e.time_min <= e.time_avg <= e.time_max
            # message and byte counts carried per rank
            msgs = e.ranks['nmessages']
            assert msgs.min > 0 and msgs.min <= msgs.avg <= msgs.max
            nbytes = e.ranks['bytes']
            assert nbytes.min > 0
            assert e.nmessages > 0 and e.bytes > 0
            # compute section has per-rank times as well
            sec = s['section0']
            assert len(sec.ranks['time']) == 4
            assert sec.gpointss > 0

    def test_rank_views_consistent(self):
        """All ranks agree on the aggregated (allgathered) statistics."""
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi='diagonal')
            return op.apply(time_M=0, dt=0.01)

        summaries = run_parallel(job, 4)
        ref = summaries[0]['haloupdate0'].ranks['time'].values
        for s in summaries[1:]:
            assert s['haloupdate0'].ranks['time'].values == ref


class TestCounterReset:
    @pytest.mark.parametrize('mode', MODES)
    def test_nmessages_identical_across_applies(self, mode):
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi=mode)
            s1 = op.apply(time_M=2, dt=0.01)
            s2 = op.apply(time_M=2, dt=0.01)
            return s1.nmessages, s2.nmessages

        for n1, n2 in run_parallel(job, 4):
            assert n1 > 0
            assert n1 == n2  # no cross-apply accumulation

    def test_section_counters_reset(self):
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi='basic')
            s1 = op.apply(time_M=1, dt=0.01)
            s2 = op.apply(time_M=1, dt=0.01)
            return s1, s2

        s1, s2 = run_parallel(job, 4)[0]
        halo = next(n for n in s1 if n.startswith('halo'))
        assert s1[halo].nmessages == s2[halo].nmessages
        assert s1[halo].bytes == s2[halo].bytes
        assert s1['section0'].ncalls == s2['section0'].ncalls == 2

    def test_exchanger_counters_are_monotonic(self):
        """The raw exchanger counters accumulate; apply() reports deltas."""
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi='basic')
            s1 = op.apply(time_M=0, dt=0.01)
            raw1 = sum(ex.nmessages for ex in op.exchangers.values())
            s2 = op.apply(time_M=0, dt=0.01)
            raw2 = sum(ex.nmessages for ex in op.exchangers.values())
            return s1.nmessages, s2.nmessages, raw1, raw2

        for n1, n2, raw1, raw2 in run_parallel(job, 4):
            assert n1 == n2
            assert raw2 == 2 * raw1  # monotonic accumulation underneath


class TestOffLevel:
    def test_off_emits_no_timing_calls(self):
        configuration['profiling'] = 'off'
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)))
        assert '__T.' not in op.pycode
        assert '.now()' not in op.pycode

    def test_off_distributed_emits_no_timing_calls(self):
        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi='full', profiling='off')
            return op.pycode

        for src in run_parallel(job, 4):
            assert '__T.' not in src

    def test_off_summary_still_has_aggregates(self):
        configuration['profiling'] = 'off'
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)))
        s = op.apply(time_M=1, dt=0.01)
        assert len(s) == 0  # no sections recorded
        assert s.elapsed > 0 and s.gpointss > 0 and s.oi > 0

    def test_operator_kwarg_overrides_configuration(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)),
                              profiling='off')
        assert '__T.' not in op.pycode
        op2, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)),
                               profiling='basic')
        assert "__T.add('section0'" in op2.pycode


class TestAdvancedLevel:
    def test_traces_recorded_per_timestep(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)),
                              profiling='advanced')
        s = op.apply(time_M=3, dt=0.01)
        assert len(s.traces) == 4
        steps = [t[0] for t in s.traces if t[1] == 'section0']
        assert steps == [0, 1, 2, 3]

    def test_json_artifact_roundtrip(self, tmp_path):
        from repro.perfmodel.report import (format_profile_table,
                                            load_profile_json,
                                            profile_compute_fraction)

        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm),
                                  mpi='diagonal', profiling='advanced')
            return op.apply(time_M=2, dt=0.01)

        summary = run_parallel(job, 4)[0]
        path = tmp_path / 'profile.json'
        summary.save_json(str(path))
        profile = load_profile_json(str(path))
        assert profile['nranks'] == 4
        assert 'haloupdate0' in profile['sections']
        entry = profile['sections']['haloupdate0']
        assert entry['ranks']['time']['min'] <= \
            entry['ranks']['time']['max']
        table = format_profile_table(profile)
        assert 'haloupdate0' in table and 'section0' in table
        assert 0.0 <= profile_compute_fraction(profile) <= 1.0

    def test_loader_rejects_foreign_json(self, tmp_path):
        from repro.perfmodel.report import load_profile_json
        path = tmp_path / 'other.json'
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError, match='missing keys'):
            load_profile_json(str(path))


class TestPerformanceSummaryAPI:
    def test_mapping_protocol(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)))
        s = op.apply(time_M=0, dt=0.01)
        assert isinstance(s, PerformanceSummary)
        assert list(s) == list(s.sections)
        assert isinstance(s['section0'], PerfEntry)
        assert 'section0' in s and 'nope' not in s

    def test_backward_compatible_views(self):
        s = PerformanceSummary(points=100, timesteps=10, elapsed=1.0,
                               flops_per_point=5, traffic_per_point=2,
                               nmessages=7)
        assert s.gpointss == pytest.approx(1e-6)
        assert s.gflopss == pytest.approx(5e-6)
        assert s.oi == pytest.approx(2.5)
        assert s.nmessages == 7 and len(s) == 0

    def test_repr_prints_section_table(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)))
        s = op.apply(time_M=0, dt=0.01)
        text = repr(s)
        assert 'section0' in text and 'GPts/s' in text


class TestConfiguration:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match='unknown configuration key'):
            configuration['bogus'] = 1

    def test_invalid_profiling_value_rejected(self):
        with pytest.raises(ValueError, match='accepted values'):
            configuration['profiling'] = 'loud'

    def test_invalid_mpi_value_rejected(self):
        with pytest.raises(ValueError, match='accepted values'):
            configuration['mpi'] = 'zigzag'

    def test_item_assignment_still_works(self):
        configuration['mpi'] = 'diagonal'
        assert configuration['mpi'] == 'diagonal'
        configuration['profiling'] = 'advanced'
        assert configuration['profiling'] == 'advanced'

    def test_env_seeding(self):
        cfg = Configuration(environ={'REPRO_MPI': 'full',
                                     'REPRO_PROFILING': 'advanced',
                                     'REPRO_OPT': '0'})
        assert cfg['mpi'] == 'full'
        assert cfg['profiling'] == 'advanced'
        assert cfg['opt'] is False

    def test_env_seeding_validates(self):
        with pytest.raises(ValueError):
            Configuration(environ={'REPRO_PROFILING': 'noisy'})

    def test_mpi_boolean_forms(self):
        cfg = Configuration(environ={})
        cfg['mpi'] = True
        assert cfg['mpi'] == 'basic'
        cfg['mpi'] = False
        assert cfg['mpi'] is False

    def test_delete_resets_to_default(self):
        configuration['profiling'] = 'advanced'
        del configuration['profiling']
        assert configuration['profiling'] == 'basic'

    def test_operator_honours_configured_mpi(self):
        configuration['mpi'] = 'diagonal'

        def job(comm):
            op, _ = _diffusion_op(Grid(shape=(16, 16), comm=comm))
            return op.mpi_mode

        assert all(m == 'diagonal' for m in run_parallel(job, 4))


class TestPrimitives:
    def test_timer_accumulates(self):
        t = Timer()
        t0 = t.now()
        t.add('s', t0, 0)
        t.add('s', t0, 1)
        assert t.ncalls('s') == 2
        assert t.total('s') > 0
        t.reset()
        assert t.ncalls('s') == 0 and t.total('s') == 0.0

    def test_timer_traces_only_when_advanced(self):
        t = Timer(advanced=False)
        t.add('s', t.now(), 0)
        assert t.traces == []
        t = Timer(advanced=True)
        t.add('s', t.now(), 5)
        assert len(t.traces) == 1 and t.traces[0][0] == 5

    def test_rank_stats(self):
        st = RankStats([1.0, 3.0, 2.0])
        assert st.min == 1.0 and st.max == 3.0
        assert st.avg == pytest.approx(2.0)
        assert st.imbalance == pytest.approx(0.5)

    def test_profiler_rejects_bad_level(self):
        with pytest.raises(ValueError, match='unknown profiling level'):
            Profiler('verbose')


class TestCLIProfile:
    def test_cli_profile_prints_section_table(self, capsys):
        from repro.cli import main
        main(['acoustic', '-d', '24', '24', '--tn', '20', '-so', '2',
              '--nbl', '4', '--profile'])
        out = capsys.readouterr().out
        assert 'per-section performance' in out
        assert 'section0' in out

    def test_cli_profile_advanced_writes_json(self, capsys, tmp_path):
        from repro.cli import main
        from repro.perfmodel.report import load_profile_json
        path = tmp_path / 'prof.json'
        main(['acoustic', '-d', '24', '24', '--tn', '20', '-so', '2',
              '--nbl', '4', '--ranks', '2', '--mpi', 'basic',
              '--profile', 'advanced', '--profile-out', str(path)])
        out = capsys.readouterr().out
        assert 'haloupdate0' in out
        profile = load_profile_json(str(path))
        assert profile['nranks'] == 2
        assert any(n.startswith('halo') for n in profile['sections'])
        assert len(profile['traces']) > 0

    def test_cli_profile_restores_configuration(self, capsys):
        from repro.cli import main
        before = configuration['profiling']
        main(['acoustic', '-d', '24', '24', '--tn', '10', '-so', '2',
              '--nbl', '4', '--profile', 'advanced', '--profile-out', ''])
        assert configuration['profiling'] == before


class TestCCode:
    def test_ccode_struct_profiler_and_sections(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)),
                              profiling='basic')
        c = op.ccode
        assert 'struct profiler' in c
        assert 'double section0;' in c
        assert 'START(section0)' in c
        assert 'STOP(section0,timers)' in c

    def test_ccode_off_has_no_profiler(self):
        op, _ = _diffusion_op(Grid(shape=(8, 8), extent=(2., 2.)),
                              profiling='off')
        c = op.ccode
        assert 'struct profiler' not in c
        assert 'START(' not in c
