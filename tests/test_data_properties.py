"""Property-based tests: distributed Data must behave exactly like a
plain NumPy array under global indexing, for arbitrary slices and rank
counts — the 'logically centralized' contract of Section III-b."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import Data, DimSpec, Distributor, run_parallel

SHAPE = (9, 7)


@st.composite
def global_slices(draw, size):
    """Random well-formed slices (positive steps) over [0, size)."""
    start = draw(st.one_of(st.none(), st.integers(-size, size - 1)))
    stop = draw(st.one_of(st.none(), st.integers(-size, size)))
    step = draw(st.one_of(st.none(), st.integers(1, 3)))
    return slice(start, stop, step)


@st.composite
def keys(draw):
    out = []
    for size in SHAPE:
        if draw(st.booleans()):
            out.append(draw(global_slices(size)))
        else:
            out.append(draw(st.integers(0, size - 1)))
    return tuple(out)


def _reference_setitem(key, value):
    ref = np.zeros(SHAPE, dtype=np.float32)
    ref[key] = value
    return ref


def _distributed_setitem(ranks, key, value):
    def job(comm):
        dist = Distributor(SHAPE, comm=comm)
        d = Data([DimSpec(n, dist_index=i, halo=(1, 1))
                  for i, n in enumerate(SHAPE)], dist)
        d[key] = value
        return d.gather()

    return run_parallel(job, ranks)[0]


@given(keys(), st.floats(-10, 10, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_scalar_setitem_matches_numpy_serial(key, value):
    ref = _reference_setitem(key, np.float32(value))
    got = _distributed_setitem(1, key, np.float32(value))
    assert np.array_equal(got, ref)


@given(keys(), st.floats(-10, 10, allow_nan=False))
@settings(max_examples=25, deadline=None)
def test_scalar_setitem_matches_numpy_4ranks(key, value):
    ref = _reference_setitem(key, np.float32(value))
    got = _distributed_setitem(4, key, np.float32(value))
    assert np.array_equal(got, ref)


@given(keys(), st.floats(-10, 10, allow_nan=False))
@settings(max_examples=15, deadline=None)
def test_scalar_setitem_matches_numpy_3ranks(key, value):
    ref = _reference_setitem(key, np.float32(value))
    got = _distributed_setitem(3, key, np.float32(value))
    assert np.array_equal(got, ref)


@given(st.tuples(global_slices(SHAPE[0]), global_slices(SHAPE[1])))
@settings(max_examples=25, deadline=None)
def test_array_setitem_matches_numpy_4ranks(key):
    """Assigning a global-shaped array: each rank takes its slab."""
    rng = np.random.default_rng(0)
    sel_shape = np.zeros(SHAPE)[key].shape
    value = rng.uniform(-1, 1, size=sel_shape).astype(np.float32)
    ref = np.zeros(SHAPE, dtype=np.float32)
    ref[key] = value
    got = _distributed_setitem(4, key, value)
    assert np.array_equal(got, ref)


@given(st.tuples(global_slices(SHAPE[0]), global_slices(SHAPE[1])))
@settings(max_examples=25, deadline=None)
def test_getitem_pieces_reassemble(key):
    """The rank-local views of a read, concatenated, hold exactly the
    global selection's elements."""
    glob = np.arange(np.prod(SHAPE), dtype=np.float32).reshape(SHAPE)

    def job(comm):
        dist = Distributor(SHAPE, comm=comm)
        d = Data([DimSpec(n, dist_index=i, halo=(1, 1))
                  for i, n in enumerate(SHAPE)], dist)
        d[...] = glob
        return np.asarray(d[key]).ravel()

    pieces = run_parallel(job, 4)
    combined = np.sort(np.concatenate(pieces))
    expected = np.sort(glob[key].ravel())
    assert np.array_equal(combined, expected)
