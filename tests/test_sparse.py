"""Tests for sparse operations: injection and interpolation semantics."""

import numpy as np
import pytest

from repro import (Eq, Function, Grid, Operator, SparseTimeFunction,
                   TimeFunction)
from repro.mpi import run_parallel


def _grid(comm=None):
    return Grid(shape=(8, 8), extent=(7.0, 7.0), comm=comm)


class TestInjection:
    def test_on_grid_point_injection(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=1, nt=3,
                                 coordinates=np.array([[3.0, 4.0]]))
        src.data[:] = 1.0
        op = Operator([src.inject(field=u.forward, expr=src)])
        op.apply(time_M=0)
        # exactly the grid point (3, 4) receives weight 1
        data = np.array(u.data[1])
        assert data[3, 4] == pytest.approx(1.0)
        assert data.sum() == pytest.approx(1.0)

    def test_midcell_injection_weights(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=1, nt=2,
                                 coordinates=np.array([[2.5, 3.5]]))
        src.data[:] = 2.0
        op = Operator([src.inject(field=u.forward, expr=src)])
        op.apply(time_M=0)
        data = np.array(u.data[1])
        for i in (2, 3):
            for j in (3, 4):
                assert data[i, j] == pytest.approx(0.5)
        assert data.sum() == pytest.approx(2.0)

    def test_injection_scaled_by_grid_function(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        m = Function(name='m', grid=grid, space_order=2)
        m.data[:, :] = 4.0
        src = SparseTimeFunction('src', grid, npoint=1, nt=2,
                                 coordinates=np.array([[3.0, 3.0]]))
        src.data[:] = 8.0
        op = Operator([src.inject(field=u.forward, expr=src / m)])
        op.apply(time_M=0)
        assert np.array(u.data[1])[3, 3] == pytest.approx(2.0)

    def test_time_varying_signature(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=1, nt=4,
                                 coordinates=np.array([[3.0, 3.0]]))
        src.data[:, 0] = [1.0, 2.0, 3.0, 4.0]
        op = Operator([src.inject(field=u.forward, expr=src)])
        op.apply(time_M=0)
        first = float(np.array(u.data[1])[3, 3])
        op.apply(time_m=1, time_M=1)
        second = float(np.array(u.data[0])[3, 3])
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_multiple_points(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=2, nt=2,
                                 coordinates=np.array([[1.0, 1.0],
                                                       [6.0, 6.0]]))
        src.data[:] = 1.0
        op = Operator([src.inject(field=u.forward, expr=src)])
        op.apply(time_M=0)
        data = np.array(u.data[1])
        assert data[1, 1] == pytest.approx(1.0)
        assert data[6, 6] == pytest.approx(1.0)

    def test_distributed_injection_no_double_count(self):
        """A point shared by 4 ranks must inject exactly once per corner
        (Figure 3 semantics)."""
        def job(comm):
            grid = _grid(comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            src = SparseTimeFunction('src', grid, npoint=1, nt=2,
                                     coordinates=np.array([[3.5, 3.5]]))
            src.data[:] = 4.0
            op = Operator([src.inject(field=u.forward, expr=src)],
                          mpi='basic')
            op.apply(time_M=0)
            return u.data.gather()[1]

        out = run_parallel(job, 4)
        serial_grid = _grid()
        assert out[0].sum() == pytest.approx(4.0)
        for i in (3, 4):
            for j in (3, 4):
                assert out[0][i, j] == pytest.approx(1.0)


class TestInterpolation:
    def test_on_grid_interpolation(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0, :, :] = np.arange(64, dtype=np.float32).reshape(8, 8)
        rec = SparseTimeFunction('rec', grid, npoint=1, nt=1,
                                 coordinates=np.array([[2.0, 5.0]]))
        op = Operator([rec.interpolate(expr=u)])
        op.apply(time_M=0)
        assert rec.data[0, 0] == pytest.approx(21.0)

    def test_midcell_interpolation_is_average(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0, :, :] = np.arange(64, dtype=np.float32).reshape(8, 8)
        rec = SparseTimeFunction('rec', grid, npoint=1, nt=1,
                                 coordinates=np.array([[2.5, 5.5]]))
        op = Operator([rec.interpolate(expr=u)])
        op.apply(time_M=0)
        glob = np.arange(64.0).reshape(8, 8)
        expected = glob[2:4, 5:7].mean()
        assert rec.data[0, 0] == pytest.approx(expected)

    def test_interpolate_expression(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        u.data[0, :, :] = 2.0
        v.data[0, :, :] = 3.0
        rec = SparseTimeFunction('rec', grid, npoint=1, nt=1,
                                 coordinates=np.array([[4.0, 4.0]]))
        op = Operator([rec.interpolate(expr=u + v)])
        op.apply(time_M=0)
        assert rec.data[0, 0] == pytest.approx(5.0)

    def test_distributed_interpolation_matches_serial(self):
        def run(comm=None):
            grid = _grid(comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            u.data[0, :, :] = np.arange(64, dtype=np.float32).reshape(8, 8)
            rec = SparseTimeFunction(
                'rec', grid, npoint=3, nt=1,
                coordinates=np.array([[3.5, 3.5], [1.2, 6.3], [0.0, 0.0]]))
            op = Operator([rec.interpolate(expr=u)],
                          mpi='basic' if comm else None)
            op.apply(time_M=0)
            return rec.data.copy()

        serial = run()
        out = run_parallel(lambda c: run(c), 4)
        for r in out:
            assert np.allclose(r, serial, rtol=1e-6)

    def test_inject_then_record_roundtrip(self):
        grid = _grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        src = SparseTimeFunction('src', grid, npoint=1, nt=2,
                                 coordinates=np.array([[3.0, 3.0]]))
        rec = SparseTimeFunction('rec', grid, npoint=1, nt=2,
                                 coordinates=np.array([[3.0, 3.0]]))
        src.data[:] = 5.0
        op = Operator([src.inject(field=u.forward, expr=src),
                       rec.interpolate(expr=u.forward)])
        op.apply(time_M=0)
        assert rec.data[0, 0] == pytest.approx(5.0)
