"""Tests for finite-difference weight generation (Fornberg)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolics import fd_weights, fornberg_weights, sample_offsets


class TestClassicalTables:
    """Weights must reproduce the standard central-difference tables."""

    def test_d1_order2(self):
        assert fornberg_weights(1, [-1, 0, 1]) == [
            Fraction(-1, 2), Fraction(0), Fraction(1, 2)]

    def test_d2_order2(self):
        assert fornberg_weights(2, [-1, 0, 1]) == [
            Fraction(1), Fraction(-2), Fraction(1)]

    def test_d1_order4(self):
        assert fornberg_weights(1, [-2, -1, 0, 1, 2]) == [
            Fraction(1, 12), Fraction(-2, 3), Fraction(0),
            Fraction(2, 3), Fraction(-1, 12)]

    def test_d2_order4(self):
        assert fornberg_weights(2, [-2, -1, 0, 1, 2]) == [
            Fraction(-1, 12), Fraction(4, 3), Fraction(-5, 2),
            Fraction(4, 3), Fraction(-1, 12)]

    def test_d2_order8_center(self):
        w = fornberg_weights(2, range(-4, 5))
        assert w[4] == Fraction(-205, 72)
        assert w[0] == w[8] == Fraction(-1, 560)

    def test_d1_order8_antisymmetric(self):
        w = fornberg_weights(1, range(-4, 5))
        assert w[8] == Fraction(-1, 280)
        for i in range(9):
            assert w[i] == -w[8 - i]

    def test_forward_d1(self):
        assert fornberg_weights(1, [0, 1]) == [Fraction(-1), Fraction(1)]

    def test_backward_d1(self):
        assert fornberg_weights(1, [-1, 0]) == [Fraction(-1), Fraction(1)]

    def test_interpolation_weights(self):
        # order 0 = interpolation: at x0=1/2 between 0 and 1
        w = fornberg_weights(0, [0, 1], x0=Fraction(1, 2))
        assert w == [Fraction(1, 2), Fraction(1, 2)]

    def test_staggered_d1_order4(self):
        offs, w = fd_weights(1, 4, stagger=Fraction(1, 2))
        assert offs == [Fraction(-3, 2), Fraction(-1, 2),
                        Fraction(1, 2), Fraction(3, 2)]
        assert w == [Fraction(1, 24), Fraction(-9, 8),
                     Fraction(9, 8), Fraction(-1, 24)]

    def test_staggered_d1_order2(self):
        offs, w = fd_weights(1, 2, stagger=Fraction(1, 2))
        assert w == [Fraction(-1), Fraction(1)]


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fornberg_weights(2, [0, 1])

    def test_duplicate_offsets(self):
        with pytest.raises(ValueError):
            fornberg_weights(1, [0, 0, 1])

    def test_negative_order(self):
        with pytest.raises(ValueError):
            fornberg_weights(-1, [0, 1])

    def test_odd_fd_order_rejected(self):
        with pytest.raises(ValueError):
            fd_weights(1, 3)

    def test_bad_stagger_rejected(self):
        with pytest.raises(ValueError):
            sample_offsets(1, 2, stagger=Fraction(1, 3))


class TestStructuralInvariants:
    @pytest.mark.parametrize('so', [2, 4, 8, 12, 16])
    def test_derivative_weights_sum_to_zero(self, so):
        """Any derivative of a constant is zero."""
        for d in (1, 2):
            _, w = fd_weights(d, so)
            assert sum(w) == 0

    @pytest.mark.parametrize('so', [2, 4, 8, 16])
    def test_even_derivative_weights_symmetric(self, so):
        _, w = fd_weights(2, so)
        assert w == w[::-1]

    @pytest.mark.parametrize('so', [2, 4, 8, 16])
    def test_stencil_point_count(self, so):
        offs, _ = fd_weights(2, so)
        assert len(offs) == so + 1

    @pytest.mark.parametrize('so', [2, 4, 8])
    def test_staggered_point_count(self, so):
        offs, _ = fd_weights(1, so, stagger=Fraction(1, 2))
        assert len(offs) == so

    def test_staggered_offsets_are_half_integers(self):
        offs, _ = fd_weights(1, 8, stagger=Fraction(1, 2))
        for o in offs:
            assert o.denominator == 2


class TestExactnessOnPolynomials:
    """An order-p scheme must differentiate polynomials of degree <= p
    (plus the derivative order) exactly — the defining property."""

    @pytest.mark.parametrize('so', [2, 4, 8])
    @pytest.mark.parametrize('d', [1, 2])
    def test_exactness(self, so, d):
        offs, w = fd_weights(d, so)
        for degree in range(so + d):
            # exact derivative of x^degree at 0
            if degree == d:
                import math
                expected = Fraction(math.factorial(d))
            else:
                expected = Fraction(0)
            approx = sum(wi * (oi ** degree) for wi, oi in zip(w, offs))
            assert approx == expected, (so, d, degree)

    @pytest.mark.parametrize('so', [2, 4, 8])
    def test_staggered_exactness(self, so):
        offs, w = fd_weights(1, so, stagger=Fraction(1, 2))
        for degree in range(so + 1):
            expected = Fraction(1) if degree == 1 else Fraction(0)
            approx = sum(wi * (oi ** degree) for wi, oi in zip(w, offs))
            assert approx == expected


@given(st.integers(1, 3),
       st.lists(st.integers(-6, 6), min_size=5, max_size=9, unique=True))
@settings(max_examples=60, deadline=None)
def test_fornberg_exact_on_polynomials_any_grid(order, offsets):
    """Property: Fornberg weights on arbitrary distinct offsets are exact
    for polynomials of degree < len(offsets)."""
    import math
    w = fornberg_weights(order, offsets)
    for degree in range(len(offsets)):
        expected = Fraction(math.factorial(order)) if degree == order \
            else Fraction(0)
        if degree < order:
            expected = Fraction(0)
        approx = sum(wi * (Fraction(oi) ** degree)
                     for wi, oi in zip(w, offsets))
        assert approx == expected


@given(st.integers(2, 8).filter(lambda n: n % 2 == 0))
@settings(max_examples=20, deadline=None)
def test_convergence_on_sine(so):
    """Numerical check: the order-so first derivative of sin at 0
    converges at the design order."""
    errs = []
    for h in (0.1, 0.05):
        offs, w = fd_weights(1, so)
        approx = sum(float(wi) * np.sin(float(oi) * h)
                     for wi, oi in zip(w, offs)) / h
        errs.append(abs(approx - 1.0))
    if errs[1] > 1e-13:  # above rounding floor
        rate = np.log2(errs[0] / errs[1])
        assert rate > so - 0.75
