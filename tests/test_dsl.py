"""Tests for the user-facing DSL objects."""

import numpy as np
import pytest
from fractions import Fraction

from repro import (Constant, Eq, Function, Grid, TimeFunction,
                   SparseTimeFunction, TensorTimeFunction,
                   VectorTimeFunction, div, grad, tr)
from repro.dsl.dimensions import (SpaceDimension, SteppingDimension,
                                  TimeDimension)
from repro.symbolics import Derivative, indexeds, preorder


class TestGrid:
    def test_dimensions_named(self):
        grid = Grid(shape=(4, 5, 6))
        assert [d.name for d in grid.dimensions] == ['x', 'y', 'z']

    def test_spacing_values(self):
        grid = Grid(shape=(5, 5), extent=(2.0, 4.0))
        assert grid.spacing == (0.5, 1.0)

    def test_spacing_map_keys(self):
        grid = Grid(shape=(4, 4))
        names = {s.name for s in grid.spacing_map}
        assert names == {'h_x', 'h_y'}

    def test_default_extent_unit_spacing(self):
        grid = Grid(shape=(11, 11))
        assert grid.spacing == (1.0, 1.0)

    def test_time_dimensions(self):
        grid = Grid(shape=(4, 4))
        assert isinstance(grid.time_dim, TimeDimension)
        assert isinstance(grid.stepping_dim, SteppingDimension)
        assert grid.stepping_dim.parent is grid.time_dim
        assert grid.time_dim.spacing.name == 'dt'

    def test_dim_limits(self):
        with pytest.raises(ValueError):
            Grid(shape=(4,) * 4)

    def test_serial_topology(self):
        grid = Grid(shape=(8, 8))
        assert grid.topology == (1, 1)
        assert not grid.is_distributed

    def test_origin_local_serial(self):
        grid = Grid(shape=(5, 5), extent=(4.0, 4.0), origin=(10.0, 20.0))
        assert grid.origin_local == (10.0, 20.0)


class TestFunctions:
    @pytest.fixture
    def grid(self):
        return Grid(shape=(8, 8))

    def test_halo_equals_space_order(self, grid):
        """The paper: 'an SDO of 2 [...] halo of size 2'."""
        u = Function(name='u', grid=grid, space_order=2)
        assert u.halo == ((2, 2), (2, 2))

    def test_data_shapes(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2, time_order=2)
        assert u.data.shape_global == (3, 8, 8)
        assert u.data_with_halo.shape == (3, 12, 12)

    def test_lazy_allocation(self, grid):
        u = Function(name='u', grid=grid, space_order=2)
        assert not u.is_allocated
        u.data
        assert u.is_allocated

    def test_data_zero_initialized(self, grid):
        u = Function(name='u', grid=grid, space_order=2)
        assert (u.data_with_halo == 0).all()

    def test_nbuffers(self, grid):
        assert TimeFunction(name='a', grid=grid, time_order=1).nbuffers == 2
        assert TimeFunction(name='b', grid=grid, time_order=2).nbuffers == 3

    def test_forward_backward_indices(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        t = grid.stepping_dim
        assert str(u.forward.indices[0]) == '1 + t'
        assert str(u.backward.indices[0]) == '-1 + t'

    def test_derivative_sugar(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=4)
        x, y = grid.dimensions
        assert isinstance(u.dx, Derivative)
        assert u.dx.derivs == ((x, 1),)
        assert u.dy2.derivs == ((y, 2),)
        assert u.dx.fd_order == 4

    def test_unknown_attribute_raises(self, grid):
        u = TimeFunction(name='u', grid=grid)
        with pytest.raises(AttributeError):
            u.dq
        with pytest.raises(AttributeError):
            u.nonexistent

    def test_laplace_is_sum_of_second_derivatives(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        lap = u.laplace
        derivs = [n for n in preorder(lap) if n.is_Derivative]
        orders = sorted(d.derivs[0][1] for d in derivs)
        assert orders == [2, 2]

    def test_dt2_requires_time_order_2(self, grid):
        u = TimeFunction(name='u', grid=grid, time_order=1)
        with pytest.raises(ValueError):
            u.dt2

    def test_staggering_map(self, grid):
        x, y = grid.dimensions
        v = TimeFunction(name='v', grid=grid, staggered=(x,))
        assert v.stagger_map == {x: Fraction(1, 2)}

    def test_constant(self):
        c = Constant('c0', value=2.5)
        assert c.name == 'c0' and c.value == 2.5

    def test_functions_usable_in_arithmetic(self, grid):
        u = Function(name='u', grid=grid)
        m = Function(name='m', grid=grid)
        e = 2 * u + m
        assert u in preorder(e) and m in preorder(e)

    def test_invalid_space_order(self, grid):
        with pytest.raises(ValueError):
            Function(name='u', grid=grid, space_order=-1)


class TestTensorAlgebra:
    @pytest.fixture
    def grid(self):
        return Grid(shape=(8, 8))

    def test_vector_components_staggered(self, grid):
        v = VectorTimeFunction(name='v', grid=grid, space_order=4)
        x, y = grid.dimensions
        assert v[0].staggered == (x,)
        assert v[1].staggered == (y,)
        assert v[0].name == 'v_x'

    def test_tensor_components(self, grid):
        tau = TensorTimeFunction(name='tau', grid=grid, space_order=4)
        x, y = grid.dimensions
        assert tau[0, 0].staggered == ()
        assert set(tau[0, 1].staggered) == {x, y}
        assert tau[1, 0] is tau[0, 1]  # symmetric storage

    def test_tensor_3d_unique_components(self):
        grid = Grid(shape=(4, 4, 4))
        tau = TensorTimeFunction(name='tau', grid=grid)
        assert len(tau.functions) == 6

    def test_vector_arithmetic(self, grid):
        v = VectorTimeFunction(name='v', grid=grid)
        w = v + v
        assert len(w) == 2
        assert w[0] == 2 * v[0]

    def test_div_of_vector_is_scalar(self, grid):
        v = VectorTimeFunction(name='v', grid=grid, space_order=4)
        e = div(v)
        derivs = [n for n in preorder(e) if n.is_Derivative]
        assert len(derivs) == 2

    def test_div_of_tensor_is_vector(self, grid):
        tau = TensorTimeFunction(name='tau', grid=grid, space_order=4)
        dv = div(tau)
        assert len(dv) == 2

    def test_grad_of_scalar(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=4)
        g = grad(u)
        assert len(g) == 2

    def test_trace(self, grid):
        tau = TensorTimeFunction(name='tau', grid=grid)
        t = tr(tau)
        assert tau[0, 0] in preorder(t) and tau[1, 1] in preorder(t)

    def test_vector_eq_flattens(self, grid):
        v = VectorTimeFunction(name='v', grid=grid)
        eqs = Eq(v.forward, v + 1)
        assert isinstance(eqs, list) and len(eqs) == 2

    def test_tensor_eq_flattens(self, grid):
        tau = TensorTimeFunction(name='tau', grid=grid)
        eqs = Eq(tau.forward, tau * 2)
        assert isinstance(eqs, list) and len(eqs) == 3

    def test_vector_scalar_multiplication(self, grid):
        v = VectorTimeFunction(name='v', grid=grid)
        m = Function(name='m', grid=grid)
        w = m * v
        assert w[0] == m * v[0]

    def test_vector_tensor_product_rejected(self, grid):
        v = VectorTimeFunction(name='v', grid=grid)
        tau = TensorTimeFunction(name='tau', grid=grid)
        with pytest.raises(TypeError):
            v * tau


class TestSparseFunctions:
    def test_coordinates_validation(self):
        grid = Grid(shape=(8, 8))
        with pytest.raises(ValueError):
            SparseTimeFunction('s', grid, npoint=2, nt=10,
                               coordinates=np.zeros((3, 2)))

    def test_data_shape(self):
        grid = Grid(shape=(8, 8))
        s = SparseTimeFunction('s', grid, npoint=3, nt=10,
                               coordinates=np.ones((3, 2)))
        assert s.data.shape == (10, 3)

    def test_inject_interpolate_records(self):
        grid = Grid(shape=(8, 8))
        u = TimeFunction(name='u', grid=grid)
        s = SparseTimeFunction('s', grid, npoint=1, nt=5,
                               coordinates=np.array([[3.5, 3.5]]))
        inj = s.inject(field=u.forward, expr=s * 2)
        interp = s.interpolate(expr=u)
        assert inj.sparse is s and interp.sparse is s


class TestEquations:
    def test_eq_repr(self):
        grid = Grid(shape=(4, 4))
        u = TimeFunction(name='u', grid=grid)
        eq = Eq(u.forward, u + 1)
        assert 'u' in repr(eq)

    def test_target_function(self):
        grid = Grid(shape=(4, 4))
        u = TimeFunction(name='u', grid=grid)
        assert Eq(u.forward, 0).target_function() is u
        assert Eq(u, 0).target_function() is u

    def test_lower_produces_indexed(self):
        grid = Grid(shape=(4, 4))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        lhs, rhs = Eq(u.forward, u.laplace).lower()
        assert lhs.is_Indexed
        assert not any(n.is_Derivative for n in preorder(rhs))
        assert all(a.is_Indexed for a in indexeds(rhs))

    def test_mismatched_vector_eq_rejected(self):
        grid = Grid(shape=(4, 4))
        v = VectorTimeFunction(name='v', grid=grid)
        u = TimeFunction(name='u', grid=grid)
        with pytest.raises(TypeError):
            Eq(v.forward, u)
