"""Exact reproduction of the paper's Listings 1-3, 6/11 (code shapes).

Listing 1: the diffusion operator definition.
Listing 2: the rank-local views right after the global slice-write.
Listing 3: the rank-local views after applying the Operator.
Listing 11: the generated C for Listing 1.

Note: the paper's Listing 1 elides the time-buffer axis of ``u.data``
(a TimeFunction with time_order=1 stores 2 buffers); the write lands in
buffer 0, and Listing 3 shows buffer 0 after ``apply(time_M=1)`` (two
timesteps, so t=2 lives in buffer ``2 % 2 == 0``).
"""

import numpy as np
import pytest

from repro import Eq, Grid, Operator, TimeFunction, solve
from repro.mpi import run_parallel

#: Listing 2 per-rank views (4 ranks over the 4x4 grid)
LISTING2 = {
    0: [[0.0, 0.0], [0.0, 1.0]],
    1: [[0.0, 0.0], [1.0, 0.0]],
    2: [[0.0, 1.0], [0.0, 0.0]],
    3: [[1.0, 0.0], [0.0, 0.0]],
}

#: Listing 3 per-rank views after one Operator application
LISTING3 = {
    0: [[0.50, -0.25], [-0.25, 0.50]],
    1: [[-0.25, 0.50], [0.50, -0.25]],
    2: [[-0.25, 0.50], [0.50, -0.25]],
    3: [[0.50, -0.25], [-0.25, 0.50]],
}


def _listing1(comm=None, mpi=None):
    nx, ny = 4, 4
    nu = .5
    dx, dy = 2. / (nx - 1), 2. / (ny - 1)
    sigma = .25
    dt = sigma * dx * dy / nu

    grid = Grid(shape=(nx, ny), extent=(2., 2.), comm=comm)
    u = TimeFunction(name="u", grid=grid, space_order=2)
    u.data[0, 1:-1, 1:-1] = 1
    after_write = np.array(u.data[0]).copy()
    eq = Eq(u.dt, u.laplace)
    stencil = solve(eq, u.forward)
    op = Operator([Eq(u.forward, stencil)], mpi=mpi)
    op.apply(time_M=1, dt=dt)
    return after_write, np.array(u.data[0]).copy()


class TestListings123:
    def test_listing2_rank_local_views(self):
        def job(comm):
            return _listing1(comm, mpi='basic')[0]

        out = run_parallel(job, 4)
        for rank, expected in LISTING2.items():
            assert np.allclose(out[rank], expected), rank

    def test_listing3_rank_local_views(self):
        def job(comm):
            return _listing1(comm, mpi='basic')[1]

        out = run_parallel(job, 4)
        for rank, expected in LISTING3.items():
            assert np.allclose(out[rank], expected), rank

    def test_listing3_serial_global(self):
        _, result = _listing1()
        expected = np.array([[0.50, -0.25, -0.25, 0.50],
                             [-0.25, 0.50, 0.50, -0.25],
                             [-0.25, 0.50, 0.50, -0.25],
                             [0.50, -0.25, -0.25, 0.50]])
        assert np.allclose(result, expected)

    @pytest.mark.parametrize('mode', ['diagonal', 'full'])
    def test_listing3_other_patterns(self, mode):
        def job(comm):
            return _listing1(comm, mpi=mode)[1]

        out = run_parallel(job, 4)
        for rank, expected in LISTING3.items():
            assert np.allclose(out[rank], expected), (mode, rank)


class TestListing11:
    """The generated C for the diffusion operator (structure check)."""

    @pytest.fixture
    def ccode(self):
        grid = Grid(shape=(4, 4), extent=(2., 2.))
        u = TimeFunction(name="u", grid=grid, space_order=2)
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))])
        return op.ccode

    def test_scalar_preamble(self, ccode):
        assert 'float r0 = 1.0F/dt;' in ccode
        assert 'float r1 = 1.0F/(h_x*h_x);' in ccode
        assert 'float r2 = 1.0F/(h_y*h_y);' in ccode

    def test_modulo_time_buffers(self, ccode):
        assert 't0 = (time + 0)%(2)' in ccode
        assert 't1 = (time + 1)%(2)' in ccode

    def test_access_alignment_offset(self, ccode):
        """SDO 2 gives halo 2: accesses are shifted by +2 (Section
        III-d)."""
        assert 'u[t1][2 + x][2 + y]' in ccode
        assert 'u[t0][1 + x][2 + y]' in ccode
        assert 'u[t0][3 + x][2 + y]' in ccode

    def test_cse_temporary(self, ccode):
        assert 'float r3 = ' in ccode
        assert '-2' in ccode

    def test_openmp_pragmas(self, ccode):
        assert '#pragma omp parallel for' in ccode
        assert '#pragma omp simd aligned(u:32)' in ccode

    def test_loop_bounds(self, ccode):
        assert 'for (int x = x_m; x <= x_M; x += 1)' in ccode
        assert 'for (int y = y_m; y <= y_M; y += 1)' in ccode


class TestListing6MPIStructure:
    """The MPI-enabled IET structure (HaloUpdate placement, Listing 6)."""

    def _mpi_ccode(self, mode):
        def job(comm):
            grid = Grid(shape=(8, 8), comm=comm)
            u = TimeFunction(name="u", grid=grid, space_order=2)
            eq = Eq(u.dt, u.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mode)
            return op.ccode

        return run_parallel(job, 4)[0]

    def test_basic_halo_before_compute(self):
        c = self._mpi_ccode('basic')
        assert 'haloupdate0_u' in c
        assert c.index('haloupdate0_u(u_vec') < c.index('u[t1]')
        assert 'MPI_Sendrecv' in c
        assert 'multi-step synchronous face exchanges' in c

    def test_diagonal_single_step(self):
        c = self._mpi_ccode('diagonal')
        assert 'MPI_Isend' in c and 'MPI_Irecv' in c
        assert 'single-step neighborhood exchange incl. corners' in c
        assert '8 messages in 2D' in c

    def test_full_overlap_structure(self):
        c = self._mpi_ccode('full')
        assert 'halobegin0_u' in c
        assert 'MPI_Waitall' in c
        assert '/* CORE region */' in c
        assert '/* REMAINDER region */' in c
        # order: begin < CORE < Waitall < REMAINDER
        i_begin = c.index('halobegin0_u(u_vec')
        i_core = c.index('/* CORE region */')
        i_wait = c.index('MPI_Waitall', i_begin)
        i_rem = c.index('/* REMAINDER region */')
        assert i_begin < i_core < i_wait < i_rem
