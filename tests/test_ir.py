"""Tests for the compiler IRs: lowering, clustering, halo detection,
schedule passes (drop/hoist/overlap)."""

import pytest

from repro import Eq, Function, Grid, TimeFunction, solve
from repro.ir import (Cluster, build_schedule, clusterize, parse_access,
                      parse_index)
from repro.ir.lowered import LoweredEq
from repro.symbolics import Symbol


@pytest.fixture
def grid():
    return Grid(shape=(8, 8))


def _lower(eq):
    lhs, rhs = eq.lower()
    return LoweredEq(lhs, rhs)


class TestAccessParsing:
    def test_parse_index_plain(self, grid):
        x, y = grid.dimensions
        assert parse_index(x, x) == 0
        assert parse_index(x + 3, x) == 3
        assert parse_index(x - 2, x) == -2

    def test_parse_index_rejects_foreign(self, grid):
        x, y = grid.dimensions
        with pytest.raises(ValueError):
            parse_index(y + 1, x)
        with pytest.raises(ValueError):
            parse_index(2 * x, x)

    def test_parse_access(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        t = grid.stepping_dim
        x, y = grid.dimensions
        acc = parse_access(u.indexed(t + 1, x - 1, y + 2))
        assert acc.function is u
        assert acc.time_shift == 1
        assert acc.offsets == (-1, 2)

    def test_lowered_eq_reads_writes(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        leq = _lower(Eq(u.forward, solve(Eq(u.dt, u.laplace), u.forward)))
        assert leq.write.key == ('u', 1)
        read_keys = {r.key for r in leq.reads}
        assert ('u', 0) in read_keys


class TestClustering:
    def test_independent_eqs_merge(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        eqs = [_lower(Eq(u.forward, u.laplace)),
               _lower(Eq(v.forward, v.laplace))]
        clusters = clusterize(eqs)
        assert len(clusters) == 1

    def test_offset_flow_dependence_splits(self, grid):
        """Reading a just-written buffer at an offset forces a new
        cluster (needs a halo refresh in between) — the elastic case."""
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        x, _ = grid.dimensions
        eqs = [_lower(Eq(u.forward, u.laplace)),
               _lower(Eq(v.forward, Eq(v, u.forward.base.d(x, 1)
                                       ).rhs))]  # reads u at t+1, offsets
        # simpler: use derivative of u.forward explicitly
        from repro.symbolics import Derivative
        eqs[1] = _lower(Eq(v.forward, Derivative(u.forward, (x, 1),
                                                 fd_order=2)))
        clusters = clusterize(eqs)
        assert len(clusters) == 2

    def test_zero_offset_dependence_keeps_cluster(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        eqs = [_lower(Eq(u.forward, u + 1)),
               _lower(Eq(v.forward, u.forward))]
        clusters = clusterize(eqs)
        assert len(clusters) == 1


class TestHaloDetection:
    def _parallel_grid(self):
        # fake a distributed context by forcing a 2x1 topology on 2 ranks
        from repro.mpi import SimComm, SimWorld
        world = SimWorld(2)
        comm = SimComm(world, 0)
        return Grid(shape=(8, 8), comm=comm)

    def test_stencil_needs_halo(self):
        grid = self._parallel_grid()
        u = TimeFunction(name='u', grid=grid, space_order=4)
        cluster = clusterize([_lower(Eq(u.forward, u.laplace))])[0]
        reqs = cluster.halo_requirements()
        assert len(reqs) == 1
        req = reqs[0]
        assert req.key == ('u', 0)
        # laplacian of so=4 reads 2 points each side
        assert req.widths[0] == (2, 2)

    def test_width_from_accesses_not_allocation(self):
        grid = self._parallel_grid()
        u = TimeFunction(name='u', grid=grid, space_order=8)
        x, _ = grid.dimensions
        from repro.symbolics import Derivative
        d = Derivative(u, (x, 1), fd_order=2)  # narrow derivative
        cluster = clusterize([_lower(Eq(u.forward, d))])[0]
        req = cluster.halo_requirements()[0]
        assert req.widths[0] == (1, 1)
        assert u.halo[0] == (8, 8)  # allocation stays wide

    def test_undistributed_dim_not_exchanged(self):
        grid = self._parallel_grid()  # topology (2, 1)
        u = TimeFunction(name='u', grid=grid, space_order=2)
        cluster = clusterize([_lower(Eq(u.forward, u.laplace))])[0]
        req = cluster.halo_requirements()[0]
        assert req.widths[0] == (1, 1)
        assert req.widths[1] == (0, 0)

    def test_pointwise_needs_no_halo(self):
        grid = self._parallel_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        cluster = clusterize([_lower(Eq(u.forward, 2 * u))])[0]
        assert cluster.halo_requirements() == []

    def test_time_invariant_function_requirement(self):
        grid = self._parallel_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        m = Function(name='m', grid=grid, space_order=2)
        x, _ = grid.dimensions
        from repro.symbolics import Derivative
        cluster = clusterize([_lower(Eq(u.forward,
                                        Derivative(m, (x, 1), fd_order=2)
                                        + u))])[0]
        reqs = {r.key: r for r in cluster.halo_requirements()}
        assert ('m', None) in reqs


class TestSchedulePasses:
    def _dist_grid(self):
        from repro.mpi import SimComm, SimWorld
        world = SimWorld(4)
        return Grid(shape=(8, 8), comm=SimComm(world, 0))

    def test_serial_schedule_has_no_halo_steps(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        sched = build_schedule([Eq(u.forward, u.laplace)], mpi_mode='basic')
        assert not any(s.is_halo for s in sched.steps)
        assert sched.mpi_mode is None

    def test_basic_schedule_places_update_before_compute(self):
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        sched = build_schedule([Eq(u.forward, u.laplace)], mpi_mode='basic')
        kinds = [(s.is_halo, getattr(s, 'kind', None)) for s in sched.steps]
        assert kinds[0] == (True, 'update')
        assert sched.steps[1].is_compute

    def test_redundant_halo_dropped(self):
        """Two clusters reading the same clean buffer: one exchange."""
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        x, _ = grid.dimensions
        from repro.symbolics import Derivative
        # both read u at t with offsets; second cluster forced by writing
        # w then reading w.forward with offset
        eq1 = Eq(u.forward, u.laplace)
        eq2 = Eq(v.forward, Derivative(u.forward, (x, 1), fd_order=2))
        eq3 = Eq(u.forward, u.laplace)  # reads u[t] again, now re-dirty?
        sched = build_schedule([eq1, eq2], mpi_mode='basic')
        halo_keys = [e.key for s in sched.steps if s.is_halo
                     for e in s.exchanges]
        # u@t exchanged once; u@t+1 exchanged once before cluster 2
        assert halo_keys.count(('u', 0)) == 1
        assert halo_keys.count(('u', 1)) == 1

    def test_write_invalidates_clean_halo(self):
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        from repro.symbolics import Derivative
        x, _ = grid.dimensions
        # cluster1 reads u[t]; cluster2 writes u[t]... use u[t+1] pattern:
        eq1 = Eq(v.forward, Derivative(u, (x, 1), fd_order=2))
        eq2 = Eq(u.forward, Derivative(v.forward, (x, 1), fd_order=2))
        eq3 = Eq(v.forward, Derivative(u.forward, (x, 1), fd_order=2))
        sched = build_schedule([eq1, eq2, eq3], mpi_mode='basic')
        halo_keys = [e.key for s in sched.steps if s.is_halo
                     for e in s.exchanges]
        # w@t+1 written by eq1, read-with-offset by eq2 -> exchange;
        # w@t+1 re-written by eq3's... actually eq3 writes w again, so the
        # final count of exchanges of ('w', 1) is 1 (before eq2)
        assert halo_keys.count(('w', 1)) == 1
        assert halo_keys.count(('u', 1)) == 1

    def test_time_invariant_hoisted_to_preamble(self):
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        m = Function(name='m', grid=grid, space_order=2)
        from repro.symbolics import Derivative
        x, _ = grid.dimensions
        sched = build_schedule(
            [Eq(u.forward, Derivative(m, (x, 2), fd_order=2) + u.laplace)],
            mpi_mode='basic')
        pre_keys = [r.key for r in sched.preamble_halo]
        assert pre_keys == [('m', None)]
        inloop = [e.key for s in sched.steps if s.is_halo
                  for e in s.exchanges]
        assert ('m', None) not in inloop

    def test_full_mode_overlap_structure(self):
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        sched = build_schedule([Eq(u.forward, u.laplace)], mpi_mode='full')
        kinds = []
        for s in sched.steps:
            if s.is_halo:
                kinds.append(s.kind)
            elif s.is_compute:
                kinds.append(s.region)
        assert kinds == ['begin', 'core', 'wait', 'remainder']

    def test_full_mode_elastic_like_double_overlap(self):
        grid = self._dist_grid()
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        from repro.symbolics import Derivative
        x, _ = grid.dimensions
        eq1 = Eq(u.forward, Derivative(v, (x, 1), fd_order=2))
        eq2 = Eq(v.forward, Derivative(u.forward, (x, 1), fd_order=2))
        sched = build_schedule([eq1, eq2], mpi_mode='full')
        begins = sum(1 for s in sched.steps
                     if s.is_halo and s.kind == 'begin')
        assert begins == 2

    def test_flops_and_traffic_positive(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=4)
        sched = build_schedule(
            [Eq(u.forward, solve(Eq(u.dt, u.laplace), u.forward))])
        assert sched.flops_per_point() > 0
        assert sched.traffic_per_point() > 0

    def test_unknown_expression_rejected(self, grid):
        with pytest.raises(TypeError):
            build_schedule(['not an equation'])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_schedule([])

    def test_nested_lists_flattened(self, grid):
        u = TimeFunction(name='u', grid=grid, space_order=2)
        v = TimeFunction(name='w', grid=grid, space_order=2)
        sched = build_schedule([[Eq(u.forward, u + 1)],
                                [[Eq(v.forward, v + 1)]]])
        assert len(sched.clusters[0].eqs) == 2
