"""Tests for the simulated MPI layer: point-to-point semantics,
collectives, requests, topologies, failure handling."""

import numpy as np
import pytest

from repro.mpi import (ANY_SOURCE, ANY_TAG, PROC_NULL, RemoteRankError,
                       compute_dims, create_cart, neighborhood_offsets,
                       run_parallel, serial_comm)


class TestPointToPoint:
    def test_send_recv_object(self):
        def job(comm):
            if comm.rank == 0:
                comm.send({'a': 7}, 1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        assert run_parallel(job, 2)[1] == {'a': 7}

    def test_send_recv_numpy_buffer(self):
        def job(comm):
            if comm.rank == 0:
                comm.Send(np.arange(10, dtype='f4'), 1, tag=3)
                return None
            buf = np.empty(10, dtype='f4')
            comm.Recv(buf, source=0, tag=3)
            return buf

        out = run_parallel(job, 2)
        assert np.array_equal(out[1], np.arange(10, dtype='f4'))

    def test_payload_is_copied(self):
        """Buffered send: mutating the source after send must not affect
        the received message."""
        def job(comm):
            if comm.rank == 0:
                data = np.zeros(4)
                comm.send(data, 1, tag=0)
                data[:] = 99.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0, tag=0)

        assert np.array_equal(run_parallel(job, 2)[1], np.zeros(4))

    def test_tag_matching(self):
        def job(comm):
            if comm.rank == 0:
                comm.send('first', 1, tag=1)
                comm.send('second', 1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_parallel(job, 2)[1] == ('first', 'second')

    def test_any_source_any_tag(self):
        def job(comm):
            if comm.rank != 0:
                comm.send(comm.rank, 0, tag=comm.rank)
                return None
            got = sorted(comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                         for _ in range(comm.size - 1))
            return got

        assert run_parallel(job, 4)[0] == [1, 2, 3]

    def test_non_overtaking_per_pair(self):
        """Messages between the same (source, tag) pair arrive in order."""
        def job(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, 1, tag=7)
                return None
            return [comm.recv(source=0, tag=7) for _ in range(50)]

        assert run_parallel(job, 2)[1] == list(range(50))

    def test_proc_null_send_recv_are_noops(self):
        def job(comm):
            comm.send('x', PROC_NULL)
            return comm.recv(buf='fallback', source=PROC_NULL)

        assert run_parallel(job, 1)[0] == 'fallback'

    def test_sendrecv_ring(self):
        def job(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, right, sendtag=5,
                                 source=left, recvtag=5)

        out = run_parallel(job, 4)
        assert out == [3, 0, 1, 2]


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        def job(comm):
            if comm.rank == 0:
                req = comm.isend(42, 1)
                done, _ = req.test()
                req.wait()
                return done
            return comm.recv(source=0)

        out = run_parallel(job, 2)
        assert out[0] is True and out[1] == 42

    def test_irecv_wait(self):
        def job(comm):
            if comm.rank == 0:
                comm.send(np.ones(3), 1, tag=9)
                return None
            buf = np.empty(3)
            req = comm.irecv(buf=buf, source=0, tag=9)
            req.wait()
            return buf

        assert np.array_equal(run_parallel(job, 2)[1], np.ones(3))

    def test_irecv_test_polls(self):
        def job(comm):
            if comm.rank == 0:
                comm.barrier()
                comm.send('late', 1, tag=1)
                return None
            req = comm.irecv(source=0, tag=1)
            done, _ = req.test()
            early = done
            comm.barrier()
            value = req.wait()
            return early, value

        early, value = run_parallel(job, 2)[1]
        assert early is False and value == 'late'

    def test_waitall(self):
        from repro.mpi import Request

        def job(comm):
            if comm.rank == 0:
                for tag in range(5):
                    comm.send(tag, 1, tag=tag)
                return None
            reqs = [comm.irecv(source=0, tag=t) for t in range(5)]
            return Request.waitall(reqs)

        assert run_parallel(job, 2)[1] == list(range(5))


class TestCollectives:
    def test_barrier(self):
        def job(comm):
            comm.barrier()
            return True

        assert all(run_parallel(job, 4))

    def test_bcast(self):
        def job(comm):
            data = {'k': [1, 2]} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        out = run_parallel(job, 4)
        assert all(o == {'k': [1, 2]} for o in out)

    def test_gather(self):
        def job(comm):
            return comm.gather(comm.rank ** 2, root=0)

        out = run_parallel(job, 4)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_scatter(self):
        def job(comm):
            objs = [i * 10 for i in range(comm.size)] if comm.rank == 0 \
                else None
            return comm.scatter(objs, root=0)

        assert run_parallel(job, 4) == [0, 10, 20, 30]

    def test_allgather(self):
        def job(comm):
            return comm.allgather(comm.rank)

        out = run_parallel(job, 3)
        assert all(o == [0, 1, 2] for o in out)

    def test_allreduce_sum(self):
        def job(comm):
            return comm.allreduce(np.full(2, float(comm.rank)))

        out = run_parallel(job, 4)
        assert all(np.array_equal(o, [6.0, 6.0]) for o in out)

    def test_allreduce_max_min(self):
        def job(comm):
            return (comm.allreduce(comm.rank, op='max'),
                    comm.allreduce(comm.rank, op='min'))

        out = run_parallel(job, 4)
        assert all(o == (3, 0) for o in out)

    def test_reduce_callable_op(self):
        def job(comm):
            return comm.reduce(comm.rank + 1, op=lambda a, b: a * b, root=0)

        assert run_parallel(job, 4)[0] == 24

    def test_alltoall(self):
        def job(comm):
            objs = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.alltoall(objs)

        out = run_parallel(job, 3)
        for r, got in enumerate(out):
            assert got == [(src, r) for src in range(3)]

    def test_collectives_interleave_with_p2p(self):
        def job(comm):
            if comm.rank == 0:
                comm.send('user', 1, tag=0)
            total = comm.allreduce(1)
            extra = comm.recv(source=0, tag=0) if comm.rank == 1 else None
            return total, extra

        out = run_parallel(job, 2)
        assert out[0][0] == 2 and out[1] == (2, 'user')

    def test_dup_isolates_message_space(self):
        def job(comm):
            dup = comm.Dup()
            if comm.rank == 0:
                comm.send('world', 1, tag=4)
                dup.send('dup', 1, tag=4)
                return None
            first = dup.recv(source=0, tag=4)
            second = comm.recv(source=0, tag=4)
            return first, second

        assert run_parallel(job, 2)[1] == ('dup', 'world')


class TestFailures:
    def test_exception_propagates(self):
        def job(comm):
            if comm.rank == 1:
                raise RuntimeError('boom')
            comm.recv(source=1)  # would deadlock without failure wakeup

        with pytest.raises(RuntimeError, match='boom'):
            run_parallel(job, 2)

    def test_unmatched_recv_times_out(self):
        from repro.mpi.sim import SimWorld, SimComm

        world = SimWorld(1)
        comm = SimComm(world, 0)
        with pytest.raises(RemoteRankError):
            world.collect(0, comm._id, 0, 5, timeout=0.05)

    def test_invalid_world_size(self):
        from repro.mpi.sim import SimWorld
        with pytest.raises(ValueError):
            SimWorld(0)


class TestSerialComm:
    def test_self_messaging(self):
        comm = serial_comm()
        comm.send('hi', 0, tag=1)
        assert comm.recv(source=0, tag=1) == 'hi'

    def test_collectives_degenerate(self):
        comm = serial_comm()
        assert comm.allreduce(5) == 5
        assert comm.allgather('x') == ['x']
        comm.barrier()


class TestCartesian:
    def test_compute_dims_balanced(self):
        assert compute_dims(16, 3) == (4, 2, 2)
        assert compute_dims(8, 3) == (2, 2, 2)
        assert compute_dims(12, 2) == (4, 3)
        assert compute_dims(1, 3) == (1, 1, 1)
        assert compute_dims(7, 2) == (7, 1)

    def test_compute_dims_fixed_entries(self):
        assert compute_dims(16, 3, given=(4, 2, 2)) == (4, 2, 2)
        assert compute_dims(16, 3, given=(2, 0, 0)) in ((2, 4, 2),
                                                        (2, 2, 4))
        assert compute_dims(16, 3, given=(4, 4, 1)) == (4, 4, 1)

    def test_compute_dims_invalid(self):
        with pytest.raises(ValueError):
            compute_dims(16, 3, given=(5, 0, 0))
        with pytest.raises(ValueError):
            compute_dims(16, 3, given=(2, 2, 2))

    def test_neighborhood_offsets_counts(self):
        assert len(neighborhood_offsets(2, diagonals=False)) == 4
        assert len(neighborhood_offsets(3, diagonals=False)) == 6
        assert len(neighborhood_offsets(2, diagonals=True)) == 8
        assert len(neighborhood_offsets(3, diagonals=True)) == 26

    def test_coords_row_major(self):
        def job(comm):
            cart = create_cart(comm, (2, 2))
            return cart.coords

        out = run_parallel(job, 4)
        assert out == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_shift(self):
        def job(comm):
            cart = create_cart(comm, (2, 2))
            return cart.Shift(0, 1), cart.Shift(1, 1)

        out = run_parallel(job, 4)
        # rank 0 at (0,0): source above is PROC_NULL, dest below is rank 2
        assert out[0][0] == (PROC_NULL, 2)
        assert out[0][1] == (PROC_NULL, 1)

    def test_periodic_shift(self):
        def job(comm):
            cart = create_cart(comm, (4,), periods=(True,))
            return cart.Shift(0, 1)

        out = run_parallel(job, 4)
        assert out[0] == (3, 1)
        assert out[3] == (2, 0)

    def test_neighborhood_excludes_out_of_domain(self):
        def job(comm):
            cart = create_cart(comm, (2, 2))
            return cart.neighborhood(diagonals=True)

        out = run_parallel(job, 4)
        # corner rank 0 has exactly 3 neighbors in a 2x2 grid
        assert len(out[0]) == 3
        assert out[0][(0, 1)] == 1
        assert out[0][(1, 0)] == 2
        assert out[0][(1, 1)] == 3

    def test_cart_comm_messaging_isolated(self):
        def job(comm):
            cart = create_cart(comm, (2,))
            if comm.rank == 0:
                cart.send('cart', 1, tag=0)
                comm.send('world', 1, tag=0)
                return None
            a = comm.recv(source=0, tag=0)
            b = cart.recv(source=0, tag=0)
            return a, b

        assert run_parallel(job, 2)[1] == ('world', 'cart')
