"""Tests for the calibrated performance model: the reproduction's *shape*
claims against the paper's published evaluation."""

import numpy as np
import pytest

from repro.perfmodel import (ARCHER2, TURSA, ScalingModel, attainable,
                             paper_data as pd, roofline_points,
                             shape_metrics, strong_scaling_table,
                             weak_scaling_table)


class TestModelBasics:
    def test_single_node_matches_calibration(self):
        m = ScalingModel('acoustic', 4)
        shape = (1024,) * 3
        # 1 node: communication is intra-node; within 3% of the base rate
        t = m.throughput(shape, 1, 'basic')
        assert t == pytest.approx(13.4, rel=0.05)

    def test_single_gpu_is_pure_compute(self):
        m = ScalingModel('acoustic', 8, gpu=True)
        t = m.throughput((1158,) * 3, 1, 'basic')
        assert t == pytest.approx(31.2, rel=0.02)

    def test_throughput_monotone_in_nodes(self):
        m = ScalingModel('tti', 8)
        shape = (1024,) * 3
        ts = [m.throughput(shape, n, 'diag') for n in (1, 2, 4, 8, 16)]
        assert all(b > a for a, b in zip(ts, ts[1:]))

    def test_efficiency_decays_with_scale(self):
        m = ScalingModel('elastic', 8)
        shape = (1024,) * 3
        e16 = m.efficiency(shape, 16, 'basic')
        e128 = m.efficiency(shape, 128, 'basic')
        assert e128 < e16 <= 1.05

    def test_unknown_mode_rejected(self):
        m = ScalingModel('acoustic', 8)
        with pytest.raises(ValueError):
            m.step_time((64,) * 3, 4, 'warp')

    def test_full_mode_core_fraction_shrinks(self):
        m = ScalingModel('acoustic', 16)
        f_small = m._core_fraction((512, 512, 512), (2, 2, 2))
        f_large = m._core_fraction((64, 64, 64), (2, 2, 2))
        assert f_large < f_small


class TestPaperShape:
    """The headline qualitative claims of Section IV."""

    def test_aggregate_fidelity(self):
        metrics = shape_metrics()
        assert metrics['cpu_mean_rel_err'] < 0.25
        assert metrics['gpu_mean_rel_err'] < 0.25
        assert metrics['winner_agreement'] > 0.75

    @pytest.mark.parametrize('kernel', pd.KERNELS)
    def test_headline_cpu_efficiency(self, kernel):
        t = strong_scaling_table(kernel, 8, pd.PROBLEM_SIZE_CPU[kernel])
        best = max(t[m][-1] for m in t)
        base = max(t[m][0] for m in t)
        eff = best / (base * 128)
        paper = pd.HEADLINE_EFFICIENCY[(kernel, 'cpu')]
        assert eff == pytest.approx(paper, abs=0.10)

    @pytest.mark.parametrize('kernel', pd.KERNELS)
    def test_headline_gpu_efficiency(self, kernel):
        t = strong_scaling_table(kernel, 8, pd.PROBLEM_SIZE_GPU[kernel],
                                 gpu=True, modes=('basic',))['basic']
        eff = t[-1] / (t[0] * 128)
        paper = pd.HEADLINE_EFFICIENCY[(kernel, 'gpu')]
        assert eff == pytest.approx(paper, abs=0.10)

    def test_tti_scales_best_on_cpu(self):
        """TTI has the highest computation-to-communication ratio and the
        highest strong-scaling efficiency (Section IV-D)."""
        effs = {}
        for kernel in pd.KERNELS:
            t = strong_scaling_table(kernel, 8, pd.PROBLEM_SIZE_CPU[kernel])
            best = max(t[m][-1] for m in t)
            base = max(t[m][0] for m in t)
            effs[kernel] = best / (base * 128)
        assert effs['tti'] == max(effs.values())

    def test_elastic_visco_scale_worst_on_cpu(self):
        effs = {}
        for kernel in pd.KERNELS:
            t = strong_scaling_table(kernel, 8, pd.PROBLEM_SIZE_CPU[kernel])
            best = max(t[m][-1] for m in t)
            base = max(t[m][0] for m in t)
            effs[kernel] = best / (base * 128)
        worst_two = sorted(effs, key=effs.get)[:2]
        assert set(worst_two) == {'elastic', 'viscoelastic'}

    def test_basic_beats_diag_acoustic_at_scale(self):
        """Table III: basic wins the 128-node acoustic so-04 run (tiny
        messages: diagonal's 26 injections dominate)."""
        t = strong_scaling_table('acoustic', 4, 1024)
        assert t['basic'][-1] > t['diag'][-1]

    def test_diag_beats_basic_elastic_at_scale(self):
        """Table VIII: diagonal wins the 128-node elastic so-08 run
        (volume-dominated: single-step batching pays off)."""
        t = strong_scaling_table('elastic', 8, 1024)
        assert t['diag'][-1] > t['basic'][-1]

    def test_diag_beats_basic_acoustic_high_so_midscale(self):
        """Table V: diagonal wins acoustic so-12 at 16-32 nodes."""
        t = strong_scaling_table('acoustic', 12, 1024)
        i16 = pd.NODES.index(16)
        assert t['diag'][i16] > t['basic'][i16]

    def test_full_worst_for_tti_and_visco_at_scale(self):
        """Sections IV-D: 'there are better candidates than full mode for
        TTI kernels'; viscoelastic full trails clearly."""
        for kernel in ('tti', 'viscoelastic'):
            t = strong_scaling_table(kernel, 8, pd.PROBLEM_SIZE_CPU[kernel])
            assert t['full'][-1] < t['basic'][-1]
            assert t['full'][-1] < t['diag'][-1]

    def test_full_degrades_with_space_order(self):
        """Section IV-F: the core-to-remainder ratio drops with higher
        SDO, so full loses more at so-16 than at so-4."""
        rel = {}
        for so in (4, 16):
            t = strong_scaling_table('acoustic', so, 1024)
            rel[so] = t['full'][-1] / t['basic'][-1]
        assert rel[16] < rel[4]

    def test_gpu_faster_than_cpu_low_node_counts(self):
        """Section IV-D: GPUs superior at low node counts."""
        cpu = strong_scaling_table('acoustic', 8, 1024)['basic'][0]
        gpu = strong_scaling_table('acoustic', 8, 1158, gpu=True,
                                   modes=('basic',))['basic'][0]
        assert gpu > 2 * cpu

    def test_gpu_efficiency_drops_after_4_devices(self):
        """'a decrease in efficiency after 4 GPUs' (NVLink -> IB)."""
        m = ScalingModel('viscoelastic', 8, gpu=True)
        shape = (704,) * 3
        eff = [m.throughput(shape, n, 'basic') / (n * m.throughput(
            shape, 1, 'basic')) for n in (2, 4, 8)]
        drop_intra = eff[0] - eff[1]
        drop_cross = eff[1] - eff[2]
        assert drop_cross > drop_intra

    def test_per_cell_error_bound(self):
        """No modeled cell may be off by more than 2x."""
        for kernel in pd.KERNELS:
            for so in pd.SDOS:
                t = strong_scaling_table(kernel, so,
                                         pd.PROBLEM_SIZE_CPU[kernel])
                paper = pd.CPU_STRONG[kernel][so]
                for mode in ('basic', 'diag', 'full'):
                    for mv, pv in zip(t[mode], paper[mode]):
                        if pv is not None:
                            assert 0.5 < mv / pv < 2.0, (kernel, so, mode)


class TestWeakScaling:
    def test_runtime_roughly_constant(self):
        """Figure 12: nearly constant runtime under weak scaling."""
        for kernel in pd.KERNELS:
            t = weak_scaling_table(kernel, 8)['basic']
            assert max(t) / min(t) < 1.45, kernel

    def test_gpu_weak_scaling_faster(self):
        """Figure 12: GPUs are consistently ~4x faster (we model 3-5x at
        low unit counts, degrading modestly at scale)."""
        for kernel in pd.KERNELS:
            cpu = weak_scaling_table(kernel, 8)['basic']
            gpu = weak_scaling_table(kernel, 8, gpu=True,
                                     modes=('basic',))['basic']
            ratios = [c / g for c, g in zip(cpu, gpu)]
            assert 3.0 < ratios[0] < 5.5, kernel
            assert all(r > 1.8 for r in ratios), kernel

    def test_weak_shapes_double_cyclically(self):
        from repro.perfmodel.scaling import _weak_shape
        assert _weak_shape(256, 1) == (256, 256, 256)
        assert _weak_shape(256, 2) == (512, 256, 256)
        assert _weak_shape(256, 8) == (512, 512, 512)
        assert _weak_shape(256, 128) == (2048, 1024, 1024)


class TestRoofline:
    def test_all_kernels_dram_bound_cpu(self):
        """Figure 7: flop-optimized kernels are mainly DRAM-BW bound."""
        points = roofline_points(gpu=False)
        for kernel, info in points.items():
            if kernel == 'tti':
                continue  # TTI sits near the ridge
            assert info['dram_bound'], kernel

    def test_attainable_respects_roof(self):
        points = roofline_points(gpu=False)
        for kernel, info in points.items():
            assert info['gflops'] <= info['attainable'] * 1.05

    def test_tti_highest_oi(self):
        for gpu in (False, True):
            points = roofline_points(gpu=gpu)
            ois = {k: v['oi'] for k, v in points.items()}
            assert max(ois, key=ois.get) == 'tti'

    def test_ridge_points(self):
        assert attainable(0.1) == pytest.approx(38.0)
        assert attainable(1000.0) == 9200.0
        assert attainable(1000.0, gpu=True) == 19500.0

    def test_measured_oi_ordering(self):
        """This implementation's compile-time OI preserves the paper's
        kernel ordering (TTI >> others)."""
        from repro.perfmodel import measured_roofline_points
        pts = measured_roofline_points(so=4, shape=(12, 12, 12))
        assert pts['tti']['oi'] > 3 * pts['acoustic']['oi']
        assert pts['acoustic']['flops_per_point'] > 0


class TestReportHarness:
    def test_format_table_contains_both_rows(self):
        from repro.perfmodel import cpu_strong_rows, format_table
        text = format_table(cpu_strong_rows('elastic', 8))
        assert 'Basic (model)' in text
        assert 'Diag (paper)' in text
        assert text.count('|') > 40

    def test_all_tables_generate(self):
        from repro.perfmodel import all_cpu_tables, all_gpu_tables
        assert len(all_cpu_tables()) == 16
        assert len(all_gpu_tables()) == 16
