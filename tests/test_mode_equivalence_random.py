"""Property-based cross-mode equivalence of the halo-exchange patterns.

The paper's Table I patterns (*basic*, *diagonal*, *full*) are different
communication schedules for the *same* data movement: for any grid
shape, rank count, process topology and (possibly asymmetric, possibly
narrower-than-allocated) exchange widths, a stencil iteration that only
reads within the exchanged widths must produce bit-identical fields
under every pattern and on every rank count.

Rather than enumerating cases by hand, this harness samples them from a
seeded RNG — re-seedable via the ``REPRO_RANDOM_SEED`` environment
variable to explore a fresh slice of the property space::

    REPRO_RANDOM_SEED=7 pytest tests/test_mode_equivalence_random.py

Each case runs a few iterations of exchange + stencil update (with a
diagonal term, so corner halos matter) and cross-checks the gathered
global field across all three modes and against a single-rank run.

The same property extends to fault recovery: killing a rank mid-run and
restarting from a checkpoint must leave every sampled case bit-identical
to the serial reference.  A small default subset of the cases runs that
way on every invocation; set ``REPRO_RANDOM_RECOVERY=1`` to put *every*
sampled case through the mid-run kill + restart wringer.
"""

import os

import numpy as np
import pytest

from repro import (Eq, Grid, Operator, TimeFunction, configuration, solve)
from repro.mpi import Data, DimSpec, Distributor, make_exchanger, \
    run_parallel

SEED = int(os.environ.get('REPRO_RANDOM_SEED', '0'))
NCASES = int(os.environ.get('REPRO_RANDOM_CASES', '8'))
MODES = ('basic', 'diagonal', 'full')
ALL_RECOVERY = os.environ.get('REPRO_RANDOM_RECOVERY', '0') \
    .strip().lower() not in ('0', '', 'false', 'no', 'off')


def _random_case(i):
    """Sample one (shape, halo, widths, ranks, topology) configuration."""
    rng = np.random.default_rng((SEED << 16) + i)
    ndim = int(rng.integers(2, 4))  # 2 or 3
    if ndim == 2:
        shape = tuple(int(rng.integers(7, 13)) for _ in range(ndim))
        ranks = int(rng.choice([2, 3, 4]))
    else:
        shape = tuple(int(rng.integers(6, 9)) for _ in range(ndim))
        ranks = int(rng.choice([2, 4]))
    halo = int(rng.integers(1, 4))
    widths = []
    for _ in range(ndim):
        wl = int(rng.integers(0, min(halo, 2) + 1))
        wr = int(rng.integers(0, min(halo, 2) + 1))
        widths.append((wl, wr))
    if all(wl == 0 and wr == 0 for wl, wr in widths):
        widths[0] = (1, min(halo, 2))  # keep the case non-trivial
    topology = None
    if ndim == 2 and ranks == 4 and rng.random() < 0.5:
        topology = tuple(rng.permutation([2, 2])) if rng.random() < 0.5 \
            else tuple(int(x) for x in rng.permutation([4, 1]))
    steps = int(rng.integers(2, 5))
    return {'shape': shape, 'halo': halo, 'widths': tuple(widths),
            'ranks': ranks, 'topology': topology, 'steps': steps}


CASES = [_random_case(i) for i in range(NCASES)]


def _initial(shape):
    rng = np.random.default_rng(SEED * 1_000_003 + int(np.prod(shape)))
    return rng.standard_normal(shape).astype(np.float32)


def _stencil_update(full, halo, widths, local_shape):
    """One update of the owned region, reading at most ``widths`` deep
    into the halo along every dimension *and* along the main diagonal
    (so corner exchanges are observable).  Pure, vectorized, identical
    per-point operation order on every rank and in every mode."""
    ndim = len(local_shape)

    def region(shifts):
        return tuple(slice(h[0] + s, h[0] + n + s)
                     for (h, n, s) in zip(halo, local_shape, shifts))

    acc = np.float32(0.5) * full[region((0,) * ndim)]
    for d, (wl, wr) in enumerate(widths):
        for shift in (-wl, wr):
            if shift == 0:
                continue
            shifts = tuple(shift if i == d else 0 for i in range(ndim))
            acc = acc + np.float32(0.0625) * full[region(shifts)]
    # diagonal term: read the (-wl, -wl, ...) corner halo
    diag = tuple(-w[0] for w in widths)
    if any(diag):
        acc = acc + np.float32(0.03125) * full[region(diag)]
    return acc


def _run_case(case, mode, ranks):
    shape, halo, widths = case['shape'], case['halo'], case['widths']
    init = _initial(shape)

    def job(comm):
        dist = Distributor(shape, comm=comm,
                           topology=case['topology']
                           if comm is not None else None)
        specs = [DimSpec(n, dist_index=i, halo=(halo, halo))
                 for i, n in enumerate(shape)]
        d = Data(specs, dist)
        d.with_halo[...] = 0.0    # global-boundary halos read as zeros
        d[...] = init
        ex = make_exchanger(mode, dist, d.halo, widths)
        dom = tuple(slice(h[0], h[0] + n)
                    for h, n in zip(d.halo, dist.shape_local))
        for _ in range(case['steps']):
            ex.exchange(d.with_halo)
            d.with_halo[dom] = _stencil_update(d.with_halo, d.halo,
                                               widths, dist.shape_local)
        return d.gather()

    if ranks == 1:
        return job(None)
    return run_parallel(job, ranks)[0]


@pytest.mark.parametrize('case', CASES,
                         ids=['case%d' % i for i in range(len(CASES))])
def test_modes_and_rank_counts_agree(case):
    reference = _run_case(case, 'basic', 1)
    for mode in MODES:
        out = _run_case(case, mode, case['ranks'])
        assert out.shape == reference.shape, (case, mode)
        assert np.array_equal(out, reference), (case, mode)


# -- the same property under mid-run kill + checkpoint/restart ---------------

RECOVERY_CASES = CASES if ALL_RECOVERY else CASES[:2]


def _operator_job(comm, case, mode, cache=None, **apply_kwargs):
    """Diffusion on the case's grid/topology; returns the global field."""
    shape = case['shape']
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm,
                topology=case['topology'] if comm is not None else None)
    u = TimeFunction(name='u', grid=grid, space_order=2)
    u.data[0] = _initial(shape)
    eq = Eq(u.dt, u.laplace)
    op = Operator([Eq(u.forward, solve(eq, u.forward))],
                  mpi=mode if comm is not None else None, cache=cache)
    op.apply(time_M=case['steps'] + 2, dt=0.002, **apply_kwargs)
    return u.data.gather()


@pytest.mark.parametrize('case', RECOVERY_CASES,
                         ids=['case%d' % i
                              for i in range(len(RECOVERY_CASES))])
def test_mid_run_kill_restart_matches_serial(case, tmp_path):
    """Every sampled configuration survives a rank kill at step 2 with
    restart recovery, bit-identically, under all three modes."""
    reference = _operator_job(None, case, 'basic')
    saved = configuration['faults']
    configuration['faults'] = 'seed=11,kill=1@2'
    try:
        for mode in MODES:
            out = run_parallel(
                lambda c: _operator_job(
                    c, case, mode, recovery='restart', checkpoint_every=2,
                    checkpoint_dir=str(tmp_path / mode)),
                case['ranks'])
            for field in out:
                assert np.array_equal(field, reference), (case, mode)
    finally:
        configuration['faults'] = saved


# -- the same property under elastic repartitioning --------------------------


@pytest.mark.parametrize('case', RECOVERY_CASES,
                         ids=['case%d' % i
                              for i in range(len(RECOVERY_CASES))])
def test_mid_run_kill_grow_back_matches_serial(case, tmp_path):
    """Every sampled configuration survives kill -> shrink -> grow back
    to full size (the victim rejoins), bit-identically, in all modes."""
    reference = _operator_job(None, case, 'basic')
    saved = configuration['faults']
    configuration['faults'] = 'seed=11,kill=1@2'
    try:
        for mode in MODES:
            out = run_parallel(
                lambda c: _operator_job(
                    c, case, mode, recovery='grow', checkpoint_every=2,
                    checkpoint_dir=str(tmp_path / ('grow-' + mode))),
                case['ranks'])
            for field in out:
                assert np.array_equal(field, reference), (case, mode)
    finally:
        configuration['faults'] = saved


@pytest.mark.parametrize('case', RECOVERY_CASES,
                         ids=['case%d' % i
                              for i in range(len(RECOVERY_CASES))])
def test_mid_run_weighted_rebalance_matches_serial(case):
    """A mid-run weighted rebalance (skewed per-rank weights) leaves
    every sampled configuration bit-identical to the serial run, in all
    modes — data moves, results don't."""
    reference = _operator_job(None, case, 'basic')
    rng = np.random.default_rng(SEED * 31 + case['steps'])
    for mode in MODES:
        weights = tuple(float(w)
                        for w in rng.uniform(0.5, 4.0, case['ranks']))
        out = run_parallel(
            lambda c: _operator_job(
                c, case, mode, repartition='balance',
                repartition_every=2, min_steps_between_repartitions=2,
                max_repartitions=2, repartition_weights=weights),
            case['ranks'])
        for field in out:
            assert np.array_equal(field, reference), (case, mode, weights)


# -- the same property through the build cache -------------------------------

WARM_CASES = CASES[:3]


@pytest.mark.parametrize('case', WARM_CASES,
                         ids=['case%d' % i
                              for i in range(len(WARM_CASES))])
def test_warm_builds_preserve_equivalence(case, tmp_path):
    """Cache-warm operators are invisible to the cross-mode property:
    for sampled configurations, a disk-rehydrated kernel produces the
    same bits as the cold build that populated the entry — under every
    communication pattern, against the serial cache-off reference."""
    from repro.buildcache import BuildCache

    reference = _operator_job(None, case, 'basic', cache=False)
    cache = BuildCache('disk', str(tmp_path))
    for mode in MODES:
        for repeat in range(2):          # populate, then rehydrate
            out = run_parallel(
                lambda c: _operator_job(c, case, mode, cache=cache),
                case['ranks'])
            for field in out:
                assert np.array_equal(field, reference), \
                    (case, mode, repeat)
    # every rank of every mode hit on its second build
    assert cache.stats['hits'] == len(MODES) * case['ranks']


@pytest.mark.parametrize('mode', MODES)
def test_asymmetric_widths_fixed_case(mode):
    """A pinned non-random regression case: asymmetric widths + corners."""
    case = {'shape': (11, 9), 'halo': 3, 'widths': ((2, 1), (0, 2)),
            'ranks': 4, 'topology': (2, 2), 'steps': 3}
    reference = _run_case(case, 'basic', 1)
    out = _run_case(case, mode, case['ranks'])
    assert np.array_equal(out, reference)


# -- the same property through the compiled execution backend ----------------

COMPILED_CASES = CASES[:3]


def _toolchain_available():
    from repro.codegen import jit
    return jit.find_compiler() is not None


@pytest.mark.skipif(not _toolchain_available(),
                    reason='no C toolchain on this host')
@pytest.mark.parametrize('case', COMPILED_CASES,
                         ids=['case%d' % i
                              for i in range(len(COMPILED_CASES))])
def test_compiled_backend_preserves_equivalence(case):
    """Swapping the execution backend is invisible to the cross-mode
    property: for sampled configurations, compiled cache-blocked C
    steps produce the same bits as the serial NumPy reference — under
    every communication pattern (REPRO_BACKEND=c flows through
    ``configuration`` exactly like the env var would)."""
    reference = _operator_job(None, case, 'basic')
    saved = configuration['backend']
    configuration['backend'] = 'c'
    try:
        for mode in MODES:
            out = run_parallel(
                lambda c: _operator_job(c, case, mode, cache=False),
                case['ranks'])
            for field in out:
                assert np.array_equal(field, reference), (case, mode)
    finally:
        configuration['backend'] = saved
