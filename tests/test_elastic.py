"""Elastic repartitioning: grow, rebalance and autoscale — losslessly.

Covers :mod:`repro.resilience.elastic` and its wiring through the
stack:

* kill -> shrink -> grow-back under ``recovery='grow'``: the healed
  victim rejoins, the original process topology is restored, and the
  result is bit-identical to a fault-free serial run;
* disarmed-kill banking across repartition boundaries (keyed on
  original rank identity): a kill that already fired never re-fires on
  the grown world;
* reserve-rank growth: ``run_elastic`` hands announced reserve ranks to
  a live run under ``repartition='grow'``, which grows mid-run onto
  them — bit-identically, for actives and joiners alike;
* weighted rebalancing: explicit and measured per-rank weights move
  block boundaries mid-run without changing a single output bit;
* the post-repartition static-verifier gate (every repartitioned
  schedule re-passes analysis), hysteresis/budget bounds, the public
  ``Operator.repartition`` API and loud validation everywhere.
"""

import numpy as np
import pytest

from repro import Eq, Grid, Operator, TimeFunction, configuration, solve
from repro.mpi import run_parallel
from repro.mpi.sim import SimComm, SimWorld
from repro.resilience import (REPARTITION_POLICIES,
                              rank_weights_to_dim_weights, run_elastic)

STEPS = 10
DT = 0.02
SHAPE = (16, 12)


@pytest.fixture(autouse=True)
def _restore_config():
    yield
    for key in ('faults', 'recovery', 'checkpoint_every', 'checkpoint_dir',
                'repartition', 'repartition_every',
                'min_steps_between_repartitions', 'max_repartitions',
                'repartition_weights'):
        del configuration[key]


def _initial(shape=SHAPE):
    return (np.add.outer(np.arange(shape[0]) * 0.01,
                         np.arange(shape[1]) * 0.001).astype(np.float32))


def _build(comm, shape=SHAPE, topology=None, mpi='diagonal'):
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm, topology=topology)
    u = TimeFunction(name='u', grid=grid, space_order=2)
    u.data[0] = _initial(shape)
    eq = Eq(u.dt, u.laplace)
    op = Operator([Eq(u.forward, solve(eq, u.forward))],
                  mpi=mpi if comm is not None else None)
    return op, u


def _oracle():
    op, u = _build(None)
    op.apply(time_M=STEPS, dt=DT)
    return u.data.gather()


def _final_world(op):
    """The operator's *current* world (the caller's comm is stale after
    a repartition)."""
    return op.grid.distributor.comm.world


class TestGrowBack:
    """kill -> shrink -> grow back to full size (``--recover grow``)."""

    def _run(self, tmp_path, ranks=4, topology=(2, 2)):
        oracle = _oracle()
        configuration['faults'] = 'seed=5,kill=2@4'

        def job(comm):
            op, u = _build(comm, topology=topology)
            op.apply(time_M=STEPS, dt=DT, recovery='grow',
                     checkpoint_every=2, checkpoint_dir=str(tmp_path))
            world = _final_world(op)
            return (u.data.gather(), world.size,
                    dict(world.recovery_stats), set(world.disarmed_kills),
                    op.grid.distributor.topology, op.analysis)

        try:
            return oracle, run_parallel(job, ranks)
        finally:
            configuration['faults'] = False

    def test_grow_back_restores_size_and_bits(self, tmp_path):
        oracle, results = self._run(tmp_path)
        for r, (data, size, stats, _, topo, _) in enumerate(results):
            assert size == 4, (r, size)
            assert topo == (2, 2)  # original process grid restored
            assert np.array_equal(data, oracle), 'rank %d mismatch' % r
        stats = results[0][2]
        assert stats['recoveries'] == 1
        assert stats['ranks_lost'] == 1
        assert stats['repartitions'] == 1
        assert stats['grown_ranks'] == 1
        assert stats['repartition_bytes'] > 0

    def test_disarmed_kills_banked_across_grow(self, tmp_path):
        """The fired kill is banked by original rank identity: after
        the victim rejoins, replayed fault ticks must not re-kill it —
        the run completes with zero extra recoveries (asserted above)
        and the grown world still carries the disarm record."""
        _, results = self._run(tmp_path)
        for _, _, stats, disarmed, _, _ in results:
            assert disarmed, "disarm bank lost across the repartition"
            assert any(rank == 2 for rank, _ in disarmed)
            assert stats['recoveries'] == 1  # no re-kill, no second pass

    def test_post_repartition_schedule_verified(self, tmp_path):
        """Every post-repartition schedule re-runs the static verifier;
        the resulting report is attached to the operator and clean."""
        _, results = self._run(tmp_path)
        for *_, report in results:
            assert report is not None
            assert not report.errors


class TestReserveGrow:
    """2 actives + 2 announced reserves -> grow to 4 mid-run."""

    def test_grow_onto_reserves_bit_identical(self):
        oracle = _oracle()

        def active(comm):
            op, u = _build(comm)
            op.apply(time_M=STEPS, dt=DT, repartition='grow',
                     min_steps_between_repartitions=3)
            world = _final_world(op)
            return u.data.gather(), world.size, \
                dict(world.recovery_stats), op.analysis

        def reserve(lineage, orig):
            # throwaway target-size world so the schedule carries every
            # halo exchange the grown topology needs
            op, u = _build(SimComm(SimWorld(4, faults=False), 0))
            op.apply(time_M=STEPS, dt=DT,
                     _elastic_join={'lineage': lineage, 'orig': orig})
            return u.data.gather(), _final_world(op).size

        act, resv = run_elastic(active, 2, reserve_fn=reserve, nreserve=2)
        assert len(act) == 2 and len(resv) == 2
        for r, (data, size, stats, report) in enumerate(act):
            assert size == 4
            assert np.array_equal(data, oracle), 'active %d mismatch' % r
            assert not report.errors
        assert act[0][2]['repartitions'] == 1
        assert act[0][2]['grown_ranks'] == 2
        for r, (data, size) in enumerate(resv):
            assert size == 4
            assert np.array_equal(data, oracle), 'reserve %d mismatch' % r

    def test_grow_policy_without_reserves_is_inert(self):
        """``repartition='grow'`` with nobody waiting never fires."""
        oracle = _oracle()

        def job(comm):
            op, u = _build(comm)
            op.apply(time_M=STEPS, dt=DT, repartition='grow')
            world = _final_world(op)
            return u.data.gather(), world.size, dict(world.recovery_stats)

        results = run_parallel(job, 2)
        for data, size, stats in results:
            assert size == 2
            assert stats.get('repartitions', 0) == 0
            assert np.array_equal(data, oracle)


class TestRebalance:
    def test_weighted_rebalance_bit_identical(self):
        oracle = _oracle()
        weights = (3.0, 1.0, 1.0, 2.0)

        def job(comm):
            op, u = _build(comm, topology=(2, 2))
            op.apply(time_M=STEPS, dt=DT, repartition='balance',
                     repartition_every=3, max_repartitions=1,
                     repartition_weights=weights)
            world = _final_world(op)
            return (u.data.gather(), dict(world.recovery_stats),
                    tuple(d.sizes
                          for d in op.grid.distributor.decompositions),
                    op.analysis)

        results = run_parallel(job, 4)
        for r, (data, stats, sizes, report) in enumerate(results):
            assert np.array_equal(data, oracle), 'rank %d mismatch' % r
            assert not report.errors
        _, stats, sizes, _ = results[0]
        assert stats['repartitions'] == 1
        assert stats['repartition_bytes'] > 0
        # the heavy ranks got the larger subdomains
        for per_dim in sizes:
            assert per_dim[0] > per_dim[-1]

    def test_repartition_budget_and_hysteresis_bound_oscillation(self):
        """With an aggressive cadence, the number of repartitions is
        bounded by ``max_repartitions`` and spaced by at least
        ``min_steps_between_repartitions``."""
        oracle = _oracle()

        def job(comm):
            op, u = _build(comm)
            op.apply(time_M=STEPS, dt=DT, repartition='balance',
                     repartition_every=1, max_repartitions=2,
                     min_steps_between_repartitions=3,
                     repartition_weights=(2.0, 1.0))
            return u.data.gather(), \
                dict(_final_world(op).recovery_stats)

        results = run_parallel(job, 2)
        for data, stats in results:
            assert np.array_equal(data, oracle)
        # STEPS=10 with min spacing 3 would allow 3 firings; the budget
        # caps it at 2
        assert results[0][1]['repartitions'] == 2

    def test_repartition_off_by_default(self):
        def job(comm):
            op, u = _build(comm)
            op.apply(time_M=STEPS, dt=DT)
            return dict(comm.world.recovery_stats)

        results = run_parallel(job, 2)
        assert results[0].get('repartitions', 0) == 0


class TestRepartitionAPI:
    def test_operator_repartition_rebalances_in_place(self):
        """The public API: rebalance a live operator's world; gathered
        bits are untouched while block boundaries move."""
        oracle = _oracle()

        def job(comm):
            op, u = _build(comm)
            op.apply(time_M=STEPS, dt=DT)
            before = tuple(d.sizes
                           for d in op.grid.distributor.decompositions)
            op.repartition(weights=(3.0, 1.0))
            after = tuple(d.sizes
                          for d in op.grid.distributor.decompositions)
            return u.data.gather(), before, after

        results = run_parallel(job, 2)
        for data, before, after in results:
            assert np.array_equal(data, oracle)
            assert before != after

    def test_operator_repartition_rejects_shrink(self):
        def job(comm):
            op, _ = _build(comm)
            with pytest.raises(ValueError, match='shrink'):
                op.repartition(new_ranks=1)
            return True

        assert all(run_parallel(job, 2))

    def test_policies_exported(self):
        assert REPARTITION_POLICIES == ('off', 'grow', 'balance')

    def test_unknown_apply_kwargs_list_repartition_options(self):
        op, _ = _build(None)
        with pytest.raises(ValueError) as err:
            op.apply(time_M=2, dt=DT, bogus_option=1)
        message = str(err.value)
        for name in ('repartition', 'repartition_every',
                     'max_repartitions', 'repartition_weights',
                     'min_steps_between_repartitions'):
            assert name in message

    def test_invalid_policy_rejected(self):
        op, _ = _build(None)
        with pytest.raises(ValueError):
            op.apply(time_M=2, dt=DT, repartition='sideways')


class TestWeightHelpers:
    def test_rank_to_dim_weights_cmajor_means(self):
        # 2x2 topology, C-order ranks: dim-0 parts average rows,
        # dim-1 parts average columns
        dims = rank_weights_to_dim_weights((3.0, 1.0, 1.0, 2.0), (2, 2))
        assert dims == ((2.0, 1.5), (2.0, 1.5))

    def test_rank_to_dim_weights_1d(self):
        # the unsplit dimension collapses to one part (overall mean)
        assert rank_weights_to_dim_weights((2.0, 1.0), (2, 1)) == \
            ((2.0, 1.0), (1.5,))

    def test_rank_to_dim_weights_validation(self):
        with pytest.raises(ValueError):
            rank_weights_to_dim_weights((1.0, 2.0), (2, 2))  # wrong count
        with pytest.raises(ValueError):
            rank_weights_to_dim_weights((1.0, -1.0), (2, 1))
        with pytest.raises(ValueError):
            rank_weights_to_dim_weights((0.0, 0.0), (2, 1))

    def test_configuration_weight_parsing(self):
        configuration['repartition_weights'] = '3,1'
        assert configuration['repartition_weights'] == (3.0, 1.0)
        configuration['repartition_weights'] = 'none'
        assert configuration['repartition_weights'] is None
        with pytest.raises(ValueError):
            configuration['repartition_weights'] = '1,-2'
