"""Tests for the three halo-exchange patterns and sparse-point routing."""

import numpy as np
import pytest

from repro.mpi import (Data, DimSpec, Distributor, HaloWidths,
                       PointRouting, bilinear_coefficients, core_region,
                       make_exchanger, remainder_regions, run_parallel,
                       support_points)


def _distributed_field(comm, shape, halo, fill=None):
    dist = Distributor(shape, comm=comm)
    specs = [DimSpec(n, dist_index=i, halo=(halo, halo))
             for i, n in enumerate(shape)]
    d = Data(specs, dist)
    if fill is None:
        fill = np.arange(np.prod(shape), dtype=np.float32).reshape(shape)
    d[...] = fill
    return dist, d, fill


def _check_halo(dist, d, glob, width):
    """Every in-bounds halo cell within ``width`` must hold global data."""
    full = d.with_halo
    halo = d.halo
    ranges = dist.local_ranges()
    it = np.ndindex(full.shape)
    for idx in it:
        gidx = tuple(r[0] + i - h[0] for (i, r, h)
                     in zip(idx, ranges, halo))
        inside_dom = all(r[0] <= g < r[1] for g, r in zip(gidx, ranges))
        if inside_dom:
            continue
        in_bounds = all(0 <= g < n for g, n in zip(gidx, glob.shape))
        within_width = all(r[0] - width <= g < r[1] + width
                           for g, r in zip(gidx, ranges))
        if in_bounds and within_width:
            assert full[idx] == glob[gidx], (idx, gidx)
    return True


MODES = ('basic', 'diagonal', 'full')


class TestExchangers:
    @pytest.mark.parametrize('mode', MODES)
    def test_2d_full_width(self, mode):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger(mode, dist, d.halo, [(2, 2), (2, 2)])
            ex.exchange(d.with_halo)
            return _check_halo(dist, d, glob, 2)

        assert all(run_parallel(job, 4))

    @pytest.mark.parametrize('mode', MODES)
    def test_2d_narrow_width(self, mode):
        """Exchange width can be narrower than the allocated halo."""
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 3)
            ex = make_exchanger(mode, dist, d.halo, [(1, 1), (1, 1)])
            ex.exchange(d.with_halo)
            return _check_halo(dist, d, glob, 1)

        assert all(run_parallel(job, 4))

    @pytest.mark.parametrize('mode', MODES)
    def test_3d(self, mode):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (6, 6, 6), 1)
            ex = make_exchanger(mode, dist, d.halo,
                                [(1, 1)] * 3)
            ex.exchange(d.with_halo)
            return _check_halo(dist, d, glob, 1)

        assert all(run_parallel(job, 8))

    @pytest.mark.parametrize('mode', MODES)
    def test_1d_decomposition(self, mode):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (12, 6), 2)
            ex = make_exchanger(mode, dist, d.halo, [(2, 2), (2, 2)])
            ex.exchange(d.with_halo)
            return _check_halo(dist, d, glob, 2)

        assert all(run_parallel(job, 3))

    @pytest.mark.parametrize('mode', MODES)
    def test_repeated_exchanges_converge(self, mode):
        """Exchanging twice (with a data change in between) stays correct."""
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger(mode, dist, d.halo, [(2, 2), (2, 2)])
            ex.exchange(d.with_halo)
            d.local[...] *= 2.0
            ex.exchange(d.with_halo)
            return _check_halo(dist, d, glob * 2, 2)

        assert all(run_parallel(job, 4))

    def test_message_counts_match_table1(self):
        """basic: 2*ndims msgs; diagonal: 3^n - 1 (Table I)."""
        def job(comm, mode):
            dist, d, _ = _distributed_field(comm, (6, 6, 6), 1)
            ex = make_exchanger(mode, dist, d.halo, [(1, 1)] * 3)
            ex.exchange(d.with_halo)
            return ex.nmessages

        counts = run_parallel(lambda c: job(c, 'basic'), 8)
        assert all(c == 3 for c in counts)  # corner ranks: 3 faces of 6
        counts = run_parallel(lambda c: job(c, 'diagonal'), 8)
        assert all(c == 7 for c in counts)  # corner ranks: 7 of 26

    def test_full_begin_finish_split(self):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger('full', dist, d.halo, [(2, 2), (2, 2)])
            pending = ex.begin(d.with_halo)
            # core can be computed here while communication is in flight
            ex.finish(d.with_halo, pending)
            return _check_halo(dist, d, glob, 2)

        assert all(run_parallel(job, 4))

    def test_full_with_progress_thread(self):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger('full', dist, d.halo, [(2, 2), (2, 2)],
                                progress=True)
            pending = ex.begin(d.with_halo)
            ex.finish(d.with_halo, pending)
            return _check_halo(dist, d, glob, 2)

        assert all(run_parallel(job, 4))

    def test_width_exceeding_halo_rejected(self):
        dist = Distributor((8, 8))
        with pytest.raises(ValueError):
            make_exchanger('basic', dist, [(1, 1), (1, 1)],
                           [(2, 2), (2, 2)])

    def test_unknown_mode_rejected(self):
        dist = Distributor((8, 8))
        with pytest.raises(ValueError) as err:
            make_exchanger('magic', dist, [(1, 1)] * 2, [(1, 1)] * 2)
        # the error enumerates every accepted mode, aliases included
        for mode in ('basic', 'diag', 'diagonal', 'diag2', 'full'):
            assert mode in str(err.value)

    @pytest.mark.parametrize('alias', ['diag', 'diag2'])
    def test_devito_diag_aliases(self, alias):
        """DEVITO_MPI-compatible names map to the diagonal pattern."""
        from repro.mpi import DiagonalExchanger, FullExchanger
        dist = Distributor((8, 8))
        ex = make_exchanger(alias, dist, [(1, 1)] * 2, [(1, 1)] * 2)
        assert type(ex) is DiagonalExchanger
        assert not isinstance(ex, FullExchanger)

    @pytest.mark.parametrize('alias', ['diag', 'diag2'])
    def test_diag_aliases_exchange_like_diagonal(self, alias):
        def job(comm, mode):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger(mode, dist, d.halo, [(2, 2), (2, 2)])
            ex.exchange(d.with_halo)
            _check_halo(dist, d, glob, 2)
            return ex.nmessages

        counts = run_parallel(lambda c: job(c, alias), 4)
        reference = run_parallel(lambda c: job(c, 'diagonal'), 4)
        assert counts == reference  # same Moore-neighborhood message set

    def test_zero_width_dims_skipped(self):
        def job(comm):
            dist, d, glob = _distributed_field(comm, (8, 8), 2)
            ex = make_exchanger('basic', dist, d.halo, [(2, 2), (0, 0)])
            ex.exchange(d.with_halo)
            return ex.nmessages

        counts = run_parallel(job, 4)
        assert all(c == 1 for c in counts)  # only the x faces


class TestCoreRemainder:
    def test_core_region_interior_rank(self):
        def job(comm):
            dist = Distributor((16, 16), comm=comm)
            return core_region(dist, [(2, 2), (2, 2)])

        out = run_parallel(job, 4)
        # rank 0 at (0,0): global boundary on the low sides
        assert out[0] == ((0, 6), (0, 6))
        assert out[3] == ((2, 8), (2, 8))

    def test_remainder_boxes_cover_difference(self):
        def job(comm):
            dist = Distributor((16, 16), comm=comm)
            widths = [(2, 2), (2, 2)]
            core = core_region(dist, widths)
            rems = remainder_regions(dist, widths)
            shape = dist.shape_local
            covered = np.zeros(shape, dtype=int)
            covered[tuple(slice(lo, hi) for lo, hi in core)] += 1
            for box in rems:
                covered[tuple(slice(lo, hi) for lo, hi in box)] += 1
            return bool((covered == 1).all())

        assert all(run_parallel(job, 4))

    def test_remainder_boxes_disjoint_3d(self):
        def job(comm):
            dist = Distributor((8, 8, 8), comm=comm)
            widths = [(1, 1)] * 3
            core = core_region(dist, widths)
            rems = remainder_regions(dist, widths)
            covered = np.zeros(dist.shape_local, dtype=int)
            covered[tuple(slice(lo, hi) for lo, hi in core)] += 1
            for box in rems:
                covered[tuple(slice(lo, hi) for lo, hi in box)] += 1
            return bool((covered == 1).all())

        assert all(run_parallel(job, 8))

    def test_serial_core_is_whole_domain(self):
        dist = Distributor((8, 8))
        assert core_region(dist, [(2, 2), (2, 2)]) == ((0, 8), (0, 8))
        assert remainder_regions(dist, [(2, 2), (2, 2)]) == []

    def test_halo_widths_container(self):
        w = HaloWidths([(1, 2), (3, 4)])
        assert w[0] == (1, 2) and len(w) == 2
        assert w == HaloWidths([(1, 2), (3, 4)])
        assert hash(w) == hash(HaloWidths([(1, 2), (3, 4)]))


class TestPointRouting:
    def test_support_and_weights(self):
        lows, highs = support_points((2.5, 3.0), (0, 0), (1.0, 1.0))
        assert lows == (2, 3) and highs == (3, 4)
        per_dim = bilinear_coefficients((2.5, 3.0), (0, 0), (1.0, 1.0))
        assert per_dim[0] == (2, 0.5, 0.5)
        assert per_dim[1][0] == 3 and abs(per_dim[1][1] - 1.0) < 1e-12

    def test_interior_point_single_owner(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            routing = PointRouting(np.array([[1.2, 1.7]]), dist,
                                   (0, 0), (1.0, 1.0))
            return routing.local_points, routing.owned_points

        out = run_parallel(job, 4)
        assert out[0] == ([0], [0])
        assert all(o == ([], []) for o in out[1:])

    def test_shared_boundary_point(self):
        """A point whose support straddles ranks appears on all of them
        (the paper's Figure 3 point C)."""
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            routing = PointRouting(np.array([[3.5, 3.5]]), dist,
                                   (0, 0), (1.0, 1.0))
            return routing.local_points

        out = run_parallel(job, 4)
        assert all(o == [0] for o in out)

    def test_weights_partition_unity(self):
        """Across all ranks, each point's weights sum to 1."""
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            pts = np.array([[1.3, 2.7], [3.5, 3.5], [6.01, 0.5], [0., 0.]])
            routing = PointRouting(pts, dist, (0, 0), (1.0, 1.0))
            pids, _, w = routing.gather_plan()
            totals = np.zeros(len(pts))
            np.add.at(totals, pids, w)
            return totals

        out = run_parallel(job, 4)
        totals = np.sum(out, axis=0)
        assert np.allclose(totals, 1.0)

    def test_out_of_domain_clamped(self):
        dist = Distributor((8, 8))
        routing = PointRouting(np.array([[-0.5, 9.5]]), dist,
                               (0, 0), (1.0, 1.0))
        pids, idx, w = routing.gather_plan()
        assert (idx[0] >= 0).all() and (idx[1] <= 7).all()
        assert np.isclose(w.sum(), 1.0)

    def test_gather_plan_indices_local(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            pts = np.array([[4.5, 4.5]])
            routing = PointRouting(pts, dist, (0, 0), (1.0, 1.0))
            _, idx, _ = routing.gather_plan()
            shape = dist.shape_local
            return all((col >= 0).all() and (col < n).all()
                       for col, n in zip(idx, shape))

        assert all(run_parallel(job, 4))

    def test_bad_coordinates_shape(self):
        dist = Distributor((8, 8))
        with pytest.raises(ValueError):
            PointRouting(np.zeros(3), dist, (0, 0), (1.0, 1.0))
