"""The paper's central correctness claim: DMP execution is transparent.

Every kernel, on any rank count, with any communication pattern and any
topology, must produce exactly the wavefield of the serial run (the
interior arithmetic order is identical, so fp32 results are bitwise
equal for pure stencil updates).
"""

import numpy as np
import pytest

from repro import Eq, Grid, Operator, TimeFunction, solve
from repro.mpi import run_parallel
from repro.models import (acoustic_setup, elastic_setup, tti_setup,
                          viscoelastic_setup)

MODES = ('basic', 'diagonal', 'full')


def _diffusion(comm=None, mpi=None, shape=(12, 12), steps=6, so=4,
               topology=None):
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm, topology=topology)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    init = np.zeros(shape, dtype=np.float32)
    init[tuple(s // 2 for s in shape)] = 1.0
    init[tuple(s // 3 for s in shape)] = -2.0
    u.data[0] = init
    eq = Eq(u.dt, u.laplace)
    op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi)
    op.apply(time_M=steps - 1, dt=0.02)
    return u.data.gather()


class TestDiffusionEquivalence:
    @pytest.fixture(scope='class')
    def serial(self):
        return _diffusion()

    @pytest.mark.parametrize('mode', MODES)
    @pytest.mark.parametrize('ranks', [2, 3, 4])
    def test_rank_counts(self, serial, mode, ranks):
        out = run_parallel(lambda c: _diffusion(c, mpi=mode), ranks)
        for r, result in enumerate(out):
            assert np.array_equal(result, serial), (mode, ranks, r)

    @pytest.mark.parametrize('topology', [(4, 1), (1, 4), (2, 2)])
    def test_custom_topologies(self, serial, topology):
        out = run_parallel(
            lambda c: _diffusion(c, mpi='basic', topology=topology), 4)
        assert all(np.array_equal(o, serial) for o in out)

    @pytest.mark.parametrize('mode', MODES)
    def test_high_order_stencil(self, mode):
        serial = _diffusion(shape=(16, 16), so=8, steps=4)
        out = run_parallel(
            lambda c: _diffusion(c, mpi=mode, shape=(16, 16), so=8,
                                 steps=4), 4)
        assert all(np.array_equal(o, serial) for o in out)

    @pytest.mark.parametrize('mode', MODES)
    def test_3d(self, mode):
        serial = _diffusion(shape=(8, 8, 8), steps=3, so=2)
        out = run_parallel(
            lambda c: _diffusion(c, mpi=mode, shape=(8, 8, 8), steps=3,
                                 so=2), 8)
        assert all(np.array_equal(o, serial) for o in out)

    def test_uneven_decomposition(self):
        """Non-divisible shapes: 13x11 over 3 ranks."""
        serial = _diffusion(shape=(13, 11), steps=4, so=2)
        out = run_parallel(
            lambda c: _diffusion(c, mpi='basic', shape=(13, 11), steps=4,
                                 so=2), 3)
        assert all(np.array_equal(o, serial) for o in out)


def _run_propagator(setup, comm=None, mpi=None, **kw):
    kw.setdefault('shape', (36, 36))
    kw.setdefault('tn', 70.0)
    kw.setdefault('space_order', 4)
    kw.setdefault('nbl', 8)
    solver, tr = setup(comm=comm, mpi=mpi, **kw)
    out = solver.forward()
    rec = np.array(out[0])
    wf = out[1]
    field = wf.data.gather() if hasattr(wf, 'data') else \
        wf[0].data.gather()
    return field, rec


class TestPropagatorEquivalence:
    """Full-physics kernels: serial == N-rank for every pattern."""

    @pytest.mark.parametrize('mode', MODES)
    def test_acoustic(self, mode):
        serial, rec_s = _run_propagator(acoustic_setup)
        out = run_parallel(
            lambda c: _run_propagator(acoustic_setup, c, mode), 4)
        for field, rec in out:
            assert np.array_equal(field, serial)
            assert np.allclose(rec, rec_s, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize('mode', MODES)
    def test_elastic(self, mode):
        serial, rec_s = _run_propagator(elastic_setup)
        out = run_parallel(
            lambda c: _run_propagator(elastic_setup, c, mode), 4)
        for field, rec in out:
            assert np.array_equal(field, serial)
            assert np.allclose(rec, rec_s, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize('mode', MODES)
    def test_tti(self, mode):
        serial, rec_s = _run_propagator(tti_setup)
        out = run_parallel(
            lambda c: _run_propagator(tti_setup, c, mode), 4)
        for field, rec in out:
            assert np.array_equal(field, serial)
            assert np.allclose(rec, rec_s, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize('mode', MODES)
    def test_viscoelastic(self, mode):
        serial, rec_s = _run_propagator(viscoelastic_setup)
        out = run_parallel(
            lambda c: _run_propagator(viscoelastic_setup, c, mode), 4)
        for field, rec in out:
            assert np.array_equal(field, serial)
            assert np.allclose(rec, rec_s, rtol=1e-4, atol=1e-5)

    def test_acoustic_two_ranks(self):
        serial, _ = _run_propagator(acoustic_setup)
        out = run_parallel(
            lambda c: _run_propagator(acoustic_setup, c, 'basic'), 2)
        assert all(np.array_equal(f, serial) for f, _ in out)

    def test_acoustic_3d_distributed(self):
        serial, _ = _run_propagator(acoustic_setup, shape=(16, 16, 16),
                                    spacing=(10.,) * 3, tn=40.0, nbl=4)
        out = run_parallel(
            lambda c: _run_propagator(acoustic_setup, c, 'diagonal',
                                      shape=(16, 16, 16),
                                      spacing=(10.,) * 3, tn=40.0, nbl=4),
            4)
        assert all(np.array_equal(f, serial) for f, _ in out)

    def test_full_mode_with_progress_thread(self):
        """The MPI_Test-prodding progress thread must not change results."""
        def job(comm):
            grid = Grid(shape=(16, 16), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=4)
            u.data[0, 8, 8] = 1.0
            eq = Eq(u.dt, u.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward))],
                          mpi='full', progress=True)
            op.apply(time_M=4, dt=0.05)
            return u.data.gather()

        serial = _diffusion(shape=(16, 16), steps=5, so=4)
        grid = Grid(shape=(16, 16))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        u.data[0, 8, 8] = 1.0
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))])
        op.apply(time_M=4, dt=0.05)
        expected = u.data.gather()

        out = run_parallel(job, 4)
        assert all(np.array_equal(o, expected) for o in out)


class TestMessageCounts:
    """Table I: 6 messages (3D basic) vs 26 (diagonal) per rank."""

    def _count(self, mode, ranks=8):
        def job(comm):
            grid = Grid(shape=(12, 12, 12), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            eq = Eq(u.dt, u.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mode)
            op.apply(time_M=0, dt=0.01)
            return sum(ex.nmessages for ex in op.exchangers.values())

        return run_parallel(job, ranks)

    def test_basic_face_messages(self):
        # 2x2x2 topology: every rank is a corner with 3 faces
        counts = self._count('basic')
        assert all(c == 3 for c in counts)

    def test_diagonal_neighborhood_messages(self):
        counts = self._count('diagonal')
        assert all(c == 7 for c in counts)  # corner of the Moore nbhd

    def test_full_matches_diagonal_count(self):
        counts = self._count('full')
        assert all(c == 7 for c in counts)
