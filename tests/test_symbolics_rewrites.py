"""Tests for derivative expansion, solve, CSE, factorization, hoisting
and the printers."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro import Grid, TimeFunction, Function
from repro.symbolics import (Derivative, Indexed, Rational, S, Symbol, Temp,
                             ccode, cse, expand_derivatives, factorize,
                             hoist_invariants, indexeds, linear_coeffs,
                             preorder, pycode, sin, solve, sqrt)


@pytest.fixture
def grid2d():
    return Grid(shape=(8, 8), extent=(7.0, 7.0))


class TestDerivativeExpansion:
    def test_dx2_second_order(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2)
        x, y = grid2d.dimensions
        e = Derivative(u, (x, 2), fd_order=2).evaluate
        accs = indexeds(e)
        offsets = sorted(str(a.indices[1]) for a in accs)
        assert len(accs) == 3
        # weights 1, -2, 1 over x-1, x, x+1 divided by h_x^2
        assert 'h_x' in str(e)

    def test_laplace_term_count(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=8)
        e = expand_derivatives(u.laplace)
        # 2 dims x 9 points, center shared per dim -> 18 accesses
        assert len(indexeds(e)) == 18

    def test_dt_forward_two_point(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2, time_order=1)
        e = expand_derivatives(u.dt)
        t = grid2d.stepping_dim
        time_offsets = {str(a.indices[0]) for a in indexeds(e)}
        assert time_offsets == {'t', '1 + t'}

    def test_dt2_three_point(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2, time_order=2)
        e = expand_derivatives(u.dt2)
        time_offsets = {str(a.indices[0]) for a in indexeds(e)}
        assert time_offsets == {'-1 + t', 't', '1 + t'}

    def test_numeric_accuracy_sine(self, grid2d):
        """Expanded stencil applied to sin(x) approximates cos(x)."""
        u = Function(name='f', grid=grid2d, space_order=8)
        x, y = grid2d.dimensions
        e = Derivative(u, (x, 1), fd_order=8).evaluate
        h = 0.01
        # evaluate by binding each access f[x+k, y] -> sin(k*h)
        bindings = {}
        for acc in indexeds(e):
            from repro.ir.lowered import parse_index
            k = parse_index(acc.indices[0], x)
            bindings[acc] = math.sin(k * h)
        bindings[x.spacing] = h
        val = e.evalf(bindings)
        assert abs(val - 1.0) < 1e-9

    def test_nested_derivative_expands(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2)
        x, y = grid2d.dimensions
        inner = Derivative(u, (x, 1), fd_order=2)
        outer = Derivative(inner, (y, 1), fd_order=2)
        e = outer.evaluate
        # cross-derivative: 2x2 nonzero weights = 4 accesses
        assert len(indexeds(e)) == 4
        assert not any(n.is_Derivative for n in preorder(e))

    def test_adjoint_sign(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2)
        x, _ = grid2d.dimensions
        d1 = Derivative(u, (x, 1), fd_order=2)
        d2 = Derivative(u, (x, 2), fd_order=2)
        assert expand_derivatives(d1.T) == expand_derivatives(-d1)
        assert expand_derivatives(d2.T) == expand_derivatives(d2)

    def test_staggered_expansion_integer_indices(self, grid2d):
        x, y = grid2d.dimensions
        v = TimeFunction(name='v', grid=grid2d, space_order=4,
                         staggered=(x,))
        # derivative of x-staggered field evaluated at nodes
        e = Derivative(v, (x, 1), fd_order=4, x0={x: Fraction(0)}).evaluate
        for acc in indexeds(e):
            from repro.ir.lowered import parse_index
            parse_index(acc.indices[1], x)  # must not raise

    def test_mixed_stagger_requires_x0(self, grid2d):
        x, y = grid2d.dimensions
        v = TimeFunction(name='v', grid=grid2d, space_order=4,
                         staggered=(x,))
        # staggered-to-staggered (x0 = 1/2): central even stencil
        e = Derivative(v, (x, 2), fd_order=4,
                       x0={x: Fraction(1, 2)}).evaluate
        assert len(indexeds(e)) == 5


class TestSolve:
    def test_linear_symbol(self):
        x, y = Symbol('a'), Symbol('b')
        assert solve(2 * x - 6 * y, x) == 3 * y

    def test_wave_update_reproduces_residual(self, grid2d):
        u = TimeFunction(name='u', grid=grid2d, space_order=2, time_order=2)
        m = Function(name='m', grid=grid2d, space_order=2)
        pde = m * u.dt2 - u.laplace
        target = u.forward
        update = solve(pde, target)
        # substituting back must satisfy the (expanded) equation
        residual = expand_derivatives(pde)
        from repro.symbolics import indexify
        residual = indexify(residual)
        back = residual.xreplace({indexify(target)
                                  if hasattr(target, 'indexify')
                                  else target: update})
        a, b = linear_coeffs(back, Symbol('__none__'))
        # numeric check at arbitrary bindings
        rng = np.random.default_rng(7)
        bindings = {}
        for node in preorder(back):
            if node.is_Indexed and node not in bindings:
                bindings[node] = float(rng.uniform(-1, 1))
            elif node.is_Symbol and node not in bindings:
                bindings[node] = float(rng.uniform(0.5, 1.5))
        assert abs(back.evalf(bindings)) < 1e-9

    def test_missing_target_raises(self):
        a, b = Symbol('a'), Symbol('b')
        with pytest.raises(ValueError):
            solve(2 * b, a)


class TestCSE:
    def test_extracts_repeated(self):
        class F:
            name = 'u'
        x, c = Symbol('x'), Symbol('c')
        u = Indexed(F(), x)
        # note: a numeric coefficient would distribute over the sum at
        # construction (SymPy semantics), so use a symbolic one
        e = (u + 1) ** 2 + (u + 1) * c
        temps, out = cse([(None, e)])
        assert len(temps) == 1
        t, rhs = temps[0]
        assert rhs == u + 1

    def test_no_candidates_is_noop(self):
        x = Symbol('x')
        temps, out = cse([(None, x + 1)])
        assert temps == []

    def test_index_arithmetic_never_extracted(self):
        class F:
            name = 'u'
        x = Symbol('x')
        a1 = Indexed(F(), x + 2)
        a2 = Indexed(F(), x + 2)
        e = a1 * 3 + a2 * 5 + Indexed(F(), x + 1)
        temps, out = cse([(None, e)])
        for t, rhs in temps:
            assert not rhs == x + 2

    def test_preserves_value(self):
        class F:
            name = 'u'
        x = Symbol('x')
        u0, u1 = Indexed(F(), x), Indexed(F(), x + 1)
        e = (u0 * u1 + 2) * (u0 * u1 + 2) + u0 * u1
        temps, [(_, out)] = cse([(None, e)])
        bindings = {u0: 1.7, u1: -0.3}
        for t, rhs in temps:
            bindings[t] = rhs.evalf(bindings)
        assert math.isclose(out.evalf(bindings), e.evalf({u0: 1.7, u1: -0.3}))

    def test_nested_candidates_chain(self):
        class F:
            name = 'u'
        x, a, b = Symbol('x'), Symbol('a'), Symbol('b')
        u0 = Indexed(F(), x)
        inner = u0 + 1
        outer = (inner ** 2)
        e = outer * a + outer * b + inner
        temps, _ = cse([(None, e)])
        names = [t.name for t, _ in temps]
        assert len(temps) >= 2
        # the larger temp must reference the smaller one
        big_rhs = temps[-1][1]
        assert any(isinstance(n, Temp) for n in preorder(big_rhs))


class TestFactorize:
    def test_groups_by_scalar_prefactor(self):
        class F:
            name = 'u'
        x = Symbol('x')
        r1 = Symbol('r1')
        a, b = Indexed(F(), x), Indexed(F(), x + 1)
        e = r1 * a + r1 * b
        f = factorize(e)
        assert f == r1 * (a + b)

    def test_preserves_value(self):
        class F:
            name = 'u'
        x = Symbol('x')
        r1, r2 = Symbol('r1'), Symbol('r2')
        a, b, c = Indexed(F(), x), Indexed(F(), x + 1), Indexed(F(), x + 2)
        e = r1 * a + r1 * b + r2 * c
        f = factorize(e)
        bind = {a: 0.3, b: -1.2, c: 2.5, r1: 0.7, r2: -0.1}
        assert math.isclose(f.evalf(bind), e.evalf(bind))

    def test_flop_reduction(self):
        class F:
            name = 'u'
        x = Symbol('x')
        r1 = Symbol('r1')
        terms = [r1 * Indexed(F(), x + i) for i in range(5)]
        e = S(0)
        for t in terms:
            e = e + t
        assert factorize(e).count_ops() < e.count_ops()


class TestHoistInvariants:
    def test_hoists_spacing_expressions(self):
        class F:
            name = 'u'
        x = Symbol('x')
        h = Symbol('h_x')
        u0 = Indexed(F(), x)
        e = u0 / (h * h) + 1 / (h * h)

        def invariant(n):
            return not any(s.is_Indexed for s in preorder(n))

        temps, [out] = hoist_invariants([e], invariant)
        assert len(temps) >= 1
        assert any('h_x' in str(rhs) for _, rhs in temps)

    def test_indexed_subtrees_untouched(self):
        class F:
            name = 'u'
        x = Symbol('x')
        u0 = Indexed(F(), x + 3)

        def invariant(n):
            return not any(s.is_Indexed for s in preorder(n))

        temps, [out] = hoist_invariants([2 * u0], invariant)
        assert out == 2 * u0


class TestPrinters:
    def test_ccode_float_literals(self):
        x = Symbol('x')
        assert 'F' in ccode(x * 0.5)

    def test_ccode_integer_pow_unrolled(self):
        x = Symbol('x')
        assert ccode(x ** 2) == 'x*x'
        assert ccode(x ** 3) == 'x*x*x'

    def test_ccode_division(self):
        x, h = Symbol('x'), Symbol('h_x')
        text = ccode(x / h ** 2)
        assert '/' in text and 'pow' not in text

    def test_ccode_sqrt(self):
        x = Symbol('x')
        assert 'sqrtf' in ccode(sqrt(x))

    def test_ccode_functions(self):
        x = Symbol('x')
        assert ccode(sin(x)) == 'sinf(x)'

    def test_pycode_numpy_namespace(self):
        x = Symbol('x')
        assert pycode(sin(x)) == 'np.sin(x)'

    def test_pycode_evaluates(self):
        x = Symbol('x')
        e = (x + 2) ** 2 / 4 - sin(x)
        text = pycode(e)
        val = eval(text, {'np': np, 'x': 0.5})
        assert math.isclose(val, e.evalf({x: 0.5}), rel_tol=1e-9)

    def test_pycode_rational_as_float(self):
        x = Symbol('x')
        assert pycode(Rational(1, 3) * x) in (
            '0.3333333333333333*x', 'x*0.3333333333333333')

    def test_indexed_c_style(self):
        class F:
            name = 'u'
        x = Symbol('x')
        assert ccode(Indexed(F(), x + 2)) == 'u[2 + x]'
