"""Tests for the survey service: specs, store, pool, scheduler, CLI.

The hardening sweep of the batch subsystem:

* property-style randomized batches — every job completes exactly once,
  results are bit-identical to a solo ``Operator.apply`` of the same
  shot, priority ordering is respected;
* a fault matrix — a job killed mid-flight by injected faults is
  retried (with the fired kill disarmed) or marked failed per policy,
  and the rest of the batch is unaffected;
* the ArrayStore — roundtrip, torn writes, corruption, concurrency and
  retention.
"""

import json
import os
import random
import threading

import numpy as np
import pytest

from repro.service import (ArrayStore, OperatorPool, ShotSpec,
                           StoreCorruptionError, SurveyScheduler,
                           new_job_id, percentile, run_shot_solo)
from repro.service.report import BatchReport

# small-but-real shot templates (kwargs for ShotSpec)
SHOTS = {
    'acoustic': dict(kernel='acoustic', shape=(41, 41), tn=60.0,
                     space_order=4, nrec=6),
    'acoustic_so8': dict(kernel='acoustic', shape=(41, 41), tn=60.0,
                         space_order=8, nrec=6),
    'elastic': dict(kernel='elastic', shape=(31, 31), tn=40.0,
                    space_order=4, nrec=4),
    'viscoelastic': dict(kernel='viscoelastic', shape=(31, 31), tn=40.0,
                         space_order=4, nrec=4),
}


def _solo(spec):
    """The oracle, minus runtime-only fields (faults never fire in it)."""
    clean = {k: v for k, v in spec.to_dict().items()
             if k in ('kernel', 'shape', 'tn', 'space_order', 'nbl',
                      'spacing', 'nrec', 'dt')}
    return run_shot_solo(ShotSpec(**clean))


class TestShotSpec:

    def test_roundtrip(self, tmp_path):
        spec = ShotSpec('elastic', (32, 40), tn=80.0, space_order=8,
                        nbl=8, nrec=5, dt=0.5, priority=3,
                        faults='seed=1,kill=0@5', max_retries=2,
                        job_id='job-x')
        path = tmp_path / 'spec.json'
        spec.save(path)
        assert ShotSpec.load(path) == spec

    def test_structure_key_excludes_runtime_fields(self):
        a = ShotSpec('acoustic', (41, 41), tn=60.0)
        b = ShotSpec('acoustic', (41, 41), tn=60.0, priority=9,
                     faults='seed=1,kill=0@5', max_retries=3, dt=0.9,
                     job_id='job-y')
        assert a.structure_key() == b.structure_key()
        c = ShotSpec('acoustic', (41, 41), tn=60.0, space_order=8)
        assert a.structure_key() != c.structure_key()

    @pytest.mark.parametrize('bad', [
        dict(kernel='warp', shape=(41, 41)),
        dict(kernel='acoustic', shape=(41,)),
        dict(kernel='acoustic', shape=(2, 2)),
        dict(kernel='acoustic', shape=(41, 41), tn=0),
        dict(kernel='acoustic', shape=(41, 41), space_order=3),
        dict(kernel='acoustic', shape=(41, 41), nbl=-1),
        dict(kernel='acoustic', shape=(41, 41), nrec=-2),
        dict(kernel='acoustic', shape=(41, 41), spacing=(10.0,)),
        dict(kernel='acoustic', shape=(41, 41), faults='kill=nope'),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ShotSpec(**bad)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match='unknown shot spec field'):
            ShotSpec.from_dict({'kernel': 'acoustic', 'shape': [41, 41],
                                'warp_factor': 9})

    def test_job_ids_unique(self):
        ids = {new_job_id() for _ in range(64)}
        assert len(ids) == 64


class TestArrayStore:

    def test_roundtrip_bit_identical(self, tmp_path):
        store = ArrayStore(tmp_path)
        rng = np.random.default_rng(7)
        for i, array in enumerate([
                rng.random((13, 7), dtype=np.float32),
                rng.random((3, 4, 5)),
                np.arange(11, dtype=np.int64),
                np.array([[np.nan, np.inf], [-0.0, 1e-38]],
                         dtype=np.float32)]):
            key = 'job-r/%d' % i
            store.put(key, array)
            got = store.get(key)
            assert got.dtype == array.dtype
            assert got.shape == array.shape
            assert np.array_equal(got.tobytes(), array.tobytes())

    def test_missing_key_and_bad_keys(self, tmp_path):
        store = ArrayStore(tmp_path)
        with pytest.raises(KeyError):
            store.get('job-x/rec')
        for bad in ('', '../escape', 'a//b', '.hidden', 'a/<b>'):
            with pytest.raises(ValueError):
                store.put(bad, np.zeros(3))

    def test_truncation_detected(self, tmp_path):
        store = ArrayStore(tmp_path)
        store.put('j/wf', np.arange(100, dtype=np.float32))
        path = store._path('j/wf')
        blob = open(path, 'rb').read()
        # a torn write from a crashed non-atomic writer: cut mid-payload
        with open(path, 'wb') as f:
            f.write(blob[:len(blob) - 37])
        with pytest.raises(StoreCorruptionError, match='torn|bytes'):
            store.get('j/wf')

    def test_bit_flip_detected(self, tmp_path):
        store = ArrayStore(tmp_path)
        store.put('j/wf', np.arange(64, dtype=np.float32))
        path = store._path('j/wf')
        blob = bytearray(open(path, 'rb').read())
        blob[-5] ^= 0x40  # flip one payload bit
        open(path, 'wb').write(bytes(blob))
        with pytest.raises(StoreCorruptionError, match='CRC'):
            store.get('j/wf')

    def test_header_and_magic_corruption(self, tmp_path):
        store = ArrayStore(tmp_path)
        store.put('j/a', np.zeros(4, dtype=np.float32))
        path = store._path('j/a')
        open(path, 'wb').write(b'NOTANARR\n{}\n')
        with pytest.raises(StoreCorruptionError, match='magic'):
            store.get('j/a')
        open(path, 'wb').write(b'RPROARR1\nnot-json\n\x00\x00')
        with pytest.raises(StoreCorruptionError, match='header'):
            store.get('j/a')

    def test_concurrent_writers_and_readers(self, tmp_path):
        store = ArrayStore(tmp_path)
        arrays = {('t%d/a%d' % (t, i)): np.full(257, t * 100 + i,
                                                dtype=np.float64)
                  for t in range(4) for i in range(8)}
        errors = []

        def work(t):
            try:
                for i in range(8):
                    key = 't%d/a%d' % (t, i)
                    store.put(key, arrays[key])
                    got = store.get(key)
                    assert np.array_equal(got, arrays[key])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert not errors
        assert len(store.keys()) == 32
        for key, array in arrays.items():
            assert np.array_equal(store.get(key), array)

    def test_keys_prefix_delete_clear(self, tmp_path):
        store = ArrayStore(tmp_path)
        store.put('a/x', np.zeros(2))
        store.put('a/y', np.zeros(2))
        store.put('b/x', np.zeros(2))
        assert store.keys() == ['a/x', 'a/y', 'b/x']
        assert store.keys('a') == ['a/x', 'a/y']
        assert 'a/x' in store
        assert store.delete('a/x')
        assert not store.delete('a/x')
        assert store.keys('a') == ['a/y']
        assert store.clear() == 2
        assert store.keys() == []
        # empty key subdirectories are swept with their last entry
        assert not [d for d in os.listdir(tmp_path)
                    if os.path.isdir(os.path.join(tmp_path, d))]

    def test_prune_retention(self, tmp_path):
        store = ArrayStore(tmp_path)
        for i in range(6):
            store.put('j%d/wf' % i, np.zeros(16))
            # mtime-ranked retention: force distinct, increasing stamps
            os.utime(store._path('j%d/wf' % i), (1000 + i, 1000 + i))
        dropped = store.prune(max_entries=2)
        assert sorted(dropped) == ['j0/wf', 'j1/wf', 'j2/wf', 'j3/wf']
        assert store.keys() == ['j4/wf', 'j5/wf']
        entry = store.nbytes('j4/wf')
        assert store.prune(max_bytes=entry) == ['j4/wf']
        assert store.keys() == ['j5/wf']
        assert store.prune() == []


class TestOperatorPool:

    def test_reuse_and_discard(self):
        pool = OperatorPool(cache=False)
        spec = ShotSpec(**SHOTS['acoustic'])
        a = pool.checkout(spec)
        pool.checkin(a)
        b = pool.checkout(spec)
        assert b is a  # same structure -> instance reuse
        pool.checkin(b, healthy=False)
        c = pool.checkout(spec)
        assert c is not a  # crashed instances are never reused
        stats = pool.snapshot_stats()
        assert stats['reuses'] == 1
        assert stats['discards'] == 1
        assert stats['cold_builds'] == 2

    def test_reused_instance_is_bit_identical(self):
        pool = OperatorPool(cache=False)
        spec = ShotSpec(**SHOTS['acoustic'])
        inst = pool.checkout(spec)
        first = inst.solver.forward()
        wf1 = first[1].data.gather().copy()
        rec1 = first[0].copy()
        pool.checkin(inst)
        again = pool.checkout(spec)
        assert again is inst
        second = again.solver.forward()
        assert np.array_equal(second[1].data.gather(), wf1)
        assert np.array_equal(second[0], rec1)

    def test_max_idle_per_key(self):
        pool = OperatorPool(cache=False, max_idle_per_key=1)
        spec = ShotSpec(**SHOTS['elastic'])
        a = pool.checkout(spec)
        b = pool.checkout(spec)
        pool.checkin(a)
        pool.checkin(b)  # over the cap: discarded
        assert pool.idle_count() == 1
        assert pool.snapshot_stats()['discards'] == 1

    def test_arm_disarm(self):
        pool = OperatorPool(cache=False)
        spec = ShotSpec(**SHOTS['acoustic'])
        from repro.mpi.faults import FaultPlan
        plan = FaultPlan.parse('seed=3,kill=0@7')
        inst = pool.checkout(spec, faults=plan, disarmed={(0, 7)})
        assert inst.world.faults is plan
        assert inst.world.disarmed_kills == {(0, 7)}
        pool.checkin(inst)
        assert inst.world.faults is None
        assert inst.world.disarmed_kills == set()


class TestSchedulerProperties:
    """Property-style randomized batches against the solo oracle."""

    @pytest.mark.parametrize('seed', [0, 1])
    def test_random_batch_exactly_once_and_bit_identical(self, seed):
        rng = random.Random(seed)
        names = list(SHOTS)
        specs = [ShotSpec(**SHOTS[rng.choice(names)],
                          priority=rng.randint(-2, 2))
                 for _ in range(8)]
        sched = SurveyScheduler(workers=rng.choice([1, 2, 3]),
                                cache='memory')
        ids = sched.submit_batch(specs)
        report = sched.run()
        assert len(set(ids)) == len(ids)
        assert len(report.completed) == len(specs)
        assert not report.failed
        for record in sched.jobs:
            assert record.completions == 1  # exactly once
            assert record.attempts == 1
        # spot-check bit-identity per distinct structure (the full
        # batch shares instances; one check per structure covers all)
        seen = set()
        for spec, jid in zip(specs, ids):
            if spec.structure_key() in seen:
                continue
            seen.add(spec.structure_key())
            solo = _solo(spec)
            got = sched.result(jid)
            assert np.array_equal(got['wavefield'], solo['wavefield'])
            assert np.array_equal(got['rec'], solo['rec'])

    def test_priority_order_single_worker(self):
        # workers=1 makes the drain strictly sequential: start order
        # must be priority-descending, FIFO within equal priority
        specs = [ShotSpec(**SHOTS['acoustic'], priority=p)
                 for p in (0, 2, 1, 2, 0)]
        sched = SurveyScheduler(workers=1, cache='memory')
        sched.submit_batch(specs)
        sched.run()
        records = sched.jobs
        expected = sorted(range(len(specs)),
                          key=lambda i: (-specs[i].priority, i))
        started = sorted(range(len(records)),
                         key=lambda i: records[i].started_order)
        assert started == expected

    def test_batch_shares_warm_instances(self):
        specs = [ShotSpec(**SHOTS['acoustic']) for _ in range(6)]
        sched = SurveyScheduler(workers=1, cache='memory')
        sched.submit_batch(specs)
        report = sched.run()
        stats = report.pool_stats
        assert stats['cold_builds'] + stats['warm_builds'] == 1
        assert stats['reuses'] == 5
        assert report.warm_hit_rate >= 5 / 6

    def test_results_in_store(self, tmp_path):
        spec = ShotSpec(**SHOTS['acoustic'])
        sched = SurveyScheduler(workers=1, store=str(tmp_path),
                                cache=False)
        jid = sched.submit(spec)
        sched.run()
        store = ArrayStore(tmp_path)
        assert store.keys(jid) == sorted(
            ['%s/wavefield' % jid, '%s/rec' % jid])
        solo = _solo(spec)
        assert np.array_equal(store.get('%s/wavefield' % jid),
                              solo['wavefield'])
        assert np.array_equal(sched.result(jid)['rec'], solo['rec'])

    def test_submit_rejects_junk(self):
        sched = SurveyScheduler(workers=1)
        with pytest.raises(TypeError):
            sched.submit({'kernel': 'acoustic'})
        spec = ShotSpec(**SHOTS['acoustic'], job_id='job-dup')
        sched.submit(spec)
        with pytest.raises(ValueError, match='duplicate'):
            sched.submit(spec)
        with pytest.raises(ValueError):
            SurveyScheduler(workers=0)


class TestAutoscale:
    """Distributed shots + elastic autoscaling: pooled idle capacity is
    donated to hot jobs, which grow onto it mid-run — bit-identically."""

    DIST = dict(kernel='acoustic', shape=(16, 16), tn=40.0,
                space_order=2, nbl=2, nrec=3)

    def _park_idle(self, pool, n):
        """Warm ``n`` idle 1-rank instances into the pool."""
        warm = ShotSpec(**self.DIST)
        leased = [pool.checkout(warm) for _ in range(n)]
        for inst in leased:
            pool.checkin(inst)
        assert pool.idle_count() == n

    def test_distributed_job_bit_identical_to_solo(self):
        spec = ShotSpec(**self.DIST, ranks=2)
        sched = SurveyScheduler(workers=1, cache=False)
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        rec = sched.status(jid)
        assert rec['perf']['ranks'] == 2
        assert rec['perf']['grown_ranks'] == 0
        solo = _solo(spec)
        got = sched.result(jid)
        assert np.array_equal(got['wavefield'], solo['wavefield'])
        assert np.array_equal(got['rec'], solo['rec'])

    def test_autoscale_grows_onto_donated_ranks(self):
        pool = OperatorPool(cache=False)
        sched = SurveyScheduler(workers=1, pool=pool, autoscale=True)
        self._park_idle(pool, 2)
        spec = ShotSpec(**self.DIST, ranks=2)
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        rec = sched.status(jid)
        assert rec['perf']['ranks'] == 2
        assert rec['perf']['grown_ranks'] == 2
        assert pool.stats['donations'] == 2
        assert pool.idle_count() == 0
        # mid-run growth 2 -> 4 left the results bit-identical
        solo = _solo(spec)
        got = sched.result(jid)
        assert np.array_equal(got['wavefield'], solo['wavefield'])
        assert np.array_equal(got['rec'], solo['rec'])

    def test_autoscale_max_caps_donations(self):
        pool = OperatorPool(cache=False)
        sched = SurveyScheduler(workers=1, pool=pool, autoscale=True,
                                autoscale_max=1)
        self._park_idle(pool, 2)
        spec = ShotSpec(**self.DIST, ranks=2)
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        rec = sched.status(jid)
        assert rec['perf']['grown_ranks'] == 1
        assert pool.stats['donations'] == 1
        assert pool.idle_count() == 1
        got = sched.result(jid)
        solo = _solo(spec)
        assert np.array_equal(got['wavefield'], solo['wavefield'])

    def test_autoscale_without_idle_capacity_runs_as_requested(self):
        pool = OperatorPool(cache=False)
        sched = SurveyScheduler(workers=1, pool=pool, autoscale=True)
        spec = ShotSpec(**self.DIST, ranks=2)
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        rec = sched.status(jid)
        assert rec['perf']['grown_ranks'] == 0
        got = sched.result(jid)
        solo = _solo(spec)
        assert np.array_equal(got['wavefield'], solo['wavefield'])
        assert np.array_equal(got['rec'], solo['rec'])

    def test_autoscaled_results_in_store_crc_and_geometry(self, tmp_path):
        """Arrays persisted after a mid-batch autoscale read back with
        valid CRCs and the same geometry + bytes as the solo run."""
        pool = OperatorPool(cache=False)
        sched = SurveyScheduler(workers=1, pool=pool, autoscale=True,
                                store=str(tmp_path))
        self._park_idle(pool, 2)
        spec = ShotSpec(**self.DIST, ranks=2)
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        store = ArrayStore(tmp_path)
        solo = _solo(spec)
        for key in ('wavefield', 'rec'):
            arr = store.get('%s/%s' % (jid, key))  # CRC-checked read
            assert arr.shape == solo[key].shape
            assert arr.dtype == solo[key].dtype
            assert np.array_equal(arr, solo[key])


class TestFaultMatrix:
    """PR 2 fault injection against the batch: kills stay contained."""

    def test_killed_job_retried_and_batch_survives(self):
        specs = [ShotSpec(**SHOTS['acoustic']),
                 ShotSpec(**SHOTS['acoustic'],
                          faults='seed=1,kill=0@5'),
                 ShotSpec(**SHOTS['elastic'])]
        sched = SurveyScheduler(workers=2, max_retries=1,
                                cache='memory')
        ids = sched.submit_batch(specs)
        report = sched.run()
        assert len(report.completed) == 3
        assert not report.failed
        victim = sched.status(ids[1])
        assert victim['attempts'] == 2
        assert victim['disarmed_kills'] == [[0, 5]]
        assert 'RankKilledError' in victim['retry_errors'][0]
        assert report.pool_stats['discards'] >= 1
        # survivors AND the retried job are bit-identical to solo runs
        for spec, jid in zip(specs, ids):
            solo = _solo(spec)
            got = sched.result(jid)
            assert np.array_equal(got['wavefield'], solo['wavefield'])
        # exactly once despite the retry
        for record in sched.jobs:
            assert record.completions == 1

    def test_exhausted_retries_fail_only_that_job(self):
        specs = [ShotSpec(**SHOTS['acoustic'],
                          faults='seed=1,kill=0@5'),
                 ShotSpec(**SHOTS['acoustic'])]
        sched = SurveyScheduler(workers=2, max_retries=0,
                                cache='memory')
        ids = sched.submit_batch(specs)
        report = sched.run()
        assert [r.job_id for r in report.failed] == [ids[0]]
        assert len(report.completed) == 1
        failed = sched.status(ids[0])
        assert failed['state'] == 'failed'
        assert 'RankKilledError' in failed['error']
        assert failed['completions'] == 0
        with pytest.raises(ValueError, match='failed'):
            sched.result(ids[0])
        solo = _solo(specs[1])
        assert np.array_equal(sched.result(ids[1])['wavefield'],
                              solo['wavefield'])

    def test_per_spec_retry_budget_wins(self):
        # two kills planned; spec budget of 2 outlasts them both
        spec = ShotSpec(**SHOTS['acoustic'],
                        faults='seed=1,kill=0@5,kill=0@9',
                        max_retries=2)
        sched = SurveyScheduler(workers=1, max_retries=0,
                                cache='memory')
        jid = sched.submit(spec)
        report = sched.run()
        assert not report.failed
        record = sched.status(jid)
        assert record['attempts'] == 3
        assert sorted(record['disarmed_kills']) == [[0, 5], [0, 9]]
        solo = _solo(spec)
        assert np.array_equal(sched.result(jid)['wavefield'],
                              solo['wavefield'])

    def test_record_persistence(self, tmp_path):
        record_dir = tmp_path / 'jobs'
        sched = SurveyScheduler(workers=1, cache=False,
                                record_dir=str(record_dir))
        jid = sched.submit(ShotSpec(**SHOTS['acoustic']))
        sched.run()
        payload = json.loads((record_dir / ('%s.json' % jid)).read_text())
        assert payload['state'] == 'done'
        assert payload['spec']['kernel'] == 'acoustic'
        assert payload['perf']['timesteps'] > 0
        report = json.loads((record_dir / 'report.json').read_text())
        assert report['completed'] == 1
        assert report['jobs'][0]['job_id'] == jid


class TestReport:

    def test_percentile(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 99) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0

    def test_report_rollup_without_scheduler(self):
        class Rec:
            def __init__(self, state, kernel, latency, perf):
                self.state = state
                self.attempts = 1
                self.latency_seconds = latency
                self.perf = perf
                self.job_id = 'job-%s' % kernel
                self.error = None
                self.spec = type('S', (), {'kernel': kernel})()

            def to_dict(self):
                return {'job_id': self.job_id, 'state': self.state}

        perf = {'points': 100, 'timesteps': 10, 'elapsed': 0.5,
                'gpointss': 0.002, 'section_kinds': {'compute': 0.4,
                                                     'halo': 0.1}}
        records = [Rec('done', 'acoustic', 0.1, perf),
                   Rec('done', 'acoustic', 0.3, perf),
                   Rec('failed', 'elastic', None, None)]
        report = BatchReport(records, 2.0, {'warm_hit_rate': 0.5})
        assert report.njobs == 3
        assert len(report.completed) == 2
        assert report.shots_per_hour == 2 * 3600 / 2.0
        agg = report.aggregate()
        assert agg['points_updated'] == 2000
        assert agg['sections'] == {'compute': 0.8, 'halo': 0.2}
        assert agg['kernels']['acoustic']['jobs'] == 2
        assert 'FAILED job-elastic' in report.render()


class TestServiceKwargs:

    def test_summary_carries_job_id(self):
        spec = ShotSpec(**SHOTS['acoustic'])
        sched = SurveyScheduler(workers=1, cache=False)
        jid = sched.submit(spec)
        sched.run()
        assert sched.status(jid)['perf']['build_status'] in (
            'miss', 'hit', 'off')
        solo = _solo(spec)
        assert solo['summary'].job_id is None
        assert solo['summary'].to_dict()['job_id'] is None


class TestServiceCLI:

    def test_submit_serve_status_fetch(self, tmp_path, capsys):
        from repro.cli import main
        root = str(tmp_path / 'svc')
        main(['submit', 'acoustic', '-d', '41', '41', '--tn', '60',
              '--nrec', '6', '--dir', root, '--job-id', 'job-cli'])
        main(['submit', 'elastic', '-d', '31', '31', '--tn', '40',
              '--nrec', '4', '--priority', '4', '--dir', root,
              '--job-id', 'job-cli2'])
        assert os.path.exists(os.path.join(root, 'queue',
                                           'job-cli.json'))
        main(['serve', '--dir', root, '--workers', '2'])
        out = capsys.readouterr().out
        assert '2 done, 0 failed' in out
        # the queue was consumed; records and results persisted
        assert not os.listdir(os.path.join(root, 'queue'))
        main(['status', '--dir', root])
        out = capsys.readouterr().out
        assert 'job-cli' in out and 'done' in out
        main(['status', 'job-cli', '--dir', root, '--json'])
        record = json.loads(capsys.readouterr().out)
        assert record['state'] == 'done'
        target = str(tmp_path / 'wf.npy')
        main(['fetch', 'job-cli/wavefield', '--dir', root, '-o', target])
        solo = _solo(ShotSpec(**SHOTS['acoustic']))
        assert np.array_equal(np.load(target), solo['wavefield'])

    def test_serve_reports_failures_via_exit_code(self, tmp_path,
                                                  capsys):
        from repro.cli import main
        root = str(tmp_path / 'svc')
        main(['submit', 'acoustic', '-d', '41', '41', '--tn', '60',
              '--dir', root, '--inject-faults', 'seed=1,kill=0@5',
              '--retries', '0', '--job-id', 'job-doomed'])
        with pytest.raises(SystemExit):
            main(['serve', '--dir', root, '--workers', '1'])
        capsys.readouterr()
        main(['status', 'job-doomed', '--dir', root, '--json'])
        record = json.loads(capsys.readouterr().out)
        assert record['state'] == 'failed'
        assert 'RankKilledError' in record['error']

    def test_status_empty_and_missing(self, tmp_path, capsys):
        from repro.cli import main
        root = str(tmp_path / 'svc')
        main(['serve', '--dir', root])
        assert 'nothing queued' in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(['status', 'job-ghost', '--dir', root])
