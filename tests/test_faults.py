"""Deterministic fault injection + communication-correctness validation.

Covers the transport adversary (:mod:`repro.mpi.faults`), the
always-available validator (:mod:`repro.mpi.commlog`) and their
integration with the exchangers and ``Operator.apply``:

* fault-plan spec parsing and scheduling determinism;
* non-lethal plans (drop / duplicate / reorder / delay) are fully
  masked by the retry/dedup/ordering machinery — results stay
  bit-identical, and the same seed yields the same fault schedule;
* a killed rank surfaces as a clean :class:`RankKilledError` /
  :class:`RemoteRankError` from ``apply`` on *every* rank, with no
  leaked progress threads and no stale exchange state;
* counter snapshot/delta semantics survive an aborted apply (the next
  apply on a recovered world never double-counts);
* unmatched sends, tag collisions and wait-for-graph deadlock cycles
  are detected and reported by name.
"""

import threading

import numpy as np
import pytest

from repro import (Eq, Grid, Operator, TimeFunction, configuration, solve)
from repro.mpi import (CommValidationError, Data, DeadlockError, DimSpec,
                       Distributor, FaultPlan, RankKilledError,
                       RemoteRankError, SimComm, SimWorld, TagCollisionError,
                       check_tag_spaces, make_exchanger, run_parallel)
from repro.parameters import Configuration


@pytest.fixture(autouse=True)
def _restore_config():
    """Every test leaves the global configuration as it found it."""
    yield
    del configuration['faults']
    del configuration['commlog']
    del configuration['comm_timeout']
    del configuration['comm_retries']


def _leaked_progress_threads():
    return [t for t in threading.enumerate()
            if t.name == 'mpi-progress' and t.is_alive()]


def _diffusion_job(comm, mpi='diagonal', shape=(12, 12), steps=6, so=4,
                   progress=False):
    """One SPMD rank of the reference diffusion problem; returns the
    gathered field and the performance summary."""
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    init = np.zeros(shape, dtype=np.float32)
    init[tuple(s // 2 for s in shape)] = 1.0
    init[tuple(s // 3 for s in shape)] = -2.0
    u.data[0] = init
    eq = Eq(u.dt, u.laplace)
    op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                  progress=progress)
    summary = op.apply(time_M=steps - 1, dt=0.02)
    return u.data.gather(), summary


class TestFaultPlanSpec:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse(
            'seed=42,drop=0.05,duplicate=0.01,reorder=0.1,delay=0.2,'
            'delay_ms=2.5,kill=1@10,kill=3@7')
        assert plan.seed == 42
        assert plan.p_drop == 0.05
        assert plan.p_duplicate == 0.01
        assert plan.p_reorder == 0.1
        assert plan.p_delay == 0.2
        assert plan.delay == pytest.approx(2.5e-3)
        assert plan.kills == ((1, 10), (3, 7))
        assert plan.lethal

    def test_dup_alias(self):
        assert FaultPlan.parse('seed=1,dup=0.5') == \
            FaultPlan.parse('seed=1,duplicate=0.5')

    def test_describe_roundtrip(self):
        plan = FaultPlan.parse('seed=9,drop=0.25,kill=0@3')
        assert FaultPlan.parse(plan.describe()) == plan
        assert not FaultPlan.parse('seed=9,drop=0.25').lethal

    def test_parse_rejects_malformed(self):
        for bad in ('drop', 'frobnicate=1', 'kill=1', 'drop=nope',
                    'seed=1.5'):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(reorder=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(kills=[(-1, 0)])

    def test_decide_is_pure_and_seed_dependent(self):
        plan = FaultPlan(seed=7, drop=0.3, duplicate=0.3, reorder=0.3)
        messages = [(s, d, t, q) for s in range(2) for d in range(2)
                    for t in range(4) for q in range(8)]
        first = plan.schedule(messages)
        assert first == plan.schedule(messages)  # pure function
        assert first == FaultPlan(seed=7, drop=0.3, duplicate=0.3,
                                  reorder=0.3).schedule(messages)
        other = FaultPlan(seed=8, drop=0.3, duplicate=0.3,
                          reorder=0.3).schedule(messages)
        assert first != other  # different seed, different schedule
        assert any(a for a in first)  # the adversary actually fires
        # drop excludes the other channels
        for actions in first:
            if 'drop' in actions:
                assert actions == ('drop',)

    def test_tick_kills_only_the_named_rank_step(self):
        plan = FaultPlan(kills=[(1, 5)])
        plan.tick(0, 5)
        plan.tick(1, 4)
        with pytest.raises(RankKilledError) as err:
            plan.tick(1, 5)
        assert err.value.rank == 1 and err.value.timestep == 5
        assert isinstance(err.value, RemoteRankError)


class TestConfigurationKnobs:
    def test_env_seeding(self):
        cfg = Configuration(environ={'REPRO_FAULTS': 'seed=3,drop=0.125',
                                     'REPRO_COMMLOG': '0',
                                     'REPRO_COMM_TIMEOUT': '12.5',
                                     'REPRO_COMM_RETRIES': '5'})
        assert cfg['faults'] == FaultPlan(seed=3, drop=0.125)
        assert cfg['commlog'] is False
        assert cfg['comm_timeout'] == 12.5
        assert cfg['comm_retries'] == 5

    def test_defaults(self):
        cfg = Configuration(environ={})
        assert cfg['faults'] is False
        assert cfg['commlog'] is True
        assert cfg['comm_timeout'] == 60.0
        assert cfg['comm_retries'] == 3

    def test_spec_string_accepted(self):
        configuration['faults'] = 'seed=2,drop=0.1'
        assert configuration['faults'] == FaultPlan(seed=2, drop=0.1)
        configuration['faults'] = 'off'
        assert configuration['faults'] is False

    def test_bare_true_rejected(self):
        # 'true' without a spec is ambiguous: demand an explicit plan
        with pytest.raises(ValueError):
            configuration['faults'] = 'true'
        with pytest.raises(ValueError):
            configuration['comm_timeout'] = 0
        with pytest.raises(ValueError):
            configuration['comm_retries'] = -1

    def test_world_reads_configuration(self):
        configuration['faults'] = 'seed=11,drop=0.5'
        world = SimWorld(2)
        assert world.faults == FaultPlan(seed=11, drop=0.5)
        # explicit False overrides the configured plan
        assert SimWorld(2, faults=False).faults is None


class TestTransportFaults:
    """Channel-by-channel recovery at the raw transport level."""

    def test_drop_recovered_by_retry(self):
        world = SimWorld(2, faults=FaultPlan(seed=1, drop=1.0),
                         check_interval=0.01)
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        payload = np.arange(5, dtype=np.float32)
        c0.send(payload, 1, tag=4)
        assert world.ndrops_injected[1] == 1  # it really was dropped
        got = c1.recv(source=0, tag=4)
        assert np.array_equal(got, payload)
        assert world.nredelivered[1] == 1
        assert world.nretries[1] >= 1
        health = world.comm_health()
        assert health['drops_injected'] == 1
        assert health['redelivered'] == 1
        assert health['nsends'] == 1 and health['nrecvs'] == 1

    def test_duplicate_deduplicated(self):
        world = SimWorld(2, faults=FaultPlan(seed=1, duplicate=1.0))
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        c0.send(np.float32(3.0), 1, tag=0)
        assert world.ndups_injected[1] == 1
        assert c1.recv(source=0, tag=0) == np.float32(3.0)
        # the alias was purged: nothing left to receive
        assert not world.probe_pending(1, c1._id, 0, 0)

    def test_reorder_preserves_non_overtaking(self):
        world = SimWorld(2, faults=FaultPlan(seed=1, reorder=1.0))
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        for i in range(6):
            c0.send(i, 1, tag=2)
        # mailbox order is scrambled, matching order is not
        assert [c1.recv(source=0, tag=2) for _ in range(6)] == list(range(6))

    def test_drop_then_later_message_recovers_order(self):
        """A later same-stream arrival triggers on-the-spot redelivery
        of the earlier dropped message (no timeout burned)."""
        plan = FaultPlan(seed=0, drop=1.0)
        world = SimWorld(2, faults=plan, check_interval=5.0)
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        c0.send('first', 1, tag=9)       # dropped (seq 0)
        world.faults = None
        c0.send('second', 1, tag=9)      # delivered (seq 1)
        assert c1.recv(source=0, tag=9) == 'first'
        assert c1.recv(source=0, tag=9) == 'second'

    def test_delay_only_slows(self):
        world = SimWorld(2, faults=FaultPlan(seed=1, delay=1.0,
                                             delay_time=1e-4))
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        c0.send('x', 1, tag=0)
        assert c1.recv(source=0, tag=0) == 'x'

    def test_recv_timeout_bounded(self):
        world = SimWorld(2, recv_timeout=0.05, check_interval=0.01)
        with pytest.raises(RemoteRankError, match='timed out'):
            world.collect(0, ('world',), 1, 3)


class TestCommLogValidation:
    def test_unmatched_send_detected(self):
        world = SimWorld(2)
        c0 = SimComm(world, 0)
        c0.send(np.zeros(4, dtype=np.float32), 1, tag=3)
        world.commlog.validate(world, 0)  # rank 0's mailbox is clean
        with pytest.raises(CommValidationError, match='unmatched'):
            world.commlog.validate(world, 1)
        assert world.commlog.unmatched() == [(0, 1, 3, 1, None)]
        assert world.comm_health()['unmatched'] == 1

    def test_matched_traffic_validates(self):
        world = SimWorld(2)
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        c0.send('a', 1, tag=0)
        c1.recv(source=0, tag=0)
        world.commlog.validate(world, 0)
        world.commlog.validate(world, 1)
        assert world.commlog.unmatched() == []

    def test_disabled_commlog_records_nothing(self):
        configuration['commlog'] = False
        world = SimWorld(2)
        c0, c1 = SimComm(world, 0), SimComm(world, 1)
        c0.send('a', 1, tag=0)
        c1.recv(source=0, tag=0)
        assert world.commlog.counters()['nsends'] == 0

    def test_tag_collision_detected(self):
        dist = Distributor((8, 8))
        halo = [(1, 1), (1, 1)]
        widths = [(1, 1), (1, 1)]
        a = make_exchanger('diagonal', dist, halo, widths, tag_base=0)
        b = make_exchanger('diagonal', dist, halo, widths, tag_base=4)
        with pytest.raises(TagCollisionError, match='tag collision'):
            check_tag_spaces({'u': a, 'v': b})
        # disjoint spaces pass: 3^2 = 9 tags each
        c = make_exchanger('diagonal', dist, halo, widths, tag_base=9)
        check_tag_spaces({'u': a, 'v': c})

    def test_geometry_validation_accepts_uneven_decomposition(self):
        """validate_geometry must not false-positive on 13x11 over 3."""
        def job(comm):
            dist = Distributor((13, 11), comm=comm)
            specs = [DimSpec(n, dist_index=i, halo=(2, 2))
                     for i, n in enumerate((13, 11))]
            d = Data(specs, dist)
            d[...] = np.arange(13 * 11, dtype=np.float32).reshape(13, 11)
            ex = make_exchanger('diagonal', dist, d.halo,
                                [(2, 2), (2, 2)])
            ex.exchange(d.with_halo)
            return ex.nmessages

        counts = run_parallel(job, 3)
        assert all(c > 0 for c in counts)


class TestDeadlockDetection:
    def test_cycle_named_before_timeout(self):
        world = SimWorld(2, recv_timeout=30.0, check_interval=0.02)
        errors = {}

        def wait_on(rank, source, tag):
            try:
                world.collect(rank, ('world',), source, tag)
            except RemoteRankError as err:
                errors[rank] = err

        threads = [threading.Thread(target=wait_on, args=(0, 1, 5)),
                   threading.Thread(target=wait_on, args=(1, 0, 7))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert not any(t.is_alive() for t in threads)
        deadlocks = [e for e in errors.values()
                     if isinstance(e, DeadlockError)]
        assert deadlocks, errors
        err = deadlocks[0]
        assert sorted(err.cycle) == [0, 1]
        assert 'cycle' in str(err) and 'waits on' in str(err)

    def test_run_parallel_surfaces_deadlock(self):
        configuration['comm_timeout'] = 30.0

        def job(comm):
            # rank r waits for a message its peer never sends
            comm.recv(source=(comm.rank + 1) % 2, tag=99)

        with pytest.raises(DeadlockError):
            run_parallel(job, 2)

    def test_wildcard_waits_do_not_probe(self):
        """ANY_SOURCE edges are not concrete: no false cycle."""
        world = SimWorld(2, recv_timeout=0.1, check_interval=0.02)
        from repro.mpi import ANY_SOURCE
        with pytest.raises(RemoteRankError, match='timed out'):
            world.collect(0, ('world',), ANY_SOURCE, 5)


class TestOperatorFaultIntegration:
    def test_non_lethal_plan_bit_identical(self):
        """Same seed -> same schedule -> bit-identical fields; and the
        faults are fully masked vs the clean run."""
        clean = run_parallel(lambda c: _diffusion_job(c), 4)
        configuration['faults'] = \
            'seed=7,drop=0.04,duplicate=0.04,reorder=0.15'
        faulty1 = run_parallel(lambda c: _diffusion_job(c), 4)
        faulty2 = run_parallel(lambda c: _diffusion_job(c), 4)
        for (f0, _), (f1, s1), (f2, _) in zip(clean, faulty1, faulty2):
            assert np.array_equal(f1, f0)   # masked
            assert np.array_equal(f2, f1)   # deterministic
        health = faulty1[0][1].comm_health
        assert health['drops_injected'] > 0
        assert health['redelivered'] >= 1
        assert health['duplicates_injected'] > 0
        assert health['unmatched'] == 0

    @pytest.mark.parametrize('mode', ['basic', 'diagonal', 'full'])
    def test_non_lethal_plan_masked_every_mode(self, mode):
        clean = run_parallel(lambda c: _diffusion_job(c, mpi=mode,
                                                      steps=4), 4)
        configuration['faults'] = 'seed=5,drop=0.05,reorder=0.1'
        faulty = run_parallel(lambda c: _diffusion_job(c, mpi=mode,
                                                       steps=4), 4)
        for (f0, _), (f1, _) in zip(clean, faulty):
            assert np.array_equal(f1, f0)

    def test_comm_health_in_summary_json(self):
        configuration['faults'] = 'seed=3,drop=0.1'
        out = run_parallel(lambda c: _diffusion_job(c, steps=3), 2)
        summary = out[0][1]
        blob = summary.to_dict()
        assert blob['comm_health'] == summary.comm_health
        assert blob['comm_health']['nsends'] > 0

    def _kill_job(self, comm, barrier, clean_nmessages, progress=False):
        mpi = 'full' if progress else 'diagonal'
        grid = Grid(shape=(12, 12), comm=comm)
        u = TimeFunction(name='u', grid=grid, space_order=4)
        u.data[0, 6, 6] = 1.0
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                      progress=progress)
        outcome = None
        try:
            op.apply(time_M=5, dt=0.02)
        except RankKilledError as err:
            outcome = ('killed', err.rank, err.timestep)
        except RemoteRankError:
            outcome = ('peer', None, None)
        # collective teardown left no stale exchange state behind
        assert all(ex._inflight == [] for ex in op.exchangers.values())
        barrier.wait()
        if comm.rank == 0:
            comm.world.reset()
            comm.world.faults = None
        barrier.wait()
        # the recovered world supports a clean apply whose per-run
        # message deltas match a never-faulted reference exactly
        summary = op.apply(time_M=5, dt=0.02)
        assert summary.nmessages == clean_nmessages
        return outcome

    def _clean_count(self, mpi='diagonal', progress=False):
        def job(comm):
            grid = Grid(shape=(12, 12), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=4)
            eq = Eq(u.dt, u.laplace)
            op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                          progress=progress)
            return op.apply(time_M=5, dt=0.02).nmessages

        return run_parallel(job, 2)[0]

    def test_rank_kill_collective_teardown(self):
        clean = self._clean_count()
        configuration['faults'] = 'seed=1,kill=1@3'
        barrier = threading.Barrier(2)
        out = run_parallel(
            lambda c: self._kill_job(c, barrier, clean), 2, timeout=60.0)
        kinds = sorted(o[0] for o in out)
        assert kinds == ['killed', 'peer']
        killed = next(o for o in out if o[0] == 'killed')
        assert killed[1:] == (1, 3)
        assert _leaked_progress_threads() == []

    def test_rank_kill_full_mode_no_thread_leak(self):
        """full + progress thread: the kill path joins the prodder."""
        clean = self._clean_count(mpi='full', progress=True)
        configuration['faults'] = 'seed=1,kill=0@2'
        barrier = threading.Barrier(2)
        out = run_parallel(
            lambda c: self._kill_job(c, barrier, clean, progress=True),
            2, timeout=60.0)
        kinds = sorted(o[0] for o in out)
        assert kinds == ['killed', 'peer']
        assert _leaked_progress_threads() == []

    def test_kill_raises_from_run_parallel(self):
        """Without per-rank handling the error propagates cleanly."""
        configuration['faults'] = 'kill=0@1'
        with pytest.raises(RankKilledError):
            run_parallel(lambda c: _diffusion_job(c, steps=4), 2)
        assert _leaked_progress_threads() == []

    def test_serial_run_kill(self):
        """fault_tick fires on single-rank runs too."""
        configuration['faults'] = 'kill=0@2'
        grid = Grid(shape=(12, 12))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        eq = Eq(u.dt, u.laplace)
        op = Operator([Eq(u.forward, solve(eq, u.forward))])
        with pytest.raises(RankKilledError):
            op.apply(time_M=5, dt=0.02)
        # the plan was captured by the serial world at grid construction;
        # disarm it there and the same operator recovers
        grid.comm.world.faults = None
        grid.comm.world.reset()
        op.apply(time_M=5, dt=0.02)


class TestExchangerAbort:
    def test_full_abort_joins_progress_thread(self):
        def job(comm):
            dist = Distributor((8, 8), comm=comm)
            specs = [DimSpec(8, dist_index=i, halo=(2, 2))
                     for i in range(2)]
            d = Data(specs, dist)
            d[...] = np.arange(64, dtype=np.float32).reshape(8, 8)
            ex = make_exchanger('full', dist, d.halo, [(2, 2), (2, 2)],
                                progress=True)
            ex.begin(d.with_halo)
            assert ex._thread is not None and ex._thread.is_alive()
            ex.abort()           # begin() with no finish(): abort cleans up
            assert ex._thread is None
            assert ex._inflight == []
            # drain the peer's messages so teardown stays quiescent
            ex2 = make_exchanger('full', dist, d.halo, [(2, 2), (2, 2)])
            ex2.exchange(d.with_halo)
            return True

        assert all(run_parallel(job, 4))
        assert _leaked_progress_threads() == []
