"""The static verifier (repro.analysis) and the poisoned-halo sanitizer.

Three claims are exercised:

1. **Soundness on shipped code** — every propagator, at every space
   order and with every communication pattern, analyzes *clean* (zero
   diagnostics, warnings included).  The verifier re-derives the
   communication requirements independently of the scheduler, so this is
   a real cross-check, not a tautology.
2. **Sensitivity to seeded bugs** — mutations of a correct schedule
   (deleted exchange, shrunk halo depth, loop-carried equation in a
   parallel step, out-of-bounds offset) are each rejected with their
   documented diagnostic code.
3. **The runtime complement** — the NaN poisoned-halo sanitizer catches
   a stale-halo read that plain execution silently mis-computes, while
   remaining bit-identical to the un-instrumented run on correct code.
"""

import numpy as np
import pytest

from repro import Eq, Grid, Operator, TimeFunction, configuration, solve
from repro.analysis import (AnalysisError, CODES, HaloPoisonError,
                            analyze_schedule, describe_key, format_widths,
                            verify_schedule)
from repro.ir.clusters import HaloRequirement
from repro.mpi import run_parallel
from repro.mpi.commlog import TagCollisionError, check_tag_spaces
from repro.mpi.sim import RESERVED_TAG_SPACES
from repro.models import (acoustic_setup, elastic_setup, tti_setup,
                          viscoelastic_setup)

MODES = ('basic', 'diagonal', 'full')
SETUPS = {'acoustic': acoustic_setup, 'elastic': elastic_setup,
          'tti': tti_setup, 'viscoelastic': viscoelastic_setup}


def _diffusion_op(comm=None, mpi=None, shape=(16, 16), so=4, **kw):
    """A diffusion operator (not applied) plus its field."""
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    eq = Eq(u.dt, u.laplace)
    return Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                    **kw), u


# -- 1. zero diagnostics on every shipped model --------------------------------------


class TestCleanSchedules:
    @pytest.mark.parametrize('model', sorted(SETUPS))
    @pytest.mark.parametrize('so', [4, 8])
    @pytest.mark.parametrize('mode', MODES)
    def test_propagator_matrix(self, model, so, mode):
        setup = SETUPS[model]

        def build(comm):
            solver, _ = setup(shape=(36, 36), spacing=(10., 10.),
                              tn=70.0, space_order=so, nbl=4, comm=comm,
                              mpi=mode, nrec=4)
            return solver.op.analyze()

        for rank, report in enumerate(run_parallel(build, 2)):
            assert not report.diagnostics, (rank, report.render())

    def test_serial_clean(self):
        op, _ = _diffusion_op()
        report = op.analyze()
        assert bool(report)  # truthy == clean
        assert report.codes == []

    @pytest.mark.parametrize('mode', MODES)
    def test_diffusion_distributed_clean(self, mode):
        reports = run_parallel(
            lambda c: _diffusion_op(c, mpi=mode)[0].analyze(), 2)
        assert all(not r.diagnostics for r in reports)


# -- 2. mutation testing: seeded bugs are rejected by code ---------------------------


def _dist_op(comm, mode='basic', so=4):
    return _diffusion_op(comm, mpi=mode, so=so)[0]


class TestMutations:
    def test_deleted_halo_is_E101(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        assert any(s.is_halo for s in op.schedule.steps)
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        report = analyze_schedule(op.schedule)
        assert 'REPRO-E101' in report.codes
        assert report.errors

    def test_shrunk_halo_is_E102(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        for step in op.schedule.steps:
            if not step.is_halo:
                continue
            step.exchanges = [
                HaloRequirement(req.function, req.time_shift,
                                [(max(l - 1, 0), max(r - 1, 0))
                                 for l, r in req.widths])
                for req in step.exchanges]
        report = analyze_schedule(op.schedule)
        assert 'REPRO-E102' in report.codes

    def test_loop_carried_parallel_is_E111(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        # a Gauss-Seidel-style recurrence: reads its own write at x-1,
        # but every compute step is executed as a parallel sweep
        eq = Eq(u.forward,
                u.indexed(t + 1, x - 1, y) * 0.5 + u.indexed(t, x, y))
        op = Operator([eq], opt=False)
        report = op.analyze()
        assert 'REPRO-E111' in report.codes
        [diag] = report.by_code('REPRO-E111')
        assert 'u[t+1]' in diag.message

    def test_ww_race_is_E112(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        op = Operator([Eq(u.indexed(t + 1, x, y), u.indexed(t, x, y)),
                       Eq(u.indexed(t + 1, x + 1, y),
                          u.indexed(t, x, y) * 2.0)], opt=False)
        assert 'REPRO-E112' in op.analyze().codes

    def test_out_of_bounds_is_E121(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        op = Operator([Eq(u.forward, u.indexed(t, x + 20, y))], opt=False)
        assert 'REPRO-E121' in op.analyze().codes

    def test_every_code_documented(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith('REPRO-')
            assert severity in ('error', 'warning')
            assert title


# -- the compile-time gate (opt='verify' / REPRO_OPT=verify) -------------------------


class TestVerifyGate:
    def test_clean_build_attaches_report(self):
        op, _ = _diffusion_op(opt='verify')
        assert op.analysis is not None
        assert not op.analysis.diagnostics

    def test_gate_rejects_race_at_build(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        eq = Eq(u.forward,
                u.indexed(t + 1, x - 1, y) * 0.5 + u.indexed(t, x, y))
        with pytest.raises(AnalysisError) as err:
            Operator([eq], opt='verify')
        assert 'REPRO-E111' in str(err.value)

    def test_verify_schedule_raises_on_mutation(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        with pytest.raises(AnalysisError) as err:
            verify_schedule(op.schedule)
        assert 'REPRO-E101' in str(err.value)

    def test_configuration_accepts_verify(self):
        saved = configuration['opt']
        try:
            configuration['opt'] = 'verify'
            assert configuration['opt'] == 'verify'
            op, _ = _diffusion_op()  # global gate, clean build passes
            assert op.analysis is not None
        finally:
            configuration['opt'] = saved

    def test_analysis_build_time_recorded(self):
        op, _ = _diffusion_op(opt='verify')
        assert op.profiler.build_times.get('analysis', 0.0) >= 0.0
        assert 'analysis' in op.profiler.build_times


# -- 3. the poisoned-halo sanitizer --------------------------------------------------


def _sanitized_stale_run(comm, sanitize):
    """Run a diffusion op whose halo exchanges were deleted."""
    from repro.codegen.pybackend import generate_kernel
    op, u = _diffusion_op(comm, mpi='basic')
    u.data[0] = 1.0
    op.schedule.steps = [s for s in op.schedule.steps if not s.is_halo]
    op.kernel = generate_kernel(op.schedule, profiler=op.profiler,
                                sanitizer=sanitize)
    op._bind_sparse_plans()
    op.apply(time_M=3, dt=0.02)
    return u.data.gather()


class TestSanitizer:
    def test_catches_stale_halo_read(self):
        with pytest.raises(HaloPoisonError) as err:
            run_parallel(lambda c: _sanitized_stale_run(c, True), 2)
        assert 'section0' in str(err.value)

    def test_plain_mode_is_silent_on_same_bug(self):
        # the very bug the sanitizer catches: plain execution completes
        # without complaint (and computes garbage at the rank seam)
        result = run_parallel(lambda c: _sanitized_stale_run(c, False), 2)
        assert result is not None

    @pytest.mark.parametrize('mode', MODES)
    def test_bit_identical_when_clean(self, mode):
        def run(comm=None, sanitizer=None):
            op, u = _diffusion_op(comm, mpi=mode if comm else None,
                                  sanitizer=sanitizer)
            init = np.zeros(u.grid.shape, dtype=np.float32)
            init[tuple(s // 2 for s in u.grid.shape)] = 1.0
            u.data[0] = init
            op.apply(time_M=3, dt=0.02)
            return u.data.gather()

        serial = run()
        out = run_parallel(lambda c: run(c, sanitizer=True), 2)
        for r, field in enumerate(out):
            assert np.array_equal(field, serial), (mode, r)

    def test_configuration_key(self):
        saved = configuration['sanitizer']
        try:
            configuration['sanitizer'] = 'yes'
            assert configuration['sanitizer'] is True
            configuration['sanitizer'] = 0
            assert configuration['sanitizer'] is False
        finally:
            configuration['sanitizer'] = saved


# -- reserved tag spaces -------------------------------------------------------------


class _FakeExchanger:
    def __init__(self, lo, hi):
        self.tag_range = (lo, hi)


class TestTagSpaces:
    def test_disjoint_nonnegative_ranges_pass(self):
        check_tag_spaces({'a': _FakeExchanger(0, 27),
                          'b': _FakeExchanger(64, 91)})

    def test_overlapping_exchangers_collide(self):
        with pytest.raises(TagCollisionError):
            check_tag_spaces({'a': _FakeExchanger(0, 27),
                              'b': _FakeExchanger(20, 47)})

    def test_sentinel_band_reserved(self):
        with pytest.raises(TagCollisionError) as err:
            check_tag_spaces({'a': _FakeExchanger(-5, 22)})
        assert 'reserved' in str(err.value)

    def test_collective_band_reserved(self):
        # the resilience repartitioning alltoall rides on collective
        # tags; an exchanger must never be able to alias them
        with pytest.raises(TagCollisionError) as err:
            check_tag_spaces({'a': _FakeExchanger(-10_050, -10_020)})
        assert 'resilience' in str(err.value)

    def test_every_negative_tag_is_reserved(self):
        from repro.mpi.sim import (ANY_SOURCE, ANY_TAG, PROC_NULL,
                                   _COLLECTIVE_TAG_BASE)
        for tag in (PROC_NULL, ANY_SOURCE, ANY_TAG, -1,
                    _COLLECTIVE_TAG_BASE, _COLLECTIVE_TAG_BASE - 12345):
            assert any(lo <= tag < hi
                       for lo, hi, _ in RESERVED_TAG_SPACES), tag

    def test_live_kernel_exchangers_are_clean(self):
        def build(comm):
            op = _dist_op(comm)
            check_tag_spaces(op.kernel.exchangers)
            return True
        assert all(run_parallel(build, 2))


# -- rendering & the schedule dump ---------------------------------------------------


class TestRendering:
    def test_describe_key(self):
        assert describe_key(('u', 1)) == 'u[t+1]'
        assert describe_key(('u', 0)) == 'u[t]'
        assert describe_key(('u', -1)) == 'u[t-1]'
        assert describe_key(('m', None)) == 'm'

    def test_format_widths(self):
        grid = Grid(shape=(8, 8), extent=(7., 7.))
        x, y = grid.dimensions
        assert format_widths(((1, 1), (0, 2)), (x, y)) \
            == '(x: 1/1, y: 0/2)'

    def test_dump_names_match_profiler_sections(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        dump = ops[0].schedule.dump()
        assert 'haloupdate0' in dump
        assert 'section0' in dump
        assert 'mpi=basic' in dump

    def test_report_renders_step_and_source_excerpts(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        report = analyze_schedule(op.schedule, kernel=op.kernel)
        text = report.render()
        assert 'REPRO-E101' in text
        assert 'error' in text

    def test_clean_report_renders(self):
        op, _ = _diffusion_op()
        assert 'clean' in op.analyze().render()


# -- the CLI analyze mode ------------------------------------------------------------


class TestCLI:
    def test_analyze_mode_clean(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '2', '--mpi', 'diagonal', '--dump-schedule'])
        out = capsys.readouterr().out
        assert 'analysis: clean' in out
        assert 'haloupdate0' in out

    def test_analyze_mode_serial(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '1'])
        out = capsys.readouterr().out
        assert 'analysis: clean' in out

    def test_benchmark_sanitize_flag(self, capsys):
        from repro.cli import run_benchmark
        run_benchmark('acoustic', [41, 41], 30.0, 4, nbl=4, ranks=2,
                      sanitize=True, verify=True)
        out = capsys.readouterr().out
        assert 'sanitizer' in out
        assert 'IDENTICAL' in out
