"""The static verifier (repro.analysis) and the poisoned-halo sanitizer.

Three claims are exercised:

1. **Soundness on shipped code** — every propagator, at every space
   order and with every communication pattern, analyzes *clean* (zero
   diagnostics, warnings included).  The verifier re-derives the
   communication requirements independently of the scheduler, so this is
   a real cross-check, not a tautology.
2. **Sensitivity to seeded bugs** — mutations of a correct schedule
   (deleted exchange, shrunk halo depth, loop-carried equation in a
   parallel step, out-of-bounds offset) are each rejected with their
   documented diagnostic code.
3. **The runtime complement** — the NaN poisoned-halo sanitizer catches
   a stale-halo read that plain execution silently mis-computes, while
   remaining bit-identical to the un-instrumented run on correct code.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Eq, Grid, Operator, TimeFunction, configuration, solve
from repro.analysis import (ANALYSIS_VERSION, AnalysisError, AnalysisReport,
                            CODES, CertificateEntry, CommCertificate,
                            Diagnostic, HaloPoisonError, ReconcileError,
                            access_maps, analyze_schedule, build_certificate,
                            covers, declared_widths, dependence_distances,
                            describe_key, format_widths, infer_min_widths,
                            merge_reports, render_merged, verify_schedule)
from repro.ir.clusters import HaloRequirement
from repro.mpi import run_parallel
from repro.mpi.commlog import TagCollisionError, check_tag_spaces
from repro.mpi.sim import RESERVED_TAG_SPACES
from repro.models import (acoustic_setup, elastic_setup, tti_setup,
                          viscoelastic_setup)

MODES = ('basic', 'diagonal', 'full')
SETUPS = {'acoustic': acoustic_setup, 'elastic': elastic_setup,
          'tti': tti_setup, 'viscoelastic': viscoelastic_setup}


def _diffusion_op(comm=None, mpi=None, shape=(16, 16), so=4, **kw):
    """A diffusion operator (not applied) plus its field."""
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    eq = Eq(u.dt, u.laplace)
    return Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                    **kw), u


# -- 1. zero diagnostics on every shipped model --------------------------------------


class TestCleanSchedules:
    @pytest.mark.parametrize('model', sorted(SETUPS))
    @pytest.mark.parametrize('so', [4, 8])
    @pytest.mark.parametrize('mode', MODES)
    def test_propagator_matrix(self, model, so, mode):
        setup = SETUPS[model]

        def build(comm):
            solver, _ = setup(shape=(36, 36), spacing=(10., 10.),
                              tn=70.0, space_order=so, nbl=4, comm=comm,
                              mpi=mode, nrec=4)
            return solver.op.analyze()

        for rank, report in enumerate(run_parallel(build, 2)):
            assert not report.diagnostics, (rank, report.render())

    def test_serial_clean(self):
        op, _ = _diffusion_op()
        report = op.analyze()
        assert bool(report)  # truthy == clean
        assert report.codes == []

    @pytest.mark.parametrize('mode', MODES)
    def test_diffusion_distributed_clean(self, mode):
        reports = run_parallel(
            lambda c: _diffusion_op(c, mpi=mode)[0].analyze(), 2)
        assert all(not r.diagnostics for r in reports)


# -- 2. mutation testing: seeded bugs are rejected by code ---------------------------


def _dist_op(comm, mode='basic', so=4):
    return _diffusion_op(comm, mpi=mode, so=so)[0]


class TestMutations:
    def test_deleted_halo_is_E101(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        assert any(s.is_halo for s in op.schedule.steps)
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        report = analyze_schedule(op.schedule)
        assert 'REPRO-E101' in report.codes
        assert report.errors

    def test_shrunk_halo_is_E102(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        for step in op.schedule.steps:
            if not step.is_halo:
                continue
            step.exchanges = [
                HaloRequirement(req.function, req.time_shift,
                                [(max(l - 1, 0), max(r - 1, 0))
                                 for l, r in req.widths])
                for req in step.exchanges]
        report = analyze_schedule(op.schedule)
        assert 'REPRO-E102' in report.codes

    def test_loop_carried_parallel_is_E111(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        # a Gauss-Seidel-style recurrence: reads its own write at x-1,
        # but every compute step is executed as a parallel sweep
        eq = Eq(u.forward,
                u.indexed(t + 1, x - 1, y) * 0.5 + u.indexed(t, x, y))
        op = Operator([eq], opt=False)
        report = op.analyze()
        assert 'REPRO-E111' in report.codes
        [diag] = report.by_code('REPRO-E111')
        assert 'u[t+1]' in diag.message

    def test_ww_race_is_E112(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        op = Operator([Eq(u.indexed(t + 1, x, y), u.indexed(t, x, y)),
                       Eq(u.indexed(t + 1, x + 1, y),
                          u.indexed(t, x, y) * 2.0)], opt=False)
        assert 'REPRO-E112' in op.analyze().codes

    def test_out_of_bounds_is_E121(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        op = Operator([Eq(u.forward, u.indexed(t, x + 20, y))], opt=False)
        assert 'REPRO-E121' in op.analyze().codes

    def test_every_code_documented(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith('REPRO-')
            assert severity in ('error', 'warning')
            assert title


# -- the compile-time gate (opt='verify' / REPRO_OPT=verify) -------------------------


class TestVerifyGate:
    def test_clean_build_attaches_report(self):
        op, _ = _diffusion_op(opt='verify')
        assert op.analysis is not None
        assert not op.analysis.diagnostics

    def test_gate_rejects_race_at_build(self):
        grid = Grid(shape=(12, 12), extent=(11., 11.))
        u = TimeFunction(name='u', grid=grid, space_order=4)
        t, (x, y) = u.time_dim, grid.dimensions
        eq = Eq(u.forward,
                u.indexed(t + 1, x - 1, y) * 0.5 + u.indexed(t, x, y))
        with pytest.raises(AnalysisError) as err:
            Operator([eq], opt='verify')
        assert 'REPRO-E111' in str(err.value)

    def test_verify_schedule_raises_on_mutation(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        with pytest.raises(AnalysisError) as err:
            verify_schedule(op.schedule)
        assert 'REPRO-E101' in str(err.value)

    def test_configuration_accepts_verify(self):
        saved = configuration['opt']
        try:
            configuration['opt'] = 'verify'
            assert configuration['opt'] == 'verify'
            op, _ = _diffusion_op()  # global gate, clean build passes
            assert op.analysis is not None
        finally:
            configuration['opt'] = saved

    def test_analysis_build_time_recorded(self):
        op, _ = _diffusion_op(opt='verify')
        assert op.profiler.build_times.get('analysis', 0.0) >= 0.0
        assert 'analysis' in op.profiler.build_times


# -- 3. the poisoned-halo sanitizer --------------------------------------------------


def _sanitized_stale_run(comm, sanitize):
    """Run a diffusion op whose halo exchanges were deleted."""
    from repro.codegen.pybackend import generate_kernel
    op, u = _diffusion_op(comm, mpi='basic')
    u.data[0] = 1.0
    op.schedule.steps = [s for s in op.schedule.steps if not s.is_halo]
    op.kernel = generate_kernel(op.schedule, profiler=op.profiler,
                                sanitizer=sanitize)
    op._bind_sparse_plans()
    op.apply(time_M=3, dt=0.02)
    return u.data.gather()


class TestSanitizer:
    def test_catches_stale_halo_read(self):
        with pytest.raises(HaloPoisonError) as err:
            run_parallel(lambda c: _sanitized_stale_run(c, True), 2)
        assert 'section0' in str(err.value)

    def test_plain_mode_is_silent_on_same_bug(self):
        # the very bug the sanitizer catches: plain execution completes
        # without complaint (and computes garbage at the rank seam)
        result = run_parallel(lambda c: _sanitized_stale_run(c, False), 2)
        assert result is not None

    @pytest.mark.parametrize('mode', MODES)
    def test_bit_identical_when_clean(self, mode):
        def run(comm=None, sanitizer=None):
            op, u = _diffusion_op(comm, mpi=mode if comm else None,
                                  sanitizer=sanitizer)
            init = np.zeros(u.grid.shape, dtype=np.float32)
            init[tuple(s // 2 for s in u.grid.shape)] = 1.0
            u.data[0] = init
            op.apply(time_M=3, dt=0.02)
            return u.data.gather()

        serial = run()
        out = run_parallel(lambda c: run(c, sanitizer=True), 2)
        for r, field in enumerate(out):
            assert np.array_equal(field, serial), (mode, r)

    def test_configuration_key(self):
        saved = configuration['sanitizer']
        try:
            configuration['sanitizer'] = 'yes'
            assert configuration['sanitizer'] is True
            configuration['sanitizer'] = 0
            assert configuration['sanitizer'] is False
        finally:
            configuration['sanitizer'] = saved


# -- reserved tag spaces -------------------------------------------------------------


class _FakeExchanger:
    def __init__(self, lo, hi):
        self.tag_range = (lo, hi)


class TestTagSpaces:
    def test_disjoint_nonnegative_ranges_pass(self):
        check_tag_spaces({'a': _FakeExchanger(0, 27),
                          'b': _FakeExchanger(64, 91)})

    def test_overlapping_exchangers_collide(self):
        with pytest.raises(TagCollisionError):
            check_tag_spaces({'a': _FakeExchanger(0, 27),
                              'b': _FakeExchanger(20, 47)})

    def test_sentinel_band_reserved(self):
        with pytest.raises(TagCollisionError) as err:
            check_tag_spaces({'a': _FakeExchanger(-5, 22)})
        assert 'reserved' in str(err.value)

    def test_collective_band_reserved(self):
        # the resilience repartitioning alltoall rides on collective
        # tags; an exchanger must never be able to alias them
        with pytest.raises(TagCollisionError) as err:
            check_tag_spaces({'a': _FakeExchanger(-10_050, -10_020)})
        assert 'resilience' in str(err.value)

    def test_every_negative_tag_is_reserved(self):
        from repro.mpi.sim import (ANY_SOURCE, ANY_TAG, PROC_NULL,
                                   _COLLECTIVE_TAG_BASE)
        for tag in (PROC_NULL, ANY_SOURCE, ANY_TAG, -1,
                    _COLLECTIVE_TAG_BASE, _COLLECTIVE_TAG_BASE - 12345):
            assert any(lo <= tag < hi
                       for lo, hi, _ in RESERVED_TAG_SPACES), tag

    def test_live_kernel_exchangers_are_clean(self):
        def build(comm):
            op = _dist_op(comm)
            check_tag_spaces(op.kernel.exchangers)
            return True
        assert all(run_parallel(build, 2))


# -- rendering & the schedule dump ---------------------------------------------------


class TestRendering:
    def test_describe_key(self):
        assert describe_key(('u', 1)) == 'u[t+1]'
        assert describe_key(('u', 0)) == 'u[t]'
        assert describe_key(('u', -1)) == 'u[t-1]'
        assert describe_key(('m', None)) == 'm'

    def test_format_widths(self):
        grid = Grid(shape=(8, 8), extent=(7., 7.))
        x, y = grid.dimensions
        assert format_widths(((1, 1), (0, 2)), (x, y)) \
            == '(x: 1/1, y: 0/2)'

    def test_dump_names_match_profiler_sections(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        dump = ops[0].schedule.dump()
        assert 'haloupdate0' in dump
        assert 'section0' in dump
        assert 'mpi=basic' in dump

    def test_report_renders_step_and_source_excerpts(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        op.schedule.steps = [s for s in op.schedule.steps
                             if not s.is_halo]
        report = analyze_schedule(op.schedule, kernel=op.kernel)
        text = report.render()
        assert 'REPRO-E101' in text
        assert 'error' in text

    def test_clean_report_renders(self):
        op, _ = _diffusion_op()
        assert 'clean' in op.analyze().render()


# -- the CLI analyze mode ------------------------------------------------------------


class TestCLI:
    def test_analyze_mode_clean(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '2', '--mpi', 'diagonal', '--dump-schedule'])
        out = capsys.readouterr().out
        assert 'analysis: clean' in out
        assert 'haloupdate0' in out

    def test_analyze_mode_serial(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '1'])
        out = capsys.readouterr().out
        assert 'analysis: clean' in out

    def test_benchmark_sanitize_flag(self, capsys):
        from repro.cli import run_benchmark
        run_benchmark('acoustic', [41, 41], 30.0, 4, nbl=4, ranks=2,
                      sanitize=True, verify=True)
        out = capsys.readouterr().out
        assert 'sanitizer' in out
        assert 'IDENTICAL' in out

    def test_benchmark_reconcile_flag(self, capsys):
        from repro.cli import run_benchmark
        run_benchmark('acoustic', [41, 41], 30.0, 4, nbl=4, ranks=2,
                      sanitize='reconcile', verify=True)
        out = capsys.readouterr().out
        assert 'reconcile' in out
        assert 'IDENTICAL' in out

    def test_analyze_certificate_flag(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '2', '--mpi', 'diagonal', '--certificate'])
        out = capsys.readouterr().out
        assert 'CommCertificate' in out
        assert 'predicted totals' in out

    def test_analyze_json_schema_roundtrip(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '2', '--mpi', 'basic', '--format', 'json'])
        payload = json.loads(capsys.readouterr().out)
        assert payload['schema'] == 1
        assert payload['kernel'] == 'acoustic'
        assert payload['ranks'] == 2
        assert payload['clean'] is True
        assert payload['errors'] == 0
        # diagnostics round-trip through the documented payload form
        for dp in payload['diagnostics']:
            d = Diagnostic.from_payload(dp)
            assert d.to_payload() == {k: v for k, v in dp.items()
                                      if k != 'ranks'}
        # certificates round-trip into live CommCertificate objects
        assert len(payload['certificates']) == 2
        for cp in payload['certificates']:
            cert = CommCertificate.from_payload(cp)
            assert cert.entries
            assert cert.to_payload() == cp
        # inferred minimal widths: one mapping per rank, keyed u[t]-style
        assert len(payload['inferred_widths']) == 2
        assert any(payload['inferred_widths'][0])

    def test_analyze_verbose_appends_per_rank_reports(self, capsys):
        from repro.cli import main
        main(['analyze', 'acoustic', '-d', '41', '41', '-so', '4',
              '--ranks', '2', '--mpi', 'basic', '--verbose'])
        out = capsys.readouterr().out
        assert '--- rank 0 ---' in out
        assert '--- rank 1 ---' in out


# -- the affine dataflow engine ------------------------------------------------------


class TestDataflowEngine:
    def test_access_maps_hull(self):
        op, _ = _diffusion_op(so=4)
        maps = [m for m in access_maps(op.schedule)
                if m.key == ('u', 0) and m.reads is not None]
        assert maps
        # the so=4 Laplacian reads +/-2 along both space dimensions
        hull = maps[0].reads
        assert hull == ((-2, 2), (-2, 2))

    def test_dependence_distances(self):
        op, _ = _diffusion_op(so=4)
        dd = dependence_distances(op.schedule)
        assert 'u' in dd
        # write u[t+1] at 0 -> read u[t] at offsets: time distance -1
        assert all(len(v) == 3 for v in dd['u'])
        assert any(v[0] == -1 for v in dd['u'])

    def test_inferred_widths_match_stencil_reach(self):
        def build(comm):
            op, _ = _diffusion_op(comm, mpi='basic', so=4)
            return infer_min_widths(op.schedule), op.schedule
        (inferred, schedule), _ = run_parallel(build, 2)
        dist = schedule.grid.distributor
        # depth 2 along distributed dims, 0 along serial ones
        expect = tuple((2, 2) if dist.is_distributed(d) else (0, 0)
                       for d in range(2))
        assert inferred[('u', 0)] == expect

    def test_shipped_schedules_are_minimal(self):
        # the scheduler derives widths from the same footprints, so the
        # declared exchanges must exactly cover the inferred minimum
        def build(comm):
            op, _ = _diffusion_op(comm, mpi='diagonal', so=8)
            return (infer_min_widths(op.schedule),
                    declared_widths(op.schedule))
        for inferred, declared in run_parallel(build, 2):
            for key, need in inferred.items():
                assert covers(declared.get(key), need), key

    def test_overwide_exchange_is_W203(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        for step in op.schedule.steps:
            if not step.is_halo:
                continue
            step.exchanges = [
                HaloRequirement(req.function, req.time_shift,
                                [(l + 2, r + 2) for l, r in req.widths])
                for req in step.exchanges]
        report = analyze_schedule(op.schedule)
        assert 'REPRO-W203' in report.codes
        diag = report.by_code('REPRO-W203')[0]
        assert 'wasted byte' in diag.message
        assert 'inferred minimal halo' in diag.message
        # over-wide is wasteful, never wrong: no error-severity finding
        assert not report.errors

    def test_oracle_disagreement_is_E122(self, monkeypatch):
        import repro.analysis.dataflow as dataflow
        ops = run_parallel(lambda c: _dist_op(c), 2)
        op = ops[0]
        # no natural input can make the two oracles disagree (they share
        # the access parser), so fake the inference deriving a need the
        # scheduled exchanges cannot cover while the lattice stays clean
        monkeypatch.setattr(
            dataflow, 'infer_min_widths',
            lambda schedule: {('u', 0): ((9, 9), (9, 9))})
        diagnostics = dataflow.check_dataflow(op.schedule)
        codes = [d.code for d in diagnostics]
        assert 'REPRO-E122' in codes
        [diag] = [d for d in diagnostics if d.code == 'REPRO-E122']
        assert diag.where == 'cross-check'
        assert 'contradict' in diag.message

    def test_undersized_allocation_is_E123(self):
        op, u = _diffusion_op(so=4)
        # shrink the allocated halo under the stencil reach: the +/-2
        # reads can no longer be proven inside the padded extents
        u.space_order = 1
        report = analyze_schedule(op.schedule)
        assert 'REPRO-E123' in report.codes
        diag = report.by_code('REPRO-E123')[0]
        assert 'cannot prove' in diag.message

    def test_clean_op_has_no_dataflow_findings(self):
        def build(comm):
            return _dist_op(comm, mode='full').analyze()
        for report in run_parallel(build, 2):
            assert not report.diagnostics, report.render()


# -- static communication certificates -----------------------------------------------


class TestCertificates:
    @pytest.mark.parametrize('mode', MODES)
    def test_certificate_matches_kernel_exchangers(self, mode):
        def build(comm):
            op = _dist_op(comm, mode=mode)
            cert = op.certificate
            assert sorted(e.key for e in cert.entries) \
                == sorted(op.kernel.exchangers)
            for entry in cert.entries:
                lo, hi = op.kernel.exchangers[entry.key].tag_range
                assert all(lo <= tag <= hi
                           for _, tag, _ in entry.messages), entry
            return cert
        certs = run_parallel(build, 2)
        assert all(c.mode == mode for c in certs)

    def test_certificate_payload_roundtrip(self):
        def build(comm):
            return _dist_op(comm, mode='diagonal').certificate
        for cert in run_parallel(build, 2):
            # through JSON, as the artifact disk tier stores it
            payload = json.loads(json.dumps(cert.to_payload()))
            assert CommCertificate.from_payload(payload) == cert

    def test_serial_certificate_is_empty(self):
        op, _ = _diffusion_op()
        cert = build_certificate(op.schedule)
        assert cert.mode is None
        assert cert.entries == ()
        assert cert.predict(10) == {}

    def test_predict_scales_with_timesteps(self):
        def build(comm):
            return _dist_op(comm).certificate
        cert = run_parallel(build, 2)[0]
        one = cert.predict(1)
        five = cert.predict(5)
        assert set(one) == set(five)
        for key, (count, nbytes) in one.items():
            assert five[key] == (count * 5, nbytes * 5)

    def test_artifact_roundtrips_certificate(self):
        from repro.codegen.artifact import KernelArtifact

        def build(comm):
            op = _dist_op(comm)
            art = KernelArtifact.extract(op)
            payload = json.loads(json.dumps(art.to_payload()))
            rehydrated = KernelArtifact.from_payload(payload) \
                .rehydrate_certificate()
            assert rehydrated == op.certificate
            return True
        assert all(run_parallel(build, 2))

    @pytest.mark.parametrize('mode', MODES)
    def test_reconcile_clean_apply_passes(self, mode):
        def run(comm):
            op, u = _diffusion_op(comm, mpi=mode, sanitizer='reconcile')
            u.data[0] = 1.0
            op.apply(time_M=4, dt=0.02)
            return op.certificate
        certs = run_parallel(run, 2)
        assert all(c is not None and c.mode == mode for c in certs)

    def test_reconcile_mismatch_raises(self):
        def run(comm):
            op, u = _diffusion_op(comm, mpi='basic',
                                  sanitizer='reconcile')
            # tamper: the certificate now predicts one byte more per
            # message than the kernel will ever send
            entries = tuple(
                CertificateEntry(e.key, e.scope,
                                 tuple((d, t, b + 1)
                                       for d, t, b in e.messages))
                for e in op.certificate.entries)
            op.certificate = CommCertificate(
                op.certificate.rank, op.certificate.mode, entries)
            op.apply(time_M=3, dt=0.02)
        with pytest.raises(ReconcileError) as err:
            run_parallel(run, 2)
        assert 'ledger recorded' in str(err.value)

    def test_configuration_reconcile_mode(self):
        saved = configuration['sanitizer']
        try:
            configuration['sanitizer'] = 'reconcile'
            assert configuration['sanitizer'] == 'reconcile'
            configuration['sanitizer'] = 'poison'
            assert configuration['sanitizer'] is True
        finally:
            configuration['sanitizer'] = saved

    def test_fingerprint_tracks_analysis_version(self, monkeypatch):
        import repro.buildcache.fingerprint as fp
        grid = Grid(shape=(8, 8), extent=(7., 7.))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        eqs = [Eq(u.forward, u.laplace * 0.1)]
        kw = dict(mpi_mode=None, opt=True, verify=False,
                  sanitizer=False, instrument=False, progress=False)
        base, _ = fp.fingerprint_build(eqs, **kw)
        # the sanitizer token is mode-aware: off / poison / reconcile
        # are three different cache keys
        poison, _ = fp.fingerprint_build(eqs, **dict(kw, sanitizer=True))
        rec, _ = fp.fingerprint_build(eqs,
                                      **dict(kw, sanitizer='reconcile'))
        assert len({base, poison, rec}) == 3
        # bumping the verifier version invalidates every cached artifact
        monkeypatch.setattr(fp, 'ANALYSIS_VERSION', ANALYSIS_VERSION + 1)
        bumped, _ = fp.fingerprint_build(eqs, **kw)
        assert bumped != base


# -- the full propagator x SDO x mode matrix (analysis + reconciled apply) -----------


class TestDataflowMatrix:
    @pytest.mark.parametrize('model', sorted(SETUPS))
    @pytest.mark.parametrize('so', [4, 8, 12])
    @pytest.mark.parametrize('mode', MODES)
    def test_inference_certificate_and_proof(self, model, so, mode):
        setup = SETUPS[model]
        saved = configuration['sanitizer']
        configuration['sanitizer'] = 'reconcile'
        try:
            def build(comm):
                solver, _ = setup(shape=(36, 36), spacing=(10., 10.),
                                  tn=30.0, space_order=so, nbl=4,
                                  comm=comm, mpi=mode, nrec=4)
                op = solver.op
                report = analyze_schedule(op.schedule)
                inferred = infer_min_widths(op.schedule)
                declared = declared_widths(op.schedule)
                minimal = all(covers(declared.get(k), need)
                              for k, need in inferred.items())
                # the forward run reconciles the commlog ledger against
                # the certificate after apply (raises on any mismatch)
                solver.forward()
                return report, minimal, op.certificate
            for rank, (report, minimal, cert) in \
                    enumerate(run_parallel(build, 2)):
                # zero REPRO-E: in-bounds proof + inference both clean
                assert not report.errors, (rank, report.render())
                # inferred minimal widths never exceed the declared ones
                assert minimal, rank
                assert cert is not None and cert.entries, rank
        finally:
            configuration['sanitizer'] = saved


# -- cross-rank merged reporting -----------------------------------------------------


class TestMergedReports:
    def test_identical_findings_collapse(self):
        d = Diagnostic('REPRO-W201', 'same everywhere', step_index=1)
        reports = [AnalysisReport(diagnostics=[d]),
                   AnalysisReport(diagnostics=[
                       Diagnostic('REPRO-W201', 'same everywhere',
                                  step_index=1),
                       Diagnostic('REPRO-W202', 'only here')])]
        merged = merge_reports(reports)
        assert len(merged) == 2
        assert merged[0][1] == [0, 1]
        assert merged[1][1] == [1]
        text = render_merged(reports)
        assert '[all ranks]' in text
        assert '[rank 1]' in text
        assert text.count('same everywhere') == 1

    def test_real_mutation_dedupes_across_ranks(self):
        ops = run_parallel(lambda c: _dist_op(c), 2)
        reports = []
        for op in ops:
            op.schedule.steps = [s for s in op.schedule.steps
                                 if not s.is_halo]
            reports.append(analyze_schedule(op.schedule))
        merged = merge_reports(reports)
        assert any(d.code == 'REPRO-E101' for d, _ in merged)
        # the 2-rank diffusion decomposition is symmetric: the findings
        # are rank-identical and must collapse to single lines
        assert any(ranks == [0, 1] for _, ranks in merged)
        assert len(merged) < sum(len(r.diagnostics) for r in reports)

    def test_verbose_appends_per_rank_sections(self):
        reports = [AnalysisReport(), AnalysisReport(diagnostics=[
            Diagnostic('REPRO-W211', 'tmp unused')])]
        text = render_merged(reports, verbose=True)
        assert '--- rank 0 ---' in text
        assert '--- rank 1 ---' in text

    def test_clean_merge(self):
        text = render_merged([AnalysisReport(), AnalysisReport()])
        assert 'clean' in text
        assert 'all ranks' in text


# -- property-based: inference vs a brute-force off-rank-read simulation -------------


class TestInferenceProperty:
    @given(offsets=st.lists(st.tuples(st.integers(-3, 3),
                                      st.integers(-3, 3)),
                            min_size=1, max_size=4, unique=True),
           so=st.sampled_from([4, 8]),
           ranks=st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_inferred_matches_bruteforce(self, offsets, so, ranks):
        def build(comm, mode):
            grid = Grid(shape=(16, 16), extent=(15., 15.), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=so)
            t = u.time_dim
            x, y = grid.dimensions
            expr = u.indexed(t, x, y) * 0.0
            for i, (ox, oy) in enumerate(offsets):
                expr = expr + u.indexed(t, x + ox, y + oy) * float(i + 1)
            op = Operator([Eq(u.forward, expr)], mpi=mode, opt=False)
            dist = grid.distributor
            inferred = infer_min_widths(op.schedule).get(
                ('u', 0), ((0, 0), (0, 0)))
            # brute force: walk every owned point and every stencil
            # offset for one iteration and record how deep each read
            # lands inside a neighbor's owned region
            need = [[0, 0], [0, 0]]
            for d in range(2):
                dec = dist.decompositions[d]
                start, stop = dec.local_range(dist.mycoords[d])
                for off in {o[d] for o in offsets}:
                    for i in range(start, stop):
                        tgt = i + off
                        if not 0 <= tgt < dec.npoints:
                            continue  # boundary padding, never off-rank
                        if tgt < start:
                            need[d][0] = max(need[d][0], start - tgt)
                        elif tgt >= stop:
                            need[d][1] = max(need[d][1], tgt - stop + 1)
            return inferred, tuple((l, r) for l, r in need)

        for mode in MODES:
            results = run_parallel(lambda c: build(c, mode), ranks)
            inferred0 = results[0][0]
            # the inference is schedule- and mode-independent
            assert all(inf == inferred0 for inf, _ in results)
            # sufficient: every rank's simulated need is covered ...
            for inf, need in results:
                assert covers(inf, need)
            # ... and minimal: it equals the max need over the ranks
            for d in range(2):
                for side in range(2):
                    worst = max(need[d][side] for _, need in results)
                    assert inferred0[d][side] == worst
