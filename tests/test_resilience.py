"""Checkpoint/restart, shrink recovery and numerical health guards.

Covers :mod:`repro.resilience` and its wiring through the stack:

* atomic write discipline (tmp + rename) for checkpoints, manifests and
  the advanced profile JSON — an interrupted writer never leaves a
  truncated artifact;
* checkpoint round-trips (same topology) and CRC/manifest validation,
  including fallback past a checkpoint whose writer was killed
  mid-snapshot;
* the hardened :meth:`SimWorld.reset` (mailboxes, fault limbo, commlog
  ledgers, sequence counters);
* loud validation of unknown ``Operator.apply`` kwargs and unknown
  ``configuration`` keys;
* kill + ``restart`` recovery equivalence across all three exchange
  modes and several rank counts, and ``shrink`` recovery (4 -> 3 on a
  2D topology) — both bit-identical to a fault-free serial run;
* health guards raising the same diagnosable
  :class:`NumericalHealthError` on every rank;
* recovery counters/time/bytes surfacing in ``comm_health`` and the
  profile, with no leaked progress threads after recovery.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro import (Eq, Grid, Operator, TimeFunction, configuration, solve)
from repro.ioutil import atomic_write_bytes, atomic_write_json
from repro.mpi import (RankKilledError, RemoteRankError, SimComm, SimWorld,
                       run_parallel)
from repro.resilience import (Checkpointer, CheckpointError, HealthGuard,
                              NumericalHealthError)

STEPS = 8
DT = 0.02


@pytest.fixture(autouse=True)
def _restore_config():
    """Every test leaves the global configuration as it found it."""
    yield
    for key in ('faults', 'commlog', 'comm_timeout', 'comm_retries',
                'recovery', 'checkpoint_every', 'checkpoint_dir',
                'checkpoint_keep', 'max_recoveries', 'health_check_every',
                'health_max'):
        del configuration[key]


def _leaked_progress_threads():
    return [t for t in threading.enumerate()
            if t.name == 'mpi-progress' and t.is_alive()]


def _job(comm, mpi='diagonal', shape=(12, 12), steps=STEPS, so=2,
         topology=None, progress=False, **apply_kwargs):
    """One SPMD rank of the reference diffusion problem.

    Returns ``(gathered field, summary)``; a rank killed under shrink
    recovery returns None (it left the job, the survivors finish it).
    """
    grid = Grid(shape=shape, extent=tuple(float(s - 1) for s in shape),
                comm=comm, topology=topology)
    u = TimeFunction(name='u', grid=grid, space_order=so)
    init = np.zeros(shape, dtype=np.float32)
    init[tuple(s // 2 for s in shape)] = 1.0
    init[tuple(s // 3 for s in shape)] = -2.0
    u.data[0] = init
    eq = Eq(u.dt, u.laplace)
    op = Operator([Eq(u.forward, solve(eq, u.forward))], mpi=mpi,
                  progress=progress)
    try:
        summary = op.apply(time_M=steps - 1, dt=DT, **apply_kwargs)
    except RankKilledError:
        if apply_kwargs.get('recovery') == 'shrink':
            return None
        raise
    return u.data.gather(), summary


def _serial_reference(**kwargs):
    return _job(None, **kwargs)[0]


# -- satellite: atomic writes -------------------------------------------------

class TestAtomicWrites:
    def test_bytes_and_json_roundtrip(self, tmp_path):
        p = tmp_path / 'blob.bin'
        atomic_write_bytes(p, b'abc')
        assert p.read_bytes() == b'abc'
        atomic_write_json(tmp_path / 'x.json', {'a': [1, 2]})
        assert json.loads((tmp_path / 'x.json').read_text()) == \
            {'a': [1, 2]}
        # no tmp droppings
        assert sorted(f.name for f in tmp_path.iterdir()) == \
            ['blob.bin', 'x.json']

    def test_interrupted_write_preserves_old_file(self, tmp_path,
                                                  monkeypatch):
        """A writer killed before the rename leaves the previous version
        intact and no temporary file behind."""
        p = tmp_path / 'state.json'
        atomic_write_json(p, {'version': 1})

        real_replace = os.replace

        def boom(src, dst):
            raise KeyboardInterrupt("killed mid-checkpoint")

        monkeypatch.setattr(os, 'replace', boom)
        with pytest.raises(KeyboardInterrupt):
            atomic_write_json(p, {'version': 2})
        monkeypatch.setattr(os, 'replace', real_replace)
        assert json.loads(p.read_text()) == {'version': 1}
        assert [f.name for f in tmp_path.iterdir()] == ['state.json']

    def test_profile_json_is_atomic(self, tmp_path):
        out = tmp_path / 'prof.json'
        configuration['profiling'] = 'advanced'
        try:
            _, summary = _job(None)
        finally:
            del configuration['profiling']
        summary.save_json(out)
        data = json.loads(out.read_text())
        assert 'sections' in data
        assert [f.name for f in tmp_path.iterdir()] == ['prof.json']


# -- checkpoint format + validation -------------------------------------------

class TestCheckpointer:
    def _serial_state(self, shape=(10, 10)):
        grid = Grid(shape=shape)
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0] = np.arange(np.prod(shape), dtype=np.float32) \
            .reshape(shape)
        op = Operator([Eq(u.forward, u + 1.0)])
        return grid, u, op

    def test_roundtrip_serial(self, tmp_path):
        grid, u, op = self._serial_state()
        ck = Checkpointer(tmp_path)
        comm = grid.comm
        world = comm.world
        ck.save(3, comm, world, op.schedule.functions, [],
                grid.distributor)
        snap = u.data.with_halo.copy()
        u.data.fill(0.0)
        step, manifest = ck.latest_valid()
        assert step == 3
        ck.restore(step, manifest, comm, world, op.schedule.functions, [])
        assert np.array_equal(u.data.with_halo, snap)

    def test_corrupt_rank_file_falls_back(self, tmp_path):
        grid, u, op = self._serial_state()
        ck = Checkpointer(tmp_path, keep=3)
        world = grid.comm.world
        ck.save(2, grid.comm, world, op.schedule.functions, [],
                grid.distributor)
        u.data[0] = 7.0
        ck.save(4, grid.comm, world, op.schedule.functions, [],
                grid.distributor)
        # corrupt the newest rank file: CRC mismatch -> invalid
        path = ck.rank_file(4, 0)
        blob = bytearray(open(path, 'rb').read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, 'wb').write(bytes(blob))
        assert ck.validate(4) is None
        step, _ = ck.latest_valid()
        assert step == 2

    def test_kill_mid_checkpoint_leaves_no_manifest(self, tmp_path):
        """A writer killed between the rank files and the manifest: the
        step directory exists but is *not* a checkpoint; recovery falls
        back to the older complete version."""
        grid, u, op = self._serial_state()
        ck = Checkpointer(tmp_path)
        world = grid.comm.world
        ck.save(1, grid.comm, world, op.schedule.functions, [],
                grid.distributor)
        # simulate: rank file written, coordinator killed pre-manifest
        os.makedirs(ck.step_dir(5), exist_ok=True)
        atomic_write_bytes(ck.rank_file(5, 0), b'partial snapshot')
        assert ck.steps_on_disk() == [1]
        step, _ = ck.latest_valid()
        assert step == 1

    def test_retention_prunes_oldest(self, tmp_path):
        grid, u, op = self._serial_state()
        ck = Checkpointer(tmp_path, keep=2)
        world = grid.comm.world
        for step in (1, 2, 3, 4):
            ck.save(step, grid.comm, world, op.schedule.functions, [],
                    grid.distributor)
        assert ck.steps_on_disk() == [3, 4]

    def test_no_checkpoint_raises(self, tmp_path):
        ck = Checkpointer(tmp_path / 'empty')
        with pytest.raises(CheckpointError):
            ck.latest_valid()

    def test_distributed_save_no_gather(self, tmp_path):
        """Every rank writes its own file (keyed by original rank)."""
        def job(comm):
            grid = Grid(shape=(12, 12), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            u.data[0] = np.arange(144, dtype=np.float32).reshape(12, 12)
            op = Operator([Eq(u.forward, u + 1.0)])
            ck = Checkpointer(tmp_path)
            ck.save(0, comm, comm.world, op.schedule.functions, [],
                    grid.distributor)
            return True

        assert all(run_parallel(job, 4))
        names = sorted(os.listdir(os.path.join(tmp_path, 'step-000000')))
        assert names == ['manifest.json', 'rank0.npz', 'rank1.npz',
                         'rank2.npz', 'rank3.npz']
        manifest = json.load(
            open(os.path.join(tmp_path, 'step-000000', 'manifest.json')))
        assert manifest['world_size'] == 4
        assert len(manifest['ranks']) == 4


# -- satellite: hardened SimWorld.reset ---------------------------------------

class TestWorldReset:
    def test_reset_clears_inflight_state(self):
        world = SimWorld(2)
        a, b = SimComm(world, 0), SimComm(world, 1)
        a.isend({'stale': True}, dest=1, tag=7)  # never received
        assert world._boxes[1]
        assert world.commlog._sends
        world.fail(origin=0, reason='test')
        world.reset()
        assert not world._failed.is_set()
        assert not any(world._boxes)
        assert not any(world._dropped)
        assert not world.commlog._sends and not world.commlog._recvs
        # sequence counters restart: a fresh send gets seq 0 again
        a.isend({'fresh': True}, dest=1, tag=7)
        msg = world._boxes[1][0]
        assert msg.seq == 0

    def test_collectives_work_after_reset(self):
        """Sequence counters restart in lockstep: collectives keep
        matching after one rank resets the world at a rendezvous."""
        def job(comm):
            before = comm.allreduce(comm.rank)
            # coordinated quiescent point; lowest rank runs the reset
            comm.world.coordinate(comm.rank, comm.world.reset)
            after = comm.allreduce(comm.rank + 10)
            return before, after

        out = run_parallel(job, 3)
        assert all(o == (3, 33) for o in out)


# -- satellite: loud validation of unknown knobs ------------------------------

class TestUnknownKnobValidation:
    def _op(self):
        grid = Grid(shape=(8, 8))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        return Operator([Eq(u.forward, u + 1.0)])

    def test_apply_rejects_typoed_kwarg(self):
        op = self._op()
        with pytest.raises(ValueError) as err:
            op.apply(time_M=1, chekpoint_every=2)
        msg = str(err.value)
        assert 'chekpoint_every' in msg
        assert 'checkpoint_every' in msg  # the accepted name is listed
        assert 'time_M' in msg

    def test_apply_accepts_known_overrides(self):
        op = self._op()
        summary = op.apply(time_M=1, dt=0.01)
        assert summary.timesteps == 2

    def test_configuration_rejects_unknown_key(self):
        with pytest.raises(ValueError) as err:
            configuration['chekpoint_every'] = 3
        assert 'checkpoint_every' in str(err.value)

    def test_configuration_validates_values(self):
        with pytest.raises(ValueError):
            configuration['recovery'] = 'retry-harder'
        with pytest.raises(ValueError):
            configuration['checkpoint_keep'] = 0
        with pytest.raises(ValueError):
            configuration['health_max'] = -1.0
        configuration['recovery'] = 'restart'
        assert configuration['recovery'] == 'restart'


# -- kill + restart recovery ---------------------------------------------------

class TestRestartRecovery:
    @pytest.mark.parametrize('mode', ['basic', 'diagonal', 'full'])
    @pytest.mark.parametrize('ranks', [2, 4])
    def test_bitwise_equivalence(self, tmp_path, mode, ranks):
        reference = _serial_reference()
        configuration['faults'] = 'seed=5,kill=1@4'
        kwargs = dict(recovery='restart', checkpoint_every=3,
                      checkpoint_dir=str(tmp_path))
        out = run_parallel(lambda c: _job(c, mpi=mode, **kwargs), ranks)
        for field, summary in out:
            assert np.array_equal(field, reference)
            assert summary.comm_health['recoveries'] == 1
        assert not _leaked_progress_threads()

    def test_counters_and_sections(self, tmp_path):
        configuration['faults'] = 'seed=5,kill=1@4'
        kwargs = dict(recovery='restart', checkpoint_every=2,
                      checkpoint_dir=str(tmp_path))
        out = run_parallel(lambda c: _job(c, **kwargs), 2)
        _, summary = out[0]
        health = summary.comm_health
        assert health['recoveries'] == 1
        assert health['ranks_lost'] == 0
        assert health['checkpoints_written'] >= 2
        assert health['checkpoints_restored'] == 1
        assert health['checkpoint_bytes'] > 0
        assert health['restored_bytes'] > 0
        assert health['recovery_time'] > 0.0
        # checkpoint/restore surface as named profiled sections
        assert summary['checkpoint'].time > 0.0
        assert summary['checkpoint'].bytes > 0
        assert summary['restore'].bytes > 0
        assert summary['checkpoint'].kind == 'resilience'

    def test_full_mode_progress_threads_survive_recovery(self, tmp_path):
        reference = _serial_reference()
        configuration['faults'] = 'seed=2,kill=0@5'
        kwargs = dict(recovery='restart', checkpoint_every=4,
                      checkpoint_dir=str(tmp_path))
        out = run_parallel(
            lambda c: _job(c, mpi='full', progress=True, **kwargs), 2)
        assert all(np.array_equal(f, reference) for f, _ in out)
        assert not _leaked_progress_threads()

    def test_abort_policy_preserves_plain_failure(self, tmp_path):
        configuration['faults'] = 'seed=5,kill=1@4'
        with pytest.raises(RemoteRankError):
            run_parallel(lambda c: _job(c), 2)
        assert not _leaked_progress_threads()

    def test_recovery_budget_is_bounded(self, tmp_path):
        """Two kills, budget for one recovery: the second kill aborts."""
        configuration['faults'] = 'seed=5,kill=1@3,kill=0@6'
        kwargs = dict(recovery='restart', checkpoint_every=2,
                      checkpoint_dir=str(tmp_path), max_recoveries=1)
        with pytest.raises(RemoteRankError):
            run_parallel(lambda c: _job(c, **kwargs), 2)
        assert not _leaked_progress_threads()

    def test_two_kills_two_recoveries(self, tmp_path):
        reference = _serial_reference()
        configuration['faults'] = 'seed=5,kill=1@3,kill=0@6'
        kwargs = dict(recovery='restart', checkpoint_every=2,
                      checkpoint_dir=str(tmp_path), max_recoveries=3)
        out = run_parallel(lambda c: _job(c, **kwargs), 2)
        for field, summary in out:
            assert np.array_equal(field, reference)
            assert summary.comm_health['recoveries'] == 2


# -- shrink recovery ------------------------------------------------------------

class TestShrinkRecovery:
    @pytest.mark.parametrize('victim', [0, 2])
    def test_4_to_3_on_2d_topology(self, tmp_path, victim):
        reference = _serial_reference()
        configuration['faults'] = 'seed=5,kill=%d@4' % victim
        kwargs = dict(recovery='shrink', checkpoint_every=3,
                      checkpoint_dir=str(tmp_path))
        out = run_parallel(
            lambda c: _job(c, topology=(2, 2), **kwargs), 4)
        survivors = [r for r in out if r is not None]
        assert len(survivors) == 3  # the victim left the job
        for field, summary in survivors:
            assert np.array_equal(field, reference)
            assert summary.comm_health['recoveries'] == 1
            assert summary.comm_health['ranks_lost'] == 1
        assert not _leaked_progress_threads()

    def test_2_to_1(self, tmp_path):
        reference = _serial_reference()
        configuration['faults'] = 'seed=1,kill=1@5'
        kwargs = dict(recovery='shrink', checkpoint_every=2,
                      checkpoint_dir=str(tmp_path))
        out = run_parallel(lambda c: _job(c, mpi='basic', **kwargs), 2)
        survivors = [r for r in out if r is not None]
        assert len(survivors) == 1
        assert np.array_equal(survivors[0][0], reference)


# -- resume from disk -----------------------------------------------------------

class TestResume:
    def test_resume_completes_interrupted_run(self, tmp_path):
        reference = _serial_reference(steps=10)
        # first run: checkpoints every 3 steps, stops early at step 6
        _job(None, steps=6, checkpoint_every=3,
             checkpoint_dir=str(tmp_path))
        # second run: resumes from the newest checkpoint, finishes
        field, summary = _job(None, steps=10, resume=True,
                              checkpoint_dir=str(tmp_path))
        assert np.array_equal(field, reference)

    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            _job(None, resume=True, checkpoint_dir=str(tmp_path / 'nope'))


# -- health guards --------------------------------------------------------------

class TestHealthGuard:
    def test_nan_detected_with_diagnosis(self):
        grid = Grid(shape=(10, 10))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0] = 1.0
        u.data[0, 4, 6] = np.nan
        op = Operator([Eq(u.forward, u + 1.0)])
        with pytest.raises(NumericalHealthError) as err:
            op.apply(time_M=3, health_check_every=1)
        e = err.value
        assert e.field == 'u'
        assert e.index[-2:] == (4, 6)
        assert e.timestep == 0
        assert 'u' in str(e) and '(' in str(e)

    def test_blowup_detected(self):
        grid = Grid(shape=(10, 10), extent=(9.0, 9.0))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0] = 1.0
        # an exponentially exploding update
        op = Operator([Eq(u.forward, u * 1e6)])
        with pytest.raises(NumericalHealthError):
            op.apply(time_M=20, health_check_every=2, health_max=1e9)

    def test_all_ranks_raise_identically(self):
        def job(comm):
            grid = Grid(shape=(12, 12), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            u.data[0] = 0.0
            u.data[0, 9, 3] = np.inf  # lives on one rank only
            op = Operator([Eq(u.forward, u + 1.0)], mpi='basic')
            try:
                op.apply(time_M=3, health_check_every=1)
            except NumericalHealthError as e:
                return (e.field, e.index, e.timestep)
            return None

        out = run_parallel(job, 4)
        assert all(o is not None for o in out)
        assert len(set(out)) == 1  # same verdict everywhere

    def test_health_error_is_not_auto_recovered(self, tmp_path):
        """Recovery never replays a numerical blowup from checkpoint."""
        grid = Grid(shape=(10, 10))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        u.data[0] = np.nan
        op = Operator([Eq(u.forward, u + 1.0)])
        with pytest.raises(NumericalHealthError):
            op.apply(time_M=3, health_check_every=1, recovery='restart',
                     checkpoint_every=1, checkpoint_dir=str(tmp_path))

    def test_healthy_run_is_untouched(self):
        clean, _ = _job(None)
        guarded, summary = _job(None, health_check_every=2)
        assert np.array_equal(clean, guarded)
        assert summary['healthcheck'].ncalls > 0

    def test_guard_unit_semantics(self):
        guard = HealthGuard(every=3, max_amplitude=10.0)
        assert guard.due(0, 0) and guard.due(3, 0) and not guard.due(2, 0)
        disabled = HealthGuard(every=0)
        assert not disabled.due(0, 0)


# -- CLI end-to-end -------------------------------------------------------------

class TestCliRecovery:
    def _run(self, tmp_path, capsys, *extra):
        from repro.cli import main
        argv = ['acoustic', '-d', '25', '25', '--tn', '40', '-so', '4',
                '--nbl', '4', '--ranks', '4', '--mpi', 'diagonal',
                '--verify', '--inject-faults', 'seed=3,kill=1@7',
                '--checkpoint-every', '5',
                '--checkpoint-dir', str(tmp_path)] + list(extra)
        main(argv)
        return capsys.readouterr().out

    def test_cli_restart_verify_identical(self, tmp_path, capsys):
        out = self._run(tmp_path, capsys, '--recover', 'restart')
        assert 'IDENTICAL' in out

    def test_cli_shrink_verify_identical(self, tmp_path, capsys):
        out = self._run(tmp_path, capsys, '--recover', 'shrink')
        assert 'IDENTICAL' in out
