"""Numerical convergence of the generated solvers.

The ultimate end-to-end check of the symbolic-to-kernel pipeline: the
discretization error of a compiled Operator must shrink at the design
order under grid refinement.  Two setups:

* single Laplacian application vs the analytic value (interior points,
  excluding the boundary band whose stencils read the zero halo);
* the full wave equation on a compact Gaussian pulse (waves never reach
  the boundary), against a highly resolved 8th-order reference.
"""

import numpy as np
import pytest

from repro import Eq, Function, Grid, Operator, TimeFunction, solve
from repro.mpi import run_parallel


def _laplacian_error(n, so, comm=None, mpi=None):
    grid = Grid(shape=(n, n), extent=(1.0, 1.0), dtype=np.float64,
                comm=comm)
    u = Function(name='u', grid=grid, space_order=so)
    w = Function(name='w', grid=grid, space_order=so)
    xs = np.linspace(0, 1, n)
    X, Y = np.meshgrid(xs, xs, indexing='ij')
    u.data[...] = np.sin(np.pi * X) * np.sin(np.pi * Y)
    op = Operator([Eq(w, u.laplace)], mpi=mpi)
    op.apply(time_M=0)
    exact = -2 * np.pi ** 2 * np.sin(np.pi * X) * np.sin(np.pi * Y)
    b = so // 2 + 1
    out = w.data.gather() if comm is not None else np.array(w.data[:, :])
    return np.abs(out - exact)[b:-b, b:-b].max()


def _wave_solution(n, so, T=0.06, dt=5e-4):
    grid = Grid(shape=(n, n), extent=(1.0, 1.0), dtype=np.float64)
    u = TimeFunction(name='u', grid=grid, space_order=so, time_order=2)
    xs = np.linspace(0, 1, n)
    X, Y = np.meshgrid(xs, xs, indexing='ij')
    bump = np.exp(-((X - 0.5) ** 2 + (Y - 0.5) ** 2) / (2 * 0.05 ** 2))
    u.data[0] = bump
    u.data[1] = bump  # zero initial velocity
    pde = u.dt2 - u.laplace
    op = Operator([Eq(u.forward, solve(pde, u.forward))])
    steps = int(round(T / dt))
    op.apply(time_m=1, time_M=steps, dt=dt)
    return np.array(u.data[(steps + 1) % 3])


def _restrict(a, n):
    step = (a.shape[0] - 1) // (n - 1)
    return a[::step, ::step]


class TestLaplacianConvergence:
    @pytest.mark.parametrize('so,expected', [(2, 2.0), (4, 4.0), (8, 7.5)])
    def test_design_order(self, so, expected):
        e1 = _laplacian_error(17, so)
        e2 = _laplacian_error(33, so)
        rate = np.log2(e1 / e2)
        assert rate > expected - 0.4, (so, e1, e2, rate)

    def test_distributed_laplacian_same_error(self):
        """DMP execution must not change the numerics."""
        serial = _laplacian_error(33, 4)
        out = run_parallel(
            lambda c: _laplacian_error(33, 4, comm=c, mpi='diagonal'), 4)
        assert all(abs(e - serial) < 1e-14 for e in out)


class TestWaveConvergence:
    @pytest.fixture(scope='class')
    def reference(self):
        return _wave_solution(129, 8)

    @pytest.mark.parametrize('so,min_rate', [(2, 1.8), (4, 3.5)])
    def test_wave_equation_order(self, reference, so, min_rate):
        e1 = np.abs(_wave_solution(17, so) - _restrict(reference,
                                                       17)).max()
        e2 = np.abs(_wave_solution(33, so) - _restrict(reference,
                                                       33)).max()
        rate = np.log2(e1 / e2)
        assert rate > min_rate, (so, e1, e2, rate)

    def test_higher_order_more_accurate(self, reference):
        errs = {so: np.abs(_wave_solution(33, so)
                           - _restrict(reference, 33)).max()
                for so in (2, 4)}
        assert errs[4] < errs[2]


class TestCLI:
    def test_cli_serial_run(self, capsys):
        from repro.cli import main
        main(['acoustic', '-d', '41', '41', '--tn', '60', '-so', '4',
              '--nbl', '8'])
        out = capsys.readouterr().out
        assert 'GPts/s' in out and 'operational int.' in out

    def test_cli_parallel_verified(self, capsys):
        from repro.cli import main
        main(['acoustic', '-d', '42', '42', '--tn', '40', '-so', '4',
              '--nbl', '8', '--ranks', '2', '--mpi', 'full', '--verify'])
        out = capsys.readouterr().out
        assert 'IDENTICAL' in out

    def test_cli_rejects_bad_dims(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(['acoustic', '-d', '8'])


class TestGeneratedPySource:
    """Mode-specific structure of the executable generated code."""

    def _pycode(self, mode):
        def job(comm):
            grid = Grid(shape=(12, 12), comm=comm)
            u = TimeFunction(name='u', grid=grid, space_order=2)
            op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                               u.forward))], mpi=mode)
            return op.pycode

        return run_parallel(job, 4)[0]

    def test_basic_emits_blocking_exchange(self):
        src = self._pycode('basic')
        assert ".exchange(u[(time + 0) % 2])" in src

    def test_full_emits_begin_wait_and_regions(self):
        src = self._pycode('full')
        assert '.begin(' in src and '.finish(' in src
        # core box then remainder boxes: more than one cluster emission
        assert src.count('# cluster over') >= 2
        assert src.index('.begin(') < src.index('# cluster over')
        assert src.index('.finish(') > src.index('# cluster over')

    def test_serial_has_no_exchanges(self):
        grid = Grid(shape=(12, 12))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, solve(Eq(u.dt, u.laplace),
                                           u.forward))], mpi='basic')
        assert ".exchange(" not in op.pycode

    def test_generated_source_is_valid_python(self):
        import ast
        for mode in ('basic', 'diagonal', 'full'):
            ast.parse(self._pycode(mode))
        grid = Grid(shape=(12, 12))
        u = TimeFunction(name='u', grid=grid, space_order=2)
        op = Operator([Eq(u.forward, u + 1)])
        ast.parse(op.pycode)
