"""Tests for the four seismic wave propagators (serial correctness)."""

import numpy as np
import pytest

from repro.models import (SeismicModel, TimeAxis, acoustic_setup,
                          damping_profile, elastic_setup, ricker_wavelet,
                          tti_setup, viscoelastic_setup)


class TestSeismicModel:
    def test_grid_extended_by_nbl(self):
        model = SeismicModel(shape=(20, 20), spacing=(10., 10.), vp=1.5,
                             nbl=5)
        assert model.grid.shape == (30, 30)

    def test_origin_shifted_by_nbl(self):
        model = SeismicModel(shape=(20, 20), spacing=(10., 10.), vp=1.5,
                             nbl=5, origin=(0., 0.))
        assert model.grid.origin == (-50.0, -50.0)

    def test_parameter_padding(self):
        v = np.full((10, 10), 2.0, dtype=np.float32)
        v[5:, :] = 3.0
        model = SeismicModel(shape=(10, 10), spacing=(10., 10.), vp=v,
                             nbl=4)
        m = np.array(model.m.data[:, :])
        # edge-padded: the ABC layer repeats the boundary slowness
        assert m[0, 7] == pytest.approx(1 / 4.0)
        assert m[-1, 7] == pytest.approx(1 / 9.0)

    def test_critical_dt_cfl(self):
        model = SeismicModel(shape=(10, 10), spacing=(10., 10.), vp=2.0,
                             nbl=0)
        assert model.critical_dt == pytest.approx(0.42 * 10.0 / 2.0)
        model3 = SeismicModel(shape=(8, 8, 8), spacing=(10.,) * 3, vp=2.0,
                              nbl=0)
        assert model3.critical_dt == pytest.approx(0.38 * 10.0 / 2.0)

    def test_damping_profile_zero_interior(self):
        damp = damping_profile((30, 30), 5, (10., 10.), 2.0)
        assert (damp[10:20, 10:20] == 0).all()
        assert damp[0, 15] > 0
        assert damp[0, 15] >= damp[3, 15]

    def test_mask_bounded(self):
        model = SeismicModel(shape=(20, 20), spacing=(10., 10.), vp=2.0,
                             nbl=5)
        mask = np.array(model.mask.data[:, :])
        assert (mask <= 1.0).all() and (mask > 0.0).all()
        assert mask[12, 12] == pytest.approx(1.0)

    def test_elastic_moduli(self):
        model = SeismicModel(shape=(10, 10), spacing=(10., 10.), vp=2.0,
                             vs=1.0, rho=2.0, nbl=0)
        lam = np.array(model.lam.data[:, :])
        mu = np.array(model.mu.data[:, :])
        assert lam[5, 5] == pytest.approx(2.0 * (4.0 - 2.0))
        assert mu[5, 5] == pytest.approx(2.0)

    def test_lam_requires_vs(self):
        model = SeismicModel(shape=(10, 10), spacing=(10., 10.), vp=2.0,
                             nbl=0)
        with pytest.raises(ValueError):
            model.lam

    def test_relaxation_times_positive(self):
        model = SeismicModel(shape=(10, 10), spacing=(10., 10.), vp=2.0,
                             vs=1.0, qp=100., qs=70., nbl=0)
        t_s, t_ep, t_es = model.relaxation_times(0.01)
        assert t_s > 0 and t_ep > 0 and t_es > 0
        # attenuation: strain relaxation exceeds stress relaxation
        assert t_ep > t_s and t_es > t_s


class TestGeometry:
    def test_time_axis(self):
        ta = TimeAxis(start=0.0, stop=100.0, step=4.0)
        assert ta.num == 26
        assert ta.time_values[0] == 0.0
        assert ta.time_values[-1] == pytest.approx(ta.stop)

    def test_time_axis_validation(self):
        with pytest.raises(ValueError):
            TimeAxis(start=0.0, stop=10.0)
        with pytest.raises(ValueError):
            TimeAxis(start=0.0, num=10, step=-1.0)

    def test_ricker_peak_at_t0(self):
        t = np.linspace(0, 200, 401)
        wav = ricker_wavelet(t, f0=0.02)
        assert wav.max() == pytest.approx(1.0)
        assert t[np.argmax(wav)] == pytest.approx(1.0 / 0.02, abs=1.0)

    def test_ricker_zero_mean(self):
        t = np.linspace(0, 1000, 4001)
        wav = ricker_wavelet(t, f0=0.02)
        trapz = getattr(np, 'trapezoid', None) or np.trapz
        assert abs(trapz(wav, t)) < 5e-3  # truncated left tail


def _energy(field):
    return float(np.square(np.asarray(field, dtype=np.float64)).sum())


class TestPropagators:
    def test_acoustic_wave_propagates(self):
        solver, tr = acoustic_setup(shape=(40, 40), tn=120.0,
                                    space_order=4, nbl=10)
        rec, u, summary = solver.forward()
        data = np.array(u.data[tr.num % 3])
        assert np.isfinite(data).all()
        assert _energy(data) > 0
        # the wave must have reached away from the source
        assert np.abs(data[:10, :]).max() > 0

    def test_acoustic_receiver_records_arrival(self):
        solver, tr = acoustic_setup(shape=(40, 40), tn=150.0,
                                    space_order=4, nbl=10)
        rec, _, _ = solver.forward()
        assert np.isfinite(rec).all()
        # later samples carry the arrival; early ones are (near) quiet
        early = np.abs(rec[:5, :]).max()
        late = np.abs(rec).max()
        assert late > 10 * max(early, 1e-12)

    def test_acoustic_stability_many_steps(self):
        solver, tr = acoustic_setup(shape=(30, 30), tn=400.0,
                                    space_order=4, nbl=10)
        rec, u, _ = solver.forward()
        assert np.isfinite(np.array(u.data.with_halo)).all()

    def test_acoustic_abc_absorbs(self):
        """With an absorbing layer, late-time energy must decay below the
        peak (no hard reflection blow-up)."""
        solver, tr = acoustic_setup(shape=(30, 30), tn=600.0,
                                    space_order=4, nbl=15)
        rec, u, _ = solver.forward()
        trace = np.abs(rec).max(axis=1)
        peak_t = trace.argmax()
        assert trace[-1] < 0.5 * trace[peak_t]

    def test_acoustic_3d(self):
        solver, tr = acoustic_setup(shape=(20, 20, 20),
                                    spacing=(10.,) * 3, tn=60.0,
                                    space_order=4, nbl=6)
        rec, u, summary = solver.forward()
        assert np.isfinite(np.array(u.data.with_halo)).all()
        assert _energy(u.data_local) > 0

    def test_elastic_both_wavefields_active(self):
        solver, tr = elastic_setup(shape=(36, 36), tn=100.0,
                                   space_order=4, nbl=8)
        rec, v, tau, _ = solver.forward()
        assert _energy(v[0].data_local) > 0
        assert _energy(v[1].data_local) > 0
        assert _energy(tau[0, 0].data_local) > 0
        assert _energy(tau[0, 1].data_local) > 0

    def test_elastic_stability(self):
        solver, tr = elastic_setup(shape=(30, 30), tn=300.0,
                                   space_order=4, nbl=8)
        rec, v, tau, _ = solver.forward()
        assert np.isfinite(np.array(v[0].data.with_halo)).all()
        assert np.isfinite(np.array(tau[0, 0].data.with_halo)).all()

    def test_tti_fields_couple(self):
        solver, tr = tti_setup(shape=(36, 36), tn=80.0, space_order=4,
                               nbl=8)
        rec, p, q, _ = solver.forward()
        assert _energy(p.data_local) > 0
        assert _energy(q.data_local) > 0
        assert np.isfinite(np.array(p.data.with_halo)).all()

    def test_tti_reduces_to_acoustic_when_isotropic(self):
        """With eps=delta=theta=0 the TTI system collapses to two
        uncoupled acoustic equations (same symbol pattern)."""
        solver, tr = tti_setup(shape=(30, 30), tn=60.0, space_order=4,
                               nbl=6, epsilon=0.0, delta=0.0, theta=0.0)
        rec, p, q, _ = solver.forward()
        # p and q receive identical sources and evolve identically
        assert np.allclose(np.array(p.data[0]), np.array(q.data[0]),
                           atol=1e-4)

    def test_tti_anisotropy_changes_field(self):
        base, tr = tti_setup(shape=(30, 30), tn=60.0, space_order=4,
                             nbl=6, epsilon=0.0, delta=0.0, theta=0.0)
        rec0, p0, _, _ = base.forward()
        aniso, tr = tti_setup(shape=(30, 30), tn=60.0, space_order=4,
                              nbl=6, epsilon=0.2, delta=0.1,
                              theta=np.pi / 6)
        rec1, p1, _, _ = aniso.forward()
        n0 = np.array(p0.data[0])
        n1 = np.array(p1.data[0])
        assert not np.allclose(n0, n1, atol=1e-6)

    def test_viscoelastic_runs_and_attenuates(self):
        solver, tr = viscoelastic_setup(shape=(30, 30), tn=150.0,
                                        space_order=4, nbl=8)
        rec, v, sig, _ = solver.forward()
        assert np.isfinite(np.array(v[0].data.with_halo)).all()
        assert _energy(sig[0, 0].data_local) > 0

    def test_viscoelastic_memory_variables_active(self):
        solver, tr = viscoelastic_setup(shape=(30, 30), tn=100.0,
                                        space_order=4, nbl=8)
        solver.forward()
        assert _energy(solver.r[0, 0].data_local) > 0

    def test_equation_counts(self):
        """3 + 6 + 6 = 15 stencil updates in 3D (paper Section IV-B4);
        2 + 3 + 3 = 8 in 2D."""
        solver, _ = viscoelastic_setup(shape=(16, 16), tn=20.0,
                                       space_order=2, nbl=4)
        assert len(solver._equations()) == 8
        solver3, _ = viscoelastic_setup(shape=(10, 10, 10),
                                        spacing=(10.,) * 3, tn=20.0,
                                        space_order=2, nbl=2)
        assert len(solver3._equations()) == 15

    def test_elastic_equation_counts(self):
        solver, _ = elastic_setup(shape=(16, 16), tn=20.0, space_order=2,
                                  nbl=4)
        assert len(solver._equations()) == 5  # 2 velocity + 3 stress (2D)

    def test_kernel_oi_ordering(self):
        """TTI must have by far the highest operational intensity;
        the others are memory-bound (paper Fig. 6/7)."""
        ois = {}
        for name, setup in [('acoustic', acoustic_setup),
                            ('elastic', elastic_setup),
                            ('tti', tti_setup),
                            ('visco', viscoelastic_setup)]:
            solver, _ = setup(shape=(16, 16), tn=20.0, space_order=8,
                              nbl=4)
            ois[name] = solver.op.oi
        assert ois['tti'] > 3 * ois['acoustic']
        assert ois['tti'] > 3 * ois['elastic']
        assert ois['tti'] > 3 * ois['visco']

    def test_flops_grow_with_space_order(self):
        f = {}
        for so in (4, 8):
            solver, _ = acoustic_setup(shape=(16, 16), tn=20.0,
                                       space_order=so, nbl=4)
            f[so] = solver.op.flops_per_point
        assert f[8] > f[4]


class Test3DStaggered:
    """3D runs of the staggered coupled systems (the paper's actual
    benchmark dimensionality)."""

    def test_elastic_3d(self):
        solver, tr = elastic_setup(shape=(14, 14, 14), spacing=(10.,) * 3,
                                   tn=30.0, space_order=4, nbl=4)
        rec, v, tau, _ = solver.forward()
        assert np.isfinite(np.array(v[0].data.with_halo)).all()
        assert _energy(v[0].data_local) > 0
        assert len(tau.functions) == 6

    def test_viscoelastic_3d(self):
        solver, tr = viscoelastic_setup(shape=(14, 14, 14),
                                        spacing=(10.,) * 3, tn=30.0,
                                        space_order=4, nbl=4)
        rec, v, sig, _ = solver.forward()
        assert np.isfinite(np.array(v[0].data.with_halo)).all()
        assert _energy(sig[0, 0].data_local) > 0

    def test_elastic_3d_dmp_equivalence(self):
        from repro.mpi import run_parallel

        def run(comm=None, mpi=None):
            solver, _ = elastic_setup(shape=(12, 12, 12),
                                      spacing=(10.,) * 3, tn=20.0,
                                      space_order=4, nbl=4, comm=comm,
                                      mpi=mpi)
            solver.forward()
            return solver.v[0].data.gather()

        serial = run()
        out = run_parallel(lambda c: run(c, 'diagonal'), 4)
        assert all(np.array_equal(o, serial) for o in out)
