#!/usr/bin/env python
"""Gate a benchmark trajectory artifact against its committed baseline.

Usage::

    python tools/check_bench_regression.py BENCH_build.json \
        benchmarks/BENCH_build_baseline.json [--tolerance 0.25]

Both files are ``bench_*`` payloads with a top-level ``metrics`` dict.
Only *ratio* metrics (speedups and other machine-independent numbers)
are gated; anything ending in ``_ms`` is an absolute wall time recorded
for trend plots and is ignored here, because CI runners have wildly
varying clock speeds.

A metric regresses when::

    current < baseline * (1 - tolerance)

i.e. with the default 25% tolerance a baseline speedup of 8.0x fails
below 6.0x.  Metrics present in the current payload but absent from the
baseline are reported informationally and never fail the gate (they are
new; commit an updated baseline to start gating them).  Metrics present
in the baseline but missing from the current payload *do* fail — a
silently disappearing measurement is itself a regression.

Exit status: 0 = clean, 1 = regression(s), 2 = unusable input.
"""

import argparse
import json
import sys


def load_metrics(path):
    try:
        with open(path, encoding='utf-8') as f:
            payload = json.load(f)
    except (OSError, ValueError) as e:
        print('error: cannot read %s: %s' % (path, e), file=sys.stderr)
        raise SystemExit(2)
    metrics = payload.get('metrics')
    if not isinstance(metrics, dict) or not metrics:
        print('error: %s has no "metrics" dict' % path, file=sys.stderr)
        raise SystemExit(2)
    return {k: v for k, v in metrics.items()
            if isinstance(v, (int, float)) and not k.endswith('_ms')}


def compare(current, baseline, tolerance):
    """Return (failures, report_lines)."""
    failures = []
    lines = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            lines.append('  NEW   %-32s current %.3f (unbaselined)'
                         % (name, cur))
            continue
        if cur is None:
            failures.append(name)
            lines.append('  GONE  %-32s baseline %.3f, missing from '
                         'current payload' % (name, base))
            continue
        floor = base * (1.0 - tolerance)
        status = 'ok' if cur >= floor else 'FAIL'
        if status == 'FAIL':
            failures.append(name)
        lines.append('  %-5s %-32s current %8.3f  baseline %8.3f  '
                     'floor %8.3f' % (status, name, cur, base, floor))
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description='Fail when ratio metrics regress past the tolerance '
                    'relative to a committed baseline.')
    parser.add_argument('current', help='freshly generated BENCH_*.json')
    parser.add_argument('baseline', help='committed baseline BENCH_*.json')
    parser.add_argument('--tolerance', type=float, default=0.25,
                        help='allowed fractional drop (default 0.25)')
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print('error: --tolerance must be in [0, 1)', file=sys.stderr)
        return 2

    current = load_metrics(args.current)
    baseline = load_metrics(args.baseline)

    failures, lines = compare(current, baseline, args.tolerance)
    print('bench regression gate: %s vs %s (tolerance %d%%)'
          % (args.current, args.baseline, round(args.tolerance * 100)))
    for ln in lines:
        print(ln)
    if failures:
        print('REGRESSION: %d metric(s) below the tolerance floor: %s'
              % (len(failures), ', '.join(failures)))
        return 1
    print('clean: %d gated metric(s) within tolerance' % len(baseline))
    return 0


if __name__ == '__main__':
    raise SystemExit(main())
