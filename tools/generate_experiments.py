#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: the complete paper-vs-measured record.

Run from the repository root:  python tools/generate_experiments.py
"""

import io
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), '..', 'src'))

import numpy as np  # noqa: E402

from repro.perfmodel import (ARCHER2_ROOF, TURSA_ROOF,  # noqa: E402
                             cpu_strong_rows, format_table,
                             gpu_strong_rows, paper_data as pd,
                             roofline_points, shape_metrics,
                             weak_scaling_table)


def _measured_execution():
    """Real execution of the four generated kernels on this machine."""
    from repro.models import (acoustic_setup, elastic_setup, tti_setup,
                              viscoelastic_setup)
    out = {}
    for name, setup in [('acoustic', acoustic_setup),
                        ('elastic', elastic_setup),
                        ('tti', tti_setup),
                        ('viscoelastic', viscoelastic_setup)]:
        solver, _ = setup(shape=(64, 64), tn=1000.0, space_order=8,
                          nbl=10, nrec=8)
        op = solver.op
        dt = solver.model.critical_dt
        op.apply(time_m=0, time_M=4, dt=dt)  # warm
        s = op.apply(time_m=0, time_M=19, dt=dt)
        out[name] = s
    return out


def main():
    buf = io.StringIO()
    w = buf.write

    w('# EXPERIMENTS — paper vs this reproduction\n\n')
    w('Every table and figure of the paper\'s evaluation, regenerated.\n'
      'Functional artifacts (Listings, kernels, DMP semantics) are '
      'executed for real\non the simulated-MPI substrate; scaling '
      'numbers come from the calibrated\nanalytic machine model '
      '(`repro.perfmodel`) since the paper\'s clusters are\nunavailable '
      '— single-unit rates are pinned to the paper\'s own 1-node '
      'columns,\neverything scale-dependent is modeled. '
      'See DESIGN.md for the substitution table.\n\n')

    m = shape_metrics()
    w('## Aggregate fidelity\n\n')
    w('| metric | value |\n|---|---|\n')
    w('| CPU cells compared (Tables III-XVIII) | %d |\n' % m['cpu_cells'])
    w('| CPU mean / median relative error | %.3f / %.3f |\n'
      % (m['cpu_mean_rel_err'], m['cpu_median_rel_err']))
    w('| GPU cells compared (Tables XIX-XXXIV) | %d |\n' % m['gpu_cells'])
    w('| GPU mean / median relative error | %.3f / %.3f |\n'
      % (m['gpu_mean_rel_err'], m['gpu_median_rel_err']))
    w('| basic-vs-diagonal winner agreement (>3%% gaps) | %.0f%% of %d |\n'
      % (100 * m['winner_agreement'], m['winner_cells']))
    w('\n')

    w('## Listings 1-3 (functional, executed)\n\n')
    w('- Listing 1 runs verbatim (modulo the elided time-buffer axis in '
      '`u.data`).\n')
    w('- Listing 2: rank-local views after the global slice write match '
      'the paper **exactly** (`tests/test_paper_listings.py`).\n')
    w('- Listing 3: rank-local views after `op.apply(time_M=1)` match '
      'the paper **exactly** (values 0.50/-0.25 pattern).\n')
    w('- Listing 11: generated C reproduces the structure (r0/r1/r2 '
      'preamble, modulo buffers, `u[t1][x + 2][y + 2]` alignment, '
      'OpenMP pragmas).\n')
    w('- Listing 6/8 IET structure: halo update before the stencil loop; '
      'full mode emits begin/CORE/wait/REMAINDER.\n\n')

    w('## DMP transparency (the paper\'s core claim, executed)\n\n')
    w('All 4 kernels x 3 patterns x {2,3,4,8} ranks x custom topologies '
      'produce **bitwise-identical** wavefields to serial runs '
      '(`tests/test_dmp_equivalence.py`). Message counts match Table I '
      '(6 faces vs 26 neighbors in 3D).\n\n')

    w('## Figure 7 — roofline (single node / device, SDO 8)\n\n')
    for gpu, plat, label in ((False, ARCHER2_ROOF, 'Archer2 node'),
                             (True, TURSA_ROOF, 'A100-80')):
        w('### %s (peak %.0f GF/s, DRAM %.0f GB/s)\n\n'
          % (label, plat.peak_gflops, plat.dram_bw_gbs))
        w('| kernel | OI (paper read-off) | GFlops/s | attainable | '
          'bound |\n|---|---|---|---|---|\n')
        for kernel, info in roofline_points(gpu=gpu).items():
            w('| %s | %.1f | %.0f | %.0f | %s |\n'
              % (kernel, info['oi'], info['gflops'], info['attainable'],
                 'DRAM' if info['dram_bound'] else 'compute'))
        w('\n')
    w('Paper claim "flop-optimized kernels are mainly DRAM BW bound": '
      'reproduced (TTI sits near the ridge).\n\n')

    w('## Figures 8-11 + Tables III-XVIII — CPU strong scaling\n\n')
    w('Model and paper rows per table (GPts/s; `-` = not published / '
      'OOM / unreadable in the source).\n\n')
    for kernel in pd.KERNELS:
        for so in pd.SDOS:
            w(format_table(cpu_strong_rows(kernel, so)))
            w('\n\n')

    w('### Headline strong-scaling efficiencies at 128 units (SDO 8)\n\n')
    w('| kernel | CPU model | CPU paper | GPU model | GPU paper |\n')
    w('|---|---|---|---|---|\n')
    for kernel in pd.KERNELS:
        t = cpu_strong_rows(kernel, 8)['model']
        ec = max(t[mm][-1] for mm in t) / (max(t[mm][0] for mm in t) * 128)
        g = gpu_strong_rows(kernel, 8)['model']['basic']
        eg = g[-1] / (g[0] * 128)
        w('| %s | %.2f | %.2f | %.2f | %.2f |\n'
          % (kernel, ec, pd.HEADLINE_EFFICIENCY[(kernel, 'cpu')],
             eg, pd.HEADLINE_EFFICIENCY[(kernel, 'gpu')]))
    w('\n')

    w('## Figures 17-20 + Tables XIX-XXXIV — GPU strong scaling\n\n')
    for kernel in pd.KERNELS:
        for so in pd.SDOS:
            w(format_table(gpu_strong_rows(kernel, so)))
            w('\n\n')

    w('## Figures 12, 21-24 — weak scaling (s/timestep, 256^3/unit)\n\n')
    for so in pd.SDOS:
        w('### SDO %d\n\n' % so)
        w('| series | ' + ' | '.join(str(n) for n in pd.NODES) + ' |\n')
        w('|---' * (len(pd.NODES) + 1) + '|\n')
        for kernel in pd.KERNELS:
            cpu = weak_scaling_table(kernel, so)['basic']
            gpu = weak_scaling_table(kernel, so, gpu=True,
                                     modes=('basic',))['basic']
            w('| %s CPU | %s |\n' % (kernel,
                                     ' | '.join('%.4f' % v for v in cpu)))
            w('| %s GPU | %s |\n' % (kernel,
                                     ' | '.join('%.4f' % v for v in gpu)))
        w('\n')
    w('Paper claims reproduced: nearly constant runtime (< 1.45x drift '
      'across 1-128 units for SDO 8); GPUs ~4x faster at low unit '
      'counts. Deviation: our modeled CPU/GPU gap narrows to ~2-3x at '
      '128 units (the paper reports a steady 4x); the IB-bandwidth '
      'share per GPU in the model is likely pessimistic at scale.\n\n')

    w('## Real execution on this machine (the actual generated '
      'kernels)\n\n')
    w('Serial NumPy-backend runs, 64^2 grid + ABC, SDO 8 — laptop-scale '
      'sanity that the compiled kernels behave like the paper '
      'describes:\n\n')
    meas = _measured_execution()
    w('| kernel | GPts/s | GFlops/s | compile-time OI |\n')
    w('|---|---|---|---|\n')
    for kernel, s in meas.items():
        w('| %s | %.4f | %.3f | %.1f |\n'
          % (kernel, s.gpointss, s.gflopss, s.oi))
    w('\nRelative per-point cost ordering matches Section IV-B: '
      'elastic/viscoelastic >> acoustic; TTI by far the most '
      'flop-intensive; TTI OI >> the memory-bound kernels.\n\n')

    w('## Known deviations\n\n')
    w('- Scaling numbers are model outputs, not cluster measurements; '
      'per-cell error vs the paper averages ~14%% (CPU) / ~11%% (GPU), '
      'bounded by 2x everywhere.\n')
    w('- Table IV (acoustic SDO 8) is corrupted in the source; its row '
      'is pinned by the 16-node column and the Section IV-D text '
      '(~1050 GPts/s at 64%% on 128 nodes).\n')
    w('- 11 of 79 basic-vs-diagonal winner cells flip (mostly cells the '
      'paper itself shows within ~10%%).\n')
    w('- TTI compile-time flop counts exceed production Devito '
      '(no CIRE array temporaries), so our AST-derived OI for TTI is '
      'higher than the paper\'s plotted position; the ordering '
      '(TTI >> others) holds.\n')
    w('- The viscoelastic OOM outlier at 128 nodes (paper adjusted the '
      'MPI/OpenMP balance) is not modeled.\n')

    text = buf.getvalue()
    path = os.path.join(os.path.dirname(__file__), '..', 'EXPERIMENTS.md')
    with open(path, 'w') as f:
        f.write(text)
    print('wrote %s (%d lines)' % (os.path.abspath(path),
                                   text.count('\n')))


if __name__ == '__main__':
    main()
