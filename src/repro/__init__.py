"""repro: reproduction of "Automated MPI-X Code Generation for Scalable
Finite-Difference Solvers" (IPDPS 2025).

A Devito-style symbolic finite-difference DSL and JIT compiler with
automated distributed-memory parallelism over a simulated MPI substrate,
plus the paper's four seismic wave propagators and a calibrated
performance model regenerating its scaling evaluation.

Quickstart (the paper's Listing 1)::

    from repro import Grid, TimeFunction, Eq, Operator, solve

    grid = Grid(shape=(4, 4), extent=(2., 2.))
    u = TimeFunction(name='u', grid=grid, space_order=2)
    u.data[1:-1, 1:-1] = 1
    eq = Eq(u.dt, u.laplace)
    stencil = solve(eq, u.forward)
    op = Operator([Eq(u.forward, stencil)])
    op.apply(time_M=1, dt=0.01)
"""

#: global switchboard, mirroring Devito's DEVITO_MPI-style configuration;
#: a validating mapping seeded from REPRO_MPI / REPRO_PROFILING / REPRO_OPT
from .parameters import Configuration, configuration

from .symbolics import (Derivative, Symbol, cos, exp, sin, sqrt,  # noqa: E402
                        solve as symbolic_solve)
from .dsl.dimensions import (Dimension, SpaceDimension,  # noqa: E402
                             SteppingDimension, TimeDimension)
from .dsl.grid import Grid  # noqa: E402
from .dsl.function import (Constant, Function,  # noqa: E402
                           TimeFunction)
from .dsl.tensor import (TensorTimeFunction, VectorTimeFunction,  # noqa: E402
                         div, grad, tr)
from .dsl.sparse import SparseFunction, SparseTimeFunction  # noqa: E402
from .dsl.equation import Eq, solve  # noqa: E402
from .dsl.operator import Operator  # noqa: E402
from .profiling import PerfEntry, PerformanceSummary  # noqa: E402
from .mpi import parallel, run_parallel  # noqa: E402

__version__ = '1.0.0'

__all__ = [
    'configuration', 'Configuration', 'PerfEntry',
    'Derivative', 'Symbol', 'cos', 'exp', 'sin', 'sqrt',
    'symbolic_solve', 'Dimension', 'SpaceDimension', 'SteppingDimension',
    'TimeDimension', 'Grid', 'Constant', 'Function', 'TimeFunction',
    'TensorTimeFunction', 'VectorTimeFunction', 'div', 'grad', 'tr',
    'SparseFunction', 'SparseTimeFunction', 'Eq', 'solve', 'Operator',
    'PerformanceSummary', 'parallel', 'run_parallel', '__version__',
]
