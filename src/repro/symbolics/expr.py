"""Core symbolic expression engine: an immutable, hash-consed DAG.

This module implements the small computer-algebra system that the rest of
the stack is built on.  It plays the role SymPy plays for Devito: immutable
expressions with canonicalizing constructors (flattening, numeric folding,
like-term collection), exact rational arithmetic (needed for
finite-difference weights), substitution and traversal utilities.

Design notes
------------
* **Hash-consing.**  Nodes of the core classes (``Symbol``, the number
  literals, ``Add``/``Mul``/``Pow``, ``Indexed``, applied functions and
  ``Derivative``) are *interned*: construction routes through a
  ``WeakValueDictionary`` so that structurally identical subexpressions
  are the very same Python object.  Structural equality therefore
  collapses to pointer identity for interned nodes, and every traversal
  can be memoized by ``id(node)`` — O(unique DAG nodes) instead of
  O(tree nodes).  The weak table never pins memory: a node lives exactly
  as long as outside references (or referencing parents) keep it alive.
* **Immutability is a contract.**  ``args`` and class-specific payloads
  are set once at construction and never mutated afterwards; lazily
  cached derived values (``_hash``, ``_str``, ``_skey``) are pure
  functions of the node, so the lazy fill is idempotent and safe to
  share.  Interned classes refuse ``__init__`` outside the factory path
  (see :class:`_HashCons`), so a half-initialized or re-initialized node
  can never enter the table.
* **Identity vs equality.**  ``__eq__`` stays structural — required for
  non-interned DSL subclasses (dimensions, grid functions) and for
  comparing against plain Python numbers — but begins with an identity
  fast path, which is the common case once interning is on.  Memo tables
  key by ``id(node)`` and must keep the key node alive for the lifetime
  of the entry (store ``(node, value)`` tuples, or use
  :class:`WeakIdMemo` for global tables) so a recycled ``id`` can never
  alias a dead key.
* Numbers are exact where possible: ``Integer`` and ``Rational`` fold via
  :class:`fractions.Fraction`; any ``Float`` contaminates a fold to float,
  mirroring SymPy semantics.
* Ordering of ``Add``/``Mul`` operands is canonical (class rank, then the
  cached sort key), which makes structural equality reliable and printing
  deterministic.
"""

from __future__ import annotations

import math
import threading
import warnings
import weakref
from fractions import Fraction
from functools import reduce

__all__ = [
    'Expr', 'Atom', 'Symbol', 'Number', 'Integer', 'Rational', 'Float',
    'Add', 'Mul', 'Pow', 'Indexed', 'S', 'sympify', 'Zero', 'One',
    'MinusOne', 'Half', 'preorder', 'postorder', 'unique_nodes',
    'WeakIdMemo', 'has_indexed', 'diff', 'xreplace', 'contains',
    'count_ops', 'expand', 'linear_coeffs', 'free_symbols', 'indexeds',
]


# -- interning machinery -----------------------------------------------------------

#: the global hash-consing table: intern key -> node.  Values are held
#: weakly, so the table never keeps an expression alive by itself.
_INTERN: 'weakref.WeakValueDictionary' = weakref.WeakValueDictionary()

#: thread-local construction depth; nonzero exactly while the metaclass
#: factory path is running (SPMD simulation builds expressions from
#: several rank threads concurrently, so this must not be global state)
_BUILDING = threading.local()


class _HashCons(type):
    """Metaclass routing construction of interned classes through the table.

    A class opts in by declaring ``_interned = True`` **in its own body**;
    the flag is deliberately not inherited (the metaclass translates it to
    a concrete per-class ``_hashcons`` attribute), so DSL subclasses that
    carry identity-bearing state — grids, data buffers, per-grid spacing —
    stay ordinary objects unless they opt in themselves.

    The factory constructs the candidate node first and only then computes
    its intern key from the *constructed* object: argument coercion
    (``int(value)``, sympify of children) has already happened, so the key
    is canonical.  Keys embed ``id(child)`` rather than child equality —
    see :meth:`Expr._intern_key` for why that is both safe and required.
    """

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        cls._hashcons = bool(namespace.get('_interned', False))
        return cls

    def __call__(cls, *args, **kwargs):
        if not cls._hashcons:
            return super().__call__(*args, **kwargs)
        normalized = cls._normalize(*args, **kwargs)
        if normalized is not None:
            return normalized
        depth = getattr(_BUILDING, 'depth', 0)
        _BUILDING.depth = depth + 1
        try:
            obj = super().__call__(*args, **kwargs)
        finally:
            _BUILDING.depth = depth
        # setdefault is the whole interning step: either the structurally
        # identical node already lives in the table (return it, drop the
        # candidate) or the candidate becomes the canonical node
        return _INTERN.setdefault(obj._intern_key(), obj)


class WeakIdMemo:
    """A global memo table keyed by node identity, entries die with the key.

    Maps ``id(node) -> value`` without keeping ``node`` alive: the entry
    holds a weak reference to the key node and evicts itself when the node
    is collected, so a later object reusing the same ``id`` can never read
    a stale value.  Lookups additionally verify the referent *is* the
    queried node.  Use for compositional pure functions whose results are
    worth sharing across calls (derivative expansion, indexification);
    per-call memos should stay plain dicts storing ``(node, value)``.
    """

    __slots__ = ('_data',)

    #: sentinel meaning "the cached value is the key node itself" — stored
    #: instead of the node so the entry does not strongly pin its own key
    _SAME = object()

    def __init__(self):
        self._data = {}

    def get(self, node, default=None):
        entry = self._data.get(id(node))
        if entry is None:
            return default
        ref, value = entry
        if ref() is not node:
            return default
        return node if value is WeakIdMemo._SAME else value

    def set(self, node, value):
        key = id(node)
        data = self._data

        def _evict(ref, key=key, data=data):
            entry = data.get(key)
            if entry is not None and entry[0] is ref:
                del data[key]

        if value is node:
            value = WeakIdMemo._SAME
        data[key] = (weakref.ref(node, _evict), value)

    def __len__(self):
        return len(self._data)


class Expr(metaclass=_HashCons):
    """Base class of all symbolic expressions.

    Instances are frozen by contract: ``args`` and all class-specific
    payload attributes are assigned exactly once, inside ``__init__`` on
    the factory path, and must never be mutated afterwards — interned
    nodes are shared structurally across every expression that contains
    them.  The only attributes written after construction are the
    ``_hash``/``_str``/``_skey`` caches, which are pure functions of the
    node.
    """

    __slots__ = ('args', '_hash', '_str', '_skey', '__weakref__')

    #: rank used for canonical ordering of operands (smaller sorts first)
    _class_rank = 50

    is_Number = False
    is_Atom = False
    is_Add = False
    is_Mul = False
    is_Pow = False
    is_Indexed = False
    is_Symbol = False
    is_Function = False
    is_Derivative = False

    def __init__(self, *args):
        if type(self)._hashcons and not getattr(_BUILDING, 'depth', 0):
            raise TypeError(
                "%s is hash-consed: construct instances through the class "
                "call (or its make() factory); calling __init__ directly "
                "would bypass interning" % type(self).__name__)
        self.args = args
        self._hash = None
        self._str = None
        self._skey = None

    # -- interning hooks ------------------------------------------------------

    @classmethod
    def _normalize(cls, *args, **kwargs):
        """Pre-construction rewrite hook for interned classes.

        Return a finished :class:`Expr` to redirect construction (e.g.
        ``Rational(4, 2)`` collapsing to ``Integer(2)``), or None to
        proceed with normal construction of ``cls``.
        """
        return None

    def _intern_key(self):
        """The hash-consing key of this (fully constructed) node.

        Children are keyed by ``id`` rather than by equality: structural
        child equality may be weaker than semantic identity (two distinct
        same-named DSL functions compare equal but bind different data),
        and identity keys are also what makes interning O(1) per node.
        The key's child ids can never dangle: the table *value* holds the
        children strongly, and CPython clears weakrefs (removing the
        entry) before the dying node releases its children.
        """
        key = [type(self)]
        key.extend(map(id, self.args))
        return tuple(key)

    # -- construction helpers ------------------------------------------------

    @property
    def func(self):
        """The canonicalizing constructor for this node class."""
        cls = type(self)
        make = getattr(cls, 'make', None)
        return make if make is not None else cls

    def rebuild(self, *args):
        """Reconstruct this node with new arguments (re-canonicalizing)."""
        return self.func(*args)

    # -- equality / hashing --------------------------------------------------

    def _hashable(self):
        return (type(self).__name__,) + self.args

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._hashable())
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, (int, float, Fraction)):
            other = sympify(other)
        if not isinstance(other, Expr):
            return NotImplemented
        if type(self) is not type(other):
            return False
        return self._hashable() == other._hashable()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- ordering for canonical form ------------------------------------------

    def sort_key(self):
        """A cached, cheaply comparable total-order key.

        Nested tuples share children's keys, so building keys over a large
        expression is O(nodes) in memory (strings would be O(nodes**2)).
        """
        if self._skey is None:
            self._skey = (self._class_rank, self._key_payload(),
                          tuple(a.sort_key() for a in self.args))
        return self._skey

    def _key_payload(self):
        """Class-specific comparable payload (classes sharing a rank must
        return payloads of the same type)."""
        return ()

    # -- printing --------------------------------------------------------------

    def __str__(self):
        if self._str is None:
            self._str = self._sstr()
        return self._str

    def __repr__(self):
        return str(self)

    def _sstr(self):
        raise NotImplementedError

    def _needs_parens(self):
        return False

    # -- arithmetic operators ----------------------------------------------------

    def __add__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(self, Mul.make(MinusOne, other))

    def __rsub__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(other, Mul.make(MinusOne, self))

    def __mul__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(self, Pow.make(other, MinusOne))

    def __rtruediv__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(other, Pow.make(self, MinusOne))

    def __pow__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Pow.make(self, other)

    def __rpow__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Pow.make(other, self)

    def __neg__(self):
        return Mul.make(MinusOne, self)

    def __pos__(self):
        return self

    # -- common queries (the public Expr method API) -----------------------------

    def diff(self, *specs, fd_order=2, x0=None, offsets=None):
        """An unevaluated :class:`~.derivative.Derivative` of this node.

        ``specs`` are dimensions or ``(dimension, order)`` pairs, exactly
        as the ``Derivative`` constructor takes them.
        """
        from .derivative import Derivative
        return Derivative(self, *specs, fd_order=fd_order, x0=x0,
                          offsets=offsets)

    def xreplace(self, mapping):
        """Replace exact subtree occurrences according to ``mapping``."""
        return _xreplace(self, mapping)

    def subs(self, mapping):
        """Alias of :meth:`xreplace` (exact structural substitution)."""
        return _xreplace(self, mapping)

    def expand(self):
        """Distribute products over sums (and integer powers of sums)."""
        return _expand(self)

    def count_ops(self):
        """Scalar flops to evaluate this expression once (DAG semantics)."""
        return _count_ops(self)

    def contains(self, target, memo=None):
        """True if ``target`` occurs as a subexpression of this node."""
        return contains(self, target, memo)

    @property
    def free_symbols(self):
        return _free_symbols(self)

    def atoms(self, *types):
        """All atomic (leaf) subexpressions, optionally filtered by type."""
        types = types or (Atom,)
        return {e for e in unique_nodes(self) if isinstance(e, types)}

    def evalf(self, bindings=None):
        """Numerically evaluate with ``bindings`` mapping atoms to numbers."""
        return _evalf(self, bindings or {})

    def dag_stats(self):
        """Sharing statistics of this expression's DAG.

        Returns a dict with ``unique_nodes`` (distinct node objects),
        ``tree_nodes`` (nodes of the fully unfolded tree), ``sharing``
        (their ratio — 1.0 means no sharing) and ``depth``.  The ratio is
        the direct measure of what hash-consing buys each traversal.
        """
        unique = 0
        tree = {}
        depth = {}
        for node in _postorder_unique(self):
            unique += 1
            tree[id(node)] = 1 + sum(tree[id(a)] for a in node.args)
            depth[id(node)] = 1 + max(
                (depth[id(a)] for a in node.args), default=0)
        tree_nodes = tree[id(self)]
        return {
            'unique_nodes': unique,
            'tree_nodes': tree_nodes,
            'sharing': tree_nodes / unique,
            'depth': depth[id(self)],
        }


class Atom(Expr):
    """An expression with no children."""

    __slots__ = ()

    is_Atom = True

    def _hashable(self):
        return (type(self).__name__,) + self.args


class Symbol(Atom):
    """A named scalar symbol."""

    __slots__ = ('name',)
    _class_rank = 10
    is_Symbol = True
    _interned = True

    def __init__(self, name, **kwargs):
        super().__init__()
        self.name = name

    def _intern_key(self):
        return (type(self), self.name)

    def _hashable(self):
        return (type(self).__name__, self.name)

    def _key_payload(self):
        return self.name

    def _sstr(self):
        return self.name


class Number(Atom):
    """Base class for numeric literals."""

    __slots__ = ('value',)
    _class_rank = 0
    is_Number = True

    def _intern_key(self):
        return (type(self), self.value)

    def _hashable(self):
        return ('Number', self.value)

    def _key_payload(self):
        return float(self.value)

    def __lt__(self, other):
        other = sympify(other)
        return self.value < other.value

    def __le__(self, other):
        other = sympify(other)
        return self.value <= other.value

    def __gt__(self, other):
        other = sympify(other)
        return self.value > other.value

    def __ge__(self, other):
        other = sympify(other)
        return self.value >= other.value

    def __float__(self):
        return float(self.value)

    def __int__(self):
        return int(self.value)

    def __bool__(self):
        return bool(self.value)


class Integer(Number):
    """An exact integer literal."""

    __slots__ = ()
    _interned = True

    def __init__(self, value):
        super().__init__()
        self.value = int(value)

    def _sstr(self):
        return str(self.value)


class Rational(Number):
    """An exact rational literal (auto-reduces; integers become Integer)."""

    __slots__ = ()
    _interned = True

    @classmethod
    def _normalize(cls, p, q=1):
        frac = Fraction(p, q)
        if frac.denominator == 1:
            # integral value: collapse to Integer
            return Integer(frac.numerator)
        return None

    def __init__(self, p, q=1):
        super().__init__()
        self.value = Fraction(p, q)

    @property
    def p(self):
        return self.value.numerator

    @property
    def q(self):
        return self.value.denominator

    def _sstr(self):
        return '%d/%d' % (self.value.numerator, self.value.denominator)

    def _needs_parens(self):
        return True


class Float(Number):
    """An inexact floating-point literal."""

    __slots__ = ()
    _interned = True

    def __init__(self, value):
        super().__init__()
        self.value = float(value)

    def _intern_key(self):
        # 0.0 == -0.0 but they print differently; keep them distinct
        return (Float, self.value, math.copysign(1.0, self.value))

    def _sstr(self):
        return repr(self.value)

    def _needs_parens(self):
        return self.value < 0


def _number(value):
    """Wrap a Python numeric value in the tightest Number subclass."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return Integer(value.numerator)
        return Rational(value)
    if isinstance(value, bool):
        return Integer(int(value))
    if isinstance(value, int):
        return Integer(value)
    if isinstance(value, float):
        return Float(value)
    raise TypeError("cannot wrap %r as a Number" % (value,))


def sympify(obj):
    """Convert a Python object into an :class:`Expr` (or NotImplemented)."""
    if isinstance(obj, Expr):
        return obj
    if isinstance(obj, (int, float, Fraction)):
        return _number(obj)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return NotImplemented
    if isinstance(obj, np.integer):
        return Integer(int(obj))
    if isinstance(obj, np.floating):
        return Float(float(obj))
    return NotImplemented


def S(obj):
    """Strict sympify: raise on failure."""
    result = sympify(obj)
    if result is NotImplemented:
        raise TypeError("cannot sympify %r" % (obj,))
    return result


# -- numeric folding helpers ----------------------------------------------------

def _num_add(a, b):
    if type(a) is Float or type(b) is Float:
        return Float(float(a.value) + float(b.value))
    # int+int, int+Fraction and Fraction+Fraction are all exact
    value = a.value + b.value
    return Integer(value) if type(value) is int else _number(value)


def _num_mul(a, b):
    if type(a) is Float or type(b) is Float:
        return Float(float(a.value) * float(b.value))
    value = a.value * b.value
    return Integer(value) if type(value) is int else _number(value)


def _num_pow(base, exp):
    if isinstance(exp, Integer):
        if isinstance(base, Float):
            return Float(float(base.value) ** exp.value)
        return _number(Fraction(base.value) ** exp.value)
    bval, eval_ = float(base.value), float(exp.value)
    if bval < 0:
        return None
    return Float(bval ** eval_)


class Add(Expr):
    """A canonical n-ary sum."""

    __slots__ = ()
    _class_rank = 60
    is_Add = True
    _interned = True

    @classmethod
    def make(cls, *args):
        terms = {}
        const = Zero
        stack = list(args)
        while stack:
            arg = S(stack.pop())
            if arg.is_Add:
                stack.extend(arg.args)
            elif arg.is_Number:
                const = _num_add(const, arg)
            else:
                coeff, term = _as_coeff_term(arg)
                if term in terms:
                    terms[term] = _num_add(terms[term], coeff)
                else:
                    terms[term] = coeff
        out = []
        for term, coeff in terms.items():
            if coeff.value == 0:
                continue
            if coeff.value == 1:
                out.append(term)
            else:
                out.append(Mul.make(coeff, term))
        if const.value != 0 or not out:
            out.append(const)
        if len(out) == 1:
            return out[0]
        out.sort(key=lambda e: e.sort_key())
        return cls(*out)

    def _sstr(self):
        parts = []
        for i, arg in enumerate(self.args):
            text = str(arg)
            if i == 0:
                parts.append(text)
            elif text.startswith('-'):
                parts.append(' - ' + text[1:])
            else:
                parts.append(' + ' + text)
        return ''.join(parts)

    def _needs_parens(self):
        return True


def _as_coeff_term(expr):
    """Split ``expr`` into (numeric coefficient, symbolic remainder)."""
    if expr.is_Mul and expr.args and expr.args[0].is_Number:
        coeff = expr.args[0]
        rest = expr.args[1:]
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(*rest)
    return One, expr


class Mul(Expr):
    """A canonical n-ary product (numeric coefficient first)."""

    __slots__ = ()
    _class_rank = 55
    is_Mul = True
    _interned = True

    @classmethod
    def make(cls, *args):
        coeff = One
        powers = {}
        order = []
        stack = list(reversed(args))
        while stack:
            arg = S(stack.pop())
            if arg.is_Mul:
                stack.extend(reversed(arg.args))
            elif arg.is_Number:
                coeff = _num_mul(coeff, arg)
            else:
                base, exp = _as_base_exp(arg)
                if base in powers:
                    powers[base] = Add.make(powers[base], exp)
                else:
                    powers[base] = exp
                    order.append(base)
        if coeff.value == 0:
            return Zero
        out = []
        for base in order:
            exp = powers[base]
            factor = Pow.make(base, exp)
            if factor.is_Number:
                coeff = _num_mul(coeff, factor)
            elif factor.is_Mul:
                # e.g. rational**int folding produced a coefficient
                for sub in factor.args:
                    if sub.is_Number:
                        coeff = _num_mul(coeff, sub)
                    else:
                        out.append(sub)
            elif not (factor.is_Number and factor.value == 1):
                out.append(factor)
        if not out:
            return coeff
        out.sort(key=lambda e: e.sort_key())
        if coeff.value != 1 and len(out) == 1 and out[0].is_Add:
            # distribute a purely numeric coefficient over a sum (SymPy
            # semantics); required for structural cancellation like
            # (x + y) - (x + y) == 0
            return Add.make(*[cls.make(coeff, term)
                              for term in out[0].args])
        if coeff.value != 1:
            out.insert(0, coeff)
        if len(out) == 1:
            return out[0]
        return cls(*out)

    def _sstr(self):
        parts = []
        for arg in self.args:
            text = str(arg)
            if arg.is_Add or arg._needs_parens():
                text = '(' + text + ')'
            parts.append(text)
        out = '*'.join(parts)
        # cosmetics: -1*x prints as -x
        if out.startswith('-1*'):
            out = '-' + out[3:]
        return out


def _as_base_exp(expr):
    if expr.is_Pow:
        return expr.args[0], expr.args[1]
    return expr, One


class Pow(Expr):
    """A canonical power ``base**exp``."""

    __slots__ = ()
    _class_rank = 45
    is_Pow = True
    _interned = True

    @classmethod
    def make(cls, base, exp):
        base = S(base)
        exp = S(exp)
        if exp.is_Number and exp.value == 0:
            return One
        if exp.is_Number and exp.value == 1:
            return base
        if base.is_Number and base.value == 1:
            return One
        if base.is_Number and base.value == 0:
            if exp.is_Number and exp.value > 0:
                return Zero
        if base.is_Number and exp.is_Number:
            folded = _num_pow(base, exp)
            if folded is not None:
                return folded
        if base.is_Pow and isinstance(exp, Integer):
            inner_base, inner_exp = base.args
            return cls.make(inner_base, Mul.make(inner_exp, exp))
        if base.is_Mul and isinstance(exp, Integer):
            return Mul.make(*[cls.make(f, exp) for f in base.args])
        return cls(base, exp)

    @property
    def base(self):
        return self.args[0]

    @property
    def exp(self):
        return self.args[1]

    def _sstr(self):
        base, exp = self.args
        btext = str(base)
        if base.is_Add or base.is_Mul or base.is_Pow or base._needs_parens():
            btext = '(' + btext + ')'
        etext = str(exp)
        if exp.is_Add or exp.is_Mul or exp._needs_parens():
            etext = '(' + etext + ')'
        return btext + '**' + etext


class Indexed(Expr):
    """An array access ``base[i0, i1, ...]``.

    ``base`` is any object exposing ``name`` (typically a DSL
    ``DiscreteFunction``); index expressions are symbolic.
    """

    __slots__ = ('base',)
    _class_rank = 20
    is_Indexed = True
    _interned = True

    def __init__(self, base, *indices):
        super().__init__(*[S(i) for i in indices])
        self.base = base

    @classmethod
    def make(cls, base, *indices):
        return cls(base, *indices)

    def _intern_key(self):
        # the base is keyed by identity, NOT by its (name-based) equality:
        # two distinct same-named functions bind different data and their
        # accesses must stay distinct objects
        key = [type(self), id(self.base)]
        key.extend(map(id, self.args))
        return tuple(key)

    @property
    def func(self):
        base = self.base
        return lambda *indices: Indexed(base, *indices)

    @property
    def indices(self):
        return self.args

    @property
    def name(self):
        return self.base.name

    def _hashable(self):
        return ('Indexed', self.base.name) + self.args

    def _key_payload(self):
        return self.base.name

    def _sstr(self):
        return '%s[%s]' % (self.base.name, ', '.join(str(i) for i in self.args))


# -- singletons -------------------------------------------------------------------

Zero = Integer(0)
One = Integer(1)
MinusOne = Integer(-1)
Half = Rational(1, 2)


# -- traversal / rewriting ----------------------------------------------------------

def preorder(expr):
    """Yield every node of ``expr`` in pre-order, **with** multiplicity.

    This is a tree walk: a subexpression shared n times is yielded n
    times.  Occurrence counting (CSE) depends on that; prefer
    :func:`unique_nodes` wherever set semantics are enough.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.args)


def postorder(expr):
    """Yield every node of ``expr`` in post-order (tree semantics)."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.args)
    return reversed(out)


def unique_nodes(expr):
    """Yield each distinct node of the expression DAG exactly once.

    The DAG counterpart of :func:`preorder`: shared subexpressions are
    visited once regardless of multiplicity, so a walk is O(unique nodes).
    """
    seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        key = id(node)
        if key in seen:
            continue
        seen.add(key)
        yield node
        stack.extend(node.args)


def _postorder_unique(expr):
    """Children-first walk over distinct DAG nodes (iterative)."""
    seen = set()
    stack = [(expr, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        key = id(node)
        if key in seen:
            continue
        seen.add(key)
        stack.append((node, True))
        for a in node.args:
            stack.append((a, False))


def _xreplace(expr, mapping):
    """Exact structural replacement, memoized by node identity."""
    if not mapping:
        return expr
    memo = {}

    def rec(node):
        # entries pin their key node (id -> (node, result)) so an id
        # recycled from a temporary cannot alias a live memo entry
        hit = memo.get(id(node))
        if hit is not None:
            return hit[1]
        if node in mapping:
            result = S(mapping[node])
        elif not node.args:
            result = node
        else:
            new_args = [rec(a) for a in node.args]
            if all(na is a for na, a in zip(new_args, node.args)):
                result = node
            else:
                result = node.func(*new_args)
        memo[id(node)] = (node, result)
        return result

    return rec(S(expr))


def contains(expr, target, memo=None):
    """True if ``target`` occurs as a subexpression of ``expr``.

    ``memo`` maps ``id(node) -> (node, bool)`` and may be shared between
    calls with the same ``target`` (as :func:`linear_coeffs` does).
    """
    if memo is None:
        memo = {}
    hit = memo.get(id(expr))
    if hit is not None:
        return hit[1]
    if expr is target or expr == target:
        memo[id(expr)] = (expr, True)
        return True
    result = any(contains(a, target, memo) for a in expr.args)
    memo[id(expr)] = (expr, result)
    return result


def _free_symbols(expr):
    """All :class:`Symbol` leaves, including those inside Indexed indices."""
    return {e for e in unique_nodes(expr) if e.is_Symbol}


def indexeds(expr):
    """All :class:`Indexed` accesses in ``expr`` (occurrence list)."""
    return [e for e in preorder(expr) if e.is_Indexed]


#: global memo for :func:`has_indexed` — the predicate is a pure function
#: of the node, so it is shared across every hoisting/CSE pass
_HAS_INDEXED_MEMO = WeakIdMemo()


def has_indexed(expr):
    """True if ``expr`` contains an :class:`Indexed` access (memoized)."""
    hit = _HAS_INDEXED_MEMO.get(expr, None)
    if hit is not None:
        return hit
    if expr.is_Indexed:
        result = True
    else:
        result = any(has_indexed(a) for a in expr.args)
    _HAS_INDEXED_MEMO.set(expr, result)
    return result


def _count_ops(expr):
    """Count scalar floating-point operations to evaluate ``expr`` once.

    This is the compile-time flop counter the paper uses to derive
    operational intensity on the CPU (Section IV-C).  Shared
    subexpressions are charged once (DAG semantics), which makes the
    count relative to the root — hence a per-call memo, never a global
    one.
    """
    memo = {}

    def rec(node):
        if id(node) in memo:
            return 0  # shared subexpression: charged once (DAG semantics)
        ops = 0
        if node.is_Add or node.is_Mul:
            ops += len(node.args) - 1
            # division costs the same as multiplication here
        elif node.is_Pow:
            exp = node.args[1]
            if isinstance(exp, Integer) and abs(exp.value) <= 4:
                ops += max(abs(exp.value) - 1, 1)
            else:
                ops += 5  # transcendental pow
        elif node.is_Function:
            ops += 5  # transcendental call cost
        for a in node.args:
            ops += rec(a)
        memo[id(node)] = node
        return ops

    return rec(S(expr))


def _expand(expr):
    """Distribute products over sums (and integer powers of sums)."""
    memo = {}

    def rec(node):
        hit = memo.get(id(node))
        if hit is not None:
            return hit[1]
        if not node.args:
            result = node
        elif node.is_Mul:
            factors = [rec(a) for a in node.args]
            terms = [One]
            for factor in factors:
                addends = factor.args if factor.is_Add else (factor,)
                terms = [Mul.make(t, a) for t in terms for a in addends]
            result = Add.make(*terms)
        elif node.is_Pow:
            base, exp = node.args
            base = rec(base)
            if base.is_Add and isinstance(exp, Integer) and 1 < exp.value <= 3:
                result = rec(Mul(*([base] * exp.value)))
            else:
                result = Pow.make(base, exp)
        else:
            new_args = [rec(a) for a in node.args]
            result = node.func(*new_args)
        memo[id(node)] = (node, result)
        return result

    return rec(S(expr))


def linear_coeffs(expr, target):
    """Decompose ``expr == a*target + b`` without full expansion.

    Returns ``(a, b)``.  Raises ``ValueError`` if ``expr`` is not linear in
    ``target``.  Products are handled by requiring at most one factor to
    contain the target, which is exactly the shape finite-difference
    update equations take after derivative expansion.
    """
    memo = {}

    def rec(node):
        if node == target:
            return One, Zero
        if not contains(node, target, memo):
            return Zero, node
        if node.is_Add:
            a_parts, b_parts = [], []
            for arg in node.args:
                a, b = rec(arg)
                a_parts.append(a)
                b_parts.append(b)
            return Add.make(*a_parts), Add.make(*b_parts)
        if node.is_Mul:
            hot = [f for f in node.args if contains(f, target, memo)]
            if len(hot) != 1:
                raise ValueError("nonlinear in %s: %s" % (target, node))
            rest = Mul.make(*[f for f in node.args if f is not hot[0]])
            a, b = rec(hot[0])
            return Mul.make(a, rest), Mul.make(b, rest)
        raise ValueError("cannot extract linear coefficient from %s" % (node,))

    return rec(S(expr))


def _evalf(expr, bindings):
    from .functions import AppliedFunction
    memo = {}

    def rec(node):
        if node.is_Number:
            return float(node.value)
        hit = memo.get(id(node))
        if hit is not None:
            return hit[1]
        if node in bindings:
            result = float(bindings[node])
        elif node.is_Symbol or node.is_Indexed:
            raise ValueError("unbound atom %s in evalf" % (node,))
        elif node.is_Add:
            result = math.fsum(rec(a) for a in node.args)
        elif node.is_Mul:
            result = reduce(lambda x, y: x * y, (rec(a) for a in node.args))
        elif node.is_Pow:
            result = rec(node.args[0]) ** rec(node.args[1])
        elif isinstance(node, AppliedFunction):
            result = node._numeric(*[rec(a) for a in node.args])
        else:
            raise ValueError("cannot evaluate %s" % (node,))
        memo[id(node)] = (node, result)
        return result

    return rec(S(expr))


# -- deprecated free-function shims -------------------------------------------------
#
# The traversal entry points moved onto Expr (see the method API above);
# these module-level wrappers remain for source compatibility and warn.

def _deprecated(name, replacement):
    warnings.warn(
        "repro.symbolics.%s() is deprecated; use %s instead"
        % (name, replacement), DeprecationWarning, stacklevel=3)


def diff(expr, *specs, fd_order=2, x0=None, offsets=None):
    """Deprecated: use ``expr.diff(...)``."""
    _deprecated('diff', 'Expr.diff()')
    return S(expr).diff(*specs, fd_order=fd_order, x0=x0, offsets=offsets)


def xreplace(expr, mapping):
    """Deprecated: use ``expr.xreplace(mapping)``."""
    _deprecated('xreplace', 'Expr.xreplace()')
    return _xreplace(S(expr), mapping)


def expand(expr):
    """Deprecated: use ``expr.expand()``."""
    _deprecated('expand', 'Expr.expand()')
    return _expand(S(expr))


def count_ops(expr):
    """Deprecated: use ``expr.count_ops()``."""
    _deprecated('count_ops', 'Expr.count_ops()')
    return _count_ops(S(expr))


def free_symbols(expr):
    """Deprecated: use the ``Expr.free_symbols`` property."""
    _deprecated('free_symbols', 'Expr.free_symbols')
    return _free_symbols(S(expr))
