"""Core symbolic expression engine.

This module implements the small computer-algebra system that the rest of
the stack is built on.  It plays the role SymPy plays for Devito: immutable
expression trees with canonicalizing constructors (flattening, numeric
folding, like-term collection), exact rational arithmetic (needed for
finite-difference weights), substitution and traversal utilities.

Design notes
------------
* Expressions are immutable and hash-cached.  ``Add``/``Mul``/``Pow`` go
  through canonicalizing ``make`` classmethods; the Python-level operators
  (``+``, ``*``, ...) route through those.
* Numbers are exact where possible: ``Integer`` and ``Rational`` fold via
  :class:`fractions.Fraction`; any ``Float`` contaminates a fold to float,
  mirroring SymPy semantics.
* Ordering of ``Add``/``Mul`` operands is canonical (class rank, then the
  cached string form), which makes structural equality reliable and
  printing deterministic.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import reduce

__all__ = [
    'Expr', 'Atom', 'Symbol', 'Number', 'Integer', 'Rational', 'Float',
    'Add', 'Mul', 'Pow', 'Indexed', 'S', 'sympify', 'Zero', 'One',
    'MinusOne', 'Half', 'preorder', 'postorder', 'xreplace', 'contains',
    'count_ops', 'expand', 'linear_coeffs', 'free_symbols', 'indexeds',
]


class Expr:
    """Base class of all symbolic expressions."""

    __slots__ = ('args', '_hash', '_str', '_skey')

    #: rank used for canonical ordering of operands (smaller sorts first)
    _class_rank = 50

    is_Number = False
    is_Atom = False
    is_Add = False
    is_Mul = False
    is_Pow = False
    is_Indexed = False
    is_Symbol = False
    is_Function = False
    is_Derivative = False

    def __init__(self, *args):
        self.args = args
        self._hash = None
        self._str = None
        self._skey = None

    # -- construction helpers ------------------------------------------------

    @property
    def func(self):
        """The canonicalizing constructor for this node class."""
        cls = type(self)
        make = getattr(cls, 'make', None)
        return make if make is not None else cls

    def rebuild(self, *args):
        """Reconstruct this node with new arguments (re-canonicalizing)."""
        return self.func(*args)

    # -- equality / hashing --------------------------------------------------

    def _hashable(self):
        return (type(self).__name__,) + self.args

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._hashable())
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if isinstance(other, (int, float, Fraction)):
            other = sympify(other)
        if not isinstance(other, Expr):
            return NotImplemented
        if type(self) is not type(other):
            return False
        return self._hashable() == other._hashable()

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    # -- ordering for canonical form ------------------------------------------

    def sort_key(self):
        """A cached, cheaply comparable total-order key.

        Nested tuples share children's keys, so building keys over a large
        expression is O(nodes) in memory (strings would be O(nodes**2)).
        """
        if self._skey is None:
            self._skey = (self._class_rank, self._key_payload(),
                          tuple(a.sort_key() for a in self.args))
        return self._skey

    def _key_payload(self):
        """Class-specific comparable payload (classes sharing a rank must
        return payloads of the same type)."""
        return ()

    # -- printing --------------------------------------------------------------

    def __str__(self):
        if self._str is None:
            self._str = self._sstr()
        return self._str

    def __repr__(self):
        return str(self)

    def _sstr(self):
        raise NotImplementedError

    def _needs_parens(self):
        return False

    # -- arithmetic operators ----------------------------------------------------

    def __add__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(self, Mul.make(MinusOne, other))

    def __rsub__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Add.make(other, Mul.make(MinusOne, self))

    def __mul__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(self, Pow.make(other, MinusOne))

    def __rtruediv__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Mul.make(other, Pow.make(self, MinusOne))

    def __pow__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Pow.make(self, other)

    def __rpow__(self, other):
        other = sympify(other)
        if other is NotImplemented:
            return NotImplemented
        return Pow.make(other, self)

    def __neg__(self):
        return Mul.make(MinusOne, self)

    def __pos__(self):
        return self

    # -- common queries -----------------------------------------------------------

    def xreplace(self, mapping):
        """Replace exact subtree occurrences according to ``mapping``."""
        return xreplace(self, mapping)

    subs = xreplace

    @property
    def free_symbols(self):
        return free_symbols(self)

    def atoms(self, *types):
        """All atomic (leaf) subexpressions, optionally filtered by type."""
        types = types or (Atom,)
        return {e for e in preorder(self) if isinstance(e, types)}

    def evalf(self, bindings=None):
        """Numerically evaluate with ``bindings`` mapping atoms to numbers."""
        return _evalf(self, bindings or {})


class Atom(Expr):
    """An expression with no children."""

    __slots__ = ()

    is_Atom = True

    def _hashable(self):
        return (type(self).__name__,) + self.args


class Symbol(Atom):
    """A named scalar symbol."""

    __slots__ = ('name',)
    _class_rank = 10
    is_Symbol = True

    def __init__(self, name, **kwargs):
        super().__init__()
        self.name = name

    def _hashable(self):
        return (type(self).__name__, self.name)

    def _key_payload(self):
        return self.name

    def _sstr(self):
        return self.name


class Number(Atom):
    """Base class for numeric literals."""

    __slots__ = ('value',)
    _class_rank = 0
    is_Number = True

    def _hashable(self):
        return ('Number', self.value)

    def _key_payload(self):
        return float(self.value)

    def __lt__(self, other):
        other = sympify(other)
        return self.value < other.value

    def __le__(self, other):
        other = sympify(other)
        return self.value <= other.value

    def __gt__(self, other):
        other = sympify(other)
        return self.value > other.value

    def __ge__(self, other):
        other = sympify(other)
        return self.value >= other.value

    def __float__(self):
        return float(self.value)

    def __int__(self):
        return int(self.value)

    def __bool__(self):
        return bool(self.value)


class Integer(Number):
    """An exact integer literal."""

    __slots__ = ()

    def __init__(self, value):
        super().__init__()
        self.value = int(value)

    def _sstr(self):
        return str(self.value)


class Rational(Number):
    """An exact rational literal (auto-reduces; integers become Integer)."""

    __slots__ = ()

    def __new__(cls, p, q=1):
        frac = Fraction(p, q)
        if frac.denominator == 1:
            # integral value: collapse to Integer (fully constructed here;
            # __init__ is skipped since Integer is not a Rational subclass)
            return Integer(frac.numerator)
        return object.__new__(cls)

    def __init__(self, p, q=1):
        super().__init__()
        self.value = Fraction(p, q)

    @property
    def p(self):
        return self.value.numerator

    @property
    def q(self):
        return self.value.denominator

    def _sstr(self):
        return '%d/%d' % (self.value.numerator, self.value.denominator)

    def _needs_parens(self):
        return True


class Float(Number):
    """An inexact floating-point literal."""

    __slots__ = ()

    def __init__(self, value):
        super().__init__()
        self.value = float(value)

    def _sstr(self):
        return repr(self.value)

    def _needs_parens(self):
        return self.value < 0


def _number(value):
    """Wrap a Python numeric value in the tightest Number subclass."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return Integer(value.numerator)
        return Rational(value)
    if isinstance(value, bool):
        return Integer(int(value))
    if isinstance(value, int):
        return Integer(value)
    if isinstance(value, float):
        return Float(value)
    raise TypeError("cannot wrap %r as a Number" % (value,))


def sympify(obj):
    """Convert a Python object into an :class:`Expr` (or NotImplemented)."""
    if isinstance(obj, Expr):
        return obj
    if isinstance(obj, (int, float, Fraction)):
        return _number(obj)
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return NotImplemented
    if isinstance(obj, np.integer):
        return Integer(int(obj))
    if isinstance(obj, np.floating):
        return Float(float(obj))
    return NotImplemented


def S(obj):
    """Strict sympify: raise on failure."""
    result = sympify(obj)
    if result is NotImplemented:
        raise TypeError("cannot sympify %r" % (obj,))
    return result


# -- numeric folding helpers ----------------------------------------------------

def _num_add(a, b):
    if isinstance(a, Float) or isinstance(b, Float):
        return Float(float(a.value) + float(b.value))
    return _number(Fraction(a.value) + Fraction(b.value))


def _num_mul(a, b):
    if isinstance(a, Float) or isinstance(b, Float):
        return Float(float(a.value) * float(b.value))
    return _number(Fraction(a.value) * Fraction(b.value))


def _num_pow(base, exp):
    if isinstance(exp, Integer):
        if isinstance(base, Float):
            return Float(float(base.value) ** exp.value)
        return _number(Fraction(base.value) ** exp.value)
    bval, eval_ = float(base.value), float(exp.value)
    if bval < 0:
        return None
    return Float(bval ** eval_)


class Add(Expr):
    """A canonical n-ary sum."""

    __slots__ = ()
    _class_rank = 60
    is_Add = True

    @classmethod
    def make(cls, *args):
        terms = {}
        const = Integer(0)
        stack = list(args)
        while stack:
            arg = S(stack.pop())
            if arg.is_Add:
                stack.extend(arg.args)
            elif arg.is_Number:
                const = _num_add(const, arg)
            else:
                coeff, term = _as_coeff_term(arg)
                if term in terms:
                    terms[term] = _num_add(terms[term], coeff)
                else:
                    terms[term] = coeff
        out = []
        for term, coeff in terms.items():
            if coeff.value == 0:
                continue
            if coeff.value == 1:
                out.append(term)
            else:
                out.append(Mul.make(coeff, term))
        if const.value != 0 or not out:
            out.append(const)
        if len(out) == 1:
            return out[0]
        out.sort(key=lambda e: e.sort_key())
        return cls(*out)

    def _sstr(self):
        parts = []
        for i, arg in enumerate(self.args):
            text = str(arg)
            if i == 0:
                parts.append(text)
            elif text.startswith('-'):
                parts.append(' - ' + text[1:])
            else:
                parts.append(' + ' + text)
        return ''.join(parts)

    def _needs_parens(self):
        return True


def _as_coeff_term(expr):
    """Split ``expr`` into (numeric coefficient, symbolic remainder)."""
    if expr.is_Mul and expr.args and expr.args[0].is_Number:
        coeff = expr.args[0]
        rest = expr.args[1:]
        if len(rest) == 1:
            return coeff, rest[0]
        return coeff, Mul(*rest)
    return Integer(1), expr


class Mul(Expr):
    """A canonical n-ary product (numeric coefficient first)."""

    __slots__ = ()
    _class_rank = 55
    is_Mul = True

    @classmethod
    def make(cls, *args):
        coeff = Integer(1)
        powers = {}
        order = []
        stack = list(reversed(args))
        while stack:
            arg = S(stack.pop())
            if arg.is_Mul:
                stack.extend(reversed(arg.args))
            elif arg.is_Number:
                coeff = _num_mul(coeff, arg)
            else:
                base, exp = _as_base_exp(arg)
                if base in powers:
                    powers[base] = Add.make(powers[base], exp)
                else:
                    powers[base] = exp
                    order.append(base)
        if coeff.value == 0:
            return Integer(0)
        out = []
        for base in order:
            exp = powers[base]
            factor = Pow.make(base, exp)
            if factor.is_Number:
                coeff = _num_mul(coeff, factor)
            elif factor.is_Mul:
                # e.g. rational**int folding produced a coefficient
                for sub in factor.args:
                    if sub.is_Number:
                        coeff = _num_mul(coeff, sub)
                    else:
                        out.append(sub)
            elif not (factor.is_Number and factor.value == 1):
                out.append(factor)
        if not out:
            return coeff
        out.sort(key=lambda e: e.sort_key())
        if coeff.value != 1 and len(out) == 1 and out[0].is_Add:
            # distribute a purely numeric coefficient over a sum (SymPy
            # semantics); required for structural cancellation like
            # (x + y) - (x + y) == 0
            return Add.make(*[cls.make(coeff, term)
                              for term in out[0].args])
        if coeff.value != 1:
            out.insert(0, coeff)
        if len(out) == 1:
            return out[0]
        return cls(*out)

    def _sstr(self):
        parts = []
        for arg in self.args:
            text = str(arg)
            if arg.is_Add or arg._needs_parens():
                text = '(' + text + ')'
            parts.append(text)
        out = '*'.join(parts)
        # cosmetics: -1*x prints as -x
        if out.startswith('-1*'):
            out = '-' + out[3:]
        return out


def _as_base_exp(expr):
    if expr.is_Pow:
        return expr.args[0], expr.args[1]
    return expr, Integer(1)


class Pow(Expr):
    """A canonical power ``base**exp``."""

    __slots__ = ()
    _class_rank = 45
    is_Pow = True

    @classmethod
    def make(cls, base, exp):
        base = S(base)
        exp = S(exp)
        if exp.is_Number and exp.value == 0:
            return Integer(1)
        if exp.is_Number and exp.value == 1:
            return base
        if base.is_Number and base.value == 1:
            return Integer(1)
        if base.is_Number and base.value == 0:
            if exp.is_Number and exp.value > 0:
                return Integer(0)
        if base.is_Number and exp.is_Number:
            folded = _num_pow(base, exp)
            if folded is not None:
                return folded
        if base.is_Pow and isinstance(exp, Integer):
            inner_base, inner_exp = base.args
            return cls.make(inner_base, Mul.make(inner_exp, exp))
        if base.is_Mul and isinstance(exp, Integer):
            return Mul.make(*[cls.make(f, exp) for f in base.args])
        return cls(base, exp)

    @property
    def base(self):
        return self.args[0]

    @property
    def exp(self):
        return self.args[1]

    def _sstr(self):
        base, exp = self.args
        btext = str(base)
        if base.is_Add or base.is_Mul or base.is_Pow or base._needs_parens():
            btext = '(' + btext + ')'
        etext = str(exp)
        if exp.is_Add or exp.is_Mul or exp._needs_parens():
            etext = '(' + etext + ')'
        return btext + '**' + etext


class Indexed(Expr):
    """An array access ``base[i0, i1, ...]``.

    ``base`` is any object exposing ``name`` (typically a DSL
    ``DiscreteFunction``); index expressions are symbolic.
    """

    __slots__ = ('base',)
    _class_rank = 20
    is_Indexed = True

    def __init__(self, base, *indices):
        super().__init__(*[S(i) for i in indices])
        self.base = base

    @classmethod
    def make(cls, base, *indices):
        return cls(base, *indices)

    @property
    def func(self):
        base = self.base
        return lambda *indices: Indexed(base, *indices)

    @property
    def indices(self):
        return self.args

    @property
    def name(self):
        return self.base.name

    def _hashable(self):
        return ('Indexed', self.base.name) + self.args

    def _key_payload(self):
        return self.base.name

    def _sstr(self):
        return '%s[%s]' % (self.base.name, ', '.join(str(i) for i in self.args))


# -- singletons -------------------------------------------------------------------

Zero = Integer(0)
One = Integer(1)
MinusOne = Integer(-1)
Half = Rational(1, 2)


# -- traversal / rewriting ----------------------------------------------------------

def preorder(expr):
    """Yield every node of ``expr`` in pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.args)


def postorder(expr):
    """Yield every node of ``expr`` in post-order."""
    out = []
    stack = [expr]
    while stack:
        node = stack.pop()
        out.append(node)
        stack.extend(node.args)
    return reversed(out)


def xreplace(expr, mapping):
    """Exact structural replacement with memoization over the DAG."""
    if not mapping:
        return expr
    memo = {}

    def rec(node):
        key = node
        hit = memo.get(key)
        if hit is not None:
            return hit
        if node in mapping:
            result = S(mapping[node])
        elif not node.args:
            result = node
        else:
            new_args = [rec(a) for a in node.args]
            if all(na is a for na, a in zip(new_args, node.args)):
                result = node
            else:
                result = node.func(*new_args)
        memo[key] = result
        return result

    return rec(S(expr))


def contains(expr, target, memo=None):
    """True if ``target`` occurs as a subtree of ``expr``."""
    if memo is None:
        memo = {}
    key = id(expr)
    hit = memo.get(key)
    if hit is not None:
        return hit
    if expr == target:
        memo[key] = True
        return True
    result = any(contains(a, target, memo) for a in expr.args)
    memo[key] = result
    return result


def free_symbols(expr):
    """All :class:`Symbol` leaves, including those inside Indexed indices."""
    return {e for e in preorder(expr) if e.is_Symbol}


def indexeds(expr):
    """All :class:`Indexed` accesses in ``expr``."""
    return [e for e in preorder(expr) if e.is_Indexed]


def count_ops(expr):
    """Count scalar floating-point operations to evaluate ``expr`` once.

    This is the compile-time flop counter the paper uses to derive
    operational intensity on the CPU (Section IV-C).
    """
    memo = {}

    def rec(node):
        hit = memo.get(node)
        if hit is not None:
            return 0  # shared subexpression: charged once (DAG semantics)
        ops = 0
        if node.is_Add or node.is_Mul:
            ops += len(node.args) - 1
            # division costs the same as multiplication here
        elif node.is_Pow:
            exp = node.args[1]
            if isinstance(exp, Integer) and abs(exp.value) <= 4:
                ops += max(abs(exp.value) - 1, 1)
            else:
                ops += 5  # transcendental pow
        elif node.is_Function:
            ops += 5  # transcendental call cost
        for a in node.args:
            ops += rec(a)
        memo[node] = True
        return ops

    return rec(S(expr))


def expand(expr):
    """Distribute products over sums (and integer powers of sums)."""
    memo = {}

    def rec(node):
        hit = memo.get(node)
        if hit is not None:
            return hit
        if not node.args:
            result = node
        elif node.is_Mul:
            factors = [rec(a) for a in node.args]
            terms = [One]
            for factor in factors:
                addends = factor.args if factor.is_Add else (factor,)
                terms = [Mul.make(t, a) for t in terms for a in addends]
            result = Add.make(*terms)
        elif node.is_Pow:
            base, exp = node.args
            base = rec(base)
            if base.is_Add and isinstance(exp, Integer) and 1 < exp.value <= 3:
                result = rec(Mul(*([base] * exp.value)))
            else:
                result = Pow.make(base, exp)
        else:
            new_args = [rec(a) for a in node.args]
            result = node.func(*new_args)
        memo[node] = result
        return result

    return rec(S(expr))


def linear_coeffs(expr, target):
    """Decompose ``expr == a*target + b`` without full expansion.

    Returns ``(a, b)``.  Raises ``ValueError`` if ``expr`` is not linear in
    ``target``.  Products are handled by requiring at most one factor to
    contain the target, which is exactly the shape finite-difference
    update equations take after derivative expansion.
    """
    memo = {}

    def rec(node):
        if node == target:
            return One, Zero
        if not contains(node, target, memo):
            return Zero, node
        if node.is_Add:
            a_parts, b_parts = [], []
            for arg in node.args:
                a, b = rec(arg)
                a_parts.append(a)
                b_parts.append(b)
            return Add.make(*a_parts), Add.make(*b_parts)
        if node.is_Mul:
            hot = [f for f in node.args if contains(f, target, memo)]
            if len(hot) != 1:
                raise ValueError("nonlinear in %s: %s" % (target, node))
            rest = Mul.make(*[f for f in node.args if f is not hot[0]])
            a, b = rec(hot[0])
            return Mul.make(a, rest), Mul.make(b, rest)
        raise ValueError("cannot extract linear coefficient from %s" % (node,))

    return rec(S(expr))


def _evalf(expr, bindings):
    from .functions import AppliedFunction

    def rec(node):
        if node.is_Number:
            return float(node.value)
        if node in bindings:
            return float(bindings[node])
        if node.is_Symbol or node.is_Indexed:
            raise ValueError("unbound atom %s in evalf" % (node,))
        if node.is_Add:
            return math.fsum(rec(a) for a in node.args)
        if node.is_Mul:
            return reduce(lambda x, y: x * y, (rec(a) for a in node.args))
        if node.is_Pow:
            return rec(node.args[0]) ** rec(node.args[1])
        if isinstance(node, AppliedFunction):
            return node._numeric(*[rec(a) for a in node.args])
        raise ValueError("cannot evaluate %s" % (node,))

    return rec(S(expr))
