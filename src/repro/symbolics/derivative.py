"""Symbolic derivatives and their finite-difference expansion.

A :class:`Derivative` is an unevaluated node recording *what* to
differentiate and with which discretization (dimension, derivative order,
FD accuracy order, evaluation point).  ``evaluate`` lowers it into an
explicit weighted sum of shifted array accesses using exact Fornberg
weights — the "Equations lowering" stage of the paper's Figure 1.

Expansion and indexification are pure functions of the node, so both are
memoized in global :class:`~.expr.WeakIdMemo` tables: the TTI propagator
solves two coupled PDEs sharing their rotated-derivative subDAGs, and the
scheduler re-lowers the same equations the solver already lowered — with
hash-consing those shared nodes are *identical* objects, so the second
traversal is a table hit instead of a re-expansion.
"""

from __future__ import annotations

from fractions import Fraction

from .expr import (Add, Expr, Mul, Pow, Rational, S, WeakIdMemo,
                   unique_nodes)
from .fd import fd_weights

__all__ = ['Derivative', 'expand_derivatives', 'indexify', 'expr_stagger']


def _as_fraction(value):
    if isinstance(value, Fraction):
        return value
    if isinstance(value, Rational):
        return value.value
    if hasattr(value, 'value'):
        return Fraction(value.value)
    return Fraction(value)


#: node -> indexified node; pure per object, shared across all lowerings
_INDEXIFY_MEMO = WeakIdMemo()


def indexify(expr):
    """Replace leaf DSL function atoms with their default array accesses."""

    def rec(node):
        result = _INDEXIFY_MEMO.get(node)
        if result is not None:
            return result
        if getattr(node, 'is_DiscreteFunction', False):
            result = node.indexify()
        elif not node.args:
            result = node
        else:
            new_args = [rec(a) for a in node.args]
            if all(na is a for na, a in zip(new_args, node.args)):
                result = node
            else:
                result = node.func(*new_args)
        _INDEXIFY_MEMO.set(node, result)
        return result

    return rec(S(expr))


def expr_stagger(expr, dim):
    """Infer the natural grid staggering of ``expr`` along ``dim``.

    If every function accessed in ``expr`` is staggered identically along
    ``dim`` that staggering is returned; mixed or absent staggering yields
    0 (node-centered).
    """
    staggers = set()
    for node in unique_nodes(S(expr)):
        base = None
        if node.is_Indexed:
            base = node.base
        elif getattr(node, 'is_DiscreteFunction', False):
            base = node
        if base is not None:
            smap = getattr(base, 'stagger_map', None)
            if smap:
                staggers.add(Fraction(smap.get(dim, 0)))
            else:
                staggers.add(Fraction(0))
    if len(staggers) == 1:
        return staggers.pop()
    return Fraction(0)


class Derivative(Expr):
    """An unevaluated derivative of ``expr``.

    Parameters
    ----------
    expr : Expr
        Differentiated expression (may contain nested Derivatives).
    derivs : tuple of (dimension, order)
        Differentiation spec, e.g. ``((x, 2),)`` for d2/dx2.
    fd_order : int
        Order of accuracy of the FD approximation.
    x0 : dict, optional
        Evaluation point offset per dimension (Fraction); defaults to the
        node (0).  Used for staggered-grid schemes.
    offsets : dict, optional
        Explicit per-dimension sample offsets, overriding the canonical
        symmetric choice (used for one-sided time derivatives).

    Instances are hash-consed and frozen: ``derivs``/``x0``/``offsets``
    are fixed at construction (never mutate the dicts of a built node —
    rebuild through the constructor instead).
    """

    __slots__ = ('derivs', 'fd_order', 'x0', 'offsets')
    _class_rank = 40
    is_Derivative = True
    _interned = True

    def __init__(self, expr, *derivs, fd_order=2, x0=None, offsets=None):
        super().__init__(S(expr))
        norm = []
        for d in derivs:
            if isinstance(d, tuple):
                dim, order = d
            else:
                dim, order = d, 1
            norm.append((dim, int(order)))
        if not norm:
            raise ValueError("Derivative needs at least one dimension")
        self.derivs = tuple(norm)
        self.fd_order = int(fd_order)
        self.x0 = dict(x0 or {})
        self.offsets = dict(offsets or {})

    @classmethod
    def make(cls, expr, *derivs, **kwargs):
        return cls(expr, *derivs, **kwargs)

    def _intern_key(self):
        # dimensions are keyed by identity (they are per-grid objects);
        # x0/offsets values canonicalize to Fraction so e.g. 0.5 and
        # Rational(1, 2) evaluation points intern to the same node
        derivs = tuple((id(dim), order) for dim, order in self.derivs)
        x0_key = tuple(sorted(
            (id(d), _as_fraction(v)) for d, v in self.x0.items()))
        off_key = tuple(sorted(
            (id(d), tuple(_as_fraction(o) for o in v))
            for d, v in self.offsets.items()))
        return (type(self), id(self.args[0]), derivs, self.fd_order,
                x0_key, off_key)

    @property
    def func(self):
        derivs, fd_order, x0, offsets = (self.derivs, self.fd_order,
                                         self.x0, self.offsets)
        return lambda expr: Derivative(expr, *derivs, fd_order=fd_order,
                                       x0=x0, offsets=offsets)

    @property
    def expr(self):
        return self.args[0]

    def _hashable(self):
        x0_key = tuple(sorted((d.name, v) for d, v in self.x0.items()))
        off_key = tuple(sorted((d.name, tuple(v))
                               for d, v in self.offsets.items()))
        return ('Derivative', self.args[0], self.derivs, self.fd_order,
                x0_key, off_key)

    def _key_payload(self):
        return tuple((dim.name, order) for dim, order in self.derivs)

    def _sstr(self):
        spec = ', '.join('(%s, %d)' % (dim.name, order)
                         for dim, order in self.derivs)
        return 'Derivative(%s, %s)' % (self.args[0], spec)

    # -- transposition (adjoint), used by the self-adjoint TTI kernels -------

    @property
    def T(self):
        """The formal adjoint: odd-order central differences negate."""
        total = sum(order for _, order in self.derivs)
        if total % 2:
            return Mul.make(-1, self)
        return self

    # -- expansion -------------------------------------------------------------

    @property
    def evaluate(self):
        """Expand into an explicit finite-difference stencil expression."""
        return expand_derivatives(self)

    def _expand_one(self, expr, dim, order):
        x0 = _as_fraction(self.x0.get(dim, 0))
        if dim in self.offsets:
            offsets = [_as_fraction(o) for o in self.offsets[dim]]
            from .fd import fornberg_weights
            weights = fornberg_weights(order, offsets, x0=x0)
        else:
            stagger = expr_stagger(expr, dim)
            offsets, weights = fd_weights(order, self.fd_order,
                                          stagger=stagger, x0=x0)
            # shifts are relative to the expression's own centering
            x_base = stagger
            offsets = [o - x_base for o in offsets]
            terms = []
            for off, w in zip(offsets, weights):
                if w == 0:
                    continue
                shifted = _shift(expr, dim, off)
                terms.append(Mul.make(Rational(w.numerator, w.denominator),
                                      shifted))
            spacing = Pow.make(dim.spacing, -order)
            return Mul.make(Add.make(*terms), spacing)
        # explicit-offsets path (e.g. one-sided time derivatives)
        terms = []
        for off, w in zip(offsets, weights):
            if w == 0:
                continue
            shifted = _shift(expr, dim, off - x0)
            terms.append(Mul.make(Rational(w.numerator, w.denominator),
                                  shifted))
        spacing = Pow.make(dim.spacing, -order)
        return Mul.make(Add.make(*terms), spacing)


def _shift(expr, dim, offset):
    """Shift ``expr`` along ``dim`` by ``offset`` grid increments."""
    offset = Fraction(offset)
    if offset == 0:
        return expr
    if offset.denominator != 1:
        raise ValueError("non-integer shift %s along %s (staggering "
                         "mismatch)" % (offset, dim))
    return expr.xreplace({dim: Add.make(dim, int(offset))})


#: Derivative node -> its fully expanded stencil; expansion is a pure
#: function of the node, so the table is shared process-wide
_DERIV_EXPAND_MEMO = WeakIdMemo()


def expand_derivatives(expr):
    """Recursively evaluate every Derivative node in ``expr`` (bottom-up,
    memoized over the expression DAG)."""
    memo = {}

    def rec(node):
        hit = memo.get(id(node))
        if hit is not None:
            return hit[1]
        if node.is_Derivative:
            result = _DERIV_EXPAND_MEMO.get(node)
            if result is None:
                inner = indexify(rec(node.args[0]))
                result = inner
                for dim, order in node.derivs:
                    result = node._expand_one(result, dim, order)
                _DERIV_EXPAND_MEMO.set(node, result)
        elif not node.args:
            result = node
        else:
            new_args = [rec(a) for a in node.args]
            if all(na is a for na, a in zip(new_args, node.args)):
                result = node
            else:
                result = node.func(*new_args)
        memo[id(node)] = (node, result)
        return result

    return rec(S(expr))
