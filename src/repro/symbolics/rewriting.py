"""Flop-reducing expression rewrites: CSE, factorization, invariant hoisting.

These are the Cluster-level optimizations of the paper's Figure 1
("flop-reducing arithmetic"): common sub-expression elimination,
factorization of shared numeric/spacing coefficients, and extraction of
loop-invariant scalar subexpressions (reciprocals of grid spacings etc.)
into temporaries ``r0, r1, ...`` exactly as seen in Listing 11.

All passes here walk hash-consed DAGs: candidate filtering uses the
memoized :func:`~.expr.has_indexed` predicate, and the rewrite memos are
keyed by node identity (structurally equal interned nodes *are* the same
object, so identity keying loses nothing and costs no hashing).
"""

from __future__ import annotations

import itertools

from .expr import (Add, Integer, Mul, S, Symbol, has_indexed, preorder)

__all__ = ['cse', 'factorize', 'hoist_invariants', 'Temp', 'collect_mul_coeff']


class Temp(Symbol):
    """A compiler-generated scalar temporary (``r0``, ``r1``, ...)."""

    __slots__ = ('num',)

    def __init__(self, num):
        super().__init__('r%d' % num)
        self.num = num


def _name_generator(start=0):
    counter = itertools.count(start)
    return lambda: Temp(next(counter))


def _walk_value_nodes(expr):
    """Pre-order walk that does NOT descend into Indexed index expressions
    (index arithmetic like ``x + 2`` is not a value computation and must
    never be extracted into a temporary).

    Deliberately a *tree* walk with multiplicity: CSE counts occurrences,
    so a subexpression shared n times must be yielded n times.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if not node.is_Indexed:
            stack.extend(node.args)


def cse(exprs, min_count=2, min_ops=1, mkname=None):
    """Common sub-expression elimination across a list of expressions.

    Parameters
    ----------
    exprs : list of (lhs, rhs) pairs or Expr
        The expressions to optimize (rhs sides are scanned).
    min_count : int
        Minimum number of occurrences for extraction.
    min_ops : int
        Minimum operation count of a candidate subexpression.

    Returns
    -------
    (assignments, rewritten)
        ``assignments`` is a list of (Temp, subexpr); ``rewritten`` the
        input expressions with candidates replaced by the temporaries.
    """
    mkname = mkname or _name_generator()
    rhs_list = [e[1] if isinstance(e, tuple) else S(e) for e in exprs]

    counts = {}
    for rhs in rhs_list:
        for node in _walk_value_nodes(rhs):
            if node.is_Atom or node.is_Indexed:
                continue
            counts[node] = counts.get(node, 0) + 1

    candidates = [n for n, c in counts.items()
                  if c >= min_count and n.count_ops() >= min_ops
                  and has_indexed(n)]
    if not candidates:
        return [], exprs

    # extract smaller expressions first so larger candidates reference
    # the temporaries of the nested ones (bottom-up CSE)
    candidates.sort(key=lambda n: n.count_ops())

    assignments = []
    mapping = {}
    for cand in candidates:
        # rewrite the candidate with already-extracted temps first
        rewritten = cand.xreplace(mapping)
        temp = mkname()
        assignments.append((temp, rewritten))
        mapping[cand] = temp

    new_exprs = []
    for e in exprs:
        if isinstance(e, tuple):
            new_exprs.append((e[0], e[1].xreplace(mapping)))
        else:
            new_exprs.append(S(e).xreplace(mapping))

    # drop temps that ended up unused (candidate only inside another candidate)
    used = set()
    scan = [rhs for _, rhs in assignments]
    scan += [e[1] if isinstance(e, tuple) else e for e in new_exprs]
    for expr in scan:
        for node in preorder(expr):
            if isinstance(node, Temp):
                used.add(node)
    pruned, final_map = [], {}
    for temp, rhs in assignments:
        if temp in used:
            pruned.append((temp, rhs.xreplace(final_map)))
        else:
            final_map[temp] = rhs
    if final_map:
        new_exprs = [(e[0], e[1].xreplace(final_map)) if isinstance(e, tuple)
                     else e.xreplace(final_map) for e in new_exprs]
    return pruned, new_exprs


def collect_mul_coeff(expr):
    """Split a term into (scalar prefactor, rest) for factorization grouping.

    The prefactor gathers Numbers, plain Symbols (spacing/dt temporaries)
    and powers thereof; the rest gathers array accesses and functions.
    """
    expr = S(expr)
    if expr.is_Mul:
        scalars, others = [], []
        for factor in expr.args:
            if factor.is_Number or factor.is_Symbol or (
                    factor.is_Pow and factor.args[0].is_Symbol):
                scalars.append(factor)
            else:
                others.append(factor)
        return Mul.make(*scalars), Mul.make(*others)
    if expr.is_Number or expr.is_Symbol:
        return expr, Integer(1)
    return Integer(1), expr


def factorize(expr):
    """Group the terms of sums by shared scalar prefactor.

    ``r1*a + r1*b + r2*c -> r1*(a + b) + r2*c`` — the flop-reduction
    factorization of the Cluster IR.  Applied recursively, memoized over
    the DAG (shared subtrees factorize once).
    """
    memo = {}

    def rec(node):
        hit = memo.get(id(node))
        if hit is not None:
            return hit[1]
        if not node.args:
            memo[id(node)] = (node, node)
            return node
        new_args = [rec(a) for a in node.args]
        rebuilt = node.func(*new_args) if any(
            na is not a for na, a in zip(new_args, node.args)) else node
        if not rebuilt.is_Add:
            memo[id(node)] = (node, rebuilt)
            return rebuilt
        groups = {}
        order = []
        for term in rebuilt.args:
            coeff, rest = collect_mul_coeff(term)
            if coeff not in groups:
                groups[coeff] = []
                order.append(coeff)
            groups[coeff].append(rest)
        terms = []
        for coeff in order:
            rests = groups[coeff]
            if len(rests) == 1:
                terms.append(Mul.make(coeff, rests[0]))
            else:
                terms.append(Mul.make(coeff, Add.make(*rests)))
        result = Add.make(*terms) if len(terms) > 1 else terms[0]
        memo[id(node)] = (node, result)
        return result

    return rec(S(expr))


def hoist_invariants(exprs, invariant_p, mkname=None):
    """Extract maximal subexpressions satisfying ``invariant_p`` into temps.

    ``invariant_p(node) -> bool`` decides whether a node is loop-invariant
    (e.g. contains no array accesses over iterated dimensions).  Maximal
    invariant non-atomic subtrees become scalar assignments evaluated once
    outside the loop nest — producing the ``r0 = 1/dt`` style preamble of
    Listing 11.
    """
    mkname = mkname or _name_generator()
    assignments = []
    mapping = {}

    def visit(node):
        hit = mapping.get(id(node))
        if hit is not None:
            return hit[1]
        if node.is_Atom or node.is_Indexed:
            return node
        if invariant_p(node):
            for temp, rhs in assignments:
                if rhs == node:
                    mapping[id(node)] = (node, temp)
                    return temp
            temp = mkname()
            assignments.append((temp, node))
            mapping[id(node)] = (node, temp)
            return temp
        new_args = [visit(a) for a in node.args]
        if all(na is a for na, a in zip(new_args, node.args)):
            result = node
        else:
            result = node.func(*new_args)
        mapping[id(node)] = (node, result)
        return result

    new_exprs = []
    for e in exprs:
        if isinstance(e, tuple):
            new_exprs.append((e[0], visit(S(e[1]))))
        else:
            new_exprs.append(visit(S(e)))
    return assignments, new_exprs
