"""Finite-difference weight generation (Fornberg's algorithm).

Weights are exact rationals, so generated kernels carry the same
coefficients a hand-derived Taylor scheme would.  Fornberg's recursion
handles arbitrary (possibly staggered, i.e. half-integer) sample offsets
and evaluation points, which is what the staggered-grid elastic and
viscoelastic propagators need.

Reference: B. Fornberg, "Generation of finite difference formulas on
arbitrarily spaced grids", Math. Comp. 51 (1988).
"""

from __future__ import annotations

from fractions import Fraction

__all__ = ['fornberg_weights', 'fd_weights', 'sample_offsets']


def fornberg_weights(order, offsets, x0=0):
    """Weights of the ``order``-th derivative at ``x0`` from samples at ``offsets``.

    Parameters
    ----------
    order : int
        Derivative order (0 returns interpolation weights).
    offsets : sequence of Fraction/int/float
        Grid sample locations, in units of the grid spacing.
    x0 : Fraction/int/float
        Evaluation point, same units.

    Returns
    -------
    list of Fraction
        One weight per offset; the approximated derivative is
        ``sum(w_i * f(offsets_i)) / h**order``.
    """
    offsets = [Fraction(o) for o in offsets]
    x0 = Fraction(x0)
    n = len(offsets)
    if order < 0:
        raise ValueError("derivative order must be non-negative")
    if n <= order:
        raise ValueError("need more than %d sample points for order %d"
                         % (order, order))
    if len(set(offsets)) != n:
        raise ValueError("sample offsets must be distinct")

    # delta[m][nu] = weight of sample nu for the m-th derivative,
    # built incrementally over the sample points (Fornberg 1988, eq. 3.1).
    delta = [[Fraction(0)] * n for _ in range(order + 1)]
    delta[0][0] = Fraction(1)
    c1 = Fraction(1)
    for i in range(1, n):
        c2 = Fraction(1)
        mn = min(i, order)
        # snapshot of column i-1 before this sweep overwrites it: the
        # new point's weights are built from the *previous* iteration
        old_last = [delta[m][i - 1] for m in range(order + 1)]
        for nu in range(i):
            c3 = offsets[i] - offsets[nu]
            c2 *= c3
            for m in range(mn, -1, -1):
                prev = delta[m - 1][nu] if m > 0 else Fraction(0)
                delta[m][nu] = ((offsets[i] - x0) * delta[m][nu]
                                - m * prev) / c3
        c5 = offsets[i - 1] - x0
        for m in range(mn, -1, -1):
            prev = old_last[m - 1] if m > 0 else Fraction(0)
            delta[m][i] = c1 / c2 * (m * prev - c5 * old_last[m])
        c1 = c2
    return delta[order]


def sample_offsets(deriv_order, fd_order, stagger=Fraction(0), x0=Fraction(0)):
    """Choose the canonical symmetric sample offsets for an FD approximation.

    Parameters
    ----------
    deriv_order : int
        Order of the derivative being approximated.
    fd_order : int
        Requested order of accuracy (the "SDO" of the paper); must be even.
    stagger : Fraction
        Staggering of the *sampled* function relative to integer nodes
        (0 or 1/2): samples live at ``integer + stagger``.
    x0 : Fraction
        Evaluation point (typically the staggering of the LHS field).

    Returns
    -------
    list of Fraction
        Sample locations, all congruent to ``stagger`` modulo 1.
    """
    fd_order = int(fd_order)
    if fd_order < 1:
        raise ValueError("fd_order must be >= 1")
    if fd_order % 2:
        raise ValueError("fd_order must be even (got %d)" % fd_order)
    stagger = Fraction(stagger)
    x0 = Fraction(x0)
    delta = stagger - x0
    if delta == 0:
        # plain central stencil: fd_order+1 points for any derivative order
        radius = fd_order // 2 + max(0, (deriv_order - 1) // 2)
        rel = range(-radius, radius + 1)
    elif abs(delta) == Fraction(1, 2):
        # staggered stencil: an even number of half-offset points,
        # symmetric about the evaluation point
        npoints = fd_order + 2 * ((deriv_order - 1) // 2)
        half = npoints // 2
        rel = [delta + k for k in range(-half, half)]
        # re-center: offsets delta-half .. delta+half-1; shift so the set
        # is symmetric about 0 when delta=+1/2 vs -1/2
        if delta > 0:
            rel = [delta + k for k in range(-half, half)]
        else:
            rel = [delta + k for k in range(-half + 1, half + 1)]
    else:
        raise ValueError("unsupported staggering offset %s" % (delta,))
    return [x0 + Fraction(r) for r in rel]


def fd_weights(deriv_order, fd_order, stagger=Fraction(0), x0=Fraction(0)):
    """Offsets and weights of the canonical FD approximation.

    Returns
    -------
    (offsets, weights)
        ``offsets`` are sample locations (Fractions, congruent to
        ``stagger`` mod 1); ``weights`` the corresponding Fornberg weights
        for the derivative evaluated at ``x0``.  The approximation is
        ``sum(w*f(off)) / h**deriv_order``.
    """
    offsets = sample_offsets(deriv_order, fd_order, stagger=stagger, x0=x0)
    weights = fornberg_weights(deriv_order, offsets, x0=x0)
    return offsets, weights
