"""Linear symbolic solve, mirroring ``devito.solve`` / ``sympy.solve``.

Used to turn an implicit PDE residual (``m*u.dt2 - u.laplace``) into an
explicit update for the unknown (``u.forward``).  The residual is linear in
the unknown after FD expansion, so we extract the linear coefficients
without a full expansion (which would blow up high-order TTI stencils).
"""

from __future__ import annotations

from .derivative import expand_derivatives, indexify
from .expr import Add, Mul, Pow, S, Zero, linear_coeffs

__all__ = ['solve']


def solve(expr, target):
    """Solve ``expr == 0`` for ``target``.

    ``expr`` may contain unevaluated Derivative nodes (they are expanded
    first) and raw DSL function atoms (they are indexified).  ``target``
    is typically a shifted access such as ``u.forward``.

    Returns the explicit right-hand side such that
    ``target == solve(expr, target)`` satisfies ``expr == 0``.
    """
    expr = indexify(expand_derivatives(S(expr)))
    target = indexify(expand_derivatives(S(target)))
    a, b = linear_coeffs(expr, target)
    if a == Zero:
        raise ValueError("expression does not contain %s" % (target,))
    return Mul.make(-1, b, Pow.make(a, -1))
