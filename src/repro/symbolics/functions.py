"""Elementary mathematical functions (sin, cos, sqrt, ...).

These appear in the TTI wave propagator, whose rotated Laplacian involves
trigonometric functions of spatially varying tilt/azimuth angles.
"""

from __future__ import annotations

import math

from .expr import Expr, Float, Integer, S

__all__ = ['AppliedFunction', 'sin', 'cos', 'tan', 'sqrt', 'exp', 'log',
           'Abs', 'Min', 'Max', 'floor', 'ceiling', 'FUNCTION_REGISTRY']


class AppliedFunction(Expr):
    """A named elementary function applied to symbolic arguments.

    Concrete subclasses are hash-consed (``_interned``); the abstract base
    itself is not, so DSL-side subclasses stay ordinary unless they opt
    in explicitly.
    """

    __slots__ = ()
    _class_rank = 30
    is_Function = True

    #: name used by the printers (and numpy namespace lookup)
    fname = None
    nargs = 1

    def __init__(self, *args):
        if len(args) != self.nargs:
            raise TypeError('%s takes %d argument(s), got %d'
                            % (type(self).__name__, self.nargs, len(args)))
        super().__init__(*[S(a) for a in args])

    @classmethod
    def make(cls, *args):
        args = [S(a) for a in args]
        if all(a.is_Number for a in args):
            return Float(cls._numeric(*[float(a.value) for a in args]))
        return cls(*args)

    @staticmethod
    def _numeric(*values):
        raise NotImplementedError

    def _key_payload(self):
        return self.fname

    def _sstr(self):
        return '%s(%s)' % (self.fname, ', '.join(str(a) for a in self.args))


class _Sin(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'sin'
    _numeric = staticmethod(math.sin)


class _Cos(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'cos'
    _numeric = staticmethod(math.cos)


class _Tan(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'tan'
    _numeric = staticmethod(math.tan)


class _Sqrt(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'sqrt'
    _numeric = staticmethod(math.sqrt)


class _Exp(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'exp'
    _numeric = staticmethod(math.exp)


class _Log(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'log'
    _numeric = staticmethod(math.log)


class _Abs(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'abs'
    _numeric = staticmethod(abs)


class _Floor(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'floor'

    @staticmethod
    def _numeric(value):
        return float(math.floor(value))

    @classmethod
    def make(cls, *args):
        arg = S(args[0])
        if arg.is_Number:
            return Integer(math.floor(arg.value))
        return cls(arg)


class _Ceiling(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'ceiling'

    @staticmethod
    def _numeric(value):
        return float(math.ceil(value))

    @classmethod
    def make(cls, *args):
        arg = S(args[0])
        if arg.is_Number:
            return Integer(math.ceil(arg.value))
        return cls(arg)


class _Min(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'min'
    nargs = 2
    _numeric = staticmethod(min)


class _Max(AppliedFunction):
    __slots__ = ()
    _interned = True
    fname = 'max'
    nargs = 2
    _numeric = staticmethod(max)


def sin(x):
    return _Sin.make(x)


def cos(x):
    return _Cos.make(x)


def tan(x):
    return _Tan.make(x)


def sqrt(x):
    return _Sqrt.make(x)


def exp(x):
    return _Exp.make(x)


def log(x):
    return _Log.make(x)


def Abs(x):
    return _Abs.make(x)


def floor(x):
    return _Floor.make(x)


def ceiling(x):
    return _Ceiling.make(x)


def Min(a, b):
    return _Min.make(a, b)


def Max(a, b):
    return _Max.make(a, b)


#: printer lookup: fname -> (C spelling, numpy spelling)
FUNCTION_REGISTRY = {
    'sin': ('sinf', 'np.sin'),
    'cos': ('cosf', 'np.cos'),
    'tan': ('tanf', 'np.tan'),
    'sqrt': ('sqrtf', 'np.sqrt'),
    'exp': ('expf', 'np.exp'),
    'log': ('logf', 'np.log'),
    'abs': ('fabsf', 'np.abs'),
    'floor': ('floorf', 'np.floor'),
    'ceiling': ('ceilf', 'np.ceil'),
    'min': ('fminf', 'np.minimum'),
    'max': ('fmaxf', 'np.maximum'),
}
