"""Deterministic structural fingerprints of symbolic expressions.

The operator build cache (:mod:`repro.buildcache`) keys compiled kernels
by a *content address*: a hash that is a pure function of the symbolic
input and the build-relevant configuration — stable across processes,
machines and Python invocations (unlike ``hash()``, which is salted per
process, and unlike ``id()``-based identity, which is per-object).

Design
------
* The fingerprint is **structural**: two independently constructed
  expression trees that are structurally equal hash identically, even
  when every node is a distinct Python object.
* It is **order-insensitive where safe**: ``Add``/``Mul`` operands are
  already kept in canonical sorted order by the expression constructors,
  so ``u + v`` and ``v + u`` produce the same tree and hence the same
  fingerprint.  Orderings that carry semantics (equation lists, index
  tuples, derivative specs) are preserved verbatim.
* It is **name-insensitive where safe**: a :class:`Constant`'s *value*
  is excluded (it is a runtime argument, resolved at ``apply`` time),
  and dimension identity is reduced to its printable content.  Function
  *names* are part of the fingerprint on purpose — they are embedded in
  the generated source, so renaming a field genuinely changes the
  compiled artifact.
* Every token is a length-prefixed byte string, so distinct token
  sequences can never collide by concatenation ambiguity.
* The walk is **O(unique DAG nodes)**: expressions are hash-consed
  (:mod:`.expr`), so the emitter caches the byte stream of every node it
  has serialized and replays it on re-encounter instead of re-walking
  the subtree.  The emitted byte *stream* is identical to a naive tree
  walk — caching changes cost, never content.  The one wrinkle is the
  ``Grid`` token, which the seed grammar emits exactly once per emitter
  at the *first* sighting of a function on that grid: the cache
  therefore records a node's *steady-state* bytes (what a re-encounter
  would emit, one-time tokens excluded) separately from the bytes of its
  first emission.

The hash function is BLAKE2b (16-byte digest): fast, keyed into the
stdlib, and collision resistance far beyond the cache's needs.

This module is deliberately free of DSL imports (``repro.dsl`` imports
``repro.symbolics``, not vice versa); DSL atoms are recognized by their
duck-typed class flags (``is_DiscreteFunction``, ``is_SparseFunction``,
...) and hashed through their layout signatures.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction

__all__ = ['TokenEmitter', 'canonical_tokens', 'structural_fingerprint']

#: bump when the token grammar changes (invalidates every cached entry
#: through the fingerprint itself, no cache-format version needed)
_GRAMMAR_VERSION = 1


class TokenEmitter:
    """Streams canonical, length-prefixed tokens into a BLAKE2b state.

    Also collects the *symbol table* of the traversal: every discrete
    function, sparse function and runtime constant encountered, keyed by
    name.  The build cache uses the table to rebind a cached artifact to
    the live objects of the current build.

    Parameters
    ----------
    cache : bool
        Enable the per-node byte cache (on by default).  Exists so tests
        can prove cached and uncached digests agree.
    """

    def __init__(self, cache=True):
        self._h = hashlib.blake2b(digest_size=16)
        self._h.update(b'repro-fingerprint-v%d' % _GRAMMAR_VERSION)
        #: name -> DiscreteFunction
        self.functions = {}
        #: name -> SparseFunction
        self.sparse = {}
        #: name -> Constant
        self.constants = {}
        #: every distinct Grid seen (list, identity-deduplicated)
        self.grids = []
        #: stack of [full, steady] bytearray pairs, one per in-flight
        #: cached node emission; empty means bytes go straight to the hash
        self._frames = []
        #: id(node) -> (node, steady_bytes); the node reference pins the
        #: id so it cannot be recycled while the entry is readable
        self._cache = {} if cache else None

    # -- low-level token stream ------------------------------------------------

    def _write(self, data, steady=True):
        """Append bytes to the stream.

        ``steady=False`` marks one-time side-band tokens (the ``Grid``
        announcement): they reach the hash exactly once but are excluded
        from the cached replay bytes of every enclosing node.
        """
        if self._frames:
            frame = self._frames[-1]
            frame[0] += data
            if steady:
                frame[1] += data
        else:
            self._h.update(data)

    def raw(self, data, steady=True):
        self._write(b'%d:' % len(data) + data, steady=steady)

    def token(self, *parts, steady=True):
        for part in parts:
            self.raw(str(part).encode('utf-8'), steady=steady)

    # -- generic object dispatch ------------------------------------------------

    def emit(self, obj):  # noqa: C901 - a flat type dispatcher
        if obj is None:
            self.token('N')
        elif isinstance(obj, bool):
            self.token('b', int(obj))
        elif isinstance(obj, int):
            self.token('i', obj)
        elif isinstance(obj, float):
            self.token('f', repr(obj))
        elif isinstance(obj, Fraction):
            self.token('q', obj.numerator, obj.denominator)
        elif isinstance(obj, str):
            self.token('s', obj)
        elif isinstance(obj, bytes):
            self.token('y')
            self.raw(obj)
        elif isinstance(obj, (tuple, list)):
            self.token('(', len(obj))
            for item in obj:
                self.emit(item)
            self.token(')')
        elif isinstance(obj, dict):
            items = [(self.fingerprint_of(k), k, v)
                     for k, v in obj.items()]
            items.sort(key=lambda kv: kv[0])
            self.token('{', len(items))
            for _, k, v in items:
                self.emit(k)
                self.emit(v)
            self.token('}')
        elif hasattr(obj, 'args') and hasattr(obj, 'is_Atom'):
            self._emit_cached(obj)
        elif type(obj).__module__ == 'numpy' or \
                type(obj).__name__ == 'dtype':
            self.token('np', str(obj))
        else:
            raise TypeError(
                "cannot fingerprint %r of type %s deterministically"
                % (obj, type(obj).__name__))

    def fingerprint_of(self, obj):
        """Stand-alone fingerprint of one sub-object (used to sort dict
        keys canonically without relying on Python ordering)."""
        sub = TokenEmitter()
        sub.emit(obj)
        return sub.hexdigest()

    # -- expression nodes --------------------------------------------------------

    def _emit_cached(self, expr):
        """Emit an expression node through the per-node byte cache.

        First encounter: serialize into a fresh frame, cache the node's
        steady-state bytes, and forward the full bytes (one-time tokens
        included) to the parent frame or the hash.  Re-encounter of the
        same node object: replay the cached bytes — by then every
        one-time token inside has already been announced, so steady
        bytes are exactly what a re-walk would produce.
        """
        cache = self._cache
        if cache is None:
            self._emit_expr(expr)
            return
        hit = cache.get(id(expr))
        if hit is not None:
            self._write(hit[1])
            return
        self._frames.append([bytearray(), bytearray()])
        try:
            self._emit_expr(expr)
        finally:
            full, steady = self._frames.pop()
        cache[id(expr)] = (expr, bytes(steady))
        if self._frames:
            parent = self._frames[-1]
            parent[0] += full
            parent[1] += steady
        else:
            self._h.update(bytes(full))

    def _emit_expr(self, expr):  # noqa: C901 - a flat node dispatcher
        if getattr(expr, 'is_DiscreteFunction', False):
            self._emit_function(expr)
        elif getattr(expr, 'is_SparseFunction', False):
            self._emit_sparse(expr)
        elif getattr(expr, 'is_Number', False):
            value = expr.value
            if isinstance(value, Fraction):
                self.token('num:q', value.numerator, value.denominator)
            elif isinstance(value, float):
                self.token('num:f', repr(value))
            else:
                self.token('num:i', value)
        elif getattr(expr, 'is_Symbol', False):
            self._emit_symbol(expr)
        elif getattr(expr, 'is_Indexed', False):
            self.token('Indexed', len(expr.indices))
            base = expr.base
            if getattr(base, 'is_DiscreteFunction', False):
                self._emit_function(base)
            else:
                self.token('base', getattr(base, 'name', str(base)))
            for index in expr.indices:
                self.emit(index)
        elif getattr(expr, 'is_Derivative', False):
            self.token('Derivative', len(expr.derivs), expr.fd_order)
            self.emit(expr.expr)
            for dim, order in expr.derivs:
                self.emit(dim)
                self.token('order', order)
            self.emit({d: Fraction(v) for d, v in expr.x0.items()})
            self.emit({d: tuple(v) for d, v in expr.offsets.items()})
        elif getattr(expr, 'is_Function', False):
            self.token('Applied', getattr(expr, 'fname',
                                          type(expr).__name__),
                       len(expr.args))
            for arg in expr.args:
                self.emit(arg)
        else:
            # generic node (Add/Mul/Pow/...): class + canonical children
            self.token('E', type(expr).__name__, len(expr.args))
            for arg in expr.args:
                self.emit(arg)

    def _emit_symbol(self, sym):
        value = getattr(sym, 'value', None)
        if value is not None and hasattr(sym, 'dtype'):
            # a runtime Constant: the *value* is an apply()-time argument
            # and must not invalidate the cache
            self.token('Const', sym.name, str(sym.dtype))
            self.constants[sym.name] = sym
            return
        spacing = getattr(sym, 'spacing', None)
        if spacing is not None:
            kind = 'T' if getattr(sym, 'is_Time', False) else 'S'
            step = '1' if getattr(sym, 'is_Stepping', False) else '0'
            self.token('Dim', kind, step, sym.name, spacing.name)
            return
        self.token('Sym', type(sym).__name__, sym.name)

    def _emit_function(self, func):
        self.token('Func', type(func).__name__, func.name,
                   func.space_order, getattr(func, 'time_order', 0),
                   str(func.dtype), func.padding,
                   ','.join(d.name for d in func.staggered))
        self._note_grid(func.grid)
        if func.name not in self.functions:
            self.functions[func.name] = func

    def _emit_sparse(self, sparse):
        self.token('Sparse', type(sparse).__name__, sparse.name,
                   sparse.npoint, getattr(sparse, 'nt', 0))
        self._note_grid(sparse.grid)
        if sparse.name not in self.sparse:
            self.sparse[sparse.name] = sparse

    def _note_grid(self, grid):
        if all(g is not grid for g in self.grids):
            self.grids.append(grid)
            # a one-time announcement, not part of any node's steady bytes
            self.token('Grid', tuple(grid.shape), str(grid.dtype),
                       steady=False)

    # -- result ---------------------------------------------------------------------

    def hexdigest(self):
        if self._frames:
            raise RuntimeError("hexdigest() called mid-emission")
        return self._h.hexdigest()


def canonical_tokens(obj):
    """Fingerprint of a single object (debug/test helper)."""
    emitter = TokenEmitter()
    emitter.emit(obj)
    return emitter.hexdigest()


def structural_fingerprint(objects, extra=None):
    """Fingerprint a sequence of objects plus an ``extra`` context dict.

    Returns ``(hexdigest, emitter)`` — the emitter carries the collected
    symbol table (functions/sparse/constants/grids).
    """
    objects = list(objects)
    emitter = TokenEmitter()
    emitter.token('seq', len(objects))
    for obj in objects:
        emitter.emit(obj)
    if extra:
        emitter.token('extra')
        emitter.emit(dict(extra))
    return emitter.hexdigest(), emitter
