"""Expression printers: C and vectorized-NumPy source emission.

``ccode`` renders an expression as single-precision C (the paper's
Listing 11 style).  ``pycode`` renders it as a NumPy expression where each
array access becomes a slice computed from the access offset — the
executable backend of the JIT compiler.
"""

from __future__ import annotations

from fractions import Fraction

from .expr import (Add, Expr, Float, Integer, Mul, Pow, Rational, S,
                   Symbol, preorder)
from .functions import FUNCTION_REGISTRY, AppliedFunction

__all__ = ['ccode', 'pycode', 'CPrinter', 'PyPrinter']


class _PrinterBase:
    """Shared precedence-aware infix printing machinery."""

    def doprint(self, expr):
        return self._print(S(expr))

    def _print(self, expr):
        if expr.is_Add:
            return self._print_add(expr)
        if expr.is_Mul:
            return self._print_mul(expr)
        if expr.is_Pow:
            return self._print_pow(expr)
        if isinstance(expr, Integer):
            return self._print_int(expr)
        if isinstance(expr, Rational):
            return self._print_rational(expr)
        if isinstance(expr, Float):
            return self._print_float(expr)
        if expr.is_Indexed:
            return self._print_indexed(expr)
        if isinstance(expr, AppliedFunction):
            return self._print_function(expr)
        if expr.is_Symbol:
            return self._print_symbol(expr)
        if getattr(expr, 'is_DiscreteFunction', False):
            return self._print(expr.indexify())
        raise TypeError("cannot print %r" % (expr,))

    def _paren_term(self, arg):
        text = self._print(arg)
        if arg.is_Add:
            return '(' + text + ')'
        return text

    def _print_add(self, expr):
        parts = []
        for i, arg in enumerate(expr.args):
            text = self._print(arg)
            if i == 0:
                parts.append(text)
            elif text.startswith('-'):
                parts.append(' - ' + text[1:])
            else:
                parts.append(' + ' + text)
        return ''.join(parts)

    def _print_mul(self, expr):
        num_parts, den_parts = [], []
        coeff_text = None
        args = list(expr.args)
        if args and isinstance(args[0], (Integer, Rational, Float)):
            coeff = args.pop(0)
            if isinstance(coeff, Integer) and coeff.value == -1:
                coeff_text = '-'
            else:
                coeff_text = None
                args.insert(0, coeff)
        for arg in args:
            if arg.is_Pow and isinstance(arg.exp, (Integer, Rational)) \
                    and arg.exp.value < 0:
                den_parts.append(self._print_pow_positive(arg.base,
                                                          -arg.exp.value))
            elif isinstance(arg, Rational):
                num_parts.append(self._print_rational_as_float(arg))
            else:
                num_parts.append(self._paren_mul_operand(arg))
        if not num_parts:
            num_parts = [self._one_literal()]
        text = '*'.join(num_parts)
        if den_parts:
            text = text + '/' + '/'.join(
                p if _is_atom_text(p) else '(' + p + ')' for p in den_parts)
        if coeff_text:
            text = coeff_text + text
        return text

    def _paren_mul_operand(self, arg):
        text = self._print(arg)
        if arg.is_Add or (isinstance(arg, (Float, Integer)) and arg.value < 0):
            return '(' + text + ')'
        return text

    def _print_pow_positive(self, base, expval):
        """Print base**expval with expval a positive number."""
        frac = Fraction(expval)
        base_text = self._paren_mul_operand(base)
        if base.is_Mul or base.is_Pow:
            base_text = '(' + self._print(base) + ')'
        if frac == 1:
            return base_text
        if frac.denominator == 1 and 2 <= frac.numerator <= 3:
            return '*'.join([base_text] * frac.numerator)
        if frac == Fraction(1, 2):
            return self._sqrt_call(self._print(base))
        return self._pow_call(base_text, str(float(frac)))

    def _print_pow(self, expr):
        base, exp = expr.base, expr.exp
        if isinstance(exp, (Integer, Rational, Float)):
            if exp.value > 0:
                return self._print_pow_positive(base, exp.value)
            inv = self._print_pow_positive(base, -exp.value)
            if not _is_atom_text(inv):
                inv = '(' + inv + ')'
            return '%s/%s' % (self._one_literal(), inv)
        return self._pow_call(self._paren_mul_operand(base),
                              self._paren_mul_operand(exp))

    def _print_symbol(self, expr):
        return expr.name

    def _print_function(self, expr):
        cname, pyname = FUNCTION_REGISTRY[expr.fname]
        name = self._function_name(cname, pyname)
        return '%s(%s)' % (name, ', '.join(self._print(a) for a in expr.args))


def _is_atom_text(text):
    return text and all(c.isalnum() or c in '_.[]' for c in text)


class CPrinter(_PrinterBase):
    """Render expressions as single-precision C."""

    def _one_literal(self):
        return '1.0F'

    def _sqrt_call(self, arg):
        return 'sqrtf(%s)' % arg

    def _pow_call(self, base, exp):
        return 'powf(%s, %s)' % (base, exp)

    def _function_name(self, cname, pyname):
        return cname

    def _print_int(self, expr):
        return str(expr.value)

    def _print_rational(self, expr):
        return self._print_rational_as_float(expr)

    def _print_rational_as_float(self, expr):
        value = float(expr.value)
        if value == int(value):
            return '%.1fF' % value
        return ('%r' % value) + 'F'

    def _print_float(self, expr):
        value = expr.value
        if value == int(value):
            return '%.1fF' % value
        return ('%r' % value) + 'F'

    def _print_indexed(self, expr):
        idx = ''.join('[%s]' % self._print(i) for i in expr.indices)
        return expr.base.name + idx


class PyPrinter(_PrinterBase):
    """Render expressions as scalar Python/NumPy source.

    Indexed accesses print via a caller-provided ``index_printer``
    callback, so the same printer serves both the scalar (pointwise) and
    the vectorized (slice-based) kernels.
    """

    def __init__(self, index_printer=None):
        self.index_printer = index_printer

    def _one_literal(self):
        return '1.0'

    def _sqrt_call(self, arg):
        return 'np.sqrt(%s)' % arg

    def _pow_call(self, base, exp):
        return '(%s)**(%s)' % (base, exp)

    def _function_name(self, cname, pyname):
        return pyname

    def _print_int(self, expr):
        return str(expr.value)

    def _print_rational(self, expr):
        return self._print_rational_as_float(expr)

    def _print_rational_as_float(self, expr):
        return repr(float(expr.value))

    def _print_float(self, expr):
        return repr(expr.value)

    def _print_indexed(self, expr):
        if self.index_printer is None:
            idx = ', '.join(self._print(i) for i in expr.indices)
            return '%s[%s]' % (expr.base.name, idx)
        return self.index_printer(self, expr)


def ccode(expr):
    """Render ``expr`` as single-precision C source."""
    return CPrinter().doprint(expr)


def pycode(expr, index_printer=None):
    """Render ``expr`` as Python/NumPy source."""
    return PyPrinter(index_printer=index_printer).doprint(expr)
