"""Expression printers: C and vectorized-NumPy source emission.

``ccode`` renders an expression as single-precision C (the paper's
Listing 11 style).  ``pycode`` renders it as a NumPy expression where each
array access becomes a slice computed from the access offset — the
executable backend of the JIT compiler.
"""

from __future__ import annotations

from fractions import Fraction

from .expr import (Add, Expr, Float, Integer, Mul, Pow, Rational, S,
                   Symbol, preorder)
from .functions import FUNCTION_REGISTRY, AppliedFunction

__all__ = ['ccode', 'pycode', 'CPrinter', 'PyPrinter', 'CExecPrinter']


class _PrinterBase:
    """Shared precedence-aware infix printing machinery."""

    def doprint(self, expr):
        return self._print(S(expr))

    def _print(self, expr):
        if expr.is_Add:
            return self._print_add(expr)
        if expr.is_Mul:
            return self._print_mul(expr)
        if expr.is_Pow:
            return self._print_pow(expr)
        if isinstance(expr, Integer):
            return self._print_int(expr)
        if isinstance(expr, Rational):
            return self._print_rational(expr)
        if isinstance(expr, Float):
            return self._print_float(expr)
        if expr.is_Indexed:
            return self._print_indexed(expr)
        if isinstance(expr, AppliedFunction):
            return self._print_function(expr)
        if expr.is_Symbol:
            return self._print_symbol(expr)
        if getattr(expr, 'is_DiscreteFunction', False):
            return self._print(expr.indexify())
        raise TypeError("cannot print %r" % (expr,))

    def _paren_term(self, arg):
        text = self._print(arg)
        if arg.is_Add:
            return '(' + text + ')'
        return text

    def _print_add(self, expr):
        parts = []
        for i, arg in enumerate(expr.args):
            text = self._print(arg)
            if i == 0:
                parts.append(text)
            elif text.startswith('-'):
                parts.append(' - ' + text[1:])
            else:
                parts.append(' + ' + text)
        return ''.join(parts)

    def _print_mul(self, expr):
        num_parts, den_parts = [], []
        coeff_text = None
        args = list(expr.args)
        if args and isinstance(args[0], (Integer, Rational, Float)):
            coeff = args.pop(0)
            if isinstance(coeff, Integer) and coeff.value == -1:
                coeff_text = '-'
            else:
                coeff_text = None
                args.insert(0, coeff)
        for arg in args:
            if arg.is_Pow and isinstance(arg.exp, (Integer, Rational)) \
                    and arg.exp.value < 0:
                den_parts.append(self._print_pow_positive(arg.base,
                                                          -arg.exp.value))
            elif isinstance(arg, Rational):
                num_parts.append(self._print_rational_as_float(arg))
            else:
                num_parts.append(self._paren_mul_operand(arg))
        if not num_parts:
            num_parts = [self._one_literal()]
        text = '*'.join(num_parts)
        if den_parts:
            text = text + '/' + '/'.join(
                p if _is_atom_text(p) else '(' + p + ')' for p in den_parts)
        if coeff_text:
            text = coeff_text + text
        return text

    def _paren_mul_operand(self, arg):
        text = self._print(arg)
        if arg.is_Add or (isinstance(arg, (Float, Integer)) and arg.value < 0):
            return '(' + text + ')'
        return text

    def _print_pow_positive(self, base, expval):
        """Print base**expval with expval a positive number."""
        frac = Fraction(expval)
        base_text = self._paren_mul_operand(base)
        if base.is_Mul or base.is_Pow:
            base_text = '(' + self._print(base) + ')'
        if frac == 1:
            return base_text
        if frac.denominator == 1 and 2 <= frac.numerator <= 3:
            return '*'.join([base_text] * frac.numerator)
        if frac == Fraction(1, 2):
            return self._sqrt_call(self._print(base))
        return self._pow_call(base_text, str(float(frac)))

    def _print_pow(self, expr):
        base, exp = expr.base, expr.exp
        if isinstance(exp, (Integer, Rational, Float)):
            if exp.value > 0:
                return self._print_pow_positive(base, exp.value)
            inv = self._print_pow_positive(base, -exp.value)
            if not _is_atom_text(inv):
                inv = '(' + inv + ')'
            return '%s/%s' % (self._one_literal(), inv)
        return self._pow_call(self._paren_mul_operand(base),
                              self._paren_mul_operand(exp))

    def _print_symbol(self, expr):
        return expr.name

    def _print_function(self, expr):
        cname, pyname = FUNCTION_REGISTRY[expr.fname]
        name = self._function_name(cname, pyname)
        return '%s(%s)' % (name, ', '.join(self._print(a) for a in expr.args))


def _is_atom_text(text):
    return text and all(c.isalnum() or c in '_.[]' for c in text)


class CPrinter(_PrinterBase):
    """Render expressions as single-precision C."""

    def _one_literal(self):
        return '1.0F'

    def _sqrt_call(self, arg):
        return 'sqrtf(%s)' % arg

    def _pow_call(self, base, exp):
        return 'powf(%s, %s)' % (base, exp)

    def _function_name(self, cname, pyname):
        return cname

    def _print_int(self, expr):
        return str(expr.value)

    def _print_rational(self, expr):
        return self._print_rational_as_float(expr)

    def _print_rational_as_float(self, expr):
        value = float(expr.value)
        if value == int(value):
            return '%.1fF' % value
        return ('%r' % value) + 'F'

    def _print_float(self, expr):
        value = expr.value
        if value == int(value):
            return '%.1fF' % value
        return ('%r' % value) + 'F'

    def _print_indexed(self, expr):
        idx = ''.join('[%s]' % self._print(i) for i in expr.indices)
        return expr.base.name + idx


class PyPrinter(_PrinterBase):
    """Render expressions as scalar Python/NumPy source.

    Indexed accesses print via a caller-provided ``index_printer``
    callback, so the same printer serves both the scalar (pointwise) and
    the vectorized (slice-based) kernels.
    """

    def __init__(self, index_printer=None):
        self.index_printer = index_printer

    def _one_literal(self):
        return '1.0'

    def _sqrt_call(self, arg):
        return 'np.sqrt(%s)' % arg

    def _pow_call(self, base, exp):
        return '(%s)**(%s)' % (base, exp)

    def _function_name(self, cname, pyname):
        return pyname

    def _print_int(self, expr):
        return str(expr.value)

    def _print_rational(self, expr):
        return self._print_rational_as_float(expr)

    def _print_rational_as_float(self, expr):
        return repr(float(expr.value))

    def _print_float(self, expr):
        return repr(expr.value)

    def _print_indexed(self, expr):
        if self.index_printer is None:
            idx = ', '.join(self._print(i) for i in expr.indices)
            return '%s[%s]' % (expr.base.name, idx)
        return self.index_printer(self, expr)


class CExecPrinter(_PrinterBase):
    """C printer for the *executable* backend: mirrors NumPy NEP-50.

    The NumPy backend evaluates the printed Python expression with
    weak-scalar semantics: pure-scalar subexpressions run in double
    precision (Python floats) and are rounded to ``float32`` exactly
    when they first meet a ``float32`` array operand, one binary
    operation at a time, left-associatively.  ``np.*`` calls on scalars
    return *strong* ``np.float64``, which instead promotes the whole
    elementwise computation to double.

    This printer reproduces those rules so the compiled step performs
    the same IEEE operations in the same order.  Every printed
    subexpression carries a *kind*:

    - ``'w'`` — weak scalar (Python float/int): a C ``double``
    - ``'s'`` — strong scalar (``np.float64``): a C ``double``
    - ``'A'`` — array element of the kernel dtype
    - ``'D'`` — promoted double array element (only for float32
      kernels, after a strong scalar touched the expression)

    and the one non-trivial C rule is that a weak scalar meeting a
    ``float32`` array operand is cast with ``(float)(...)`` — C would
    otherwise promote the array side to double.  All other promotions
    (``float`` op ``double`` -> ``double``) match NumPy natively.

    ``index_printer(printer, indexed) -> text`` renders array accesses
    (the codegen backend owns the flattened-stride layout);
    ``symbol_kinds`` maps scalar names to ``'w'``/``'s'``/``'A'``
    (defaulting to weak — runtime parameters are Python floats).
    """

    def __init__(self, index_printer, dtype='float32', symbol_kinds=None):
        if dtype not in ('float32', 'float64'):
            raise ValueError("CExecPrinter supports float32/float64 "
                             "kernels, not %r" % (dtype,))
        self.index_printer = index_printer
        self.single = dtype == 'float32'
        self.symbol_kinds = dict(symbol_kinds or {})

    # -- public API ---------------------------------------------------------------

    def doprint(self, expr):
        return self.doprint_kinded(expr)[0]

    def doprint_kinded(self, expr):
        """``(text, kind)`` of the rendered expression."""
        return self._printk(S(expr))

    # -- the kind lattice ---------------------------------------------------------

    def _combine(self, ltext, lk, rtext, rk, op):
        """Fold one binary ``op``; casts the weak side when NumPy would."""
        scalars = {'w', 's'}
        if lk in scalars and rk in scalars:
            kind = 's' if 's' in (lk, rk) else 'w'
        elif self.single and lk == 'w' and rk == 'A':
            ltext, kind = self._cast(ltext), 'A'
        elif self.single and rk == 'w' and lk == 'A':
            rtext, kind = self._cast(rtext), 'A'
        elif 'D' in (lk, rk) or (self.single and 's' in (lk, rk)):
            kind = 'D'
        else:
            kind = 'A'
        if op in '+-':
            return '%s %s %s' % (ltext, op, rtext), kind
        return '%s%s%s' % (ltext, op, rtext), kind

    def _cast(self, text):
        if _is_atom_text(text):
            return '(float)' + text
        return '(float)(%s)' % text

    # -- kind-aware node printing ----------------------------------------------------

    def _printk(self, expr):
        if expr.is_Add:
            return self._printk_add(expr)
        if expr.is_Mul:
            return self._printk_mul(expr)
        if expr.is_Pow:
            return self._printk_pow(expr)
        if isinstance(expr, Integer):
            return str(expr.value), 'w'
        if isinstance(expr, (Rational, Float)):
            return self._double_literal(float(expr.value)), 'w'
        if expr.is_Indexed:
            return self.index_printer(self, expr), 'A'
        if isinstance(expr, AppliedFunction):
            return self._printk_function(expr)
        if expr.is_Symbol:
            return expr.name, self.symbol_kinds.get(expr.name, 'w')
        if getattr(expr, 'is_DiscreteFunction', False):
            return self._printk(expr.indexify())
        raise TypeError("cannot print %r" % (expr,))

    @staticmethod
    def _double_literal(value):
        if value == int(value):
            return '%.1f' % value
        return repr(value)

    def _printk_add(self, expr):
        text, kind = self._printk(expr.args[0])
        for arg in expr.args[1:]:
            t, k = self._printk(arg)
            op = '+'
            if t.startswith('-'):
                op, t = '-', t[1:]
            text, kind = self._combine(text, kind, t, k, op)
        return text, kind

    def _printk_operand(self, arg):
        """A Mul/Pow operand, parenthesized like the base printer."""
        text, kind = self._printk(arg)
        if arg.is_Add or text.startswith('-'):
            return '(%s)' % text, kind
        return text, kind

    def _printk_mul(self, expr):
        args = list(expr.args)
        negate = False
        if args and isinstance(args[0], Integer) and args[0].value == -1:
            args.pop(0)
            negate = True
        num, den = [], []
        for arg in args:
            if arg.is_Pow and isinstance(arg.exp, (Integer, Rational)) \
                    and arg.exp.value < 0:
                den.append(self._printk_pow_positive(arg.base,
                                                     -arg.exp.value))
            else:
                num.append(self._printk_operand(arg))
        if not num:
            num = [(self._double_literal(1.0), 'w')]
        text, kind = num[0]
        for t, k in num[1:]:
            text, kind = self._combine(text, kind, t, k, '*')
        for t, k in den:
            if not _is_atom_text(t):
                t = '(%s)' % t
            text, kind = self._combine(text, kind, t, k, '/')
        if negate:
            # exact sign flip: -(a*b) and (-a)*b are bitwise identical
            text = '-' + text
        return text, kind

    def _printk_pow_positive(self, base, expval):
        frac = Fraction(expval)
        btext, bkind = self._printk_operand(base)
        if base.is_Mul or base.is_Pow:
            btext = '(%s)' % self._printk(base)[0]
        if frac == 1:
            return btext, bkind
        if frac.denominator == 1 and 2 <= frac.numerator <= 3:
            text, kind = btext, bkind
            for _ in range(int(frac.numerator) - 1):
                text, kind = self._combine(text, kind, btext, bkind, '*')
            return text, kind
        if frac == Fraction(1, 2):
            return self._call_math('sqrt', [(btext, bkind)])
        return self._call_math('pow', [(btext, bkind),
                                       (self._double_literal(float(frac)),
                                        'w')])

    def _printk_pow(self, expr):
        base, exp = expr.base, expr.exp
        if isinstance(exp, (Integer, Rational, Float)):
            if exp.value > 0:
                return self._printk_pow_positive(base, exp.value)
            itext, ikind = self._printk_pow_positive(base, -exp.value)
            if not _is_atom_text(itext):
                itext = '(%s)' % itext
            return self._combine(self._double_literal(1.0), 'w',
                                 itext, ikind, '/')
        return self._call_math('pow', [self._printk_operand(base),
                                       self._printk_operand(exp)])

    def _printk_function(self, expr):
        cname, _ = FUNCTION_REGISTRY[expr.fname]
        return self._call_math(cname.rstrip('f') if cname.endswith('f')
                               else cname,
                               [self._printk(a) for a in expr.args])

    def _call_math(self, stem, args):
        """A libm call; float variant iff every operand is float32.

        Matches NumPy: ``np.sqrt`` on a float32 array stays float32
        (``sqrtf``); on anything scalar it returns a *strong* float64,
        so the double variant is used and the result kind is ``'s'`` /
        ``'D'``.
        """
        kinds = [k for _, k in args]
        if self.single and all(k == 'A' for k in kinds):
            name, kind = stem + 'f', 'A'
        elif any(k in ('A', 'D') for k in kinds):
            name, kind = stem, 'A' if not self.single else 'D'
        else:
            name, kind = stem, 's'
        return ('%s(%s)' % (name, ', '.join(t for t, _ in args)), kind)


def ccode(expr):
    """Render ``expr`` as single-precision C source."""
    return CPrinter().doprint(expr)


def pycode(expr, index_printer=None):
    """Render ``expr`` as Python/NumPy source."""
    return PyPrinter(index_printer=index_printer).doprint(expr)
