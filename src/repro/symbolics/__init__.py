"""A compact symbolic-math engine (the SymPy substitute Devito builds on).

Public surface: expression construction (:class:`Symbol`, arithmetic
operators), exact numbers, elementary functions, unevaluated
:class:`Derivative` nodes with Fornberg finite-difference expansion,
linear :func:`solve`, flop-reducing rewrites (CSE, factorization,
invariant hoisting) and C/NumPy printers.
"""

from .expr import (Add, Atom, Expr, Float, Half, Indexed, Integer, MinusOne,
                   Mul, Number, One, Pow, Rational, S, Symbol, Zero,
                   contains, count_ops, expand, free_symbols, indexeds,
                   linear_coeffs, postorder, preorder, sympify, xreplace)
from .functions import (FUNCTION_REGISTRY, Abs, AppliedFunction, Max, Min,
                        ceiling, cos, exp, floor, log, sin, sqrt, tan)
from .fd import fd_weights, fornberg_weights, sample_offsets
from .derivative import (Derivative, expand_derivatives, expr_stagger,
                         indexify)
from .solve import solve
from .rewriting import (Temp, collect_mul_coeff, cse, factorize,
                        hoist_invariants)
from .printing import CPrinter, PyPrinter, ccode, pycode
from .hashing import (TokenEmitter, canonical_tokens,
                      structural_fingerprint)

__all__ = [  # noqa: F405
    'Add', 'Atom', 'Expr', 'Float', 'Half', 'Indexed', 'Integer', 'MinusOne',
    'Mul', 'Number', 'One', 'Pow', 'Rational', 'S', 'Symbol', 'Zero',
    'contains', 'count_ops', 'expand', 'free_symbols', 'indexeds',
    'linear_coeffs', 'postorder', 'preorder', 'sympify', 'xreplace',
    'FUNCTION_REGISTRY', 'Abs', 'AppliedFunction', 'Max', 'Min', 'ceiling',
    'cos', 'exp', 'floor', 'log', 'sin', 'sqrt', 'tan',
    'fd_weights', 'fornberg_weights', 'sample_offsets',
    'Derivative', 'expand_derivatives', 'expr_stagger', 'indexify',
    'solve', 'Temp', 'collect_mul_coeff', 'cse', 'factorize',
    'hoist_invariants', 'CPrinter', 'PyPrinter', 'ccode', 'pycode',
    'TokenEmitter', 'canonical_tokens', 'structural_fingerprint',
]
