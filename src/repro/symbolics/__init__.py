"""A compact symbolic-math engine (the SymPy substitute Devito builds on).

Public surface: expression construction (:class:`Symbol`, arithmetic
operators), exact numbers, elementary functions, unevaluated
:class:`Derivative` nodes with Fornberg finite-difference expansion,
linear :func:`solve`, flop-reducing rewrites (CSE, factorization,
invariant hoisting) and C/NumPy printers.

Expressions are immutable, hash-consed DAG nodes; the traversal and
rewrite entry points live on :class:`Expr` itself:

====================================  =====================================
deprecated free function              replacement
====================================  =====================================
``xreplace(e, m)``                    ``e.xreplace(m)`` (or ``e.subs(m)``)
``expand(e)``                         ``e.expand()``
``count_ops(e)``                      ``e.count_ops()``
``free_symbols(e)``                   ``e.free_symbols``
``diff(e, x)``                        ``e.diff(x)``
====================================  =====================================

The free functions still work but emit :class:`DeprecationWarning`.
Structure-level helpers (``preorder``, ``postorder``, ``unique_nodes``,
``contains``, ``linear_coeffs``, ``indexeds``) remain plain functions.
"""

from .expr import (Add, Atom, Expr, Float, Half, Indexed, Integer, MinusOne,
                   Mul, Number, One, Pow, Rational, S, Symbol, WeakIdMemo,
                   Zero, contains, count_ops, diff, expand, free_symbols,
                   has_indexed, indexeds, linear_coeffs, postorder, preorder,
                   sympify, unique_nodes, xreplace)
from .functions import (FUNCTION_REGISTRY, Abs, AppliedFunction, Max, Min,
                        ceiling, cos, exp, floor, log, sin, sqrt, tan)
from .fd import fd_weights, fornberg_weights, sample_offsets
from .derivative import (Derivative, expand_derivatives, expr_stagger,
                         indexify)
from .solve import solve
from .rewriting import (Temp, collect_mul_coeff, cse, factorize,
                        hoist_invariants)
from .printing import (CExecPrinter, CPrinter, PyPrinter,
                       ccode, pycode)
from .hashing import (TokenEmitter, canonical_tokens,
                      structural_fingerprint)

__all__ = [  # noqa: F405
    # expression core
    'Add', 'Atom', 'Expr', 'Float', 'Half', 'Indexed', 'Integer', 'MinusOne',
    'Mul', 'Number', 'One', 'Pow', 'Rational', 'S', 'Symbol', 'Zero',
    'sympify',
    # traversal / queries
    'contains', 'indexeds', 'linear_coeffs', 'postorder', 'preorder',
    'unique_nodes', 'has_indexed', 'WeakIdMemo',
    # deprecated free-function shims (use the Expr methods instead)
    'count_ops', 'diff', 'expand', 'free_symbols', 'xreplace',
    # elementary functions
    'FUNCTION_REGISTRY', 'Abs', 'AppliedFunction', 'Max', 'Min', 'ceiling',
    'cos', 'exp', 'floor', 'log', 'sin', 'sqrt', 'tan',
    # finite differences and derivatives
    'fd_weights', 'fornberg_weights', 'sample_offsets',
    'Derivative', 'expand_derivatives', 'expr_stagger', 'indexify',
    # solving and rewriting
    'solve', 'Temp', 'collect_mul_coeff', 'cse', 'factorize',
    'hoist_invariants',
    # printing
    'CPrinter', 'CExecPrinter', 'PyPrinter', 'ccode', 'pycode',
    # fingerprints
    'TokenEmitter', 'canonical_tokens', 'structural_fingerprint',
]
