"""``python -m repro`` — alias of the CLI benchmark runner.

The ``repro`` console script (declared in ``pyproject.toml``) and
``python -m repro.cli`` are equivalent entry points.
"""

from .cli import main

if __name__ == '__main__':
    main()
