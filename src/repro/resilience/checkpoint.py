"""Distributed, versioned, CRC-checked snapshots of solver state.

A checkpoint of step ``t`` captures the state *at the top of timestep
``t``* (i.e. after steps ``< t`` completed): every discrete function's
full local allocation (all time buffers, halo included) plus — on the
coordinator rank only — the replicated sparse-function arrays (source
wavelets, receiver rows written so far).  Because the timestep loop is
deterministic, resuming at ``t`` from a checkpoint replays the remaining
steps bit-identically.

Layout (per :class:`Checkpointer` directory)::

    <dir>/step-000012/rank0.npz      one npz per rank, written by that
    <dir>/step-000012/rank1.npz      rank only (no gather to rank 0)
    <dir>/step-000012/manifest.json  written *last*, atomically, by the
                                     coordinator — its presence marks
                                     the checkpoint complete

Rank files are keyed by **original** rank (``world.orig_of``), so after
a shrink the manifest of an old checkpoint still names blocks by their
global ranges and the repartitioner can route them to the new topology.
Every file lands via tmp + ``os.replace`` (:mod:`repro.ioutil`), and the
manifest records a CRC32 per rank file: a writer killed mid-checkpoint
leaves either a complete older version or no manifest at all — never a
truncated snapshot.  The last ``keep`` checkpoints are retained.
"""

from __future__ import annotations

import io
import os
import re
import shutil
import zlib

import numpy as np

from ..ioutil import atomic_write_bytes, atomic_write_json

__all__ = ['Checkpointer', 'CheckpointError']

MANIFEST_VERSION = 1

_STEP_DIR_RE = re.compile(r'^step-(\d+)$')


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or validated."""


def _crc32(data):
    return zlib.crc32(data) & 0xFFFFFFFF


class Checkpointer:
    """Writes/reads the snapshots of one operator's state.

    One instance per rank (like the Operator itself); all ranks point at
    the same ``directory``.  ``save``/``restore`` are collectives over
    the communicator passed in.

    Parameters
    ----------
    directory : str
        Checkpoint root (shared by all ranks).
    keep : int
        Number of most-recent checkpoints retained (older step
        directories are pruned by the coordinator after each save).
    """

    def __init__(self, directory, keep=2):
        self.directory = os.fspath(directory)
        self.keep = max(int(keep), 1)

    # -- layout -----------------------------------------------------------

    def step_dir(self, step):
        return os.path.join(self.directory, 'step-%06d' % step)

    def manifest_path(self, step):
        return os.path.join(self.step_dir(step), 'manifest.json')

    def rank_file(self, step, orig_rank):
        return os.path.join(self.step_dir(step), 'rank%d.npz' % orig_rank)

    def steps_on_disk(self):
        """Steps that have a (not-yet-validated) manifest, ascending."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        steps = []
        for name in names:
            m = _STEP_DIR_RE.match(name)
            if m and os.path.exists(self.manifest_path(int(m.group(1)))):
                steps.append(int(m.group(1)))
        return sorted(steps)

    # -- writing ----------------------------------------------------------

    def save(self, step, comm, world, functions, sparse_functions,
             distributor):
        """Snapshot the current state as checkpoint ``step`` (collective).

        Each rank writes its own npz; per-file CRC32s are gathered on
        the coordinator (communicator rank 0), which then atomically
        writes the manifest — the completion marker — and prunes old
        checkpoints.  Returns the number of bytes this rank wrote.
        """
        orig = world.orig_of[comm.rank]
        sdir = self.step_dir(step)
        os.makedirs(sdir, exist_ok=True)

        payload = {}
        for f in functions:
            payload['f:%s' % f.name] = f.data.with_halo
        if comm.rank == 0:
            for s in sparse_functions:
                payload['s:%s' % s.name] = s.data
        buf = io.BytesIO()
        np.savez(buf, **payload)
        data = buf.getvalue()
        fname = 'rank%d.npz' % orig
        atomic_write_bytes(os.path.join(sdir, fname), data)

        ranges = [[int(a), int(b)] for a, b in distributor.local_ranges()]
        entry = {'rank': int(orig),
                 'coords': [int(c) for c in distributor.mycoords],
                 'ranges': ranges, 'file': fname,
                 'crc32': _crc32(data), 'nbytes': len(data)}
        entries = comm.gather(entry, root=0)
        if comm.rank == 0:
            fmeta = {}
            for f in functions:
                fmeta[f.name] = {
                    'nbuffers': int(getattr(f, 'nbuffers', 0)) or None,
                    'halo': [[int(l), int(r)] for l, r in f.halo],
                    'dtype': str(f.dtype)}
            smeta = {s.name: {'file': fname, 'rank': int(orig),
                              'shape': [int(n) for n in s.data.shape],
                              'dtype': str(s.data.dtype)}
                     for s in sparse_functions}
            manifest = {'version': MANIFEST_VERSION, 'step': int(step),
                        'world_size': int(comm.size),
                        'topology': [int(d) for d in distributor.topology],
                        'grid_shape': [int(n) for n in distributor.shape],
                        'functions': fmeta, 'sparse': smeta,
                        'ranks': sorted(entries, key=lambda e: e['rank'])}
            atomic_write_json(self.manifest_path(step), manifest)
            world.recovery_stats['checkpoints_written'] += 1
            world.recovery_stats['checkpoint_bytes'] += sum(
                e['nbytes'] for e in entries)
            self.prune(keep_step=step)
        return len(data)

    def prune(self, keep_step=None):
        """Drop all but the ``keep`` newest checkpoints (coordinator)."""
        steps = self.steps_on_disk()
        if keep_step is not None and keep_step not in steps:
            steps.append(keep_step)
            steps.sort()
        for step in steps[:-self.keep] if len(steps) > self.keep else []:
            shutil.rmtree(self.step_dir(step), ignore_errors=True)

    # -- validation -------------------------------------------------------

    def load_manifest(self, step):
        import json
        try:
            with open(self.manifest_path(step)) as f:
                return json.load(f)
        except (OSError, ValueError) as err:
            raise CheckpointError("unreadable manifest for checkpoint "
                                  "step %d: %s" % (step, err)) from None

    def validate(self, step):
        """Full validation of checkpoint ``step``; the manifest on
        success, None when invalid (missing/corrupt rank files)."""
        try:
            manifest = self.load_manifest(step)
        except CheckpointError:
            return None
        if manifest.get('version') != MANIFEST_VERSION:
            return None
        for entry in manifest.get('ranks', ()):
            path = os.path.join(self.step_dir(step), entry['file'])
            try:
                with open(path, 'rb') as f:
                    data = f.read()
            except OSError:
                return None
            if len(data) != entry['nbytes'] or \
                    _crc32(data) != entry['crc32']:
                return None
        return manifest

    def latest_valid(self):
        """(step, manifest) of the newest checkpoint that validates.

        Raises :class:`CheckpointError` when none exists — recovery has
        nothing to resume from.
        """
        for step in reversed(self.steps_on_disk()):
            manifest = self.validate(step)
            if manifest is not None:
                return step, manifest
        raise CheckpointError(
            "no valid checkpoint found under %r" % self.directory)

    # -- reading ----------------------------------------------------------

    def read_rank_blob(self, step, manifest, orig_rank):
        """CRC-verified npz contents of one rank's file as a dict."""
        entry = next((e for e in manifest['ranks']
                      if e['rank'] == orig_rank), None)
        if entry is None:
            raise CheckpointError(
                "checkpoint step %d has no data for original rank %d"
                % (step, orig_rank))
        path = os.path.join(self.step_dir(step), entry['file'])
        with open(path, 'rb') as f:
            data = f.read()
        if _crc32(data) != entry['crc32']:
            raise CheckpointError(
                "CRC mismatch in %s (checkpoint step %d)" % (path, step))
        with np.load(io.BytesIO(data)) as z:
            return {k: z[k] for k in z.files}, entry, len(data)

    def restore(self, step, manifest, comm, world, functions,
                sparse_functions):
        """Same-topology restore (collective): each rank reloads its own
        file in place.  Returns the bytes this rank read."""
        if manifest['world_size'] != comm.size:
            raise CheckpointError(
                "checkpoint step %d was written by %d ranks, cannot "
                "restore in place on %d (use shrink recovery)"
                % (step, manifest['world_size'], comm.size))
        orig = world.orig_of[comm.rank]
        blobs, _, nbytes = self.read_rank_blob(step, manifest, orig)
        for f in functions:
            stored = blobs.get('f:%s' % f.name)
            if stored is None:
                raise CheckpointError(
                    "checkpoint step %d is missing function %r"
                    % (step, f.name))
            target = f.data.with_halo
            if stored.shape != target.shape:
                raise CheckpointError(
                    "checkpoint step %d: shape mismatch for %r (%s vs "
                    "%s)" % (step, f.name, stored.shape, target.shape))
            target[...] = stored
        self.restore_sparse(step, manifest, sparse_functions)
        total = comm.allreduce(nbytes)
        if comm.rank == 0:
            world.recovery_stats['checkpoints_restored'] += 1
            world.recovery_stats['restored_bytes'] += int(total)
        return nbytes

    def restore_sparse(self, step, manifest, sparse_functions):
        """Reload the replicated sparse arrays from the coordinator's
        file (every rank reads the same on-disk blob directly)."""
        by_file = {}
        for s in sparse_functions:
            meta = manifest['sparse'].get(s.name)
            if meta is None:
                raise CheckpointError(
                    "checkpoint step %d is missing sparse function %r"
                    % (step, s.name))
            by_file.setdefault(meta['rank'], []).append(s)
        for orig_rank, funcs in by_file.items():
            blobs, _, _ = self.read_rank_blob(step, manifest, orig_rank)
            for s in funcs:
                stored = blobs['s:%s' % s.name]
                s.data[...] = stored
