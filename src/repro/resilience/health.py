"""Numerical health guards: catch NaN/Inf/blowup near its origin.

A fault plan a user mistakenly marks non-lethal — or an unstable
discretization — can silently corrupt the solution and only be noticed
at the end of a long run.  The health guard scans every time-varying
field's domain region every ``health_check_every`` steps: a cheap local
reduction per rank, then one allgather so *all* ranks agree on the
verdict and raise the same, diagnosable :class:`NumericalHealthError`
naming the rank, field, first bad global index and value.
"""

from __future__ import annotations

import numpy as np

__all__ = ['HealthGuard', 'NumericalHealthError']


class NumericalHealthError(RuntimeError):
    """A field contains NaN/Inf or exceeds the amplitude bound.

    Deliberately *not* a :class:`~repro.mpi.sim.RemoteRankError`: the
    recovery driver never auto-restarts from it (a checkpoint taken
    after the corruption began would just replay the blowup).  All
    ranks raise it collectively, so teardown stays symmetric.
    """

    def __init__(self, rank, field, index, value, timestep):
        self.rank = int(rank)
        self.field = str(field)
        self.index = tuple(int(i) for i in index)
        self.value = float(value)
        self.timestep = int(timestep)
        super().__init__(
            "numerical health check failed at timestep %d: field %r on "
            "rank %d has value %r at global index %s"
            % (timestep, field, rank, value, self.index))


class HealthGuard:
    """Periodic NaN/Inf/amplitude scans of the time-varying fields.

    Parameters
    ----------
    every : int
        Check cadence in timesteps (0 disables).
    max_amplitude : float
        Absolute values above this are flagged as blowup.
    """

    def __init__(self, every, max_amplitude=1e12):
        self.every = int(every)
        self.max_amplitude = float(max_amplitude)

    def due(self, timestep, t0):
        return self.every > 0 and (timestep - t0) % self.every == 0

    def _first_bad(self, rank, functions):
        """This rank's first offending (field, global_index, value)."""
        for f in functions:
            data = f.data
            local = data.local
            bad = ~np.isfinite(local)
            np.logical_or(bad, np.abs(local) > self.max_amplitude,
                          out=bad)
            if not bad.any():
                continue
            idx = tuple(int(i) for i in np.argwhere(bad)[0])
            # local -> global: shift distributed axes by the rank offset
            glb = []
            for spec, i in zip(data.specs, idx):
                if spec.dist_index is None:
                    glb.append(i)
                else:
                    dec = data.distributor.decompositions[spec.dist_index]
                    coord = data.distributor.mycoords[spec.dist_index]
                    glb.append(i + dec.offset(coord))
            return (rank, f.name, tuple(glb), float(local[idx]))
        return None

    def check(self, comm, world, functions, timestep):
        """Scan + collective verdict; raises on *every* rank if any rank
        found corruption (lowest offending rank wins the report)."""
        rank = comm.rank if comm is not None else 0
        orig = world.orig_of[rank] if world is not None else rank
        verdict = self._first_bad(orig, functions)
        if comm is not None and comm.size > 1:
            verdicts = [v for v in comm.allgather(verdict) if v is not None]
        else:
            verdicts = [verdict] if verdict is not None else []
        if verdicts:
            bad_rank, field, index, value = min(verdicts)
            raise NumericalHealthError(bad_rank, field, index, value,
                                       timestep)
