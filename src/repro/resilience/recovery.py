"""Recovery drivers: rebuild a failed run from its checkpoints.

Two policies are implemented on top of :meth:`SimWorld.coordinate` (an
out-of-band rendezvous that keeps working after the transport was
failed):

``restart``
    All original ranks survive the exception (the injected kill raises
    *through* the victim's ``apply``, which catches it like its peers).
    The coordinator resets the world — mailboxes, fault limbo, commlog
    ledgers, sequence counters — disarms the fired kill, and picks the
    newest valid checkpoint; every rank then restores its own snapshot
    file in place and the run resumes at the checkpoint step.

``shrink``
    ULFM-style: the victim marks itself dead and leaves; the survivors
    build a *new* ``SimWorld``/Cartesian topology, re-decompose every
    distributed array, regenerate the kernel (iteration boxes and
    exchangers are compile-time constants of the decomposition), and
    repartition the checkpointed blocks rank-to-rank through
    :func:`~repro.mpi.routing.block_intersections` — no gather through
    a single rank.  Only DOMAIN regions are shipped: halo cells outside
    the global domain are zero by construction, interior halos are
    rebuilt by each timestep's exchange before any read (the compiler's
    halo-placement invariant).

Both resume at the checkpoint step; because the timestep loop is
deterministic and the restored state is exact, the completed run is
bit-identical to a fault-free one.
"""

from __future__ import annotations

import numpy as np

from ..mpi.cart import shrink_dims
from ..mpi.data import Data
from ..mpi.distributor import Distributor
from ..mpi.routing import block_intersections
from ..mpi.sim import SimComm, SimWorld

__all__ = ['perform_restart', 'perform_shrink', 'repartition_restore']


def perform_restart(op, comm, checkpointer):
    """Same-world recovery: reset, disarm, restore, resume.

    Collective over all (surviving == all) ranks.  Returns
    ``(resume_step, bytes_restored_locally)``.
    """
    world = comm.world

    def plan():
        world.reset()
        world.disarmed_kills |= world.pending_kills
        world.pending_kills.clear()
        step, manifest = checkpointer.latest_valid()
        world.recovery_stats['recoveries'] += 1
        return step, manifest

    step, manifest = world.coordinate(comm.rank, plan)
    nbytes = checkpointer.restore(step, manifest, comm, world,
                                  op.functions,
                                  op.sparse_functions)
    return step, nbytes


def perform_shrink(op, comm, checkpointer):
    """Shrink-and-redistribute recovery on the surviving ranks.

    The victim never calls this — it marked itself dead and re-raised.
    Returns ``(new_comm, resume_step, bytes_restored_locally)``; as a
    side effect the operator's grid, distributed data, sparse routing
    and kernel are rebuilt for the new topology.
    """
    old_world = comm.world

    def plan():
        old_world.reset()
        disarmed = old_world.disarmed_kills | old_world.pending_kills
        alive = old_world.alive_ranks()
        step, manifest = checkpointer.latest_valid()
        lineage = old_world.lineage
        with lineage['cond']:
            if lineage['topology0'] is None:
                # remember the pre-shrink process grid so a later grow
                # back to full size restores it exactly
                lineage['topology0'] = tuple(op.grid.distributor.topology)
        new_world = SimWorld(
            len(alive),
            faults=old_world.faults if old_world.faults is not None
            else False,
            recv_timeout=old_world.recv_timeout,
            max_retries=old_world.max_retries,
            check_interval=old_world.check_interval,
            orig_of=tuple(old_world.orig_of[r] for r in alive),
            lineage=lineage)
        new_world.disarmed_kills = set(disarmed)
        stats = dict(old_world.recovery_stats)
        stats['recoveries'] += 1
        stats['ranks_lost'] += old_world.size - len(alive)
        new_world.recovery_stats = stats
        return alive, new_world, step, manifest

    alive, new_world, step, manifest = old_world.coordinate(comm.rank, plan)

    # -- rebuild the distributed substrate on the survivors ---------------
    grid = op.grid
    new_rank = alive.index(comm.rank)
    base = SimComm(new_world, new_rank)
    topology = shrink_dims(grid.distributor.topology, new_world.size)
    new_dist = Distributor(grid.shape, comm=base, topology=topology)
    grid.distributor = new_dist
    functions = op.functions
    for f in functions:
        # fresh (zeroed) allocation under the new decomposition
        f._data = Data(f._dim_specs(), new_dist, dtype=f.dtype)
    for s in op.sparse_functions:
        s._routing = None  # point-ownership plans depend on the topology

    # iteration boxes and exchangers are compile-time constants of the
    # decomposition: the kernel must be regenerated
    from ..codegen.pybackend import generate_kernel
    op.kernel = generate_kernel(op.schedule, progress=op._progress,
                                profiler=op.profiler,
                                backend=getattr(op, 'backend', 'numpy'))
    op._bind_sparse_plans()

    nbytes = repartition_restore(checkpointer, step, manifest,
                                 new_dist.comm, new_dist, functions,
                                 op.sparse_functions, new_world)
    return new_dist.comm, step, nbytes


def repartition_restore(checkpointer, step, manifest, comm, dist,
                        functions, sparse_functions, world):
    """Scatter a checkpoint written under an *old* decomposition onto the
    ranks of a *new* one (collective over ``comm``).

    Reader assignment: a survivor re-reads its own old file; files of
    dead ranks are spread round-robin over the survivors (no gather to
    rank 0).  Each reader clips the old DOMAIN blocks against every new
    rank's subdomain (:func:`block_intersections`) and the pieces move
    rank-to-rank in one ``alltoall``; :meth:`Data.scatter_block` lands
    them.  Returns the number of payload bytes this rank received.
    """
    alive_orig = list(world.orig_of)
    readers = {}
    spill = 0
    for entry in manifest['ranks']:
        r = entry['rank']
        if r in alive_orig:
            readers[r] = alive_orig.index(r)
        else:
            readers[r] = spill % comm.size
            spill += 1

    fmeta = manifest['functions']
    by_name = {f.name: f for f in functions}
    outgoing = [[] for _ in range(comm.size)]
    for entry in manifest['ranks']:
        if readers[entry['rank']] != comm.rank:
            continue
        blobs, _, _ = checkpointer.read_rank_blob(step, manifest,
                                                  entry['rank'])
        space_ranges = [tuple(int(v) for v in r) for r in entry['ranges']]
        for name, f in by_name.items():
            stored = blobs['f:%s' % name]
            halo = fmeta[name]['halo']
            nlocal = stored.ndim - len(space_ranges)  # leading local dims
            key = [slice(None)] * nlocal
            for (lo, hi), (left, _) in zip(space_ranges, halo):
                key.append(slice(left, left + (hi - lo)))
            domain = stored[tuple(key)]
            for dest, isect in block_intersections(space_ranges, dist):
                sub = [slice(None)] * nlocal
                for (a, b), (lo, _) in zip(isect, space_ranges):
                    sub.append(slice(a - lo, b - lo))
                outgoing[dest].append(
                    ('f', name, isect,
                     np.ascontiguousarray(domain[tuple(sub)])))
        for sname, smeta in manifest.get('sparse', {}).items():
            if smeta['rank'] != entry['rank']:
                continue
            arr = blobs['s:%s' % sname]
            for dest in range(comm.size):
                outgoing[dest].append(('s', sname, None, arr))

    received = comm.alltoall(outgoing)
    nbytes = 0
    sparse_by_name = {s.name: s for s in sparse_functions}
    for blocks in received:
        for kind, name, isect, arr in blocks:
            if kind == 'f':
                nbytes += by_name[name].data.scatter_block(isect, arr)
            else:
                sparse_by_name[name].data[...] = arr
                nbytes += arr.nbytes
    total = comm.allreduce(nbytes)
    if comm.rank == 0:
        world.recovery_stats['checkpoints_restored'] += 1
        world.recovery_stats['restored_bytes'] += int(total)
    return nbytes
