"""Elastic repartitioning: grow, rebalance and rejoin live operators.

PR 3's shrink recovery could only *lose* ranks: the survivors rebuild a
smaller world and repartition the checkpoint onto it.  This module
generalizes the same block-intersection/alltoall machinery into a
first-class elastic subsystem that moves *live* state (no checkpoint
I/O on the fast path) in any direction the topology allows:

``perform_grow``
    extend a running world onto every rank announced on the lineage —
    healed kill victims under ``recovery='grow'``, or reserve ranks
    parked by an autoscaling scheduler.  The survivors coordinate a
    grant (new :class:`~repro.mpi.sim.SimWorld` with an extended
    ``orig_of``, restored topology, resume step), every cohort rebuilds
    its decomposition/kernel, and DOMAIN blocks move rank-to-rank in
    one ``alltoall`` routed by
    :func:`~repro.mpi.routing.block_intersections`.

``perform_rebalance``
    re-split the *same* world with per-rank weights (explicit, or
    measured from the profiler's per-rank compute time) through the
    weighted :class:`~repro.mpi.decomposition.Decomposition`, moving
    only the blocks whose ownership changed boundaries.

``rejoin``
    the joiner's half of a grow: park on the lineage until a grant
    covers this original rank, rebuild against the granted world, and
    receive blocks (plus the replicated sparse arrays) in the same
    alltoall.

Both transitions land at a *top-of-step* boundary: the resilience tick
raises :class:`RepartitionRequest` before any communication of the
step, so the moved state is globally consistent and — because results
are invariant to the decomposition — the completed run stays
bit-identical to a never-repartitioned one.  Every post-repartition
schedule re-runs the static verifier before a single step executes on
it (the PR 4 ``opt='verify'`` contract, now machine-checking
elasticity too).
"""

from __future__ import annotations

import threading
import time as _time

import numpy as np

from ..mpi.cart import shrink_dims
from ..mpi.data import Data
from ..mpi.distributor import Distributor
from ..mpi.routing import block_intersections
from ..mpi.sim import RemoteRankError, SimComm, SimWorld, new_lineage

__all__ = ['RepartitionRequest', 'announce_rejoin', 'awaiting_origs',
           'measured_rank_weights', 'new_lineage', 'perform_grow',
           'perform_rebalance', 'rank_weights_to_dim_weights',
           'rejoin', 'repartition_operator', 'run_elastic']


class RepartitionRequest(RemoteRankError):
    """Raised collectively by the resilience tick to leave the kernel at
    a step boundary for a repartition.

    The decision is a pure function of SPMD-uniform controller state,
    so *every* rank raises it at the same top-of-step point — nothing
    is in flight and no peer needs waking.  Subclassing
    :class:`~repro.mpi.sim.RemoteRankError` keeps
    ``Operator._abort_run`` from failing the world on the way out.
    """

    def __init__(self, kind, step):
        self.kind = kind            # 'grow' | 'balance'
        self.step = int(step)
        super().__init__('repartition(%s) requested at step %d'
                         % (kind, step))


# -- lineage bookkeeping ------------------------------------------------------

def announce_rejoin(lineage, orig):
    """Register original rank ``orig`` as ready to (re)join a grow."""
    with lineage['cond']:
        lineage['awaiting'][int(orig)] = True
        lineage['cond'].notify_all()


def awaiting_origs(comm):
    """Coordinated snapshot of the announced joiners (collective).

    Runs through :meth:`SimWorld.coordinate` so every rank sees the
    *same* set — a racy per-rank read could make ranks disagree on
    whether a grow is due, which would deadlock the step.
    """
    world = comm.world
    lineage = world.lineage

    def snap():
        with lineage['cond']:
            return tuple(sorted(lineage['awaiting']))

    return world.coordinate(comm.rank, snap)


# -- weights ------------------------------------------------------------------

def rank_weights_to_dim_weights(weights, topology):
    """Per-rank weights -> per-dimension :class:`Decomposition` weights.

    Dimension ``d``, part ``i`` gets the mean weight of the ranks whose
    Cartesian coordinate along ``d`` is ``i`` (C-order rank layout,
    matching :meth:`CartComm.Get_coords`).  A 1-D weighted split per
    dimension cannot express arbitrary per-rank imbalance exactly, but
    it preserves the tensor-product decomposition the generated
    schedules assume.
    """
    weights = [float(w) for w in weights]
    nranks = int(np.prod(topology))
    if len(weights) != nranks:
        raise ValueError("need one weight per rank (%d), got %d"
                         % (nranks, len(weights)))
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    if sum(weights) <= 0:
        raise ValueError("weights must not all be zero")
    coords = [np.unravel_index(r, tuple(topology)) for r in range(nranks)]
    out = []
    for d, parts in enumerate(topology):
        per = []
        for i in range(parts):
            sel = [w for r, w in enumerate(weights)
                   if int(coords[r][d]) == i]
            per.append(sum(sel) / len(sel))
        out.append(tuple(per))
    return tuple(out)


def measured_rank_weights(op, comm):
    """Per-rank capacity weights from the profiler (collective).

    Capacity is the inverse of the rank's measured compute seconds
    (sections of kind ``'compute'``) — a rank that took twice as long
    should own half the points.  Falls back to equal weights when no
    timings are available (profiling off, or nothing measured yet).
    """
    prof = op.profiler
    local = 0.0
    if prof.enabled and prof.timer is not None:
        local = sum(prof.timer.total(name)
                    for name, meta in prof.sections.items()
                    if meta.kind == 'compute')
    times = comm.allgather(float(local))
    if min(times) <= 0.0:
        return (1.0,) * comm.size
    return tuple(1.0 / t for t in times)


# -- the live-block mover -----------------------------------------------------

def _capture_blocks(op):
    """Snapshot every function's DOMAIN block under the *current*
    decomposition, before the distributor is swapped."""
    dist = op.grid.distributor
    ranges = tuple(tuple(int(v) for v in r) for r in dist.local_ranges())
    blocks = {f.name: f.data.local.copy() for f in op.functions}
    return ranges, blocks


def _rebuild_decomposition(op, comm, topology=None, weights=None):
    """Re-decompose the operator's grid over ``comm`` and regenerate
    the kernel (iteration boxes and exchangers are compile-time
    constants of the decomposition).  Freshly allocated arrays are
    zeroed: DOMAIN regions are filled by the mover, halo cells outside
    the global domain are zero by construction, and interior halos are
    rebuilt by each timestep's exchange before any read."""
    grid = op.grid
    old_split = tuple(p > 1 for p in grid.distributor.topology)
    new_dist = Distributor(grid.shape, comm=comm, topology=topology,
                           weights=weights)
    grid.distributor = new_dist
    for f in op.functions:
        f._data = Data(f._dim_specs(), new_dist, dtype=f.dtype)
    for s in op.sparse_functions:
        s._routing = None   # point-ownership plans depend on the topology
    if tuple(p > 1 for p in new_dist.topology) != old_split:
        # the *set* of distributed dimensions changed (e.g. a 2->4 grow
        # turning (2,1) into (2,2)): the old schedule has no exchange
        # steps for the newly split dimension.  Discard it — the lazy
        # ``op.schedule`` property rebuilds deterministically against
        # the swapped-in distributor
        op.schedule = None
    _rebuild_kernel(op)
    op._bind_sparse_plans()
    return new_dist


def _rebuild_kernel(op):
    """Regenerate (or cache-rehydrate) the kernel for the operator's
    *current* decomposition.  The build-cache fingerprint covers the
    full per-dimension split sizes, so a repartition that recurs — an
    autoscaler oscillating between the same two decompositions, or a
    pool of survey jobs growing onto the same reserves — rehydrates
    instead of re-lowering."""
    from ..buildcache import fingerprint_build, get_cache
    from ..codegen.pybackend import generate_kernel

    bcache = get_cache(None)
    key = symtab = None
    if bcache is not None:
        try:
            key, symtab = fingerprint_build(
                op._expressions, mpi_mode=op._mpi_requested, opt=op._opt,
                verify=op._verify, sanitizer=op._sanitize,
                instrument=op.profiler.enabled, progress=op._progress,
                backend='py' if getattr(op, 'backend', 'numpy')
                == 'numpy' else op.backend)
        except TypeError:
            key = None
    if key is not None:
        artifact, tier = bcache.lookup(key)
        if artifact is not None:
            try:
                op.kernel = artifact.rehydrate(symtab,
                                               progress=op._progress,
                                               profiler=op.profiler)
                bcache.note_hit(artifact, tier)
                return
            except Exception:  # noqa: BLE001 - any defect -> rebuild
                pass
    tic = _time.perf_counter()
    op.kernel = generate_kernel(op.schedule, progress=op._progress,
                                profiler=op.profiler,
                                sanitizer=op._sanitize,
                                backend=getattr(op, 'backend', 'numpy'))
    if key is not None:
        bcache.note_miss()
        try:
            from ..codegen.artifact import KernelArtifact
            bcache.store(key, KernelArtifact.extract(
                op, build_seconds=_time.perf_counter() - tic))
        except Exception:  # noqa: BLE001 - caching is best-effort
            pass


def _move_blocks(op, old_ranges, old_blocks, sparse_sender=None):
    """One alltoall moving captured DOMAIN blocks onto the (already
    swapped-in) new decomposition.  Joiners pass ``old_blocks=None``
    (receive-only).  ``sparse_sender`` (a rank of the *new* comm) ships
    the replicated sparse arrays to everyone — only needed on a grow,
    where joiners carry stale sparse state.  Returns the payload bytes
    this rank received."""
    dist = op.grid.distributor
    comm = dist.comm
    by_name = {f.name: f for f in op.functions}
    outgoing = [[] for _ in range(comm.size)]
    if old_blocks is not None:
        routes = block_intersections(old_ranges, dist)
        for name, f in by_name.items():
            arr = old_blocks[name]
            for dest, isect in routes:
                key = []
                for spec in f.data.specs:
                    if spec.dist_index is None:
                        key.append(slice(None))
                    else:
                        a, b = isect[spec.dist_index]
                        lo, _ = old_ranges[spec.dist_index]
                        key.append(slice(a - lo, b - lo))
                outgoing[dest].append(
                    ('f', name, isect,
                     np.ascontiguousarray(arr[tuple(key)])))
    if sparse_sender is not None and comm.rank == sparse_sender:
        for s in op.sparse_functions:
            arr = np.ascontiguousarray(np.asarray(s.data))
            for dest in range(comm.size):
                outgoing[dest].append(('s', s.name, None, arr))
    received = comm.alltoall(outgoing)
    nbytes = 0
    sparse_by_name = {s.name: s for s in op.sparse_functions}
    for blocks in received:
        for kind, name, isect, arr in blocks:
            if kind == 'f':
                nbytes += by_name[name].data.scatter_block(isect, arr)
            else:
                sparse_by_name[name].data[...] = arr
                nbytes += arr.nbytes
    return nbytes


def _finish_repartition(op, nbytes, grown=0):
    """Account the move and re-run the static verifier (collective).

    The verifier re-check contract: no post-repartition schedule runs a
    single step before passing the same ``opt='verify'`` gate a cold
    build faces — :class:`~repro.analysis.AnalysisError` propagates and
    fails the run loudly.
    """
    comm = op.grid.distributor.comm
    world = comm.world
    total = comm.allreduce(int(nbytes))
    if comm.rank == 0:
        world.recovery_stats['repartitions'] += 1
        world.recovery_stats['repartition_bytes'] += int(total)
        world.recovery_stats['grown_ranks'] += int(grown)
    from ..analysis import verify_schedule
    op.analysis = verify_schedule(op.schedule, kernel=op.kernel,
                                  profiler=op.profiler)


# -- grow ---------------------------------------------------------------------

def perform_grow(op, comm, step, weights=None):
    """Grow the live operator onto every announced joiner (collective
    over the *current* world's ranks; the joiners meet us through the
    lineage and participate in the block alltoall on the new comm).

    Returns ``(new_comm, nbytes_received_locally)``; as a side effect
    the operator's grid, data, sparse routing and kernel are rebuilt
    for the extended topology and the run can resume at ``step``.
    """
    old_world = comm.world
    lineage = old_world.lineage

    def plan():
        with lineage['cond']:
            healed = tuple(sorted(lineage['awaiting']))
            lineage['awaiting'].clear()
        old_world.reset()
        # satellite: bank fired kills across the boundary, keyed on
        # original ranks — a kill that fired before the grow must not
        # re-fire on the rebuilt world
        disarmed = old_world.disarmed_kills | old_world.pending_kills
        survivors = tuple(old_world.orig_of)
        new_origs = tuple(sorted(set(survivors) | set(healed)))
        new_world = SimWorld(
            len(new_origs),
            faults=old_world.faults if old_world.faults is not None
            else False,
            recv_timeout=old_world.recv_timeout,
            max_retries=old_world.max_retries,
            check_interval=old_world.check_interval,
            orig_of=new_origs,
            lineage=lineage)
        new_world.disarmed_kills = set(disarmed)
        new_world.recovery_stats = dict(old_world.recovery_stats)
        top0 = lineage['topology0']
        if top0 is not None and int(np.prod(top0)) == len(new_origs):
            topology = tuple(top0)  # restore the pre-shrink process grid
        else:
            topology = shrink_dims(op.grid.distributor.topology,
                                   len(new_origs))
        dim_weights = None
        if weights is not None:
            dim_weights = rank_weights_to_dim_weights(weights, topology)
        grant = {'world': new_world, 'step': int(step),
                 'topology': topology, 'weights': dim_weights,
                 'joiners': healed,
                 'sparse_sender': new_origs.index(min(survivors)),
                 'epoch': lineage['epoch'] + 1}
        with lineage['cond']:
            lineage['epoch'] = grant['epoch']
            lineage['grant'] = grant
            lineage['cond'].notify_all()
        return grant

    grant = old_world.coordinate(comm.rank, plan)
    if not grant['joiners']:
        raise RemoteRankError("grow requested with no announced joiners")
    old_ranges, old_blocks = _capture_blocks(op)
    new_world = grant['world']
    new_rank = new_world.orig_of.index(old_world.orig_of[comm.rank])
    base = SimComm(new_world, new_rank)
    _rebuild_decomposition(op, base, topology=grant['topology'],
                           weights=grant['weights'])
    nbytes = _move_blocks(op, old_ranges, old_blocks,
                          sparse_sender=grant['sparse_sender'])
    _finish_repartition(op, nbytes, grown=len(grant['joiners']))
    return op.grid.distributor.comm, nbytes


def rejoin(op, lineage, orig, timeout=120.0):
    """The joiner's half of a grow: park until granted, rebuild, receive.

    Blocks until a grant covers original rank ``orig`` (announce first
    with :func:`announce_rejoin`), rebuilds this rank's substrate
    against the granted world and joins the block alltoall receive-only.
    Returns ``(new_comm, resume_step, nbytes_received)``.
    """
    cond = lineage['cond']
    deadline = _time.monotonic() + float(timeout)
    with cond:
        while True:
            grant = lineage['grant']
            if grant is not None and int(orig) in grant['joiners']:
                break
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise RemoteRankError(
                    "original rank %d waited %.0fs for a grow grant "
                    "that never came" % (orig, timeout))
            cond.wait(remaining)
    new_world = grant['world']
    new_rank = new_world.orig_of.index(int(orig))
    base = SimComm(new_world, new_rank)
    _rebuild_decomposition(op, base, topology=grant['topology'],
                           weights=grant['weights'])
    nbytes = _move_blocks(op, None, None,
                          sparse_sender=grant['sparse_sender'])
    _finish_repartition(op, nbytes, grown=len(grant['joiners']))
    return op.grid.distributor.comm, int(grant['step']), nbytes


# -- rebalance ----------------------------------------------------------------

def perform_rebalance(op, comm, weights=None):
    """Re-split the same world proportionally to ``weights`` (one
    non-negative float per rank; ``None`` measures capacities from the
    profiler).  Collective.  Returns ``(comm, nbytes_received)``.
    """
    if weights is None:
        weights = measured_rank_weights(op, comm)
    weights = tuple(float(w) for w in weights)
    if len(weights) != comm.size:
        raise ValueError("need one weight per rank (%d), got %d"
                         % (comm.size, len(weights)))
    dist = op.grid.distributor
    dim_weights = rank_weights_to_dim_weights(weights, dist.topology)
    old_ranges, old_blocks = _capture_blocks(op)
    # the existing Cartesian comm is reused (Distributor passthrough):
    # same world, same neighbors, new split boundaries
    _rebuild_decomposition(op, dist.comm, weights=dim_weights)
    nbytes = _move_blocks(op, old_ranges, old_blocks)
    _finish_repartition(op, nbytes)
    return op.grid.distributor.comm, nbytes


# -- the public Operator entry point ------------------------------------------

def repartition_operator(op, new_ranks=None, weights=None, timeout=120.0):
    """Backend of ``Operator.repartition`` — SPMD, between applies.

    ``new_ranks == comm.size`` (or ``None``) rebalances in place;
    ``new_ranks > comm.size`` grows onto reserve ranks that announced
    themselves on the world's lineage (:func:`announce_rejoin` +
    :func:`rejoin`).  Shrinking a healthy world is refused — losing
    ranks is the *recovery* path, not an adaptation policy.
    """
    comm = op.grid.distributor.comm
    size = comm.size
    new_ranks = size if new_ranks is None else int(new_ranks)
    if new_ranks < size:
        raise ValueError(
            "repartition cannot shrink a healthy world (%d -> %d "
            "ranks); rank loss is handled by the recovery policies"
            % (size, new_ranks))
    if new_ranks == size:
        new_comm, _ = perform_rebalance(op, comm, weights=weights)
        return new_comm
    world = comm.world
    lineage = world.lineage
    need = new_ranks - size
    deadline = _time.monotonic() + float(timeout)
    with lineage['cond']:
        while len(lineage['awaiting']) < need:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise RemoteRankError(
                    "repartition to %d ranks: only %d of %d reserve "
                    "ranks announced within %.0fs"
                    % (new_ranks, len(lineage['awaiting']), need,
                       timeout))
            lineage['cond'].wait(remaining)
    new_comm, _ = perform_grow(op, comm, 0, weights=weights)
    return new_comm


# -- test/service harness -----------------------------------------------------

def run_elastic(active_fn, nactive, reserve_fn=None, nreserve=0,
                faults=None, disarmed=(), timeout=600.0):
    """SPMD launcher with parked reserve ranks sharing one lineage.

    ``active_fn(comm)`` runs on ranks ``0..nactive-1`` of a fresh
    world; ``reserve_fn(lineage, orig)`` runs on parked original ranks
    ``nactive..nactive+nreserve-1``.  Reserve origs are announced on
    the lineage *before* any active starts, so a reserve-grow policy's
    prepare-time snapshot sees them deterministically.  ``faults`` and
    ``disarmed`` mirror :class:`SimWorld` (``None`` reads the global
    configuration; pass a plan for a private one, plus the already
    fired kills to skip on a retry).  Returns ``(active_results,
    reserve_results)``; the first exception raised by any thread is
    re-raised here.
    """
    lineage = new_lineage()
    world = SimWorld(nactive, faults=faults, lineage=lineage)
    world.disarmed_kills = set(disarmed)
    for i in range(nreserve):
        announce_rejoin(lineage, nactive + i)
    results = [None] * (nactive + nreserve)
    errors = []
    lock = threading.Lock()

    def active(rank):
        comm = SimComm(world, rank)
        try:
            results[rank] = active_fn(comm)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with lock:
                errors.append((rank, exc))
            world.fail()

    def reserve(orig):
        try:
            results[orig] = reserve_fn(lineage, orig)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with lock:
                errors.append((orig, exc))
            world.fail()

    threads = [threading.Thread(target=active, args=(r,), daemon=True,
                                name='elastic-rank-%d' % r)
               for r in range(nactive)]
    threads += [threading.Thread(target=reserve, args=(nactive + i,),
                                 daemon=True,
                                 name='elastic-reserve-%d' % i)
                for i in range(nreserve)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.fail()
            raise RemoteRankError("elastic thread did not terminate "
                                  "(deadlock?)")
    if errors:
        errors.sort(key=lambda e: e[0])
        primary = [e for e in errors
                   if not isinstance(e[1], RemoteRankError)] or errors
        raise primary[0][1]
    return results[:nactive], results[nactive:]
