"""The ResilienceController: one object supervising one ``apply``.

It owns the :class:`~repro.resilience.checkpoint.Checkpointer` and the
:class:`~repro.resilience.health.HealthGuard`, decides *when* inside the
timestep loop to snapshot or scan (the generated kernel calls
:meth:`tick` once per step, before the fault hook — so a checkpoint due
at the kill step completes before the kill fires), and implements the
recovery policy consulted by the supervised ``Operator.apply`` loop:

``abort``
    never recover (today's behaviour — the exception propagates);
``restart``
    same-world restore from the newest valid checkpoint;
``shrink``
    drop the dead rank, rebuild the world on the survivors and
    repartition the checkpoint onto the new decomposition.

When profiling is on, checkpoint/restore/healthcheck appear as named
sections of kind ``resilience`` in the :class:`PerformanceSummary`, with
both time and payload bytes.
"""

from __future__ import annotations

import time as _time

from ..mpi.faults import RankKilledError
from ..mpi.sim import RemoteRankError
from ..profiling import SectionMeta
from .checkpoint import Checkpointer
from .health import HealthGuard

__all__ = ['RECOVERY_POLICIES', 'ResilienceController']

RECOVERY_POLICIES = ('abort', 'restart', 'shrink')


class ResilienceController:
    """Checkpoint cadence + health scans + the recovery policy.

    One instance per rank per ``apply`` (like the kernel invocation it
    supervises).  All parameters must agree across ranks — saves,
    restores and health verdicts are collectives.

    Parameters
    ----------
    op : Operator
        The operator being supervised (gives access to the schedule,
        grid, profiler and kernel for rebuilds).
    policy : str
        'abort' | 'restart' | 'shrink'.
    checkpoint_every : int
        Snapshot cadence in timesteps (0: only the initial baseline
        checkpoint is taken, and only if a recovery policy or ``resume``
        needs one).
    checkpoint_dir : str
        Snapshot directory shared by all ranks.
    checkpoint_keep : int
        Retained checkpoint versions.
    max_recoveries : int
        Upper bound on recovery attempts per ``apply``.
    health_check_every : int
        NaN/Inf/blowup scan cadence (0 disables).
    health_max : float
        Amplitude bound for the blowup check.
    resume : bool
        Start from the newest valid checkpoint in ``checkpoint_dir``
        instead of the caller's ``time_m``.
    """

    def __init__(self, op, policy='abort', checkpoint_every=0,
                 checkpoint_dir='.repro_checkpoints', checkpoint_keep=2,
                 max_recoveries=2, health_check_every=0, health_max=1e12,
                 resume=False):
        if policy not in RECOVERY_POLICIES:
            raise ValueError("unknown recovery policy %r (accepted: %s)"
                             % (policy, ', '.join(RECOVERY_POLICIES)))
        self.op = op
        self.policy = policy
        self.every = int(checkpoint_every)
        self.max_recoveries = int(max_recoveries)
        self.resume = bool(resume)
        self.nrecoveries = 0
        self.checkpointing = (self.every > 0
                              or policy in ('restart', 'shrink')
                              or self.resume)
        self.checkpointer = Checkpointer(checkpoint_dir,
                                         keep=checkpoint_keep) \
            if self.checkpointing else None
        self.health = HealthGuard(health_check_every, health_max) \
            if int(health_check_every) > 0 else None

        prof = op.profiler
        if prof.enabled:
            # every rank registers the same section set (summarize is a
            # collective over a shared section list)
            if self.checkpointing:
                prof.register(SectionMeta('checkpoint', 'resilience'))
            if self.policy in ('restart', 'shrink') or self.resume:
                prof.register(SectionMeta('restore', 'resilience'))
            if self.health is not None:
                prof.register(SectionMeta('healthcheck', 'resilience'))

        # bound by bind()
        self.comm = None
        self.t0 = 0
        self.time_M = 0

    # -- run wiring -------------------------------------------------------

    @property
    def world(self):
        return getattr(self.comm, 'world', None)

    def bind(self, comm, t0, time_M):
        """Attach the communicator and time bounds of this attempt."""
        self.comm = comm
        self.t0 = int(t0)
        self.time_M = int(time_M)

    def prepare(self):
        """Pre-loop work: resume from disk, or write the baseline
        checkpoint every recovery policy needs.  Returns the first
        timestep to execute (collective)."""
        if self.resume:
            step, manifest = self.checkpointer.latest_valid()
            tic = _time.perf_counter()
            nbytes = self.checkpointer.restore(
                step, manifest, self.comm, self.world,
                self.op.functions,
                self.op.sparse_functions)
            self._charge('restore', tic, nbytes, step)
            self.t0 = step
            return step
        if self.checkpointing:
            self._save(self.t0)
        return self.t0

    # -- in-loop hook (called by the generated kernel) --------------------

    def tick(self, time):
        """Per-timestep duties: health scan first (catch corruption
        before snapshotting it), then the periodic checkpoint."""
        if self.health is not None and self.health.due(time, self.t0):
            tic = _time.perf_counter()
            self.health.check(self.comm, self.world, self._health_fields(),
                              time)
            self._charge('healthcheck', tic, 0, time)
        if self.every > 0 and time > self.t0 \
                and (time - self.t0) % self.every == 0:
            self._save(time)

    def _health_fields(self):
        fields = [f for f in self.op.functions
                  if getattr(f, 'is_TimeFunction', False)]
        return fields or list(self.op.functions)

    def _save(self, step):
        tic = _time.perf_counter()
        nbytes = self.checkpointer.save(
            step, self.comm, self.world, self.op.functions,
            self.op.sparse_functions, self.op.grid.distributor)
        self._charge('checkpoint', tic, nbytes, step)

    def _charge(self, section, tic, nbytes, step):
        prof = self.op.profiler
        if prof.enabled:
            prof.timer.add(section, tic, step)
            if nbytes:
                prof.record_bytes(section, nbytes)

    # -- recovery ---------------------------------------------------------

    def should_recover(self, exc):
        """Policy decision for an exception that escaped the kernel.

        Called on *every* rank.  Under ``shrink`` the killed rank itself
        returns False after marking itself dead — it leaves the job and
        re-raises while the survivors recover without it.
        """
        if self.policy not in ('restart', 'shrink'):
            return False
        if not isinstance(exc, RemoteRankError):
            return False  # e.g. NumericalHealthError: never auto-replayed
        if self.policy == 'shrink' and isinstance(exc, RankKilledError):
            world = self.world
            if world is not None and \
                    exc.rank == world.orig_of[self.comm.rank]:
                world.mark_dead(self.comm.rank)
                return False
        return self.nrecoveries < self.max_recoveries

    def recover(self, exc):
        """Rebuild state from the newest valid checkpoint (collective
        over the surviving ranks).  Returns ``(resume_step, arrays,
        comm)`` for the next kernel attempt."""
        from .recovery import perform_restart, perform_shrink

        self.nrecoveries += 1
        _time.sleep(min(0.05 * self.nrecoveries, 0.5))  # backoff
        tic = _time.perf_counter()
        if self.policy == 'restart':
            step, nbytes = perform_restart(self.op, self.comm,
                                           self.checkpointer)
        else:
            new_comm, step, nbytes = perform_shrink(self.op, self.comm,
                                                    self.checkpointer)
            self.comm = new_comm
        elapsed = _time.perf_counter() - tic
        self._charge('restore', tic, nbytes, step)
        world = self.world
        if world is not None and self.comm.rank == 0:
            world.recovery_stats['recovery_time'] += elapsed
        self.t0 = step
        arrays = {f.name: f.data.with_halo
                  for f in self.op.functions}
        return step, arrays, self.comm
