"""The ResilienceController: one object supervising one ``apply``.

It owns the :class:`~repro.resilience.checkpoint.Checkpointer` and the
:class:`~repro.resilience.health.HealthGuard`, decides *when* inside the
timestep loop to snapshot or scan (the generated kernel calls
:meth:`tick` once per step, before the fault hook — so a checkpoint due
at the kill step completes before the kill fires), and implements the
recovery policy consulted by the supervised ``Operator.apply`` loop:

``abort``
    never recover (today's behaviour — the exception propagates);
``restart``
    same-world restore from the newest valid checkpoint;
``shrink``
    drop the dead rank, rebuild the world on the survivors and
    repartition the checkpoint onto the new decomposition;
``grow``
    shrink first, then — once the healed rank announces itself on the
    world's lineage — repartition the live run back onto the full rank
    set (:mod:`repro.resilience.elastic`).  The victim stays inside its
    ``apply`` and rejoins instead of leaving.

Orthogonally to recovery, the controller drives the *adaptation* policy
(``repartition='grow'|'balance'``): the per-step tick raises a
collective :class:`~repro.resilience.elastic.RepartitionRequest` at a
quiescent top-of-step boundary — to grow onto announced reserve ranks,
or to rebalance the split with per-rank weights.  Oscillation is
bounded by ``min_steps_between_repartitions`` (hysteresis) and
``max_repartitions``.

When profiling is on, checkpoint/restore/healthcheck/repartition appear
as named sections of kind ``resilience`` in the
:class:`PerformanceSummary`, with both time and payload bytes.
"""

from __future__ import annotations

import time as _time

from ..mpi.faults import RankKilledError
from ..mpi.sim import RemoteRankError
from ..profiling import SectionMeta
from .checkpoint import Checkpointer
from .health import HealthGuard

__all__ = ['RECOVERY_POLICIES', 'REPARTITION_POLICIES',
           'ResilienceController']

RECOVERY_POLICIES = ('abort', 'restart', 'shrink', 'grow')
REPARTITION_POLICIES = ('off', 'grow', 'balance')


class ResilienceController:
    """Checkpoint cadence + health scans + the recovery policy.

    One instance per rank per ``apply`` (like the kernel invocation it
    supervises).  All parameters must agree across ranks — saves,
    restores and health verdicts are collectives.

    Parameters
    ----------
    op : Operator
        The operator being supervised (gives access to the schedule,
        grid, profiler and kernel for rebuilds).
    policy : str
        'abort' | 'restart' | 'shrink'.
    checkpoint_every : int
        Snapshot cadence in timesteps (0: only the initial baseline
        checkpoint is taken, and only if a recovery policy or ``resume``
        needs one).
    checkpoint_dir : str
        Snapshot directory shared by all ranks.
    checkpoint_keep : int
        Retained checkpoint versions.
    max_recoveries : int
        Upper bound on recovery attempts per ``apply``.
    health_check_every : int
        NaN/Inf/blowup scan cadence (0 disables).
    health_max : float
        Amplitude bound for the blowup check.
    resume : bool
        Start from the newest valid checkpoint in ``checkpoint_dir``
        instead of the caller's ``time_m``.
    repartition : str
        Adaptation policy: 'off' (default) | 'grow' (extend onto
        announced reserve ranks) | 'balance' (weighted re-split of the
        same world).
    repartition_every : int
        Cadence of the adaptation check in timesteps; 0 means
        "repartition once, at the earliest legal step".
    min_steps_between_repartitions : int
        Hysteresis: minimum timesteps between consecutive
        repartitions (also the delay of the grow-back after a shrink
        under ``policy='grow'``).
    max_repartitions : int
        Upper bound on cadence-driven repartitions per ``apply``.
    repartition_weights : tuple of float, optional
        Per-rank split weights for 'balance' (and for the new world of
        a grow); ``None`` measures per-rank capacity from the
        profiler's compute time.
    elastic_join : dict, optional
        Joiner mode (internal; set via ``apply(_elastic_join=...)``):
        ``{'lineage': ..., 'orig': ...}`` parks this rank on the
        lineage until a grow grants it in, instead of running from
        ``time_m``.
    rejoin_timeout : float
        Seconds a parked joiner (or a healed victim) waits for a grow
        grant before giving up with ``RemoteRankError``.
    """

    def __init__(self, op, policy='abort', checkpoint_every=0,
                 checkpoint_dir='.repro_checkpoints', checkpoint_keep=2,
                 max_recoveries=2, health_check_every=0, health_max=1e12,
                 resume=False, repartition='off', repartition_every=0,
                 min_steps_between_repartitions=4, max_repartitions=4,
                 repartition_weights=None, elastic_join=None,
                 rejoin_timeout=120.0):
        if policy not in RECOVERY_POLICIES:
            raise ValueError("unknown recovery policy %r (accepted: %s)"
                             % (policy, ', '.join(RECOVERY_POLICIES)))
        if repartition not in REPARTITION_POLICIES:
            raise ValueError("unknown repartition policy %r (accepted: "
                             "%s)" % (repartition,
                                      ', '.join(REPARTITION_POLICIES)))
        self.op = op
        self.policy = policy
        self.every = int(checkpoint_every)
        self.max_recoveries = int(max_recoveries)
        self.resume = bool(resume)
        self.nrecoveries = 0
        self.repartition = repartition
        self.repartition_every = int(repartition_every)
        self.min_steps = int(min_steps_between_repartitions)
        self.max_repartitions = int(max_repartitions)
        self.repartition_weights = None if repartition_weights is None \
            else tuple(float(w) for w in repartition_weights)
        self.elastic_join = elastic_join
        self.rejoin_timeout = float(rejoin_timeout)
        self.nrepartitions = 0
        self._last_repartition = None   # step of the latest repartition
        self._grow_due = None           # step of the pending grow-back
        self._reserves_waiting = False  # prepare()-time lineage snapshot
        self._rejoining = False         # this rank is a healed victim
        self._rejoin_orig = None
        self.checkpointing = (self.every > 0
                              or policy in ('restart', 'shrink', 'grow')
                              or self.resume)
        self.checkpointer = Checkpointer(checkpoint_dir,
                                         keep=checkpoint_keep) \
            if self.checkpointing else None
        self.health = HealthGuard(health_check_every, health_max) \
            if int(health_check_every) > 0 else None

        prof = op.profiler
        if prof.enabled:
            # every rank registers the same section set (summarize is a
            # collective over a shared section list)
            if self.checkpointing:
                prof.register(SectionMeta('checkpoint', 'resilience'))
            if self.policy in ('restart', 'shrink', 'grow') or self.resume:
                prof.register(SectionMeta('restore', 'resilience'))
            if self.health is not None:
                prof.register(SectionMeta('healthcheck', 'resilience'))
            if self.policy == 'grow' or self.repartition != 'off' \
                    or self.elastic_join is not None:
                prof.register(SectionMeta('repartition', 'resilience'))

        # bound by bind()
        self.comm = None
        self.t0 = 0
        self.time_M = 0

    # -- run wiring -------------------------------------------------------

    @property
    def world(self):
        return getattr(self.comm, 'world', None)

    def bind(self, comm, t0, time_M):
        """Attach the communicator and time bounds of this attempt."""
        self.comm = comm
        self.t0 = int(t0)
        self.time_M = int(time_M)

    def prepare(self):
        """Pre-loop work: resume from disk, or write the baseline
        checkpoint every recovery policy needs.  A joiner
        (``elastic_join``) instead parks on the lineage until a grow
        grants it in.  Returns the first timestep to execute
        (collective)."""
        if self.elastic_join is not None:
            return self._join()
        if self.resume:
            step, manifest = self.checkpointer.latest_valid()
            tic = _time.perf_counter()
            nbytes = self.checkpointer.restore(
                step, manifest, self.comm, self.world,
                self.op.functions,
                self.op.sparse_functions)
            self._charge('restore', tic, nbytes, step)
            self.t0 = step
            return step
        if self.checkpointing:
            self._save(self.t0)
        if self.repartition == 'grow' and self.world is not None:
            # one coordinated snapshot of the announced reserves: the
            # per-step due-check must be pure arithmetic on state every
            # rank agrees on, or ranks would diverge on when to leave
            from .elastic import awaiting_origs
            self._reserves_waiting = bool(awaiting_origs(self.comm))
        return self.t0

    def _join(self):
        """Joiner mode: park on the lineage, enter through the grant."""
        from .elastic import rejoin

        tic = _time.perf_counter()
        new_comm, step, nbytes = rejoin(self.op,
                                        self.elastic_join['lineage'],
                                        self.elastic_join['orig'],
                                        timeout=self.rejoin_timeout)
        self.comm = new_comm
        self._charge('repartition', tic, nbytes, step)
        self._last_repartition = step
        self.t0 = step
        return step

    # -- in-loop hook (called by the generated kernel) --------------------

    def tick(self, time):
        """Per-timestep duties: the elastic due-check first (it leaves
        the kernel at this quiescent boundary), then the health scan
        (catch corruption before snapshotting it), then the periodic
        checkpoint."""
        kind = self._repartition_due(time)
        if kind is not None:
            from .elastic import RepartitionRequest
            raise RepartitionRequest(kind, time)
        if self.health is not None and self.health.due(time, self.t0):
            tic = _time.perf_counter()
            self.health.check(self.comm, self.world, self._health_fields(),
                              time)
            self._charge('healthcheck', tic, 0, time)
        if self.every > 0 and time > self.t0 \
                and (time - self.t0) % self.every == 0:
            self._save(time)

    def _repartition_due(self, time):
        """Kind of repartition due at ``time``, or None.

        Pure arithmetic on SPMD-uniform state (``t0``, counters, the
        prepare-time reserve snapshot), so every rank reaches the same
        verdict and the raised request is collective by construction.
        """
        if self._grow_due is not None and time == self._grow_due:
            return 'grow'   # the post-shrink grow-back, always honored
        if self.repartition == 'off':
            return None
        if self.nrepartitions >= self.max_repartitions:
            return None
        if self.repartition == 'grow' and not self._reserves_waiting:
            return None
        if self.repartition_every > 0:
            if not (time > self.t0
                    and (time - self.t0) % self.repartition_every == 0):
                return None
        elif self.nrepartitions > 0 or time <= self.t0:
            return None     # cadence 0: once, at the earliest legal step
        if self._last_repartition is not None \
                and time - self._last_repartition < self.min_steps:
            return None     # hysteresis
        return self.repartition

    def _health_fields(self):
        fields = [f for f in self.op.functions
                  if getattr(f, 'is_TimeFunction', False)]
        return fields or list(self.op.functions)

    def _save(self, step):
        tic = _time.perf_counter()
        nbytes = self.checkpointer.save(
            step, self.comm, self.world, self.op.functions,
            self.op.sparse_functions, self.op.grid.distributor)
        self._charge('checkpoint', tic, nbytes, step)

    def _charge(self, section, tic, nbytes, step):
        prof = self.op.profiler
        if prof.enabled:
            prof.timer.add(section, tic, step)
            if nbytes:
                prof.record_bytes(section, nbytes)

    # -- recovery ---------------------------------------------------------

    def should_recover(self, exc):
        """Policy decision for an exception that escaped the kernel.

        Called on *every* rank.  Under ``shrink`` the killed rank itself
        returns False after marking itself dead — it leaves the job and
        re-raises while the survivors recover without it.  Under
        ``grow`` the victim instead announces itself on the lineage and
        *stays*: its ``recover`` parks until the survivors grow back.
        A :class:`RepartitionRequest` is always recovered — it is not a
        failure, and it does not count against ``max_recoveries``.
        """
        from .elastic import RepartitionRequest

        if isinstance(exc, RepartitionRequest):
            return True
        if self.policy not in ('restart', 'shrink', 'grow'):
            return False
        if not isinstance(exc, RemoteRankError):
            return False  # e.g. NumericalHealthError: never auto-replayed
        if self.policy in ('shrink', 'grow') \
                and isinstance(exc, RankKilledError):
            world = self.world
            if world is not None and \
                    exc.rank == world.orig_of[self.comm.rank]:
                if self.policy == 'shrink':
                    world.mark_dead(self.comm.rank)
                    return False
                # grow: leave the shrinking world but stay in apply —
                # announce *before* mark_dead so the survivors' shrink
                # rendezvous (unblocked by the death) already sees us
                from .elastic import announce_rejoin
                announce_rejoin(world.lineage, exc.rank)
                world.mark_dead(self.comm.rank)
                self._rejoining = True
                self._rejoin_orig = int(exc.rank)
                return True
        return self.nrecoveries < self.max_recoveries

    def recover(self, exc):
        """Rebuild state for the next kernel attempt (collective over
        the participating ranks).  Returns ``(resume_step, arrays,
        comm)``.

        Three shapes: checkpoint recovery (restart / shrink — and the
        shrink half of ``grow``), a live repartition
        (:class:`RepartitionRequest`: rebalance, or grow onto announced
        ranks), and the healed victim's rejoin (parks on the lineage
        until granted back in).
        """
        from .elastic import RepartitionRequest

        if self._rejoining:
            return self._recover_rejoin()
        if isinstance(exc, RepartitionRequest):
            return self._recover_repartition(exc)

        from .recovery import perform_restart, perform_shrink

        self.nrecoveries += 1
        _time.sleep(min(0.05 * self.nrecoveries, 0.5))  # backoff
        tic = _time.perf_counter()
        if self.policy == 'restart':
            step, nbytes = perform_restart(self.op, self.comm,
                                           self.checkpointer)
        else:
            new_comm, step, nbytes = perform_shrink(self.op, self.comm,
                                                    self.checkpointer)
            self.comm = new_comm
            if self.policy == 'grow':
                # schedule the grow-back: one hysteresis window after
                # the restored step, clamped so it still fires when the
                # run is nearly over (the victim is parked waiting)
                self._grow_due = min(step + max(self.min_steps, 1),
                                     self.time_M)
        elapsed = _time.perf_counter() - tic
        self._charge('restore', tic, nbytes, step)
        world = self.world
        if world is not None and self.comm.rank == 0:
            world.recovery_stats['recovery_time'] += elapsed
        self.t0 = step
        arrays = {f.name: f.data.with_halo
                  for f in self.op.functions}
        return step, arrays, self.comm

    def _recover_repartition(self, exc):
        """A due repartition: rebalance in place or grow onto the
        announced ranks, resuming at the very step that raised."""
        from .elastic import perform_grow, perform_rebalance

        tic = _time.perf_counter()
        step = exc.step
        if exc.kind == 'balance':
            self.nrepartitions += 1
            new_comm, nbytes = perform_rebalance(
                self.op, self.comm, weights=self.repartition_weights)
        else:
            if self._grow_due is None:
                self.nrepartitions += 1   # cadence-driven, bounded
            new_comm, nbytes = perform_grow(
                self.op, self.comm, step,
                weights=self.repartition_weights)
            self._grow_due = None
            self._reserves_waiting = False
        self.comm = new_comm
        self._charge('repartition', tic, nbytes, step)
        self._last_repartition = step
        self.t0 = step
        arrays = {f.name: f.data.with_halo
                  for f in self.op.functions}
        return step, arrays, self.comm

    def _recover_rejoin(self):
        """The healed victim's side: park on the lineage until the
        survivors grow back, then resume as a rank of the new world."""
        from .elastic import rejoin

        self._rejoining = False
        tic = _time.perf_counter()
        new_comm, step, nbytes = rejoin(self.op, self.world.lineage,
                                        self._rejoin_orig,
                                        timeout=self.rejoin_timeout)
        self.comm = new_comm
        self._charge('repartition', tic, nbytes, step)
        self._last_repartition = step
        self.t0 = step
        arrays = {f.name: f.data.with_halo
                  for f in self.op.functions}
        return step, arrays, self.comm
