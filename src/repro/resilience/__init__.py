"""Fault tolerance for the generated solvers.

Three cooperating pieces, wired into ``Operator.apply``:

* :mod:`.checkpoint` — distributed, versioned, CRC-checked snapshots
  (one npz per rank, manifest written last as the completion marker);
* :mod:`.recovery` — the ``restart`` (same-world) and ``shrink``
  (ULFM-style drop-the-dead-rank) recovery drivers;
* :mod:`.health` — periodic NaN/Inf/amplitude scans raising a
  diagnosable :class:`NumericalHealthError`;
* :mod:`.controller` — the per-apply supervisor tying them together.
"""

from .checkpoint import Checkpointer, CheckpointError
from .controller import RECOVERY_POLICIES, ResilienceController
from .health import HealthGuard, NumericalHealthError
from .recovery import perform_restart, perform_shrink, repartition_restore

__all__ = [
    'Checkpointer', 'CheckpointError', 'RECOVERY_POLICIES',
    'ResilienceController', 'HealthGuard', 'NumericalHealthError',
    'perform_restart', 'perform_shrink', 'repartition_restore',
]
