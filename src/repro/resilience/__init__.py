"""Fault tolerance and elasticity for the generated solvers.

Cooperating pieces, wired into ``Operator.apply``:

* :mod:`.checkpoint` — distributed, versioned, CRC-checked snapshots
  (one npz per rank, manifest written last as the completion marker);
* :mod:`.recovery` — the ``restart`` (same-world) and ``shrink``
  (ULFM-style drop-the-dead-rank) recovery drivers;
* :mod:`.elastic` — live repartitioning: ``grow`` onto announced
  ranks, weighted ``rebalance`` of the current world, and the
  rejoin protocol that lets healed victims and pooled reserves enter
  a running job;
* :mod:`.health` — periodic NaN/Inf/amplitude scans raising a
  diagnosable :class:`NumericalHealthError`;
* :mod:`.controller` — the per-apply supervisor tying them together.
"""

from .checkpoint import Checkpointer, CheckpointError
from .controller import (RECOVERY_POLICIES, REPARTITION_POLICIES,
                         ResilienceController)
from .elastic import (RepartitionRequest, announce_rejoin, awaiting_origs,
                      measured_rank_weights, new_lineage, perform_grow,
                      perform_rebalance, rank_weights_to_dim_weights,
                      rejoin, repartition_operator, run_elastic)
from .health import HealthGuard, NumericalHealthError
from .recovery import perform_restart, perform_shrink, repartition_restore

__all__ = [
    'Checkpointer', 'CheckpointError', 'RECOVERY_POLICIES',
    'REPARTITION_POLICIES', 'ResilienceController', 'HealthGuard',
    'NumericalHealthError', 'RepartitionRequest', 'announce_rejoin',
    'awaiting_origs', 'measured_rank_weights', 'new_lineage',
    'perform_grow', 'perform_rebalance', 'perform_restart',
    'perform_shrink', 'rank_weights_to_dim_weights', 'rejoin',
    'repartition_operator', 'repartition_restore', 'run_elastic',
]
