"""Anisotropic acoustic (TTI) wave propagator (paper Section IV-B2).

The pseudo-acoustic tilted-transversely-isotropic system (Zhang/Duveneck
style): two coupled scalar fields ``p`` and ``q`` propagated with a
*rotated* anisotropic Laplacian whose axes follow spatially varying tilt
(theta) and azimuth (phi) angles.  The rotation is expressed through
nested first derivatives with trigonometric coefficient fields, yielding
the paper's Figure 6b stencil: memory reads spanning three 2-D planes and
by far the highest operational intensity of the four kernels (12 fields).
"""

from __future__ import annotations

import numpy as np

from ...dsl import Eq, Operator, TimeFunction, solve
from ...symbolics import Derivative, cos, sin, sqrt
from .geometry import Receiver, RickerSource, TimeAxis

__all__ = ['TTIWaveSolver', 'tti_setup', 'rotated_second_derivative']


def rotated_second_derivative(field, angles, fd_order):
    """``Gzz(f) = D_z~(D_z~(f))``: second derivative along the rotated
    symmetry axis.

    ``angles`` is (theta,) in 2D or (theta, phi) in 3D (Functions).  The
    directional derivative is

    * 2D:  ``D = sin(theta) d/dx + cos(theta) d/dz``
    * 3D:  ``D = sin(theta)cos(phi) d/dx + sin(theta)sin(phi) d/dy
      + cos(theta) d/dz``

    matching the paper's Appendix Equation (2) (up to the axis naming).
    """
    grid = field.grid
    dims = grid.dimensions

    def directional(expr):
        if grid.dim == 2:
            theta, = angles
            return (sin(theta) * Derivative(expr, (dims[0], 1),
                                            fd_order=fd_order)
                    + cos(theta) * Derivative(expr, (dims[1], 1),
                                              fd_order=fd_order))
        theta, phi = angles
        return (sin(theta) * cos(phi) * Derivative(expr, (dims[0], 1),
                                                   fd_order=fd_order)
                + sin(theta) * sin(phi) * Derivative(expr, (dims[1], 1),
                                                     fd_order=fd_order)
                + cos(theta) * Derivative(expr, (dims[2], 1),
                                          fd_order=fd_order))

    return directional(directional(field))


class TTIWaveSolver:
    """Forward modeling for the pseudo-acoustic TTI system.

    * ``m p.dt2 + damp p.dt = (1+2*eps) H_perp(p) + sqrt(1+2*dlt) Gzz(q)``
    * ``m q.dt2 + damp q.dt = sqrt(1+2*dlt) H_perp(p) + Gzz(q)``

    with ``H_perp = laplace - Gzz`` the rotated horizontal operator.
    """

    def __init__(self, model, geometry_src=None, geometry_rec=None,
                 space_order=None, mpi=None, opt=True, cache=None):
        self.model = model
        self.space_order = space_order or model.space_order
        self.src = geometry_src
        self.rec = geometry_rec
        self.mpi = mpi
        self.opt = opt
        self.cache = cache
        self._op = None
        grid = model.grid
        self.p = TimeFunction(name='p', grid=grid,
                              space_order=self.space_order, time_order=2)
        self.q = TimeFunction(name='q', grid=grid,
                              space_order=self.space_order, time_order=2)

    def _equations(self):
        model = self.model
        grid = model.grid
        p, q = self.p, self.q
        so = self.space_order
        m, damp = model.m, model.damp
        eps, dlt = model.epsilon, model.delta
        if grid.dim == 2:
            angles = (model.theta,)
        else:
            angles = (model.theta, model.phi)

        gzz_p = rotated_second_derivative(p, angles, so)
        gzz_q = rotated_second_derivative(q, angles, so)
        hperp_p = p.laplace - gzz_p

        pde_p = (m * p.dt2 + damp * p.dt
                 - (1 + 2 * eps) * hperp_p - sqrt(1 + 2 * dlt) * gzz_q)
        pde_q = (m * q.dt2 + damp * q.dt
                 - sqrt(1 + 2 * dlt) * hperp_p - gzz_q)
        return [Eq(p.forward, solve(pde_p, p.forward)),
                Eq(q.forward, solve(pde_q, q.forward))]

    @property
    def op(self):
        if self._op is None:
            exprs = list(self._equations())
            dt = self.model.grid.time_dim.spacing
            m = self.model.m
            if self.src is not None:
                exprs.append(self.src.inject(field=self.p.forward,
                                             expr=self.src * dt ** 2 / m))
                exprs.append(self.src.inject(field=self.q.forward,
                                             expr=self.src * dt ** 2 / m))
            if self.rec is not None:
                exprs.append(self.rec.interpolate(expr=self.p + self.q))
            self._op = Operator(exprs, name='ForwardTTI', mpi=self.mpi,
                                opt=self.opt, cache=self.cache)
        return self._op

    def forward(self, time_M=None, dt=None, **apply_kwargs):
        dt = dt if dt is not None else self.model.critical_dt
        kwargs = dict(apply_kwargs)
        kwargs['dt'] = dt
        if time_M is not None:
            kwargs['time_M'] = time_M
        summary = self.op.apply(**kwargs)
        rec_data = self.rec.data if self.rec is not None else None
        return rec_data, self.p, self.q, summary


def tti_setup(shape=(50, 50), spacing=(10., 10.), nbl=10, tn=250.0,
              space_order=4, vp=1.5, epsilon=0.15, delta=0.1,
              theta=np.pi / 12, phi=np.pi / 10, f0=0.02, comm=None,
              topology=None, weights=None, mpi=None, nrec=None, opt=True,
              cache=None):
    """Build a ready-to-run TTI solver with constant Thomsen parameters."""
    from .model import SeismicModel

    ndim = len(shape)
    kwargs = dict(epsilon=epsilon, delta=delta, theta=theta)
    if ndim == 3:
        kwargs['phi'] = phi
    model = SeismicModel(shape=shape, spacing=spacing, vp=vp, nbl=nbl,
                         space_order=space_order, comm=comm,
                         topology=topology, weights=weights, **kwargs)
    # anisotropy speeds up the fastest phase: shrink dt accordingly
    dt = model.critical_dt / np.sqrt(1.0 + 2.0 * np.max(
        np.atleast_1d(epsilon)))
    time_range = TimeAxis(start=0.0, stop=tn, step=dt)

    domain_size = np.array(model.domain_size)
    src_coords = np.empty((1, ndim))
    src_coords[0, :] = domain_size * 0.5
    src = RickerSource(name='src', grid=model.grid, f0=f0,
                       time_range=time_range, coordinates=src_coords)

    rec = None
    if nrec is None:
        nrec = shape[0]
    if nrec:
        rec_coords = np.empty((nrec, ndim))
        rec_coords[:, 0] = np.linspace(0.0, domain_size[0], nrec)
        for d in range(1, ndim - 1):
            rec_coords[:, d] = domain_size[d] * 0.5
        rec_coords[:, -1] = 2 * model.spacing[-1]
        rec = Receiver(name='rec', grid=model.grid, npoint=nrec,
                       nt=time_range.num, coordinates=rec_coords)

    solver = TTIWaveSolver(model, src, rec, space_order=space_order,
                           mpi=mpi, opt=opt, cache=cache)
    return solver, time_range
