"""The paper's four seismic wave propagators and acquisition machinery."""

from .model import SeismicModel, damping_profile
from .geometry import (GaborSource, Receiver, RickerSource, TimeAxis,
                       ricker_wavelet)
from .acoustic import AcousticWaveSolver, acoustic_setup
from .tti import TTIWaveSolver, tti_setup
from .elastic import ElasticWaveSolver, elastic_setup
from .viscoelastic import ViscoelasticWaveSolver, viscoelastic_setup

__all__ = ['SeismicModel', 'damping_profile', 'GaborSource', 'Receiver',
           'RickerSource', 'TimeAxis', 'ricker_wavelet',
           'AcousticWaveSolver', 'acoustic_setup', 'TTIWaveSolver',
           'tti_setup', 'ElasticWaveSolver', 'elastic_setup',
           'ViscoelasticWaveSolver', 'viscoelastic_setup']
