"""Isotropic acoustic wave propagator (paper Section IV-B1).

Second order in time, single scalar PDE with a Laplacian — the classic
memory-bound "star" stencil benchmark.  Working set: 5 fields
(3 time buffers of u + m + damp).
"""

from __future__ import annotations

import numpy as np

from ...dsl import Eq, Operator, TimeFunction, solve
from .geometry import Receiver, RickerSource, TimeAxis

__all__ = ['AcousticWaveSolver', 'acoustic_setup']


class AcousticWaveSolver:
    """Forward modeling for the isotropic acoustic wave equation.

    Implements the paper's Listing 9:
    ``eq = m * u.dt2 - u.laplace + damp * u.dt`` solved for ``u.forward``.
    """

    def __init__(self, model, geometry_src, geometry_rec=None,
                 space_order=None, mpi=None, opt=True, cache=None):
        self.model = model
        self.space_order = space_order or model.space_order
        self.src = geometry_src
        self.rec = geometry_rec
        self.mpi = mpi
        self.opt = opt
        self.cache = cache
        self._op = None
        self.u = TimeFunction(name='u', grid=model.grid,
                              space_order=self.space_order, time_order=2)

    def _equations(self):
        m, damp, u = self.model.m, self.model.damp, self.u
        pde = m * u.dt2 - u.laplace + damp * u.dt
        return [Eq(u.forward, solve(pde, u.forward))]

    @property
    def op(self):
        if self._op is None:
            u = self.u
            m = self.model.m
            dt = self.model.grid.time_dim.spacing
            exprs = list(self._equations())
            if self.src is not None:
                exprs.append(self.src.inject(field=u.forward,
                                             expr=self.src * dt ** 2 / m))
            if self.rec is not None:
                exprs.append(self.rec.interpolate(expr=u))
            self._op = Operator(exprs, name='ForwardAcoustic',
                                mpi=self.mpi, opt=self.opt,
                                cache=self.cache)
        return self._op

    def forward(self, time_M=None, dt=None, **apply_kwargs):
        """Run forward modeling; returns (receiver data, u, summary)."""
        dt = dt if dt is not None else self.model.critical_dt
        kwargs = dict(apply_kwargs)
        kwargs['dt'] = dt
        if time_M is not None:
            kwargs['time_M'] = time_M
        summary = self.op.apply(**kwargs)
        rec_data = self.rec.data if self.rec is not None else None
        return rec_data, self.u, summary


def acoustic_setup(shape=(50, 50), spacing=(10., 10.), nbl=10, tn=250.0,
                   space_order=4, vp=1.5, f0=0.025, comm=None,
                   topology=None, weights=None, mpi=None, nrec=None,
                   opt=True, cache=None):
    """Build a ready-to-run acoustic solver on a layered model.

    Mirrors ``examples/seismic/acoustic/acoustic_example.py`` of the
    paper's artifact: source at the top-center, a line of receivers near
    the surface, Ricker wavelet, CFL-stable dt.
    """
    from .model import SeismicModel

    ndim = len(shape)
    if np.isscalar(vp):
        # two-layer model: slower on top, faster at depth
        v = np.empty(shape, dtype=np.float32)
        v[...] = vp
        v[tuple([slice(None)] * (ndim - 1) + [slice(shape[-1] // 2, None)])] \
            = vp * 1.5
    else:
        v = vp
    model = SeismicModel(shape=shape, spacing=spacing, vp=v, nbl=nbl,
                         space_order=space_order, comm=comm,
                         topology=topology, weights=weights)
    dt = model.critical_dt
    time_range = TimeAxis(start=0.0, stop=tn, step=dt)

    domain_size = np.array(model.domain_size)
    src_coords = np.empty((1, ndim))
    src_coords[0, :] = domain_size * 0.5
    src_coords[0, -1] = model.spacing[-1]  # near-surface source
    src = RickerSource(name='src', grid=model.grid, f0=f0,
                       time_range=time_range, coordinates=src_coords)

    rec = None
    if nrec is None:
        nrec = shape[0]
    if nrec:
        rec_coords = np.empty((nrec, ndim))
        rec_coords[:, 0] = np.linspace(0.0, domain_size[0], nrec)
        for d in range(1, ndim - 1):
            rec_coords[:, d] = domain_size[d] * 0.5
        rec_coords[:, -1] = 2 * model.spacing[-1]
        rec = Receiver(name='rec', grid=model.grid, npoint=nrec,
                       nt=time_range.num, coordinates=rec_coords)

    solver = AcousticWaveSolver(model, src, rec, space_order=space_order,
                                mpi=mpi, opt=opt, cache=cache)
    return solver, time_range
