"""Viscoelastic wave propagator (paper Section IV-B4, Appendix Eq. 4).

Robertsson-Blanch-Symes viscoelastic modeling with a single standard
linear solid relaxation mechanism: particle velocities ``v``, stresses
``sig`` and memory variables ``r`` on a staggered grid.  15 stencil
updates per timestep in 3D (3 + 6 + 6), the largest memory footprint of
the four kernels (36 fields) and the highest communication cost.
"""

from __future__ import annotations

import numpy as np

from ...dsl import (Constant, Eq, Operator, TensorTimeFunction,
                    VectorTimeFunction, div)
from ...symbolics import Derivative
from .geometry import Receiver, RickerSource, TimeAxis

__all__ = ['ViscoelasticWaveSolver', 'viscoelastic_setup']


class ViscoelasticWaveSolver:
    """Forward modeling for the viscoelastic system (Appendix Eq. 4).

    With ``pi = rho vp^2``, ``mu = rho vs^2``, stress relaxation ``t_s``
    and strain relaxations ``t_ep`` (P) / ``t_es`` (S):

    * ``v'_i   = mask (v_i + s b dj sig_ij)``                       (4a)
    * ``sig'_ii = mask (sig_ii + s (pi t_ep/t_s div v'
      - 2 mu t_es/t_s (div v' - di v'_i) + r'_ii))``                (4b)
    * ``sig'_ij = mask (sig_ij + s (mu t_es/t_s (di v'_j + dj v'_i)
      + r'_ij))``                                                   (4c)
    * ``r'_ii  = r_ii - s/t_s (r_ii + (pi t_ep/t_s - 2 mu t_es/t_s)
      div v' + 2 mu t_es/t_s di v'_i - ...)``                       (4d)
    * ``r'_ij  = r_ij - s/t_s (r_ij + mu t_es/t_s
      (di v'_j + dj v'_i))``                                        (4e)
    """

    def __init__(self, model, geometry_src=None, geometry_rec=None,
                 space_order=None, f0=0.01, mpi=None, opt=True,
                 cache=None):
        self.model = model
        self.space_order = space_order or model.space_order
        self.src = geometry_src
        self.rec = geometry_rec
        self.f0 = f0
        self.mpi = mpi
        self.opt = opt
        self.cache = cache
        self._op = None
        grid = model.grid
        self.v = VectorTimeFunction(name='v', grid=grid,
                                    space_order=self.space_order,
                                    time_order=1)
        self.sig = TensorTimeFunction(name='sig', grid=grid,
                                      space_order=self.space_order,
                                      time_order=1)
        self.r = TensorTimeFunction(name='r', grid=grid,
                                    space_order=self.space_order,
                                    time_order=1)

    def _equations(self):
        model = self.model
        grid = model.grid
        dims = grid.dimensions
        so = self.space_order
        v, sig, r = self.v, self.sig, self.r
        b, pi, mu, mask = model.b, model.pi, model.mu, model.mask
        s = grid.time_dim.spacing
        t_s, t_ep, t_es = model.relaxation_times(self.f0)
        c_ts = Constant('t_s', t_s)
        c_ep = Constant('t_ep', t_ep)
        c_es = Constant('t_es', t_es)

        # (4a) velocity updates
        eq_v = Eq(v.forward, mask * (v + s * b * div(sig, fd_order=so)))

        vf = v.forward
        div_vf = div(vf, fd_order=so)
        p_mod = pi * c_ep / c_ts      # pi * t_ep / t_s
        s_mod = mu * c_es / c_ts      # mu * t_es / t_s

        eq_r, eq_sig = [], []
        for i in range(grid.dim):
            for j in range(i, grid.dim):
                if i == j:
                    dii = Derivative(vf[i], (dims[i], 1), fd_order=so)
                    # (4d) memory variable, diagonal
                    rhs_r = r[i, i] - s / c_ts * (
                        r[i, i] + (p_mod - 2 * s_mod) * div_vf
                        + 2 * s_mod * dii)
                    eq_r.append(Eq(r[i, i].forward, mask * rhs_r))
                    # (4b) normal stress
                    rhs_s = sig[i, i] + s * (
                        p_mod * div_vf
                        - 2 * s_mod * (div_vf - dii)
                        + r[i, i].forward)
                    eq_sig.append(Eq(sig[i, i].forward, mask * rhs_s))
                else:
                    dij = (Derivative(vf[i], (dims[j], 1), fd_order=so)
                           + Derivative(vf[j], (dims[i], 1), fd_order=so))
                    # (4e) memory variable, off-diagonal
                    rhs_r = r[i, j] - s / c_ts * (r[i, j] + s_mod * dij)
                    eq_r.append(Eq(r[i, j].forward, mask * rhs_r))
                    # (4c) shear stress
                    rhs_s = sig[i, j] + s * (s_mod * dij
                                             + r[i, j].forward)
                    eq_sig.append(Eq(sig[i, j].forward, mask * rhs_s))
        return list(eq_v) + eq_r + eq_sig

    @property
    def op(self):
        if self._op is None:
            exprs = list(self._equations())
            dt = self.model.grid.time_dim.spacing
            if self.src is not None:
                for i in range(self.model.grid.dim):
                    exprs.append(self.src.inject(
                        field=self.sig[i, i].forward, expr=self.src * dt))
            if self.rec is not None:
                from ...dsl.tensor import tr
                exprs.append(self.rec.interpolate(expr=tr(self.sig)))
            self._op = Operator(exprs, name='ForwardViscoelastic',
                                mpi=self.mpi, opt=self.opt,
                                cache=self.cache)
        return self._op

    def forward(self, time_M=None, dt=None, **apply_kwargs):
        dt = dt if dt is not None else self.model.critical_dt
        kwargs = dict(apply_kwargs)
        kwargs['dt'] = dt
        if time_M is not None:
            kwargs['time_M'] = time_M
        summary = self.op.apply(**kwargs)
        rec_data = self.rec.data if self.rec is not None else None
        return rec_data, self.v, self.sig, summary


def viscoelastic_setup(shape=(50, 50), spacing=(10., 10.), nbl=10,
                       tn=250.0, space_order=4, vp=2.2, vs=1.2, rho=2.0,
                       qp=100.0, qs=70.0, f0=0.01, comm=None, topology=None,
                       weights=None, mpi=None, nrec=None, opt=True,
                       cache=None):
    """Build a ready-to-run viscoelastic solver."""
    from .model import SeismicModel

    ndim = len(shape)
    model = SeismicModel(shape=shape, spacing=spacing, vp=vp, vs=vs,
                         rho=rho, qp=qp, qs=qs, nbl=nbl,
                         space_order=space_order, comm=comm,
                         topology=topology, weights=weights)
    dt = model.critical_dt
    time_range = TimeAxis(start=0.0, stop=tn, step=dt)

    domain_size = np.array(model.domain_size)
    src_coords = np.empty((1, ndim))
    src_coords[0, :] = domain_size * 0.5
    src = RickerSource(name='src', grid=model.grid, f0=f0,
                       time_range=time_range, coordinates=src_coords)

    rec = None
    if nrec is None:
        nrec = shape[0]
    if nrec:
        rec_coords = np.empty((nrec, ndim))
        rec_coords[:, 0] = np.linspace(0.0, domain_size[0], nrec)
        for d in range(1, ndim - 1):
            rec_coords[:, d] = domain_size[d] * 0.5
        rec_coords[:, -1] = 2 * model.spacing[-1]
        rec = Receiver(name='rec', grid=model.grid, npoint=nrec,
                       nt=time_range.num, coordinates=rec_coords)

    solver = ViscoelasticWaveSolver(model, src, rec,
                                    space_order=space_order, f0=f0,
                                    mpi=mpi, opt=opt, cache=cache)
    return solver, time_range
