"""Isotropic elastic wave propagator (paper Section IV-B3).

Virieux velocity-stress formulation on a staggered grid: a coupled
system of a vectorial (particle velocity) and a tensorial (stress) PDE,
first order in time (2 time buffers), 9 wavefield parameters — heavily
memory-bound with ~4.4x the communication volume of the acoustic model
(22 fields total working set in 3D).
"""

from __future__ import annotations

import numpy as np

from ...dsl import (Eq, Operator, TensorTimeFunction, VectorTimeFunction,
                    div, solve)
from ...symbolics import Derivative
from .geometry import Receiver, RickerSource, TimeAxis

__all__ = ['ElasticWaveSolver', 'elastic_setup']


class ElasticWaveSolver:
    """Forward modeling for the isotropic elastic wave equation.

    Updates (with s = dt, multiplicative sponge ``mask``):

    * ``v'   = mask * (v + s * b * div(tau))``
    * ``tau' = mask * (tau + s * (lam * div(v') * I
      + mu * (grad(v') + grad(v')^T)))``

    The stress update reads the *fresh* velocities, which under DMP
    forces a halo exchange of ``v`` in the middle of every timestep —
    the inter-cluster exchange the compiler must detect.
    """

    def __init__(self, model, geometry_src=None, geometry_rec=None,
                 space_order=None, mpi=None, opt=True, cache=None):
        self.model = model
        self.space_order = space_order or model.space_order
        self.src = geometry_src
        self.rec = geometry_rec
        self.mpi = mpi
        self.opt = opt
        self.cache = cache
        self._op = None
        grid = model.grid
        self.v = VectorTimeFunction(name='v', grid=grid,
                                    space_order=self.space_order,
                                    time_order=1)
        self.tau = TensorTimeFunction(name='tau', grid=grid,
                                      space_order=self.space_order,
                                      time_order=1)

    def _equations(self):
        model = self.model
        grid = model.grid
        dims = grid.dimensions
        v, tau = self.v, self.tau
        b, lam, mu, mask = model.b, model.lam, model.mu, model.mask
        s = grid.time_dim.spacing
        so = self.space_order

        # velocity update: v' = mask * (v + s*b*div(tau))
        eq_v = Eq(v.forward, mask * (v + s * b * div(tau, fd_order=so)))

        # stress update reads the fresh velocities v.forward
        vf = v.forward
        div_vf = div(vf, fd_order=so)
        eq_tau = []
        for i in range(grid.dim):
            for j in range(i, grid.dim):
                dij = (Derivative(vf[i], (dims[j], 1), fd_order=so)
                       + Derivative(vf[j], (dims[i], 1), fd_order=so))
                rhs = tau[i, j] + s * (mu * dij)
                if i == j:
                    rhs = rhs + s * lam * div_vf
                eq_tau.append(Eq(tau[i, j].forward, mask * rhs))
        return list(eq_v) + eq_tau

    @property
    def op(self):
        if self._op is None:
            exprs = list(self._equations())
            dt = self.model.grid.time_dim.spacing
            if self.src is not None:
                # explosive source: inject into the normal stresses
                for i in range(self.model.grid.dim):
                    exprs.append(self.src.inject(
                        field=self.tau[i, i].forward,
                        expr=self.src * dt))
            if self.rec is not None:
                # record the trace of the stress tensor (pressure-like)
                from ...dsl.tensor import tr
                exprs.append(self.rec.interpolate(expr=tr(self.tau)))
            self._op = Operator(exprs, name='ForwardElastic',
                                mpi=self.mpi, opt=self.opt,
                                cache=self.cache)
        return self._op

    def forward(self, time_M=None, dt=None, **apply_kwargs):
        dt = dt if dt is not None else self.model.critical_dt
        kwargs = dict(apply_kwargs)
        kwargs['dt'] = dt
        if time_M is not None:
            kwargs['time_M'] = time_M
        summary = self.op.apply(**kwargs)
        rec_data = self.rec.data if self.rec is not None else None
        return rec_data, self.v, self.tau, summary


def elastic_setup(shape=(50, 50), spacing=(10., 10.), nbl=10, tn=250.0,
                  space_order=4, vp=2.0, vs=1.0, rho=1.8, f0=0.015,
                  comm=None, topology=None, weights=None, mpi=None,
                  nrec=None, opt=True, cache=None):
    """Build a ready-to-run elastic solver (layered medium, Ricker src)."""
    from .model import SeismicModel

    ndim = len(shape)
    model = SeismicModel(shape=shape, spacing=spacing, vp=vp, vs=vs,
                         rho=rho, nbl=nbl, space_order=space_order,
                         comm=comm, topology=topology, weights=weights)
    dt = model.critical_dt
    time_range = TimeAxis(start=0.0, stop=tn, step=dt)

    domain_size = np.array(model.domain_size)
    src_coords = np.empty((1, ndim))
    src_coords[0, :] = domain_size * 0.5
    src_coords[0, -1] = domain_size[-1] * 0.5
    src = RickerSource(name='src', grid=model.grid, f0=f0,
                       time_range=time_range, coordinates=src_coords)

    rec = None
    if nrec is None:
        nrec = shape[0]
    if nrec:
        rec_coords = np.empty((nrec, ndim))
        rec_coords[:, 0] = np.linspace(0.0, domain_size[0], nrec)
        for d in range(1, ndim - 1):
            rec_coords[:, d] = domain_size[d] * 0.5
        rec_coords[:, -1] = 2 * model.spacing[-1]
        rec = Receiver(name='rec', grid=model.grid, npoint=nrec,
                       nt=time_range.num, coordinates=rec_coords)

    solver = ElasticWaveSolver(model, src, rec, space_order=space_order,
                               mpi=mpi, opt=opt, cache=cache)
    return solver, time_range
