"""Acquisition geometry: time axis, seismic sources and receivers.

The paper models source injection with a Ricker wavelet (Section IV-C),
the standard seismic source signature, injected at off-the-grid positions
via the sparse-function machinery; receivers interpolate the wavefield at
arbitrary positions every timestep.
"""

from __future__ import annotations

import numpy as np

from ...dsl import SparseTimeFunction

__all__ = ['TimeAxis', 'RickerSource', 'GaborSource', 'Receiver',
           'ricker_wavelet']


class TimeAxis:
    """A uniformly sampled time axis ``[start, stop]`` with step ``step``."""

    def __init__(self, start=0.0, stop=None, step=None, num=None):
        if stop is None and num is None:
            raise ValueError("TimeAxis needs 'stop' or 'num'")
        if step is None or step <= 0:
            raise ValueError("TimeAxis needs a positive 'step'")
        self.start = float(start)
        self.step = float(step)
        if num is None:
            num = int(np.ceil((stop - start + step) / step))
        self.num = int(num)
        self.stop = self.start + (self.num - 1) * self.step

    @property
    def time_values(self):
        return self.start + self.step * np.arange(self.num)

    def __repr__(self):
        return ('TimeAxis(start=%g, stop=%g, step=%g, num=%d)'
                % (self.start, self.stop, self.step, self.num))


def ricker_wavelet(time_values, f0, t0=None, a=1.0):
    """The Ricker (Mexican-hat) wavelet at peak frequency ``f0``.

    ``f0`` in kHz when time is in ms (Devito's seismic convention).
    """
    t0 = t0 if t0 is not None else 1.0 / f0
    r = np.pi * f0 * (time_values - t0)
    return a * (1.0 - 2.0 * r ** 2) * np.exp(-r ** 2)


class RickerSource(SparseTimeFunction):
    """A point source carrying a Ricker wavelet time signature."""

    __slots__ = ('f0', 'time_range')

    def __init__(self, name, grid, f0, time_range, coordinates=None,
                 npoint=1, t0=None, a=1.0):
        super().__init__(name, grid, npoint, time_range.num,
                         coordinates=coordinates)
        self.f0 = float(f0)
        self.time_range = time_range
        wav = ricker_wavelet(time_range.time_values, self.f0, t0=t0, a=a)
        self.data[:] = wav[:, None].astype(self.grid.dtype)


class GaborSource(SparseTimeFunction):
    """A Gabor (Gaussian-windowed cosine) source wavelet."""

    __slots__ = ('f0', 'time_range')

    def __init__(self, name, grid, f0, time_range, coordinates=None,
                 npoint=1, a=1.0):
        super().__init__(name, grid, npoint, time_range.num,
                         coordinates=coordinates)
        self.f0 = float(f0)
        self.time_range = time_range
        t0 = 1.5 / f0
        t = time_range.time_values
        wav = a * np.cos(2 * np.pi * f0 * (t - t0)) * \
            np.exp(-2 * (np.pi * f0 * (t - t0)) ** 2 / 4.0)
        self.data[:] = wav[:, None].astype(self.grid.dtype)


class Receiver(SparseTimeFunction):
    """An array of point receivers recording an interpolated wavefield."""

    __slots__ = ()
