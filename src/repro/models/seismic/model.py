"""Seismic model container: physical parameters + absorbing boundaries.

Mirrors Devito's ``SeismicModel``: a velocity (and optionally density,
anisotropy, attenuation) model on a grid extended by ``nbl`` absorbing
boundary points per side (the paper's 40-point ABC layer), material
parameter ``Function``s, damping profiles, and the CFL-stable timestep.
"""

from __future__ import annotations

import numpy as np

from ...dsl import Function, Grid

__all__ = ['SeismicModel', 'damping_profile']


def damping_profile(shape, nbl, spacing, vmax, dtype=np.float32):
    """Cosine-taper absorbing damping coefficient (Sochacki-style sponge).

    Zero in the physical domain, growing towards the outer edge of the
    absorbing layer.  Scaled so that ``damp*u.dt`` critically damps the
    fastest wave over the layer.
    """
    ndim = len(shape)
    damp = np.zeros(shape, dtype=dtype)
    # log(1/R) * 3 v / (2 L) with reflection coefficient R = 1e-3
    for d in range(ndim):
        if nbl == 0:
            continue
        coeff = 3.0 * vmax * np.log(1000.0) / (2.0 * nbl * spacing[d])
        pos = np.zeros(shape[d])
        for i in range(shape[d]):
            dist = 0
            if i < nbl:
                dist = (nbl - i) / nbl
            elif i >= shape[d] - nbl:
                dist = (i - (shape[d] - nbl - 1)) / nbl
            pos[i] = coeff * (dist - np.sin(2 * np.pi * dist) /
                              (2 * np.pi))
        expand = [1] * ndim
        expand[d] = shape[d]
        damp = np.maximum(damp, pos.reshape(expand))
    return damp


class SeismicModel:
    """Physical model on an ABC-extended grid.

    Parameters
    ----------
    shape : tuple
        Physical (interior) grid shape.
    spacing : tuple of float
        Grid spacing in meters.
    origin : tuple of float
        Physical origin of the *interior* domain.
    vp : float or ndarray
        P-wave velocity in km/s (Devito convention).
    nbl : int
        Absorbing layer width in points (paper uses 40).
    vs, rho : float or ndarray, optional
        S-wave velocity and density (elastic/viscoelastic models).
    epsilon, delta, theta, phi : float or ndarray, optional
        Thomsen parameters and tilt/azimuth angles (TTI).
    qp, qs : float, optional
        P/S quality factors (viscoelastic).
    comm : SimComm, optional
        Communicator for distributed runs.
    """

    def __init__(self, shape, spacing, origin=None, vp=1.5, nbl=40,
                 space_order=8, vs=None, rho=None, epsilon=None, delta=None,
                 theta=None, phi=None, qp=None, qs=None, dtype=np.float32,
                 comm=None, topology=None, weights=None):
        self.shape = tuple(int(s) for s in shape)
        self.spacing = tuple(float(h) for h in spacing)
        self.nbl = int(nbl)
        self.space_order = int(space_order)
        ndim = len(self.shape)
        if origin is None:
            origin = (0.0,) * ndim
        self.origin_interior = tuple(float(o) for o in origin)

        shape_pml = tuple(s + 2 * self.nbl for s in self.shape)
        origin_pml = tuple(o - self.nbl * h for o, h in
                           zip(self.origin_interior, self.spacing))
        extent = tuple(h * (s - 1) for h, s in zip(self.spacing, shape_pml))
        self.grid = Grid(shape=shape_pml, extent=extent, origin=origin_pml,
                         dtype=dtype, comm=comm, topology=topology,
                         weights=weights)

        self._vp = self._to_array(vp)
        self._vs = self._to_array(vs) if vs is not None else None
        self._rho = self._to_array(rho) if rho is not None else None
        self._epsilon = self._to_array(epsilon) if epsilon is not None \
            else None
        self._delta = self._to_array(delta) if delta is not None else None
        self._theta = self._to_array(theta) if theta is not None else None
        self._phi = self._to_array(phi) if phi is not None else None
        self.qp = qp
        self.qs = qs
        self._functions = {}

    # -- raw parameter handling -------------------------------------------------

    def _to_array(self, value):
        shape_pml = tuple(s + 2 * self.nbl for s in self.shape)
        arr = np.empty(shape_pml, dtype=np.float32)
        if np.isscalar(value):
            arr.fill(float(value))
        else:
            value = np.asarray(value, dtype=np.float32)
            if value.shape != self.shape:
                raise ValueError("parameter shape %s != model shape %s"
                                 % (value.shape, self.shape))
            inner = tuple(slice(self.nbl, self.nbl + s) for s in self.shape)
            # pad into the absorbing layer with edge values
            pad = [(self.nbl, self.nbl)] * len(self.shape)
            arr[...] = np.pad(value, pad, mode='edge')
        return arr

    @property
    def vmax(self):
        return float(self._vp.max())

    @property
    def vp(self):
        return self._vp

    @property
    def critical_dt(self):
        """CFL-stable timestep in ms (velocities are km/s, spacing m)."""
        ndim = self.grid.dim
        coeff = 0.38 if ndim == 3 else 0.42
        return float(coeff * min(self.spacing) / self.vmax)

    # -- symbolic parameter functions -----------------------------------------------

    def _function(self, name, values):
        if name not in self._functions:
            f = Function(name=name, grid=self.grid,
                         space_order=self.space_order)
            f.data[:] = values
            self._functions[name] = f
        return self._functions[name]

    @property
    def m(self):
        """Squared slowness 1/vp**2."""
        return self._function('m', 1.0 / self._vp ** 2)

    @property
    def damp(self):
        """Additive damping coefficient (for ``damp * u.dt`` terms)."""
        shape_pml = tuple(s + 2 * self.nbl for s in self.shape)
        return self._function('damp', damping_profile(
            shape_pml, self.nbl, self.spacing, self.vmax))

    @property
    def mask(self):
        """Multiplicative sponge mask (1 interior, decaying in the ABC)."""
        shape_pml = tuple(s + 2 * self.nbl for s in self.shape)
        profile = damping_profile(shape_pml, self.nbl, self.spacing,
                                  self.vmax)
        # convert additive coefficient to per-step multiplicative decay
        decay = 1.0 / (1.0 + self.critical_dt * profile)
        return self._function('mask', decay)

    @property
    def b(self):
        """Buoyancy 1/rho."""
        rho = self._rho if self._rho is not None else np.ones_like(self._vp)
        return self._function('b', 1.0 / rho)

    @property
    def lam(self):
        """First Lame parameter rho*(vp^2 - 2 vs^2)."""
        if self._vs is None:
            raise ValueError("lam requires vs")
        rho = self._rho if self._rho is not None else np.ones_like(self._vp)
        return self._function('lam',
                              rho * (self._vp ** 2 - 2 * self._vs ** 2))

    @property
    def mu(self):
        """Shear modulus rho*vs^2."""
        if self._vs is None:
            raise ValueError("mu requires vs")
        rho = self._rho if self._rho is not None else np.ones_like(self._vp)
        return self._function('mu', rho * self._vs ** 2)

    @property
    def pi(self):
        """P-wave modulus rho*vp^2 (viscoelastic)."""
        rho = self._rho if self._rho is not None else np.ones_like(self._vp)
        return self._function('pi', rho * self._vp ** 2)

    @property
    def epsilon(self):
        eps = self._epsilon if self._epsilon is not None \
            else np.zeros_like(self._vp)
        return self._function('epsilon', eps)

    @property
    def delta(self):
        dlt = self._delta if self._delta is not None \
            else np.zeros_like(self._vp)
        return self._function('delta', dlt)

    @property
    def theta(self):
        th = self._theta if self._theta is not None \
            else np.zeros_like(self._vp)
        return self._function('theta', th)

    @property
    def phi(self):
        ph = self._phi if self._phi is not None else np.zeros_like(self._vp)
        return self._function('phi', ph)

    # -- viscoelastic relaxation times (single SLS mechanism) -------------------------

    def relaxation_times(self, f0):
        """(t_s, t_ep, t_es): stress and strain relaxation times for a
        single standard-linear-solid mechanism at reference frequency f0.
        """
        qp = self.qp if self.qp is not None else 100.0
        qs = self.qs if self.qs is not None else 70.0
        w0 = 2.0 * np.pi * f0
        t_s = (np.sqrt(1.0 + 1.0 / qp ** 2) - 1.0 / qp) / w0
        t_ep = 1.0 / (w0 ** 2 * t_s)
        t_es = (1.0 + w0 * qs * t_s) / (w0 * qs - w0 ** 2 * t_s)
        return float(t_s), float(t_ep), float(t_es)

    @property
    def domain_size(self):
        return tuple(h * (s - 1) for h, s in zip(self.spacing, self.shape))

    def __repr__(self):
        return ('SeismicModel(shape=%s, nbl=%d, so=%d, vmax=%.2f)'
                % (self.shape, self.nbl, self.space_order, self.vmax))
