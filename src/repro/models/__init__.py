"""Application models built on the DSL (the paper's benchmark kernels)."""

from .seismic import (AcousticWaveSolver, ElasticWaveSolver, Receiver,
                      RickerSource, SeismicModel, TimeAxis, TTIWaveSolver,
                      ViscoelasticWaveSolver, acoustic_setup,
                      damping_profile, elastic_setup, ricker_wavelet,
                      tti_setup, viscoelastic_setup)

__all__ = ['AcousticWaveSolver', 'ElasticWaveSolver', 'Receiver',
           'RickerSource', 'SeismicModel', 'TimeAxis', 'TTIWaveSolver',
           'ViscoelasticWaveSolver', 'acoustic_setup', 'damping_profile',
           'elastic_setup', 'ricker_wavelet', 'tti_setup',
           'viscoelastic_setup']
