"""The two-tier content-addressed build cache.

Tier 1 is an in-process memo (fingerprint -> :class:`KernelArtifact`,
shared by every Operator of the process — including the thread-per-rank
SPMD runs, hence the lock).  Tier 2 is an on-disk store of JSON entries,
written atomically through :mod:`repro.ioutil` so concurrent writers and
killed processes can never leave a torn entry behind.

On-disk layout (under ``configuration['cache_dir']``)::

    <dir>/
      <fp[:2]>/<fp>.json   # one entry: {fingerprint, checksum, payload}
      stats.json           # cumulative hit/miss counters across processes

Every read re-verifies the embedded BLAKE2b checksum and the artifact
format version; *any* problem — corrupt JSON, truncation, checksum or
version mismatch, unresolvable rebinding — demotes the lookup to a miss
and the operator builds cold.  A bad cache entry can therefore cost
time, never correctness.

Per-process counters are merged into ``stats.json`` at interpreter exit
(and on :meth:`BuildCache.flush_stats`).  The merge is read-modify-write
without a lock: concurrent exits may drop each other's deltas, which is
acceptable for what the file is — a monitoring signal (the CI warm-run
gate only asserts *non-zero* hits), not an accounting ledger.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import threading

from ..codegen.artifact import KernelArtifact
from ..ioutil import atomic_write_json

__all__ = ['BuildCache', 'get_cache', 'reset_process_cache',
           'read_disk_stats', 'disk_usage', 'clear_disk']

#: statistics fields (all monotonic counters except saved_seconds)
_STAT_KEYS = ('hits', 'memory_hits', 'disk_hits', 'misses', 'stores',
              'errors', 'saved_seconds', 'hit_bytes')


def _payload_checksum(payload):
    blob = json.dumps(payload, sort_keys=True).encode('utf-8')
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _zero_stats():
    return {k: 0.0 if k == 'saved_seconds' else 0 for k in _STAT_KEYS}


class BuildCache:
    """One cache instance: a mode, a directory, a memo and counters."""

    def __init__(self, mode='memory', directory='.repro_cache'):
        if mode not in ('on', 'memory', 'disk', 'off'):
            raise ValueError("unknown build-cache mode %r" % (mode,))
        self.mode = mode
        self.directory = os.fspath(directory)
        self._memo = {}
        self._lock = threading.Lock()
        self.stats = _zero_stats()
        self._flushed = _zero_stats()
        self._atexit_registered = False

    # -- tiers ---------------------------------------------------------------------

    @property
    def enabled(self):
        return self.mode != 'off'

    @property
    def memory_enabled(self):
        return self.mode in ('on', 'memory')

    @property
    def disk_enabled(self):
        return self.mode in ('on', 'disk')

    def _entry_path(self, key):
        return os.path.join(self.directory, key[:2], '%s.json' % key)

    # -- lookup / store -------------------------------------------------------------

    def lookup(self, key):
        """Return ``(artifact, tier)`` or ``(None, None)``.

        Never raises: disk problems count as ``errors`` and miss.  A
        disk hit is promoted into the memory tier (when enabled) so the
        compile()d code object gets reused by later builds.
        """
        if self.memory_enabled:
            with self._lock:
                artifact = self._memo.get(key)
            if artifact is not None:
                return artifact, 'memory'
        if self.disk_enabled:
            artifact = self._disk_lookup(key)
            if artifact is not None:
                if self.memory_enabled:
                    with self._lock:
                        self._memo.setdefault(key, artifact)
                return artifact, 'disk'
        return None, None

    def _disk_lookup(self, key):
        path = self._entry_path(key)
        try:
            with open(path, encoding='utf-8') as f:
                entry = json.load(f)
        except (OSError, ValueError):
            if os.path.exists(path):
                # present but unreadable/corrupt: count it
                with self._lock:
                    self.stats['errors'] += 1
            return None
        try:
            if entry.get('fingerprint') != key:
                raise ValueError("fingerprint mismatch")
            payload = entry['payload']
            if entry.get('checksum') != _payload_checksum(payload):
                raise ValueError("checksum mismatch")
            return KernelArtifact.from_payload(payload)
        except Exception:  # noqa: BLE001 - any defect means cold build
            with self._lock:
                self.stats['errors'] += 1
            return None

    def store(self, key, artifact):
        """Populate both enabled tiers after a cold build.

        Counts a *store* only — the caller records the miss (exactly
        once, whether or not the artifact turned out to be storable).
        """
        with self._lock:
            self.stats['stores'] += 1
            if self.memory_enabled:
                self._memo[key] = artifact
        if self.disk_enabled:
            try:
                payload = artifact.to_payload()
                self._persist_shared_object(key, payload)
                entry = {'fingerprint': key,
                         'checksum': _payload_checksum(payload),
                         'payload': payload}
                path = self._entry_path(key)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                atomic_write_json(path, entry, indent=None)
            except OSError:
                with self._lock:
                    self.stats['errors'] += 1
        self._ensure_atexit()

    def _persist_shared_object(self, key, payload):
        """Copy a compiled backend's .so beside the JSON entry.

        The cold build leaves the object in a per-process scratch
        directory that dies with the process; a disk entry must point at
        something durable.  The payload's ``so_path`` is rewritten *in
        place* (before the entry checksum is computed), so the shared
        memory-tier artifact also outlives the scratch directory.
        """
        src = payload.get('so_path')
        if payload.get('backend') != 'c' or not src:
            return
        so_dir = os.path.join(self.directory, 'so')
        dst = os.path.join(so_dir, '%s.so' % key)
        if not os.path.isfile(dst):
            import shutil
            os.makedirs(so_dir, exist_ok=True)
            tmp = '%s.tmp%d.%d' % (dst, os.getpid(),
                                   threading.get_ident())
            shutil.copyfile(src, tmp)
            os.replace(tmp, dst)
        payload['so_path'] = dst

    # -- accounting ------------------------------------------------------------------

    def note_hit(self, artifact, tier, saved_seconds=0.0):
        """Record one successful warm build (rehydration succeeded)."""
        with self._lock:
            self.stats['hits'] += 1
            self.stats['%s_hits' % tier] += 1
            self.stats['saved_seconds'] += max(float(saved_seconds), 0.0)
            self.stats['hit_bytes'] += artifact.nbytes
        self._ensure_atexit()

    def note_miss(self, nerrors=0):
        """Record one cold build that could not be (re)used."""
        with self._lock:
            self.stats['misses'] += 1
            self.stats['errors'] += int(nerrors)

    # -- persistent statistics ----------------------------------------------------

    def _ensure_atexit(self):
        if self._atexit_registered or not self.disk_enabled:
            return
        self._atexit_registered = True
        atexit.register(self.flush_stats)

    def flush_stats(self):
        """Merge this process' counter deltas into ``<dir>/stats.json``."""
        if not self.disk_enabled:
            return None
        with self._lock:
            delta = {k: self.stats[k] - self._flushed[k]
                     for k in _STAT_KEYS}
            self._flushed = dict(self.stats)
        if not any(delta.values()):
            return None
        path = os.path.join(self.directory, 'stats.json')
        merged = read_disk_stats(self.directory)
        for k in _STAT_KEYS:
            merged[k] = merged.get(k, 0) + delta[k]
        try:
            os.makedirs(self.directory, exist_ok=True)
            atomic_write_json(path, merged)
        except OSError:
            return None
        return path

    def clear(self):
        """Drop the memo and (when disk-enabled) every disk entry."""
        with self._lock:
            self._memo.clear()
        if self.disk_enabled:
            clear_disk(self.directory)

    def __repr__(self):
        return ('BuildCache(%s, dir=%r, %d memoized, hits=%d, misses=%d)'
                % (self.mode, self.directory, len(self._memo),
                   self.stats['hits'], self.stats['misses']))


# -- module-level registry -------------------------------------------------------------

_caches = {}
_caches_lock = threading.Lock()


def get_cache(cache=None):
    """Resolve the ``cache=`` Operator kwarg into a cache, or None.

    ``None`` defers to ``configuration['build_cache']`` /
    ``configuration['cache_dir']``; ``True``/``False`` force 'on'/'off';
    a mode string selects that mode against the configured directory; a
    :class:`BuildCache` instance is used as-is.  Returns ``None`` when
    caching is off.  Instances are process-wide singletons per
    (mode, directory) so the memory tier is shared across Operators.
    """
    from .. import configuration
    if isinstance(cache, BuildCache):
        return cache if cache.enabled else None
    if cache is None:
        mode = configuration['build_cache']
    elif cache is True:
        mode = 'on'
    elif cache is False:
        mode = 'off'
    elif isinstance(cache, str):
        mode = cache
    else:
        raise ValueError("cache= expects None, a bool, a mode string "
                         "('on'/'memory'/'disk'/'off') or a BuildCache, "
                         "got %r" % (cache,))
    if mode == 'off':
        return None
    directory = os.path.abspath(configuration['cache_dir'])
    ckey = (mode, directory)
    with _caches_lock:
        obj = _caches.get(ckey)
        if obj is None:
            obj = _caches[ckey] = BuildCache(mode, directory)
    return obj


def reset_process_cache():
    """Drop every in-process cache instance (test isolation helper)."""
    with _caches_lock:
        for obj in _caches.values():
            obj.flush_stats()
        _caches.clear()


# -- disk introspection (shared with the CLI) --------------------------------------------


def read_disk_stats(directory):
    """The cumulative ``stats.json`` counters (zeros when absent)."""
    path = os.path.join(os.fspath(directory), 'stats.json')
    try:
        with open(path, encoding='utf-8') as f:
            data = json.load(f)
    except (OSError, ValueError):
        return _zero_stats()
    out = _zero_stats()
    for k in _STAT_KEYS:
        if isinstance(data.get(k), (int, float)):
            out[k] = data[k]
    return out


def _iter_entries(directory):
    directory = os.fspath(directory)
    try:
        shards = sorted(os.listdir(directory))
    except OSError:
        return
    for shard in shards:
        sub = os.path.join(directory, shard)
        if len(shard) != 2 or not os.path.isdir(sub):
            continue
        for name in sorted(os.listdir(sub)):
            if name.endswith('.json'):
                yield os.path.join(sub, name)


def disk_usage(directory):
    """``(nentries, nbytes)`` of the on-disk tier."""
    nentries = nbytes = 0
    for path in _iter_entries(directory):
        try:
            nbytes += os.path.getsize(path)
        except OSError:
            continue
        nentries += 1
    return nentries, nbytes


def clear_disk(directory):
    """Delete every entry (and the stats file); returns entries removed."""
    removed = 0
    for path in _iter_entries(directory):
        try:
            os.unlink(path)
            removed += 1
        except OSError:
            pass
        try:
            os.rmdir(os.path.dirname(path))
        except OSError:
            pass  # not empty / already gone
    so_dir = os.path.join(os.fspath(directory), 'so')
    try:
        names = os.listdir(so_dir)
    except OSError:
        names = []
    for name in names:
        try:
            os.unlink(os.path.join(so_dir, name))
        except OSError:
            pass
    try:
        os.rmdir(so_dir)
    except OSError:
        pass
    try:
        os.unlink(os.path.join(os.fspath(directory), 'stats.json'))
    except OSError:
        pass
    return removed
