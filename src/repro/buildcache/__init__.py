"""Content-addressed operator build cache (Devito-style JIT caching).

The key is a canonical structural fingerprint of the build inputs
(:mod:`.fingerprint` on top of :mod:`repro.symbolics.hashing`); the
value is a :class:`~repro.codegen.artifact.KernelArtifact` — everything
a cold build produced, as plain data, rehydrated into a ready kernel
without re-running lowering, optimization, scheduling or verification.

Two tiers (:mod:`.cache`): an in-process memo and an atomically-written
on-disk store, selected by ``configuration['build_cache']``
('on' / 'memory' / 'disk' / 'off'; env ``REPRO_CACHE``, directory
``REPRO_CACHE_DIR``).  Every failure path — corrupt entry, version
drift, unresolvable rebinding — silently falls back to a cold build.
"""

from .cache import (BuildCache, clear_disk, disk_usage, get_cache,
                    read_disk_stats, reset_process_cache)
from .fingerprint import fingerprint_build

__all__ = ['BuildCache', 'clear_disk', 'disk_usage', 'get_cache',
           'read_disk_stats', 'reset_process_cache', 'fingerprint_build']
