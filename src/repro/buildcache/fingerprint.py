"""The cache *key*: a canonical fingerprint of one operator build.

Two ``Operator`` constructions may share a cached kernel iff every input
that influences the generated artifact is identical.  Those inputs are:

* the **expressions** — structure, finite-difference specs, function
  signatures (name, orders, dtype, padding, staggering), sparse point
  counts.  Hashed *raw* (before lowering): lowering and the rewrite
  pipeline are deterministic functions of the raw form, and hashing the
  raw form is what makes a cache hit cheap (lowering + optimization are
  ~90% of a cold build).
* the **grid and its decomposition** — shape, dtype, Cartesian topology
  and this rank's coordinates.  Generated source embeds per-rank
  compile-time iteration boxes, so the same equations on a different
  rank layout are a different kernel.
* the **build configuration** — DMP mode, the optimization switch, the
  verify gate, the sanitizer, instrumentation, the progress thread and
  the backend.

Excluded on purpose: :class:`~repro.dsl.function.Constant` *values*
(runtime ``apply`` arguments), sparse *coordinates* (runtime data — the
routing plan is rebuilt live on every rehydration), field *data*, and
the profiling level beyond its on/off bit ('basic' and 'advanced'
compile to identical source).

Anything the emitter does not recognize raises ``TypeError``; the
operator then simply builds cold (uncacheable, never wrong).
"""

from __future__ import annotations

from ..analysis import ANALYSIS_VERSION
from ..symbolics.hashing import TokenEmitter

__all__ = ['fingerprint_build']


def _flatten(expressions):
    flat = []
    stack = list(reversed(list(expressions))) \
        if isinstance(expressions, (list, tuple)) else [expressions]
    while stack:
        e = stack.pop()
        if isinstance(e, (list, tuple)):
            stack.extend(reversed(list(e)))
        else:
            flat.append(e)
    return flat


def _emit_toplevel(emitter, e):
    if hasattr(e, 'lhs') and hasattr(e, 'rhs') and hasattr(e, 'subdomain'):
        # an Eq
        emitter.token('Eq')
        emitter.emit(e.lhs)
        emitter.emit(e.rhs)
        emitter.emit(None if e.subdomain is None else str(e.subdomain))
    elif hasattr(e, 'sparse') and hasattr(e, 'field'):
        # an Injection
        emitter.token('Inject')
        emitter.emit(e.sparse)
        emitter.emit(e.field)
        emitter.emit(e.expr)
    elif hasattr(e, 'sparse') and hasattr(e, 'expr'):
        # an Interpolation
        emitter.token('Interp')
        emitter.emit(e.sparse)
        emitter.emit(e.expr)
    elif hasattr(e, 'args') and hasattr(e, 'is_Atom'):
        emitter.emit(e)
    else:
        raise TypeError("cannot fingerprint top-level expression %r of "
                        "type %s" % (e, type(e).__name__))


def fingerprint_build(expressions, *, mpi_mode, opt, verify, sanitizer,
                      instrument, progress, backend='py'):
    """Fingerprint one operator build.

    Returns ``(hexdigest, emitter)``; the emitter doubles as the symbol
    table (live functions / sparse functions / constants / grids found
    during the traversal) used to rebind a cached artifact.

    Raises ``TypeError`` on inputs outside the token grammar — callers
    treat that as "uncacheable" and build cold.
    """
    emitter = TokenEmitter()
    # build configuration context (every source-affecting switch).  The
    # sanitizer is a tri-state (off / poison / reconcile) and the
    # verifier version is folded in because cached artifacts embed
    # analysis diagnostics and communication certificates — a change to
    # what the passes compute must invalidate them.
    emitter.token('cfg', str(mpi_mode), int(bool(opt)), int(bool(verify)),
                  str(sanitizer), int(bool(instrument)),
                  int(bool(progress)), backend, int(ANALYSIS_VERSION))
    flat = _flatten(expressions)
    emitter.token('exprs', len(flat))
    for e in flat:
        _emit_toplevel(emitter, e)
    # decomposition signature of every grid touched: the generated
    # source hard-codes this rank's iteration boxes and the exchanger
    # tags assume this topology
    emitter.token('dists', len(emitter.grids))
    for grid in emitter.grids:
        dist = grid.distributor
        emitter.token('dist')
        emitter.emit(tuple(dist.topology))
        emitter.emit(int(dist.myrank))
        emitter.emit(tuple(dist.mycoords))
        emitter.emit(tuple(dist.shape_local))
        # weighted (elastic) splits: the full per-dimension size vectors
        # distinguish decompositions that happen to give *this* rank the
        # same local shape but shift the global offsets
        for dec in dist.decompositions:
            emitter.emit(tuple(dec.sizes))
    return emitter.hexdigest(), emitter
