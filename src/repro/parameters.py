"""The global, validating ``configuration`` object.

Mirrors Devito's ``DEVITO_*`` switchboard: a mapping with a fixed set of
registered keys, value validation (unknown keys and invalid values raise
``ValueError`` listing the accepted options), and environment-variable
seeding (``REPRO_MPI``, ``REPRO_PROFILING``, ``REPRO_OPT``).  Item
assignment keeps working exactly as with the original plain dict::

    configuration['mpi'] = 'diagonal'
    configuration['profiling'] = 'advanced'
"""

from __future__ import annotations

import os
from collections.abc import MutableMapping

__all__ = ['Configuration', 'Parameter', 'configuration']

_TRUE = {'1', 'true', 'yes', 'on'}
_FALSE = {'0', 'false', 'no', 'off'}


def _as_bool(value):
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        low = value.strip().lower()
        if low in _TRUE:
            return True
        if low in _FALSE:
            return False
    raise ValueError("expected a boolean-like value, got %r" % (value,))


class Parameter:
    """Spec of one configuration key."""

    def __init__(self, name, default, accepted=None, env=None,
                 converter=None, description=''):
        self.name = name
        self.default = default
        self.accepted = tuple(accepted) if accepted is not None else None
        self.env = env
        self.converter = converter
        self.description = description

    def validate(self, value):
        if self.converter is not None:
            try:
                value = self.converter(value)
            except ValueError as err:
                raise ValueError(
                    "invalid value %r for configuration[%r]: %s"
                    % (value, self.name, err)) from None
        if self.accepted is not None and value not in self.accepted:
            raise ValueError(
                "invalid value %r for configuration[%r]; accepted values: "
                "%s" % (value, self.name,
                        ', '.join(repr(a) for a in self.accepted)))
        return value


class Configuration(MutableMapping):
    """A validating mapping of global switches.

    Parameters
    ----------
    environ : mapping, optional
        Environment to seed from (defaults to ``os.environ``); passing a
        custom dict makes the seeding testable.
    """

    def __init__(self, environ=None):
        self._registry = {}
        self._values = {}
        environ = os.environ if environ is None else environ

        from .profiling import PROFILING_LEVELS
        self.register(Parameter(
            'mpi', default='basic', env='REPRO_MPI',
            accepted=('basic', 'diag', 'diagonal', 'diag2', 'full', False),
            converter=self._convert_mpi,
            description='default DMP pattern for distributed grids'))
        self.register(Parameter(
            'opt', default=True, env='REPRO_OPT',
            converter=self._convert_opt,
            description='flop-reducing pipeline (CSE/factorization/'
                        'hoisting); the special value \'verify\' keeps '
                        'the pipeline on and additionally gates every '
                        'Operator build behind the static verifier '
                        '(repro.analysis)'))
        self.register(Parameter(
            'sanitizer', default=False, env='REPRO_SANITIZER',
            converter=self._convert_sanitizer,
            description='runtime sanitizer mode: boolean-like or '
                        '\'poison\' enables the poisoned-halo sanitizer '
                        '(kernels NaN-poison neighbor-owned ghost cells '
                        'each iteration and scan written domains); '
                        '\'reconcile\' checks the static communication '
                        'certificate against the commlog send ledger '
                        'after every apply'))
        self.register(Parameter(
            'backend', default='numpy', env='REPRO_BACKEND',
            accepted=('numpy', 'c'),
            converter=self._convert_backend,
            description='execution backend of compute steps: numpy '
                        '(vectorized whole-array expressions) or c '
                        '(compile generated C with the system toolchain '
                        'and call cache-blocked loop nests via ctypes; '
                        'degrades to numpy with a ToolchainWarning when '
                        'no compiler is found)'))
        self.register(Parameter(
            'profiling', default='basic', env='REPRO_PROFILING',
            accepted=PROFILING_LEVELS,
            description='instrumentation level of generated kernels'))
        self.register(Parameter(
            'faults', default=False, env='REPRO_FAULTS',
            converter=self._convert_faults,
            description='deterministic fault-injection plan for the '
                        'simulated transport (spec string, e.g. '
                        '"seed=1,drop=0.05,kill=1@10"; False = off)'))
        self.register(Parameter(
            'commlog', default=True, env='REPRO_COMMLOG',
            converter=_as_bool,
            description='communication-correctness validator (message '
                        'matching, tag hygiene, deadlock-cycle '
                        'detection)'))
        self.register(Parameter(
            'comm_timeout', default=60.0, env='REPRO_COMM_TIMEOUT',
            converter=self._convert_positive_float,
            description='per-receive timeout budget in seconds (spans '
                        'all retries)'))
        self.register(Parameter(
            'comm_retries', default=3, env='REPRO_COMM_RETRIES',
            converter=self._convert_nonneg_int,
            description='bounded redelivery attempts for fault-dropped '
                        'messages per blocked receive'))
        self.register(Parameter(
            'recovery', default='abort', env='REPRO_RECOVERY',
            accepted=('abort', 'restart', 'shrink', 'grow'),
            description='what Operator.apply does when a rank dies: '
                        'abort (propagate, today\'s behaviour), restart '
                        '(same-world restore from the newest valid '
                        'checkpoint), shrink (drop the dead rank, '
                        'redistribute onto the survivors), or grow '
                        '(shrink, then repartition back onto the full '
                        'rank set once the healed rank rejoins)'))
        self.register(Parameter(
            'checkpoint_every', default=0, env='REPRO_CHECKPOINT_EVERY',
            converter=self._convert_nonneg_int,
            description='checkpoint cadence in timesteps (0: only the '
                        'baseline snapshot recovery policies need)'))
        self.register(Parameter(
            'checkpoint_dir', default='.repro_checkpoints',
            env='REPRO_CHECKPOINT_DIR', converter=str,
            description='checkpoint directory shared by all ranks'))
        self.register(Parameter(
            'checkpoint_keep', default=2, env='REPRO_CHECKPOINT_KEEP',
            converter=self._convert_positive_int,
            description='number of most-recent checkpoints retained'))
        self.register(Parameter(
            'max_recoveries', default=2, env='REPRO_MAX_RECOVERIES',
            converter=self._convert_nonneg_int,
            description='upper bound on recovery attempts per apply'))
        self.register(Parameter(
            'health_check_every', default=0,
            env='REPRO_HEALTH_CHECK_EVERY',
            converter=self._convert_nonneg_int,
            description='NaN/Inf/blowup scan cadence in timesteps '
                        '(0 disables)'))
        self.register(Parameter(
            'health_max', default=1e12, env='REPRO_HEALTH_MAX',
            converter=self._convert_positive_float,
            description='amplitude bound for the blowup health check'))
        self.register(Parameter(
            'repartition', default='off', env='REPRO_REPARTITION',
            accepted=('off', 'grow', 'balance'),
            description='elastic adaptation policy of Operator.apply: '
                        'off, grow (extend onto announced reserve '
                        'ranks), or balance (weighted re-split of the '
                        'current world)'))
        self.register(Parameter(
            'repartition_every', default=0, env='REPRO_REPARTITION_EVERY',
            converter=self._convert_nonneg_int,
            description='cadence of the elastic adaptation check in '
                        'timesteps (0: repartition once, at the '
                        'earliest legal step)'))
        self.register(Parameter(
            'min_steps_between_repartitions', default=4,
            env='REPRO_MIN_STEPS_BETWEEN_REPARTITIONS',
            converter=self._convert_positive_int,
            description='hysteresis: minimum timesteps between '
                        'consecutive repartitions (bounds oscillation; '
                        'also delays the grow-back after a shrink)'))
        self.register(Parameter(
            'max_repartitions', default=4, env='REPRO_MAX_REPARTITIONS',
            converter=self._convert_nonneg_int,
            description='upper bound on cadence-driven repartitions per '
                        'apply'))
        self.register(Parameter(
            'repartition_weights', default=None,
            env='REPRO_REPARTITION_WEIGHTS',
            converter=self._convert_weights,
            description='per-rank split weights for repartitioning '
                        '(comma-separated floats, e.g. "2,1,1"; None: '
                        'measure capacities from the profiler)'))
        self.register(Parameter(
            'build_cache', default='memory', env='REPRO_CACHE',
            accepted=('on', 'memory', 'disk', 'off'),
            converter=self._convert_cache,
            description='content-addressed operator build cache: on '
                        '(memory + disk tiers), memory (in-process '
                        'only, the default), disk, or off'))
        self.register(Parameter(
            'cache_dir', default='.repro_cache', env='REPRO_CACHE_DIR',
            converter=str,
            description='directory of the on-disk build-cache tier'))
        self.register(Parameter(
            'service_dir', default='.repro_service',
            env='REPRO_SERVICE_DIR', converter=str,
            description='root directory of the survey service (job '
                        'queue, records, array store, batch report)'))
        self.register(Parameter(
            'service_workers', default=2, env='REPRO_SERVICE_WORKERS',
            converter=self._convert_positive_int,
            description='bounded concurrency of the survey scheduler '
                        '(jobs in flight at once)'))
        self.register(Parameter(
            'service_retries', default=1, env='REPRO_SERVICE_RETRIES',
            converter=self._convert_nonneg_int,
            description='default per-job retry budget for transport/'
                        'fault failures in the survey scheduler'))

        for key, spec in self._registry.items():
            value = spec.default
            if spec.env is not None and spec.env in environ:
                value = environ[spec.env]
            self[key] = value
        # pointing REPRO_CACHE_DIR somewhere implies wanting the disk
        # tier: escalate the default mode (an explicit REPRO_CACHE wins)
        if 'REPRO_CACHE_DIR' in environ and 'REPRO_CACHE' not in environ:
            self['build_cache'] = 'on'

    @staticmethod
    def _convert_mpi(value):
        # DEVITO_MPI-style: 0/false disables, 1/true means 'basic'
        if isinstance(value, str) and value.strip().lower() in (_TRUE
                                                                | _FALSE):
            value = _as_bool(value)
        if value is True:
            return 'basic'
        if value is False or value is None:
            return False
        return value

    @staticmethod
    def _convert_opt(value):
        # boolean-like, or the string 'verify' (optimize + static gate)
        if isinstance(value, str) and value.strip().lower() == 'verify':
            return 'verify'
        return _as_bool(value)

    @staticmethod
    def _convert_sanitizer(value):
        # boolean-like (True = the poisoned-halo mode, kept for
        # backward compatibility), or a mode string
        if isinstance(value, str):
            low = value.strip().lower()
            if low == 'reconcile':
                return 'reconcile'
            if low == 'poison':
                return True
        try:
            return _as_bool(value)
        except ValueError:
            # not a boolean switch: name the modes, not just bools
            raise ValueError(
                "expected 'poison', 'reconcile' or a boolean-like "
                "value, got %r" % (value,)) from None

    @staticmethod
    def _convert_backend(value):
        # 'py' is accepted as an alias of 'numpy' (it is the token the
        # build fingerprint has always used for the NumPy backend)
        if isinstance(value, str):
            low = value.strip().lower()
            return 'numpy' if low == 'py' else low
        if value is False or value is None:
            return 'numpy'
        return value

    @staticmethod
    def _convert_cache(value):
        # boolean-like shorthand: True -> 'on', False -> 'off'
        if isinstance(value, str) and value.strip().lower() in (_TRUE
                                                                | _FALSE):
            value = _as_bool(value)
        if value is True:
            return 'on'
        if value is False or value is None:
            return 'off'
        if isinstance(value, str):
            return value.strip().lower()
        return value

    @staticmethod
    def _convert_faults(value):
        if value is None or value is False:
            return False
        from .mpi.faults import FaultPlan
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            low = value.strip().lower()
            if low in _FALSE or low == '':
                return False
            if low in _TRUE:
                raise ValueError(
                    "fault injection needs a spec, e.g. "
                    "'seed=1,drop=0.05,kill=1@10' (see "
                    "repro.mpi.faults.FaultPlan.parse)")
            return FaultPlan.parse(value)
        raise ValueError("expected a FaultPlan, a spec string or False, "
                         "got %r" % (value,))

    @staticmethod
    def _convert_weights(value):
        if value is None or value is False:
            return None
        if isinstance(value, str):
            stripped = value.strip()
            if not stripped or stripped.lower() in {'none'} | _FALSE:
                return None
            value = stripped.split(',')
        weights = tuple(float(w) for w in value)
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("weights must not all be zero")
        return weights

    @staticmethod
    def _convert_positive_float(value):
        value = float(value)
        if value <= 0:
            raise ValueError("expected a positive number of seconds")
        return value

    @staticmethod
    def _convert_nonneg_int(value):
        value = int(value)
        if value < 0:
            raise ValueError("expected a non-negative integer")
        return value

    @staticmethod
    def _convert_positive_int(value):
        value = int(value)
        if value <= 0:
            raise ValueError("expected a positive integer")
        return value

    # -- registry ---------------------------------------------------------------

    def register(self, parameter):
        self._registry[parameter.name] = parameter

    def accepted(self, key):
        """Accepted values of ``key`` (None = any after conversion)."""
        return self._registry[key].accepted

    def _unknown(self, key):
        return ValueError(
            "unknown configuration key %r; accepted keys: %s"
            % (key, ', '.join(sorted(self._registry))))

    # -- mutable mapping protocol -------------------------------------------------

    def __setitem__(self, key, value):
        spec = self._registry.get(key)
        if spec is None:
            raise self._unknown(key)
        self._values[key] = spec.validate(value)

    def __getitem__(self, key):
        try:
            return self._values[key]
        except KeyError:
            raise self._unknown(key) from None

    def __delitem__(self, key):
        """Reset ``key`` to its registered default."""
        spec = self._registry.get(key)
        if spec is None:
            raise self._unknown(key)
        self._values[key] = spec.validate(spec.default)

    def __iter__(self):
        return iter(self._values)

    def __len__(self):
        return len(self._values)

    def __repr__(self):
        body = ', '.join('%r: %r' % (k, v)
                         for k, v in sorted(self._values.items()))
        return 'Configuration({%s})' % body


#: the singleton; importable as ``from repro import configuration``
configuration = Configuration()
