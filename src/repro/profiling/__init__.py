"""Per-section, per-rank performance instrumentation.

The paper's evaluation (Sections IV-V, Figures 7-12) decomposes runtime
into compute vs. communication to explain the basic/diagonal/full
trade-offs.  This subsystem makes that decomposition measurable on live
runs, Devito-style ("Architecture and performance of Devito", TOMS 2019):

* the code generator wraps every schedule step in a *named section*
  (``section0..N`` for cluster computations, ``haloupdate0..N`` /
  ``halowait0..N`` for exchanges, ``sparse0..N`` for off-the-grid
  operations) and emits :class:`Timer` calls around each — only when
  profiling is enabled, so the ``off`` level costs nothing at runtime
  (the instrumentation is compiled out of the generated source);
* every exchanger counts messages, bytes sent/received and wait time;
* on distributed grids the per-rank numbers are allgathered over the
  simulated-MPI communicator and reported as min/max/avg across ranks
  (the paper's load-imbalance signal).

The level is selected via ``configuration['profiling']`` (or the
``REPRO_PROFILING`` environment variable): ``off``, ``basic`` or
``advanced`` (``advanced`` additionally records per-timestep traces and
enables the JSON artifact consumed by :mod:`repro.perfmodel.report`).
"""

from .timer import Timer
from .profiler import Profiler, RankStats, SectionMeta
from .sections import assign_section_names
from .summary import PerfEntry, PerformanceSummary

PROFILING_LEVELS = ('off', 'basic', 'advanced')

__all__ = ['Timer', 'Profiler', 'RankStats', 'SectionMeta',
           'assign_section_names', 'PerfEntry', 'PerformanceSummary',
           'PROFILING_LEVELS']
