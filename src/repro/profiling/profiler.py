"""The Profiler: section registry + per-rank aggregation.

One :class:`Profiler` is owned by each :class:`~repro.dsl.operator.Operator`
(hence by each rank in an SPMD run — operators are built per rank).  The
code generator registers a :class:`SectionMeta` for every named section it
emits; ``apply`` then asks :meth:`Profiler.summarize` to combine

* the rank-local :class:`~repro.profiling.timer.Timer` measurements,
* the per-apply exchanger counter deltas (messages, bytes, wait time),
* and — on distributed grids — the same numbers from every other rank,
  allgathered over the simulated-MPI communicator,

into a mapping of section name -> :class:`~repro.profiling.summary.PerfEntry`
with cross-rank min/max/avg statistics (the load-imbalance signal of the
paper's Figures 7-12).
"""

from __future__ import annotations

from .timer import Timer

__all__ = ['Profiler', 'RankStats', 'SectionMeta']


class RankStats:
    """Min/max/avg of one metric across the ranks of a run."""

    __slots__ = ('values',)

    def __init__(self, values):
        self.values = tuple(values)

    @property
    def min(self):
        return min(self.values)

    @property
    def max(self):
        return max(self.values)

    @property
    def avg(self):
        return sum(self.values) / len(self.values)

    @property
    def imbalance(self):
        """max/avg - 1 (0 = perfectly balanced)."""
        avg = self.avg
        return self.max / avg - 1.0 if avg else 0.0

    def __len__(self):
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def to_dict(self):
        return {'min': self.min, 'max': self.max, 'avg': self.avg,
                'ranks': list(self.values)}

    def __repr__(self):
        return ('RankStats(min=%.6g, max=%.6g, avg=%.6g, nranks=%d)'
                % (self.min, self.max, self.avg, len(self.values)))


class SectionMeta:
    """Compile-time knowledge about one named section."""

    __slots__ = ('name', 'kind', 'points', 'flops_per_point',
                 'traffic_per_point', 'exchanger_keys', 'sparse_npoints')

    def __init__(self, name, kind, points=0, flops_per_point=0,
                 traffic_per_point=0, exchanger_keys=(), sparse_npoints=0):
        self.name = name
        self.kind = kind  # 'compute' | 'halo' | 'wait' | 'sparse' | 'resilience'
        self.points = int(points)
        self.flops_per_point = flops_per_point
        self.traffic_per_point = traffic_per_point
        self.exchanger_keys = tuple(exchanger_keys)
        self.sparse_npoints = int(sparse_npoints)

    def __repr__(self):
        return 'SectionMeta(%s, %s)' % (self.name, self.kind)


class Profiler:
    """Owns the Timer and the section registry of one Operator."""

    def __init__(self, level='basic'):
        from . import PROFILING_LEVELS
        if level not in PROFILING_LEVELS:
            raise ValueError("unknown profiling level %r (accepted: %s)"
                             % (level, ', '.join(PROFILING_LEVELS)))
        self.level = level
        self.timer = Timer(advanced=(level == 'advanced')) \
            if level != 'off' else None
        #: SectionMeta in emission order, keyed by name
        self.sections = {}
        #: direct byte charges (checkpoint/restore payloads) by section
        self.section_bytes = {}
        #: build-time (compile-phase) costs, e.g. the static verifier's
        #: 'analysis' wall time; NOT cleared by reset() — build happens
        #: once, apply() resets per run
        self.build_times = {}

    @property
    def enabled(self):
        return self.level != 'off'

    @property
    def advanced(self):
        return self.level == 'advanced'

    def register(self, meta):
        """Record one section (called by the code generator)."""
        self.sections[meta.name] = meta
        return meta.name

    def reset(self):
        if self.timer is not None:
            self.timer.reset()
        self.section_bytes.clear()

    def record_build_time(self, name, seconds):
        """Charge compile-phase wall time to a named build stage (the
        static verifier records itself as 'analysis')."""
        self.build_times[name] = self.build_times.get(name, 0.0) \
            + float(seconds)

    def record_bytes(self, name, nbytes):
        """Charge payload bytes to a section directly (used by sections
        that move data outside the exchangers, e.g. checkpoint I/O)."""
        self.section_bytes[name] = self.section_bytes.get(name, 0) \
            + int(nbytes)

    # -- aggregation ------------------------------------------------------------

    def local_stats(self, exchanger_deltas):
        """Per-section rank-local measurements of the last apply."""
        out = {}
        timer = self.timer
        for name, meta in self.sections.items():
            time = timer.total(name) if timer is not None else 0.0
            ncalls = timer.ncalls(name) if timer is not None else 0
            nmsg = nbytes = 0
            wait = 0.0
            for key in meta.exchanger_keys:
                delta = exchanger_deltas.get(key)
                if delta is None:
                    continue
                nmsg += delta['nmessages']
                nbytes += delta['nbytes_sent'] + delta['nbytes_recv']
                wait += delta['wait_time']
            nbytes += self.section_bytes.get(name, 0)
            out[name] = {'time': time, 'ncalls': ncalls,
                         'nmessages': nmsg, 'bytes': nbytes,
                         'wait_time': wait}
        return out

    def summarize(self, exchanger_deltas, comm, timesteps):
        """Build the {section: PerfEntry} mapping for one apply.

        ``comm`` is the grid communicator when the run is distributed
        (all ranks must call — the aggregation is a collective) or None
        for serial runs.
        """
        from .summary import PerfEntry

        local = self.local_stats(exchanger_deltas)
        if comm is not None and comm.size > 1:
            perrank = comm.allgather(local)
        else:
            perrank = [local]

        entries = {}
        for name, meta in self.sections.items():
            rows = [stats[name] for stats in perrank]
            ranks = {
                'time': RankStats([r['time'] for r in rows]),
                'nmessages': RankStats([r['nmessages'] for r in rows]),
                'bytes': RankStats([r['bytes'] for r in rows]),
                'wait_time': RankStats([r['wait_time'] for r in rows]),
            }
            time = local[name]['time']
            gpointss = gflopss = 0.0
            oi = 0.0
            if meta.kind == 'compute':
                if meta.traffic_per_point:
                    oi = meta.flops_per_point / meta.traffic_per_point
                if time > 0:
                    gpointss = meta.points * timesteps / time / 1e9
                    gflopss = gpointss * meta.flops_per_point
            entries[name] = PerfEntry(
                name=name, time=time, gpointss=gpointss, gflopss=gflopss,
                oi=oi, nmessages=local[name]['nmessages'],
                bytes=local[name]['bytes'], kind=meta.kind,
                ncalls=local[name]['ncalls'],
                wait_time=local[name]['wait_time'], ranks=ranks)
        return entries

    def __repr__(self):
        return ('Profiler(%s, %d sections)'
                % (self.level, len(self.sections)))
