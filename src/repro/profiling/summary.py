"""The structured result of ``Operator.apply``.

:class:`PerformanceSummary` is a mapping of section name ->
:class:`PerfEntry` with top-level aggregate views (``.gpointss``,
``.gflopss``, ``.oi``, ``.elapsed``, ``.nmessages``, ``.points``,
``.timesteps``) kept backward-compatible with the original flat metrics
bag, so pre-existing callers are unaffected.  ``repr`` prints a
per-section table including cross-rank min/max/avg for distributed runs.
"""

from __future__ import annotations

from collections.abc import Mapping

__all__ = ['PerfEntry', 'PerformanceSummary']


class PerfEntry:
    """Measurements of one named code section (one rank's view, plus
    cross-rank statistics when the run was distributed)."""

    __slots__ = ('name', 'time', 'gpointss', 'gflopss', 'oi', 'nmessages',
                 'bytes', 'kind', 'ncalls', 'wait_time', 'ranks')

    def __init__(self, name, time, gpointss=0.0, gflopss=0.0, oi=0.0,
                 nmessages=0, bytes=0, kind='compute', ncalls=0,
                 wait_time=0.0, ranks=None):
        self.name = name
        self.time = time
        self.gpointss = gpointss
        self.gflopss = gflopss
        self.oi = oi
        self.nmessages = nmessages
        self.bytes = bytes
        self.kind = kind
        self.ncalls = ncalls
        self.wait_time = wait_time
        #: {'time'|'nmessages'|'bytes'|'wait_time': RankStats}
        self.ranks = ranks or {}

    # convenience cross-rank views (fall back to the local value)
    def _stat(self, metric, which):
        stats = self.ranks.get(metric)
        if stats is None:
            return getattr(self, 'time' if metric == 'time' else metric)
        return getattr(stats, which)

    @property
    def time_min(self):
        return self._stat('time', 'min')

    @property
    def time_max(self):
        return self._stat('time', 'max')

    @property
    def time_avg(self):
        return self._stat('time', 'avg')

    def to_dict(self):
        out = {'name': self.name, 'kind': self.kind, 'time': self.time,
               'gpointss': self.gpointss, 'gflopss': self.gflopss,
               'oi': self.oi, 'nmessages': self.nmessages,
               'bytes': self.bytes, 'ncalls': self.ncalls,
               'wait_time': self.wait_time}
        out['ranks'] = {k: v.to_dict() for k, v in self.ranks.items()}
        return out

    def __repr__(self):
        return ('PerfEntry(%s, %.4fs, %.3f GPts/s, %.2f GFlops/s, '
                'OI=%.2f, msgs=%d, bytes=%d)'
                % (self.name, self.time, self.gpointss, self.gflopss,
                   self.oi, self.nmessages, self.bytes))


class PerformanceSummary(Mapping):
    """Measured performance of one Operator application.

    A mapping ``{section_name: PerfEntry}`` (empty when profiling is
    ``off``), plus run-level aggregates as attributes.
    """

    def __init__(self, points, timesteps, elapsed, flops_per_point,
                 traffic_per_point, nmessages=0, sections=None, nranks=1,
                 level='off', traces=None, comm_health=None, build=None,
                 job_id=None):
        self.points = points          # grid points updated per timestep
        self.timesteps = timesteps
        self.elapsed = elapsed
        self.flops_per_point = flops_per_point
        self.traffic_per_point = traffic_per_point
        self.nmessages = nmessages
        self.nranks = int(nranks)
        self.level = level
        self._sections = dict(sections or {})
        #: per-timestep (timestep, section, seconds) records ('advanced')
        self.traces = list(traces or [])
        #: transport robustness counters (sends/recvs recorded by the
        #: commlog, fault-injected drops/duplicates, redeliveries and
        #: retries) — populated on simulated-MPI runs
        self.comm_health = dict(comm_health or {})
        #: compile-phase record: per-stage build wall times (including
        #: 'analysis' for the verify gate and 'build' for the whole
        #: construction) plus the build-cache outcome — status
        #: ('hit'/'miss'/'off'/'uncacheable'), serving tier, fingerprint
        #: key, artifact bytes and estimated seconds saved
        self.build = dict(build or {})
        #: survey-service job attribution (``apply(job_id=...)``); None
        #: for solo runs
        self.job_id = job_id

    # -- mapping protocol (keyed by section name) -------------------------------

    def __getitem__(self, name):
        return self._sections[name]

    def __iter__(self):
        return iter(self._sections)

    def __len__(self):
        return len(self._sections)

    @property
    def sections(self):
        return self._sections

    # -- aggregate views (backward-compatible surface) --------------------------

    @property
    def gpointss(self):
        """Throughput in GPts/s (the paper's primary metric)."""
        if self.elapsed <= 0:
            return float('inf')
        return self.points * self.timesteps / self.elapsed / 1e9

    @property
    def gflopss(self):
        return self.gpointss * self.flops_per_point

    @property
    def oi(self):
        """Operational intensity (flops/byte), computed at compile time
        from the expression tree, as in the paper's Section IV-C."""
        if self.traffic_per_point == 0:
            return float('inf')
        return self.flops_per_point / self.traffic_per_point

    # -- serialization (consumed by perfmodel.report) ----------------------------

    def to_dict(self):
        return {
            'points': int(self.points),
            'timesteps': int(self.timesteps),
            'elapsed': self.elapsed,
            'flops_per_point': self.flops_per_point,
            'traffic_per_point': self.traffic_per_point,
            'nmessages': int(self.nmessages),
            'nranks': self.nranks,
            'level': self.level,
            'gpointss': self.gpointss,
            'gflopss': self.gflopss,
            'oi': self.oi,
            'sections': {name: e.to_dict()
                         for name, e in self._sections.items()},
            'traces': [list(t) for t in self.traces],
            'comm_health': dict(self.comm_health),
            'build': dict(self.build),
            'job_id': self.job_id,
        }

    def save_json(self, path):
        """Write the advanced-mode JSON artifact (atomically: a reader
        or a crash mid-write never sees a truncated file)."""
        from ..ioutil import atomic_write_json
        atomic_write_json(path, self.to_dict())
        return path

    # -- rendering ----------------------------------------------------------------

    def table(self):
        """The per-section table as a list of text lines."""
        header = ('%-14s %9s %9s %9s %9s %9s %7s %11s'
                  % ('section', 'time[s]', 'min[s]', 'max[s]', 'avg[s]',
                     'GPts/s', 'msgs', 'bytes'))
        lines = [header, '-' * len(header)]
        for name, e in self._sections.items():
            lines.append('%-14s %9.4f %9.4f %9.4f %9.4f %9.3f %7d %11d'
                         % (name, e.time, e.time_min, e.time_max,
                            e.time_avg, e.gpointss, e.nmessages, e.bytes))
        return lines

    def __repr__(self):
        head = ('PerformanceSummary(%.4fs, %.3f GPts/s, %.2f GFlops/s, '
                'OI=%.2f' % (self.elapsed, self.gpointss, self.gflopss,
                             self.oi))
        if self.nranks > 1:
            head += ', ranks=%d' % self.nranks
        status = self.build.get('status')
        if status in ('hit', 'miss'):
            head += ', build=%s' % status
            if status == 'hit' and self.build.get('saved_seconds'):
                head += ' (saved %.3fs)' % self.build['saved_seconds']
        head += ')'
        if not self._sections:
            return head
        return '\n'.join([head] + ['  ' + ln for ln in self.table()])
