"""Deterministic section naming shared by all code-generation backends.

Both the executable NumPy backend (:mod:`repro.codegen.pybackend`) and
the C printer (:mod:`repro.codegen.cgen`) must agree on section names so
that a :class:`~repro.profiling.summary.PerformanceSummary` can be read
against either source.  Names follow the Devito convention:

* ``haloupdate0..N`` — halo-exchange steps (blocking updates and the
  ``begin`` halves of overlapped exchanges); hoisted preamble exchanges
  of time-invariant functions are numbered first;
* ``halowait0..N``   — the matching ``wait`` halves (full mode), sharing
  the ordinal of their ``begin``;
* ``section0..N``    — cluster computations (core and remainder regions
  of the full mode are distinct sections);
* ``sparse0..N``     — sparse-point injection/interpolation steps.
"""

from __future__ import annotations

__all__ = ['assign_section_names']


def assign_section_names(schedule):
    """Name every instrumentable point of ``schedule``.

    Returns ``(preamble_names, step_names)``: one name per hoisted
    preamble halo requirement, and one name per schedule step (aligned
    with ``schedule.steps``).
    """
    nsec = nhalo = nsparse = 0
    preamble_names = []
    for _ in schedule.preamble_halo:
        preamble_names.append('haloupdate%d' % nhalo)
        nhalo += 1

    step_names = []
    wait_names = {}
    for step in schedule.steps:
        if step.is_halo:
            if step.kind in ('update', 'begin'):
                name = 'haloupdate%d' % nhalo
                wait_names[step.uid] = 'halowait%d' % nhalo
                nhalo += 1
            else:  # 'wait'
                name = wait_names.get(step.uid, 'halowait%d' % nhalo)
        elif step.is_compute:
            name = 'section%d' % nsec
            nsec += 1
        else:
            name = 'sparse%d' % nsparse
            nsparse += 1
        step_names.append(name)
    return preamble_names, step_names
