"""The runtime timer threaded through generated kernels.

Generated code references the timer as ``__T`` and brackets each named
section with::

    __t = __T.now()
    ... section body ...
    __T.add('section0', __t, time)

``add`` accumulates (total seconds, call count) per section; in
*advanced* mode it additionally appends a ``(timestep, section, dt)``
trace record.  Each rank owns a private :class:`Timer` (operators are
constructed SPMD-style, one per rank thread), so no locking is needed.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ['Timer']


class Timer:
    """Accumulates per-section wall-clock time for one rank."""

    __slots__ = ('sections', 'traces', 'advanced')

    def __init__(self, advanced=False):
        #: section name -> [total_seconds, ncalls]
        self.sections = {}
        #: (timestep, section, seconds) tuples (advanced level only)
        self.traces = []
        self.advanced = bool(advanced)

    # the generated code calls these two -- keep them lean
    now = staticmethod(perf_counter)

    def add(self, name, t0, timestep=-1):
        """Charge ``now() - t0`` seconds to section ``name``."""
        dt = perf_counter() - t0
        acc = self.sections.get(name)
        if acc is None:
            acc = self.sections[name] = [0.0, 0]
        acc[0] += dt
        acc[1] += 1
        if self.advanced:
            self.traces.append((timestep, name, dt))
        return dt

    # -- bookkeeping -----------------------------------------------------------

    def reset(self):
        """Clear all measurements (called at the start of each apply)."""
        self.sections.clear()
        del self.traces[:]

    def total(self, name):
        acc = self.sections.get(name)
        return acc[0] if acc else 0.0

    def ncalls(self, name):
        acc = self.sections.get(name)
        return acc[1] if acc else 0

    def __repr__(self):
        body = ', '.join('%s=%.4fs/%d' % (k, v[0], v[1])
                         for k, v in sorted(self.sections.items()))
        return 'Timer(%s)' % body
