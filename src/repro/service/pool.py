"""The warm operator pool: solver instances leased per job.

A cold shot pays model construction, symbolic lowering and operator
compilation before a single timestep runs.  The pool amortizes all of
it twice over:

* **Instance reuse** — a finished job's solver (grid, compiled kernel,
  its private :class:`~repro.mpi.sim.SimWorld`) is reset to its initial
  state (bitwise, via snapshot/restore of every field) and leased to
  the next job with the same :meth:`~repro.service.spec.ShotSpec.
  structure_key`.  The warm path skips setup, lowering, fingerprinting
  and rehydration entirely.
* **Build-cache warm starts** — when no idle instance fits (first shot
  of a structure, or all instances busy), the new build goes through
  the shared :class:`~repro.buildcache.BuildCache`, so structurally
  identical shots never re-lower even when they can't share an
  instance.

Isolation contract: every instance owns a private single-rank
``SimWorld`` and is leased to **at most one job at a time**, so
concurrent jobs never share mutable state.  Per-job fault plans are
armed on the instance's world at checkout and disarmed at checkin.  An
instance whose job crashed (injected kill, numerical blowup, any
exception) is *discarded*, never returned to the pool — crash
containment is structural, not best-effort cleanup.
"""

from __future__ import annotations

import threading
import time as _time

import numpy as np

from .spec import kernel_setup

__all__ = ['OperatorPool', 'PooledSolver']


class PooledSolver:
    """One leased solver: spec structure + solver + private world.

    ``snapshot()`` is taken once, right after the build and before any
    timestep runs: it captures the bit-exact initial contents of every
    dense and sparse field (zero wavefields, the source wavelet, the
    physical model).  ``reset()`` restores that snapshot, so a reused
    instance starts from the same bits as a freshly built one — reused
    results are bit-identical to solo runs by construction.
    """

    def __init__(self, key, solver, time_range, comm, build_status,
                 build_seconds):
        self.key = key
        self.solver = solver
        self.time_range = time_range
        self.comm = comm
        self.world = comm.world
        #: build-cache outcome of the construction ('hit'/'miss'/...)
        self.build_status = build_status
        self.build_seconds = build_seconds
        self.jobs_served = 0
        self._snapshots = []
        self.snapshot()

    @property
    def op(self):
        return self.solver.op

    def snapshot(self):
        """Capture the initial bytes of every field of the operator."""
        self._snapshots = []
        for f in self.op.functions:
            self._snapshots.append((f.data.with_halo,
                                    f.data.with_halo.copy()))
        for s in self.op.sparse_functions:
            self._snapshots.append((s.data, np.array(s.data, copy=True)))

    def reset(self):
        """Restore the snapshot and scrub transport state for reuse."""
        for live, saved in self._snapshots:
            live[...] = saved
        self.world.reset()
        self.disarm()

    def arm(self, faults=None, disarmed=()):
        """Install a per-job fault plan on this instance's world."""
        self.world.faults = faults or None
        self.world.disarmed_kills = set(disarmed)
        self.world.pending_kills = set()

    def disarm(self):
        self.world.faults = None
        self.world.disarmed_kills = set()
        self.world.pending_kills = set()

    def __repr__(self):
        return ('PooledSolver(%s, build=%s, served=%d)'
                % ('/'.join(map(str, self.key[:2])), self.build_status,
                   self.jobs_served))


class OperatorPool:
    """Warm solver instances keyed by shot structure.

    Parameters
    ----------
    cache : None, BuildCache, bool or str
        The build cache shared by all pool builds; resolved exactly
        like the ``Operator(cache=...)`` kwarg (``None`` follows
        ``configuration['build_cache']``).
    max_idle_per_key : int, optional
        Retention bound on idle instances per structure key (surplus
        checkins are discarded).  ``None``: unbounded.
    """

    def __init__(self, cache=None, max_idle_per_key=None):
        from ..buildcache import get_cache
        self.cache = get_cache(cache)
        self.max_idle_per_key = max_idle_per_key
        self._idle = {}
        self._lock = threading.Lock()
        self._build_locks = {}
        self.stats = {'checkouts': 0, 'reuses': 0, 'warm_builds': 0,
                      'cold_builds': 0, 'discards': 0, 'donations': 0,
                      'build_seconds': 0.0}

    # -- lease lifecycle -----------------------------------------------------------

    def checkout(self, spec, faults=None, disarmed=()):
        """Lease an instance able to run ``spec`` (reuse or build).

        The instance is exclusively owned by the caller until
        :meth:`checkin`.  ``faults``/``disarmed`` arm the job's fault
        plan on the instance's private world.
        """
        # the effective execution backend joins the pooling key: a
        # pooled instance compiled for one backend must never serve a
        # job after configuration['backend'] changed under it
        from .. import configuration
        from ..codegen import jit
        key = (spec.structure_key(),
               jit.resolve_backend(configuration['backend'], warn=False))
        with self._lock:
            self.stats['checkouts'] += 1
            idle = self._idle.get(key)
            inst = idle.pop() if idle else None
            if inst is not None:
                self.stats['reuses'] += 1
        if inst is None:
            inst = self._build(key, spec)
        inst.arm(faults=faults, disarmed=disarmed)
        inst.jobs_served += 1
        return inst

    def checkin(self, inst, healthy=True):
        """Return a leased instance.

        ``healthy=False`` (the job raised) discards it: a world that
        carried a crash is never reused.  Healthy instances are reset
        to their initial snapshot and parked for the next job.
        """
        if not healthy:
            with self._lock:
                self.stats['discards'] += 1
            return
        inst.reset()
        with self._lock:
            idle = self._idle.setdefault(inst.key, [])
            cap = self.max_idle_per_key
            if cap is not None and len(idle) >= cap:
                self.stats['discards'] += 1
            else:
                idle.append(inst)

    def donate_idle(self, k):
        """Autoscaling donation: retire up to ``k`` idle instances and
        return how many were freed.

        Each retired instance releases the capacity of one simulated
        rank, which the scheduler hands to a hot distributed job as a
        reserve rank to grow onto (``repro.resilience.elastic``).  Only
        idle capacity is ever donated — leased instances are untouched,
        and a later checkout of the same structure simply rebuilds
        (warm, through the shared build cache).
        """
        k = int(k)
        donated = 0
        with self._lock:
            for key in list(self._idle):
                idle = self._idle[key]
                while idle and donated < k:
                    idle.pop()
                    donated += 1
                    self.stats['donations'] += 1
                if not idle:
                    del self._idle[key]
                if donated >= k:
                    break
        return donated

    # -- construction -------------------------------------------------------------

    def _build(self, key, spec):
        """Build a fresh instance (serialized per structure key so the
        first build of a structure is the only cold one — concurrent
        same-key builds would all miss the not-yet-populated cache)."""
        with self._lock:
            block = self._build_locks.setdefault(key, threading.Lock())
        with block:
            from ..mpi.sim import SimComm, SimWorld
            comm = SimComm(SimWorld(1, faults=False), 0)
            tic = _time.perf_counter()
            solver, time_range = kernel_setup(spec.kernel)(
                shape=spec.shape, spacing=spec.spacing, tn=spec.tn,
                space_order=spec.space_order, nbl=spec.nbl, comm=comm,
                nrec=spec.nrec, cache=self.cache
                if self.cache is not None else False)
            op = solver.op  # trigger the (possibly warm) build
            elapsed = _time.perf_counter() - tic
        status = op.cache_info()['status']
        with self._lock:
            if status == 'hit':
                self.stats['warm_builds'] += 1
            else:
                self.stats['cold_builds'] += 1
            self.stats['build_seconds'] += elapsed
        return PooledSolver(key, solver, time_range, comm, status,
                            elapsed)

    # -- introspection -------------------------------------------------------------

    @property
    def warm_hit_rate(self):
        """Fraction of checkouts served warm (reuse or cache hit)."""
        total = self.stats['checkouts']
        if not total:
            return 0.0
        return (self.stats['reuses'] + self.stats['warm_builds']) / total

    def idle_count(self, key=None):
        with self._lock:
            if key is not None:
                return len(self._idle.get(key, ()))
            return sum(len(v) for v in self._idle.values())

    def snapshot_stats(self):
        """A copy of the counters plus the derived hit rate."""
        with self._lock:
            out = dict(self.stats)
        out['warm_hit_rate'] = self.warm_hit_rate
        out['idle'] = self.idle_count()
        return out

    def clear(self):
        """Drop every idle instance (leased ones are unaffected)."""
        with self._lock:
            n = sum(len(v) for v in self._idle.values())
            self._idle.clear()
        return n

    def __repr__(self):
        s = self.snapshot_stats()
        return ('OperatorPool(checkouts=%d, reuses=%d, warm=%d, cold=%d, '
                'idle=%d)' % (s['checkouts'], s['reuses'],
                              s['warm_builds'], s['cold_builds'],
                              s['idle']))
