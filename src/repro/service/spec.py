"""Shot specifications: the unit of work of the survey service.

A seismic survey is thousands of *shots* — independent forward models
that differ only in source position, medium or discretization — run
through a handful of operator structures.  :class:`ShotSpec` captures
one shot as plain data (kernel + grid + geometry + priority), is JSON
round-trippable (the CLI queue is a directory of spec files), and knows
its :meth:`structure_key`: two specs with equal structure keys compile
to the same operator fingerprint, so the warm pool can serve one from
an instance built for the other.
"""

from __future__ import annotations

import json
import os
import uuid

from ..ioutil import atomic_write_json

__all__ = ['KERNELS', 'ShotSpec', 'new_job_id']

#: kernel name -> models setup factory (resolved lazily: importing the
#: service must not pull the whole models package)
KERNELS = ('acoustic', 'elastic', 'tti', 'viscoelastic')


def kernel_setup(kernel):
    """The ``models`` setup factory for ``kernel``."""
    from ..models import (acoustic_setup, elastic_setup, tti_setup,
                          viscoelastic_setup)
    return {'acoustic': acoustic_setup, 'elastic': elastic_setup,
            'tti': tti_setup, 'viscoelastic': viscoelastic_setup}[kernel]


def new_job_id():
    """A fresh collision-resistant job identifier."""
    return 'job-%s' % uuid.uuid4().hex[:12]


class ShotSpec:
    """One independent simulation job.

    Parameters
    ----------
    kernel : str
        One of ``'acoustic'``, ``'elastic'``, ``'tti'``,
        ``'viscoelastic'``.
    shape : tuple of int
        Grid points per dimension (2 or 3 values).
    tn : float
        Simulation end time in ms.
    space_order : int
        Spatial discretization order.
    nbl : int
        Absorbing boundary layer width in points.
    spacing : tuple of float, optional
        Grid spacing in m per dimension (default 10 m everywhere).
    nrec : int
        Number of surface receivers (0: no receivers).
    ranks : int
        Ranks of the job's private simulated world (default 1).  Jobs
        with ``ranks > 1`` run distributed; with scheduler autoscaling
        they can additionally grow onto ranks donated by idle pooled
        instances mid-run (results stay bit-identical either way).
    dt : float, optional
        Timestep override in ms (default: the model's CFL-stable dt).
    priority : int
        Scheduling priority; higher runs earlier.  Ties are FIFO.
    faults : str, optional
        Per-job fault-injection spec (``repro.mpi.faults.FaultPlan``
        grammar, e.g. ``"seed=1,kill=0@5"``).  Applied to this job's
        private :class:`~repro.mpi.sim.SimWorld` only — the batch and
        the global ``configuration['faults']`` are unaffected.
    max_retries : int, optional
        Per-job retry budget override (default: the scheduler's).
    job_id : str, optional
        Assigned by :meth:`SurveyScheduler.submit` when omitted.
    """

    _FIELDS = ('kernel', 'shape', 'tn', 'space_order', 'nbl', 'spacing',
               'nrec', 'ranks', 'dt', 'priority', 'faults', 'max_retries',
               'job_id')

    def __init__(self, kernel, shape, tn=100.0, space_order=4, nbl=10,
                 spacing=None, nrec=8, ranks=1, dt=None, priority=0,
                 faults=None, max_retries=None, job_id=None):
        if kernel not in KERNELS:
            raise ValueError("unknown kernel %r; accepted: %s"
                             % (kernel, ', '.join(KERNELS)))
        self.kernel = kernel
        self.shape = tuple(int(s) for s in shape)
        if len(self.shape) not in (2, 3) or min(self.shape) < 4:
            raise ValueError("shape must have 2 or 3 dimensions of >= 4 "
                             "points, got %r" % (shape,))
        self.tn = float(tn)
        if self.tn <= 0:
            raise ValueError("tn must be positive")
        self.space_order = int(space_order)
        if self.space_order < 2 or self.space_order % 2:
            raise ValueError("space_order must be an even integer >= 2")
        self.nbl = int(nbl)
        if self.nbl < 0:
            raise ValueError("nbl must be >= 0")
        if spacing is None:
            spacing = (10.0,) * len(self.shape)
        self.spacing = tuple(float(s) for s in spacing)
        if len(self.spacing) != len(self.shape):
            raise ValueError("spacing must match the grid dimensionality")
        self.nrec = int(nrec)
        if self.nrec < 0:
            raise ValueError("nrec must be >= 0")
        self.ranks = int(ranks)
        if self.ranks < 1:
            raise ValueError("ranks must be >= 1")
        self.dt = None if dt is None else float(dt)
        self.priority = int(priority)
        self.faults = faults if faults else None
        if self.faults is not None:
            # fail at submission, not mid-batch: parse eagerly
            from ..mpi.faults import FaultPlan
            FaultPlan.parse(self.faults)
        self.max_retries = None if max_retries is None \
            else max(int(max_retries), 0)
        self.job_id = job_id

    # -- identity ----------------------------------------------------------------

    def structure_key(self):
        """Everything that determines the compiled operator + geometry.

        Two specs with equal keys produce structurally identical solvers
        (same equations, grid, source/receiver layout), so a warm pooled
        instance built for one can serve the other after a data reset.
        ``dt``, ``priority``, ``faults`` and the retry budget are
        runtime-only and deliberately excluded.
        """
        return (self.kernel, self.shape, self.spacing, self.tn,
                self.space_order, self.nbl, self.nrec, self.ranks)

    # -- (de)serialization --------------------------------------------------------

    def to_dict(self):
        out = {}
        for name in self._FIELDS:
            value = getattr(self, name)
            if isinstance(value, tuple):
                value = list(value)
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, payload):
        if not isinstance(payload, dict):
            raise ValueError("shot spec payload must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ValueError("unknown shot spec field(s): %s"
                             % ', '.join(unknown))
        if 'kernel' not in payload or 'shape' not in payload:
            raise ValueError("shot spec needs at least 'kernel' and "
                             "'shape'")
        return cls(**payload)

    def save(self, path):
        """Atomically persist this spec as JSON (the CLI queue format)."""
        return atomic_write_json(os.fspath(path), self.to_dict())

    @classmethod
    def load(cls, path):
        with open(os.fspath(path), encoding='utf-8') as f:
            return cls.from_dict(json.load(f))

    def __eq__(self, other):
        return isinstance(other, ShotSpec) and \
            self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.structure_key())

    def __repr__(self):
        extras = []
        if self.priority:
            extras.append('priority=%d' % self.priority)
        if self.faults:
            extras.append('faults=%r' % self.faults)
        return 'ShotSpec(%s, %s, tn=%g, so=%d%s)' % (
            self.kernel, 'x'.join(map(str, self.shape)), self.tn,
            self.space_order, (', ' + ', '.join(extras)) if extras else '')
