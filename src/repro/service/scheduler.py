"""The shot-level batch scheduler: a queue of simulations over the pool.

``SurveyScheduler`` accepts independent :class:`~repro.service.spec.
ShotSpec` jobs, orders them by priority (ties FIFO), executes them over
a bounded worker pool of warm :class:`~repro.service.pool.
OperatorPool` instances, persists results through an
:class:`~repro.service.store.ArrayStore`, and rolls per-job profiling
summaries into a :class:`~repro.service.report.BatchReport`.

Crash containment: a job that dies — an injected kill, a numerical
blowup, any exception — fails alone.  Its pooled instance (and the
private ``SimWorld`` that carried the crash) is discarded; transport
and fault errors are retried within the job's budget with the fired
kill disarmed (the PR 2/3 machinery: ``SimWorld.disarmed_kills`` is
exactly what checkpoint-restart uses so a replayed timestep doesn't
re-die); anything else, or an exhausted budget, marks the job failed
while the rest of the batch runs to completion.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time as _time

from .. import configuration
from ..ioutil import atomic_write_json
from .pool import OperatorPool
from .report import BatchReport
from .spec import ShotSpec, kernel_setup, new_job_id
from .store import ArrayStore

__all__ = ['JobRecord', 'JobState', 'SurveyScheduler', 'run_shot_solo']


class JobState:
    """Job lifecycle states (plain strings, JSON-friendly)."""
    PENDING = 'pending'
    RUNNING = 'running'
    DONE = 'done'
    FAILED = 'failed'


def _gather_results(result):
    """Distill a solver ``forward()`` return into plain arrays.

    Every solver returns ``(rec_data, field(s)..., summary)``; the
    primary wavefield is the second element (a TimeFunction, or an
    indexable vector of them).
    """
    rec_data = result[0]
    wf = result[1]
    field = wf.data.gather() if hasattr(wf, 'data') \
        else wf[0].data.gather()
    return {'wavefield': field,
            'rec': None if rec_data is None else rec_data.copy()}


def _summary_perf(summary):
    """The per-job profiling distillate carried by the batch report."""
    perf = {'elapsed': summary.elapsed, 'timesteps': summary.timesteps,
            'points': summary.points, 'gpointss': summary.gpointss,
            'gflopss': summary.gflopss,
            'build_status': summary.build.get('status'),
            'sections': {}, 'section_kinds': {}}
    for name, entry in summary.items():
        perf['sections'][name] = entry.time
        perf['section_kinds'][entry.kind] = \
            perf['section_kinds'].get(entry.kind, 0.0) + entry.time
    return perf


def run_shot_solo(spec):
    """The oracle: run ``spec`` alone, cold, on a fresh private world.

    No pool, no cache, no scheduler — exactly what a lone
    ``Operator.apply`` of the same shot computes.  Returns
    ``{'wavefield': ndarray, 'rec': ndarray | None, 'summary': ...}``.
    The batch path must reproduce these arrays bit-for-bit.
    """
    from ..mpi.sim import SimComm, SimWorld
    comm = SimComm(SimWorld(1, faults=False), 0)
    solver, _ = kernel_setup(spec.kernel)(
        shape=spec.shape, spacing=spec.spacing, tn=spec.tn,
        space_order=spec.space_order, nbl=spec.nbl, comm=comm,
        nrec=spec.nrec, cache=False)
    kwargs = {}
    if spec.dt is not None:
        kwargs['dt'] = spec.dt
    result = solver.forward(**kwargs)
    out = _gather_results(result)
    out['summary'] = result[-1]
    return out


class JobRecord:
    """The mutable lifecycle record of one submitted job."""

    def __init__(self, job_id, spec, priority, seq, max_retries):
        self.job_id = job_id
        self.spec = spec
        self.priority = int(priority)
        self.seq = seq                      # submission order (FIFO tie-break)
        self.max_retries = int(max_retries)
        self.state = JobState.PENDING
        self.attempts = 0
        self.completions = 0                # exactly-once guard, tested
        self.error = None
        self.retry_errors = []
        self.disarmed = set()               # (rank, timestep) kills fired
        self.submitted_at = _time.time()
        self.started_at = None
        self.finished_at = None
        self.latency_seconds = None
        self.start_orders = []              # global start sequence numbers
        self.cache_statuses = []            # per-attempt pool build status
        self.result_keys = []
        self.perf = None

    @property
    def started_order(self):
        """Global start index of the first attempt (ordering tests)."""
        return self.start_orders[0] if self.start_orders else None

    def to_dict(self):
        return {
            'job_id': self.job_id,
            'spec': self.spec.to_dict(),
            'priority': self.priority,
            'state': self.state,
            'attempts': self.attempts,
            'completions': self.completions,
            'max_retries': self.max_retries,
            'error': self.error,
            'retry_errors': list(self.retry_errors),
            'disarmed_kills': sorted(list(k) for k in self.disarmed),
            'submitted_at': self.submitted_at,
            'started_at': self.started_at,
            'finished_at': self.finished_at,
            'latency_seconds': self.latency_seconds,
            'cache_statuses': list(self.cache_statuses),
            'result_keys': list(self.result_keys),
            'perf': self.perf,
        }


class SurveyScheduler:
    """Batched multi-shot execution over a warm operator pool.

    Parameters
    ----------
    workers : int, optional
        Bounded concurrency: at most this many jobs run at once
        (default ``configuration['service_workers']``).
    store : ArrayStore, str or None
        Result store.  A path builds an :class:`ArrayStore` there;
        ``None`` keeps results in memory (``result()`` serves both).
    pool : OperatorPool, optional
        The warm pool; built fresh (with ``cache``) when omitted.
    cache : None, BuildCache, bool or str
        Build-cache selector for an auto-built pool (``Operator``
        ``cache=`` semantics).
    max_retries : int, optional
        Default per-job retry budget for transport/fault failures
        (default ``configuration['service_retries']``).
    record_dir : str, optional
        When set, every job-state change is persisted as
        ``<record_dir>/<job_id>.json`` (the ``repro status`` surface).
    autoscale : bool, optional
        Elastic autoscaling of distributed jobs (``spec.ranks > 1``):
        at launch, idle pooled instances donate their ranks
        (:meth:`OperatorPool.donate_idle`) and the job grows onto them
        mid-run through the elastic repartitioner.  Results are
        bit-identical to the same job run solo — growth changes only
        where the bits are computed, never what they are.
    autoscale_max : int, optional
        Cap on donated ranks per job (default: ``spec.ranks``, i.e. a
        job can at most double).
    """

    def __init__(self, workers=None, store=None, pool=None, cache=None,
                 max_retries=None, record_dir=None, autoscale=False,
                 autoscale_max=None):
        self.workers = int(workers if workers is not None
                           else configuration['service_workers'])
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if store is None or isinstance(store, ArrayStore):
            self.store = store
        else:
            self.store = ArrayStore(store)
        self.pool = pool if pool is not None else OperatorPool(cache=cache)
        self.max_retries = int(max_retries if max_retries is not None
                               else configuration['service_retries'])
        self.record_dir = None if record_dir is None \
            else os.fspath(record_dir)
        self.autoscale = bool(autoscale)
        self.autoscale_max = None if autoscale_max is None \
            else int(autoscale_max)
        self._jobs = {}
        self._queue = []                    # heap of (-priority, seq, id)
        self._seq = itertools.count()
        self._start_seq = itertools.count()
        self._memory_results = {}
        self._running = 0
        self._cv = threading.Condition()

    # -- submission ----------------------------------------------------------------

    def submit(self, spec, priority=None):
        """Enqueue one shot; returns its job id.

        ``priority`` overrides ``spec.priority``; higher runs earlier,
        equal priorities run in submission order (FIFO fairness).
        """
        if not isinstance(spec, ShotSpec):
            raise TypeError("submit() expects a ShotSpec, got %r"
                            % (spec,))
        prio = int(priority if priority is not None else spec.priority)
        job_id = spec.job_id or new_job_id()
        with self._cv:
            if job_id in self._jobs:
                raise ValueError("duplicate job id %r" % (job_id,))
            seq = next(self._seq)
            retries = spec.max_retries if spec.max_retries is not None \
                else self.max_retries
            record = JobRecord(job_id, spec, prio, seq, retries)
            self._jobs[job_id] = record
            heapq.heappush(self._queue, (-prio, seq, job_id))
            self._cv.notify()
        self._persist(record)
        return job_id

    def submit_batch(self, specs, priority=None):
        return [self.submit(s, priority=priority) for s in specs]

    # -- the drain loop ------------------------------------------------------------

    def run(self):
        """Drain the queue with ``workers`` threads; returns the report.

        Returns when every submitted job reached a terminal state
        (``done`` or ``failed``) — a crashed job never takes the batch
        down with it.
        """
        tic = _time.perf_counter()
        threads = [threading.Thread(target=self._worker, daemon=True,
                                    name='survey-worker-%d' % i)
                   for i in range(self.workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = _time.perf_counter() - tic
        report = BatchReport(sorted(self._jobs.values(),
                                    key=lambda r: r.seq),
                             wall, self.pool.snapshot_stats())
        if self.record_dir is not None:
            report.save(os.path.join(self.record_dir, 'report.json'))
        return report

    def _worker(self):
        while True:
            with self._cv:
                while not self._queue and self._running:
                    self._cv.wait(timeout=0.05)
                if not self._queue:
                    if not self._running:
                        return
                    continue
                _, _, job_id = heapq.heappop(self._queue)
                record = self._jobs[job_id]
                record.state = JobState.RUNNING
                record.attempts += 1
                record.start_orders.append(next(self._start_seq))
                if record.started_at is None:
                    record.started_at = _time.time()
                self._running += 1
            try:
                self._execute(record)
            finally:
                with self._cv:
                    self._running -= 1
                    self._cv.notify_all()

    # -- job execution -------------------------------------------------------------

    def _execute(self, record):
        from ..mpi.faults import FaultPlan, RankKilledError
        from ..mpi.sim import RemoteRankError
        spec = record.spec
        if spec.ranks > 1:
            self._execute_distributed(record)
            return
        plan = FaultPlan.parse(spec.faults) if spec.faults else None
        tic = _time.perf_counter()
        try:
            inst = self.pool.checkout(spec, faults=plan,
                                      disarmed=record.disarmed)
        except Exception as exc:  # noqa: BLE001 - a bad spec fails alone
            self._finish_failed(record, exc, retryable=False)
            return
        record.cache_statuses.append(
            'reused' if inst.jobs_served > 1 else inst.build_status)
        healthy = True
        try:
            kwargs = {'job_id': record.job_id}
            if spec.dt is not None:
                kwargs['dt'] = spec.dt
            result = inst.solver.forward(**kwargs)
            # gather while the lease is held: checkin() resets the
            # instance's fields back to the initial snapshot
            arrays = _gather_results(result)
        except Exception as exc:  # noqa: BLE001 - contain, classify, retry
            healthy = False
            record.disarmed |= set(inst.world.pending_kills)
            from ..resilience.health import NumericalHealthError
            retryable = isinstance(exc, (RankKilledError, RemoteRankError,
                                         NumericalHealthError))
            self._finish_failed(record, exc, retryable=retryable)
            return
        finally:
            self.pool.checkin(inst, healthy=healthy)
        summary = result[-1]
        keys = []
        for name, array in arrays.items():
            if array is None:
                continue
            key = '%s/%s' % (record.job_id, name)
            if self.store is not None:
                self.store.put(key, array)
            else:
                self._memory_results[key] = array
            keys.append(key)
        latency = _time.perf_counter() - tic
        with self._cv:
            record.perf = _summary_perf(summary)
            record.result_keys = keys
            record.state = JobState.DONE
            record.completions += 1
            record.finished_at = _time.time()
            record.latency_seconds = latency
        self._persist(record)

    def _execute_distributed(self, record):
        """Run a ``ranks > 1`` job on its own multi-rank world; with
        autoscaling, grow mid-run onto ranks donated by idle pooled
        instances.

        The bit-identity contract of the batch path extends unchanged:
        a grown job computes exactly the arrays its solo run computes —
        the elastic repartitioner only moves where blocks live, and the
        post-grow schedule re-passes the static verifier before a
        single further step runs.
        """
        from ..mpi.faults import FaultPlan, RankKilledError
        from ..mpi.sim import RemoteRankError, SimComm, SimWorld
        from ..resilience.elastic import run_elastic
        from ..resilience.health import NumericalHealthError

        spec = record.spec
        plan = FaultPlan.parse(spec.faults) if spec.faults else None
        tic = _time.perf_counter()
        extra = 0
        if self.autoscale:
            cap = spec.ranks if self.autoscale_max is None \
                else self.autoscale_max
            extra = self.pool.donate_idle(cap)
        target = spec.ranks + extra
        cache = self.pool.cache if self.pool.cache is not None else False
        worlds = []

        def build(comm):
            solver, _ = kernel_setup(spec.kernel)(
                shape=spec.shape, spacing=spec.spacing, tn=spec.tn,
                space_order=spec.space_order, nbl=spec.nbl, comm=comm,
                nrec=spec.nrec, cache=cache)
            return solver

        def run_kwargs():
            kwargs = {'job_id': record.job_id}
            if spec.dt is not None:
                kwargs['dt'] = spec.dt
            return kwargs

        def active(comm):
            worlds.append(comm.world)
            solver = build(comm)
            kwargs = run_kwargs()
            if extra:
                kwargs['repartition'] = 'grow'
            result = solver.forward(**kwargs)
            # gather on the (possibly grown) communicator: collective,
            # so reserves must mirror this call in their epilogue
            arrays = _gather_results(result)
            return arrays, result[-1], solver.op.cache_info()['status']

        def reserve(lineage, orig):
            # build against a throwaway world of the *target* size so
            # the compiled schedule carries every halo exchange the
            # grown decomposition needs
            solver = build(SimComm(SimWorld(target, faults=False), 0))
            kwargs = run_kwargs()
            kwargs['_elastic_join'] = {'lineage': lineage, 'orig': orig}
            result = solver.forward(**kwargs)
            _gather_results(result)
            return None

        try:
            act, _ = run_elastic(active, spec.ranks,
                                 reserve_fn=reserve if extra else None,
                                 nreserve=extra,
                                 faults=plan if plan is not None else False,
                                 disarmed=record.disarmed)
        except Exception as exc:  # noqa: BLE001 - contain, classify, retry
            for w in worlds:
                record.disarmed |= set(w.pending_kills)
            retryable = isinstance(exc, (RankKilledError, RemoteRankError,
                                         NumericalHealthError))
            self._finish_failed(record, exc, retryable=retryable)
            return
        arrays, summary, build_status = act[0]
        record.cache_statuses.append(build_status)
        keys = []
        for name, array in arrays.items():
            if array is None:
                continue
            key = '%s/%s' % (record.job_id, name)
            if self.store is not None:
                self.store.put(key, array)
            else:
                self._memory_results[key] = array
            keys.append(key)
        latency = _time.perf_counter() - tic
        with self._cv:
            record.perf = _summary_perf(summary)
            record.perf['ranks'] = spec.ranks
            record.perf['grown_ranks'] = extra
            record.result_keys = keys
            record.state = JobState.DONE
            record.completions += 1
            record.finished_at = _time.time()
            record.latency_seconds = latency
        self._persist(record)

    def _finish_failed(self, record, exc, retryable):
        """Retry within budget (transport/fault errors only) or mark
        the job failed; either way the batch continues."""
        message = '%s: %s' % (type(exc).__name__, exc)
        with self._cv:
            if retryable and record.attempts <= record.max_retries:
                record.retry_errors.append(message)
                record.state = JobState.PENDING
                heapq.heappush(self._queue, (-record.priority,
                                             next(self._seq),
                                             record.job_id))
                self._cv.notify()
            else:
                record.state = JobState.FAILED
                record.error = message
                record.finished_at = _time.time()
        self._persist(record)

    # -- results / introspection ----------------------------------------------------

    def result(self, job_id):
        """The stored arrays of a completed job, keyed by short name."""
        record = self._jobs[job_id]
        if record.state != JobState.DONE:
            raise ValueError("job %s is %s, not done"
                             % (job_id, record.state))
        out = {}
        for key in record.result_keys:
            name = key.split('/', 1)[1]
            if self.store is not None:
                out[name] = self.store.get(key)
            else:
                out[name] = self._memory_results[key]
        return out

    def status(self, job_id=None):
        """One job's record dict, or {job_id: state} for the batch."""
        if job_id is not None:
            return self._jobs[job_id].to_dict()
        return {jid: r.state for jid, r in self._jobs.items()}

    @property
    def jobs(self):
        """Records in submission order."""
        return sorted(self._jobs.values(), key=lambda r: r.seq)

    def _persist(self, record):
        if self.record_dir is None:
            return
        os.makedirs(self.record_dir, exist_ok=True)
        atomic_write_json(os.path.join(self.record_dir,
                                       '%s.json' % record.job_id),
                          record.to_dict())

    def __repr__(self):
        states = {}
        for r in self._jobs.values():
            states[r.state] = states.get(r.state, 0) + 1
        return 'SurveyScheduler(workers=%d, jobs=%s)' % (
            self.workers, states or '{}')
