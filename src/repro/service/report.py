"""The aggregate batch report: per-job summaries rolled into one view.

Every job's :class:`~repro.profiling.PerformanceSummary` is distilled
into a small per-job record at completion; :class:`BatchReport` folds
those into batch-level metrics — shots/hour, p50/p99 job latency, the
warm-pool hit rate, per-kernel breakdowns and section-kind time totals
— and renders/persists them (the JSON twin is what ``repro status``
and the ``BENCH_serve`` artifact read).
"""

from __future__ import annotations

import os

from ..ioutil import atomic_write_json

__all__ = ['BatchReport', 'percentile']


def percentile(values, q):
    """Linear-interpolation percentile of ``values`` (q in [0, 100])."""
    data = sorted(float(v) for v in values)
    if not data:
        return 0.0
    if len(data) == 1:
        return data[0]
    pos = (len(data) - 1) * (float(q) / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


class BatchReport:
    """Immutable summary of one scheduler drain.

    Parameters
    ----------
    records : list of JobRecord
        Every job the batch touched, in submission order.
    wall_seconds : float
        End-to-end wall time of the drain.
    pool_stats : dict
        :meth:`OperatorPool.snapshot_stats` at drain end.
    """

    def __init__(self, records, wall_seconds, pool_stats):
        self.records = list(records)
        self.wall_seconds = float(wall_seconds)
        self.pool_stats = dict(pool_stats)

    # -- derived metrics -----------------------------------------------------------

    @property
    def njobs(self):
        return len(self.records)

    @property
    def completed(self):
        return [r for r in self.records if r.state == 'done']

    @property
    def failed(self):
        return [r for r in self.records if r.state == 'failed']

    @property
    def retries(self):
        return sum(max(r.attempts - 1, 0) for r in self.records)

    @property
    def shots_per_hour(self):
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.completed) * 3600.0 / self.wall_seconds

    @property
    def warm_hit_rate(self):
        return float(self.pool_stats.get('warm_hit_rate', 0.0))

    def latency_percentile(self, q):
        """Percentile of completed-job latency (seconds, submit-agnostic:
        measured from job start to job finish, across all attempts)."""
        return percentile([r.latency_seconds for r in self.completed
                           if r.latency_seconds is not None], q)

    def aggregate(self):
        """Batch-level rollup of the per-job profiling summaries."""
        out = {'points_updated': 0, 'timesteps': 0,
               'kernel_seconds': 0.0, 'kernels': {}, 'sections': {}}
        for r in self.completed:
            perf = r.perf or {}
            out['points_updated'] += int(perf.get('points', 0)) * \
                int(perf.get('timesteps', 0))
            out['timesteps'] += int(perf.get('timesteps', 0))
            out['kernel_seconds'] += float(perf.get('elapsed', 0.0))
            bucket = out['kernels'].setdefault(
                r.spec.kernel, {'jobs': 0, 'elapsed': 0.0,
                                'gpointss_sum': 0.0})
            bucket['jobs'] += 1
            bucket['elapsed'] += float(perf.get('elapsed', 0.0))
            bucket['gpointss_sum'] += float(perf.get('gpointss', 0.0))
            for kind, seconds in (perf.get('section_kinds') or {}).items():
                out['sections'][kind] = out['sections'].get(kind, 0.0) \
                    + float(seconds)
        for bucket in out['kernels'].values():
            bucket['gpointss_avg'] = bucket.pop('gpointss_sum') \
                / max(bucket['jobs'], 1)
        return out

    # -- output --------------------------------------------------------------------

    def to_dict(self):
        return {
            'njobs': self.njobs,
            'completed': len(self.completed),
            'failed': len(self.failed),
            'retries': self.retries,
            'wall_seconds': self.wall_seconds,
            'shots_per_hour': self.shots_per_hour,
            'p50_latency_seconds': self.latency_percentile(50),
            'p99_latency_seconds': self.latency_percentile(99),
            'warm_hit_rate': self.warm_hit_rate,
            'pool': self.pool_stats,
            'aggregate': self.aggregate(),
            'jobs': [r.to_dict() for r in self.records],
        }

    def save(self, path):
        """Atomically persist the JSON twin; returns the path."""
        return atomic_write_json(os.fspath(path), self.to_dict())

    def render(self):
        """Human-readable multi-line summary (the ``repro serve`` tail)."""
        lines = []
        lines.append('batch: %d job(s), %d done, %d failed, %d retr%s'
                     % (self.njobs, len(self.completed), len(self.failed),
                        self.retries, 'y' if self.retries == 1
                        else 'ies'))
        lines.append('wall time        : %.3f s' % self.wall_seconds)
        lines.append('throughput       : %.1f shots/hour'
                     % self.shots_per_hour)
        lines.append('job latency      : p50 %.1f ms, p99 %.1f ms'
                     % (self.latency_percentile(50) * 1e3,
                        self.latency_percentile(99) * 1e3))
        lines.append('warm pool        : %.1f%% warm (%d reused, %d '
                     'cache-warm, %d cold, %d discarded)'
                     % (self.warm_hit_rate * 100,
                        self.pool_stats.get('reuses', 0),
                        self.pool_stats.get('warm_builds', 0),
                        self.pool_stats.get('cold_builds', 0),
                        self.pool_stats.get('discards', 0)))
        agg = self.aggregate()
        for kernel in sorted(agg['kernels']):
            b = agg['kernels'][kernel]
            lines.append('  %-12s : %d job(s), %.3f s kernel time, '
                         '%.4f GPts/s avg'
                         % (kernel, b['jobs'], b['elapsed'],
                            b['gpointss_avg']))
        for r in self.failed:
            lines.append('  FAILED %s after %d attempt(s): %s'
                         % (r.job_id, r.attempts, r.error))
        return '\n'.join(lines)

    def __repr__(self):
        return ('BatchReport(%d jobs, %d done, %d failed, %.1f shots/h)'
                % (self.njobs, len(self.completed), len(self.failed),
                   self.shots_per_hour))
