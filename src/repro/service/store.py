"""Object-store-style array put/get with end-to-end integrity checking.

The service's inputs and results round-trip through an
:class:`ArrayStore` — the laptop-scale stand-in for the S3 bucket a
serverless imaging pipeline would use (cf. Witte et al.'s
``array_put``/``array_get``).  Each entry is one self-describing file::

    RPROARR1\\n
    {"dtype": "<f4", "shape": [101, 101], "crc32": ..., "nbytes": ...}\\n
    <raw little-endian payload bytes>

written atomically through :mod:`repro.ioutil` (tmp + rename), so
concurrent readers always see a complete previous or complete new
version.  Every ``get`` re-verifies the header geometry *and* a CRC-32
of the payload: a torn write from a crashed non-atomic writer, a
truncation or a flipped byte raises :class:`StoreCorruptionError`
instead of silently returning garbage.
"""

from __future__ import annotations

import json
import os
import re
import zlib

import numpy as np

from ..ioutil import atomic_write_bytes

__all__ = ['ArrayStore', 'StoreError', 'StoreCorruptionError']

_MAGIC = b'RPROARR1'
_PART = re.compile(r'^[A-Za-z0-9][A-Za-z0-9._-]*$')


class StoreError(RuntimeError):
    """Base class of array-store failures."""


class StoreCorruptionError(StoreError):
    """An entry exists but its bytes fail validation (torn write,
    truncation, bit flip, header tampering)."""


class ArrayStore:
    """A directory of CRC-checked array entries addressed by string keys.

    Keys are ``/``-separated paths of ``[A-Za-z0-9._-]`` segments (e.g.
    ``job-1f3a/wavefield``); segments map to subdirectories, so all of a
    job's arrays live under one prefix and can be listed or deleted
    together.
    """

    def __init__(self, directory):
        self.directory = os.path.abspath(os.fspath(directory))

    # -- keys --------------------------------------------------------------------

    def _path(self, key):
        parts = str(key).split('/')
        if not parts or not all(_PART.match(p) for p in parts):
            raise ValueError(
                "invalid store key %r: expected /-separated segments of "
                "[A-Za-z0-9._-] not starting with a dot" % (key,))
        return os.path.join(self.directory, *parts[:-1],
                            '%s.arr' % parts[-1])

    # -- put / get ---------------------------------------------------------------

    def put(self, key, array):
        """Atomically persist ``array`` under ``key``; returns ``key``.

        The dtype, shape and byte payload are preserved exactly: a
        subsequent :meth:`get` returns a bit-identical array.
        """
        array = np.ascontiguousarray(array)
        payload = array.tobytes()
        header = {'dtype': array.dtype.str,
                  'shape': list(array.shape),
                  'nbytes': len(payload),
                  'crc32': zlib.crc32(payload) & 0xffffffff}
        blob = b'%s\n%s\n%s' % (
            _MAGIC, json.dumps(header, sort_keys=True).encode('ascii'),
            payload)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        atomic_write_bytes(path, blob)
        return key

    def get(self, key):
        """Load the array stored under ``key``.

        Raises :class:`KeyError` when absent and
        :class:`StoreCorruptionError` when present but invalid — a bad
        entry is never silently returned.
        """
        path = self._path(key)
        try:
            with open(path, 'rb') as f:
                blob = f.read()
        except FileNotFoundError:
            raise KeyError(key) from None
        except OSError as exc:
            raise StoreError("cannot read %r: %s" % (key, exc)) from None
        return self._decode(key, blob)

    @staticmethod
    def _decode(key, blob):
        head, sep, rest = blob.partition(b'\n')
        if head != _MAGIC or not sep:
            raise StoreCorruptionError(
                "entry %r: bad magic (torn or foreign file)" % (key,))
        header_line, sep, payload = rest.partition(b'\n')
        if not sep:
            raise StoreCorruptionError(
                "entry %r: truncated before payload" % (key,))
        try:
            header = json.loads(header_line)
            dtype = np.dtype(header['dtype'])
            shape = tuple(int(s) for s in header['shape'])
            nbytes = int(header['nbytes'])
            crc = int(header['crc32'])
        except (ValueError, KeyError, TypeError):
            raise StoreCorruptionError(
                "entry %r: unreadable header" % (key,)) from None
        if len(payload) != nbytes:
            raise StoreCorruptionError(
                "entry %r: payload is %d bytes, header says %d (torn "
                "write?)" % (key, len(payload), nbytes))
        if zlib.crc32(payload) & 0xffffffff != crc:
            raise StoreCorruptionError(
                "entry %r: CRC mismatch (corrupted payload)" % (key,))
        expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes != expected:
            raise StoreCorruptionError(
                "entry %r: %d payload bytes do not fit dtype %s shape %s"
                % (key, nbytes, dtype.str, shape))
        return np.frombuffer(payload, dtype=dtype).reshape(shape).copy()

    # -- namespace ---------------------------------------------------------------

    def exists(self, key):
        return os.path.exists(self._path(key))

    def keys(self, prefix=None):
        """Sorted keys, optionally restricted to a ``/``-prefix."""
        out = []
        root = self.directory
        for dirpath, _, names in os.walk(root):
            for name in names:
                if not name.endswith('.arr'):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                key = rel[:-len('.arr')].replace(os.sep, '/')
                if prefix is None or key == prefix or \
                        key.startswith(prefix.rstrip('/') + '/'):
                    out.append(key)
        return sorted(out)

    def delete(self, key):
        """Remove one entry; returns True when something was deleted."""
        path = self._path(key)
        try:
            os.unlink(path)
        except FileNotFoundError:
            return False
        self._prune_empty_dirs(os.path.dirname(path))
        return True

    def clear(self):
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in self.keys():
            removed += bool(self.delete(key))
        return removed

    def nbytes(self, key=None):
        """On-disk bytes of one entry (or of the whole store)."""
        if key is not None:
            try:
                return os.path.getsize(self._path(key))
            except OSError:
                return 0
        return sum(self.nbytes(k) for k in self.keys())

    def prune(self, max_entries=None, max_bytes=None, prefix=None):
        """Retention sweep: drop oldest entries until the store fits.

        Entries are ranked by modification time (newest kept).  Returns
        the list of deleted keys.  With both limits ``None`` this is a
        no-op.
        """
        if max_entries is None and max_bytes is None:
            return []
        entries = []
        for key in self.keys(prefix):
            path = self._path(key)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((st.st_mtime, key, st.st_size))
        entries.sort(reverse=True)  # newest first
        kept_bytes = 0
        deleted = []
        for i, (_, key, size) in enumerate(entries):
            over_count = max_entries is not None and i >= max_entries
            over_bytes = max_bytes is not None and \
                kept_bytes + size > max_bytes
            if over_count or over_bytes:
                if self.delete(key):
                    deleted.append(key)
            else:
                kept_bytes += size
        return deleted

    def _prune_empty_dirs(self, dirname):
        root = self.directory
        while os.path.abspath(dirname) != root:
            try:
                os.rmdir(dirname)
            except OSError:
                return
            dirname = os.path.dirname(dirname)

    def __contains__(self, key):
        return self.exists(key)

    def __repr__(self):
        return 'ArrayStore(%r, %d entries)' % (self.directory,
                                               len(self.keys()))
