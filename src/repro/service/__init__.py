"""Batched multi-shot survey service.

A seismic survey is an embarrassingly parallel batch of independent
shots run through a handful of operator structures.  This package turns
that shape into a service: :class:`ShotSpec` describes one job,
:class:`SurveyScheduler` drains a priority/FIFO queue of them over a
warm :class:`OperatorPool` (solver instances reset bit-exactly between
jobs, build-cache warm starts underneath), results land in a
CRC-checked :class:`ArrayStore`, and the drain produces a
:class:`BatchReport`.  ``repro serve`` / ``submit`` / ``status`` are
the CLI surface.
"""

from .pool import OperatorPool, PooledSolver
from .report import BatchReport, percentile
from .scheduler import JobRecord, JobState, SurveyScheduler, run_shot_solo
from .spec import KERNELS, ShotSpec, new_job_id
from .store import ArrayStore, StoreCorruptionError, StoreError

__all__ = ['ArrayStore', 'BatchReport', 'JobRecord', 'JobState',
           'KERNELS', 'OperatorPool', 'PooledSolver', 'ShotSpec',
           'StoreCorruptionError', 'StoreError', 'SurveyScheduler',
           'new_job_id', 'percentile', 'run_shot_solo']
