"""C code emission (the paper's generated-code surface, Listing 11).

Two emitters live here:

* :func:`generate_c` — the faithful *printer* of the full Devito-style
  translation unit (OpenMP pragmas, pseudo-MPI halo callables); tests
  validate it structurally, it is never compiled.
* :func:`generate_c_steps` — the *executable* emitter behind
  ``backend='c'``: one exported C function per compute step, with
  compile-time-baked strides, halo offsets, per-rank iteration bounds
  and cache-blocked loop nests (:func:`~repro.ir.schedule.plan_blocking`).
  Halo exchanges, sparse scatter/gather, profiling, sanitizer and
  resilience hooks stay in the Python driver — only the hot loops move
  to C, so all three comm modes, certificates and fault machinery work
  unchanged.  Arithmetic is printed with
  :class:`~repro.symbolics.CExecPrinter`, which mirrors NumPy's
  weak-scalar (NEP-50) promotion semantics so a compiled step can agree
  with the NumPy backend bitwise.
"""

from __future__ import annotations

from ..ir.schedule import plan_blocking
from ..mpi import core_region, remainder_regions
from ..profiling import assign_section_names
from ..symbolics import (CExecPrinter, CPrinter, Indexed, Symbol,
                         unique_nodes)
from .common import cluster_union_widths, function_nb

__all__ = ['generate_c', 'generate_c_steps']

_IND = '  '


class _CEmitter:
    def __init__(self):
        self.lines = []
        self.level = 0

    def emit(self, text=''):
        self.lines.append(_IND * self.level + text if text else '')

    def open_block(self, header):
        self.emit(header)
        self.emit('{')
        self.level += 1

    def close_block(self):
        self.level -= 1
        self.emit('}')

    def source(self):
        return '\n'.join(self.lines) + '\n'


def _time_var_names(schedule):
    """Map (shift, nbuffers) -> C variable name t0/t1/t2..."""
    pairs = []

    def note(func, shift):
        if shift is None or not getattr(func, 'is_TimeFunction', False):
            return
        key = (shift, function_nb(func))
        if key not in pairs:
            pairs.append(key)

    for cluster in schedule.clusters:
        for eq in cluster.eqs:
            note(eq.function, eq.write.time_shift)
            for acc in eq.reads:
                note(acc.function, acc.time_shift)
        for _, rhs in cluster.temps:
            from ..ir.lowered import accesses_of
            for acc in accesses_of(rhs):
                note(acc.function, acc.time_shift)
    pairs.sort(key=lambda p: (p[0] % p[1]))
    return {key: 't%d' % i for i, key in enumerate(pairs)}


def _align_expr(expr, tvars):
    """Rewrite accesses: halo-aligned space indices, named time buffers."""
    mapping = {}
    for node in unique_nodes(expr):
        if not (node.is_Indexed and getattr(node.base,
                                            'is_DiscreteFunction', False)):
            continue
        func = node.base
        halo = dict(zip(func.space_dimensions, func.halo))
        new_indices = []
        for dim, idx in zip(func.dimensions, node.indices):
            if dim.is_Time:
                from ..ir.lowered import parse_index
                shift = parse_index(idx, dim)
                new_indices.append(Symbol(tvars[(shift,
                                                 function_nb(func))]))
            else:
                new_indices.append(idx + halo[dim][0])
        mapping[node] = Indexed(func, *new_indices)
    return expr.xreplace(mapping)


def _params(schedule):
    names = sorted(f.name for f in schedule.functions)
    scalars = sorted({d.spacing.name for d in schedule.grid.dimensions})
    return names, scalars


def generate_c(schedule, name='Kernel', profiling='off', sanitizer=False):
    """Emit the complete C translation unit for ``schedule``.

    With ``profiling`` != 'off', the paper-style timer surface is added:
    a ``struct profiler`` with one ``double`` per named section, passed
    as the trailing kernel argument, and ``START``/``STOP`` brackets
    around every section (gettimeofday, as Devito's C backend emits).

    With ``sanitizer`` the poisoned-halo hooks are printed too:
    ``__san_poison*`` fills every neighbor-owned ghost cell with NAN and
    ``__san_check`` scans written DOMAIN regions after each section —
    mirroring what the executable NumPy backend actually runs in
    sanitizer mode (:mod:`repro.analysis.sanitizer`).
    """
    grid = schedule.grid
    dist = grid.distributor
    printer = CPrinter()
    tvars = _time_var_names(schedule)
    em = _CEmitter()
    instrument = profiling != 'off'
    sanitize = bool(sanitizer and schedule.mpi_mode)
    preamble_names, step_names = assign_section_names(schedule)

    em.emit('#define _POSIX_C_SOURCE 200809L')
    em.emit('#include <stdlib.h>')
    em.emit('#include <math.h>')
    if schedule.mpi_mode:
        em.emit('#include "mpi.h"')
    em.emit('#include "omp.h"')
    if instrument:
        em.emit('#include <sys/time.h>')
        em.emit()
        em.emit('#define START(S) struct timeval start_ ## S , end_ ## S '
                '; gettimeofday(&start_ ## S , NULL);')
        em.emit('#define STOP(S,T) gettimeofday(&end_ ## S , NULL); '
                'T->S += (double)(end_ ## S .tv_sec '
                '- start_ ## S .tv_sec) '
                '+ (double)(end_ ## S .tv_usec '
                '- start_ ## S .tv_usec)/1000000;')
        em.emit()
        seen = []
        for sname in preamble_names + step_names:
            if sname not in seen:
                seen.append(sname)
        em.open_block('struct profiler')
        for sname in seen:
            em.emit('double %s;' % sname)
        em.close_block()
        em.lines[-1] += ' ;'
    em.emit()

    def start(sname):
        if instrument:
            em.emit('START(%s)' % sname)

    def stop(sname):
        if instrument:
            em.emit('STOP(%s,timers)' % sname)

    fnames, scalars = _params(schedule)

    if sanitize:
        # the poisoned-halo sanitizer surface (runtime REPRO-E101/E103)
        em.open_block('static void __san_poison(float *restrict vec, '
                      'MPI_Comm comm, int t)')
        em.emit('/* fill every ghost box owned by an existing neighbor '
                '(rank != MPI_PROC_NULL) with NAN, full allocated halo '
                'depth; physical-boundary ghosts are left untouched */')
        em.emit('(void)vec; (void)comm; (void)t;')
        em.close_block()
        em.emit()
        em.open_block('static void __san_check(const float *restrict vec, '
                      'const char *section, int t)')
        em.emit('/* scan the DOMAIN region of the written buffer for NAN; '
                'a hit means a stencil consumed an unrefreshed ghost '
                'cell */')
        em.emit('/* if (isnan(...)) { fprintf(stderr, "poisoned-halo read '
                'in %s\\n", section); MPI_Abort(comm, 101); } */')
        em.emit('(void)vec; (void)section; (void)t;')
        em.close_block()
        em.emit()

    # halo-exchange callables
    halo_ids = []
    for step in schedule.steps:
        if step.is_halo and step.kind in ('update', 'begin'):
            for req in step.exchanges:
                halo_ids.append((step.uid, req, step.kind))
    for uid, req, kind in halo_ids:
        _emit_halo_callable(em, schedule, uid, req, kind)

    # kernel signature
    args = ['float *restrict %s_vec' % n for n in fnames]
    args += ['const float %s' % s for s in scalars]
    args += ['const float dt', 'const int time_m', 'const int time_M']
    args += ['const int %s_m, const int %s_M' % (d.name, d.name)
             for d in grid.dimensions]
    if schedule.mpi_mode:
        args.append('MPI_Comm comm')
    if instrument:
        args.append('struct profiler * timers')
    em.open_block('int %s(%s)' % (name, ', '.join(args)))

    for _, rhs in schedule.scalar_assignments:
        pass  # emitted below with names
    for temp, rhs in schedule.scalar_assignments:
        em.emit('float %s = %s;' % (temp.name, printer.doprint(rhs)))
    if schedule.scalar_assignments:
        em.emit()

    if sanitize:
        for n in fnames:
            em.emit('__san_poison(%s_vec, comm, -1);' % n)
        em.emit()

    for req, sname in zip(schedule.preamble_halo, preamble_names):
        em.emit('/* begin %s (hoisted, time-invariant) */' % sname)
        start(sname)
        em.emit('haloupdate_pre_%s(%s_vec, comm);'
                % (req.function.name, req.function.name))
        stop(sname)
        em.emit('/* end %s */' % sname)

    # time loop with modulo buffer variables (Listing 11 style)
    inits = ', '.join('%s = (time + %d)%%(%d)' % (v, s, nb)
                      for (s, nb), v in tvars.items())
    steps = ', '.join('%s = (time + %d)%%(%d)' % (v, s, nb)
                      for (s, nb), v in tvars.items())
    header = ('for (int time = time_m%s; time <= time_M; time += 1%s)'
              % (', ' + inits if inits else '',
                 ', ' + steps if steps else ''))
    em.open_block(header)

    if sanitize:
        em.emit('/* sanitizer: buffer rotation invalidated every '
                'time-shifted halo */')
        for f in schedule.functions:
            if getattr(f, 'is_TimeFunction', False):
                em.emit('__san_poison(%s_vec, comm, time);' % f.name)

    def _san_check_writes(keys):
        for fname, tshift in sorted(keys, key=lambda k: (k[0], k[1] or 0)):
            em.emit('__san_check(%s_vec, "%s", time);' % (fname, sname))

    for step, sname in zip(schedule.steps, step_names):
        em.emit('/* begin %s */' % sname)
        start(sname)
        if step.is_halo:
            for req in step.exchanges:
                tvar = tvars.get((req.time_shift,
                                  function_nb(req.function)),
                                 't0') if req.time_shift is not None else ''
                fname = req.function.name
                if step.kind == 'update':
                    em.emit('haloupdate%d_%s(%s_vec, comm, %s);'
                            % (step.uid, fname, fname, tvar))
                elif step.kind == 'begin':
                    em.emit('MPI_Request reqs%d_%s[%d];'
                            % (step.uid, fname, 2 * 26))
                    em.emit('halobegin%d_%s(%s_vec, comm, %s, reqs%d_%s);'
                            % (step.uid, fname, fname, tvar, step.uid,
                               fname))
                else:
                    em.emit('MPI_Waitall(%d, reqs%d_%s, MPI_STATUSES_IGNORE);'
                            % (2 * 26, step.uid, fname))
                    em.emit('halounpack%d_%s(%s_vec, %s);'
                            % (step.uid, fname, fname, tvar))
        elif step.is_compute:
            _emit_compute(em, schedule, step, printer, tvars)
            if sanitize:
                _san_check_writes(step.cluster.write_keys)
        else:
            _emit_sparse_c(em, step, printer, tvars)
            if sanitize and step.field_access is not None:
                _san_check_writes([step.field_access.key])
        stop(sname)
        em.emit('/* end %s */' % sname)

    em.close_block()  # time loop
    em.emit('return 0;')
    em.close_block()  # kernel
    return em.source()


def _region_bounds_c(step, dist):
    """Loop bounds per dimension for a compute step (C emission)."""
    dims = step.cluster.grid.dimensions
    if step.region == 'domain':
        return [[(('%s_m' % d.name), ('%s_M' % d.name)) for d in dims]]
    widths = cluster_union_widths(step.cluster)
    if step.region == 'core':
        core = core_region(dist, widths)
        return [[('%d' % lo, '%d' % (hi - 1)) for lo, hi in core]]
    boxes = remainder_regions(dist, widths)
    return [[('%d' % lo, '%d' % (hi - 1)) for lo, hi in box]
            for box in boxes]


def _emit_compute(em, schedule, step, printer, tvars):
    dist = schedule.grid.distributor
    dims = step.cluster.grid.dimensions
    if step.region != 'domain':
        em.emit('/* %s region */' % step.region.upper())
    for bounds in _region_bounds_c(step, dist):
        for i, (dim, (lo, hi)) in enumerate(zip(dims, bounds)):
            if i == 0:
                em.emit('#pragma omp parallel for schedule(dynamic,1)')
            if i == len(dims) - 1:
                names = ','.join(sorted(f.name for f in
                                        step.cluster.functions))
                em.emit('#pragma omp simd aligned(%s:32)' % names)
            em.open_block('for (int %s = %s; %s <= %s; %s += 1)'
                          % (dim.name, lo, dim.name, hi, dim.name))
        for temp, rhs in step.cluster.temps:
            em.emit('float %s = %s;'
                    % (temp.name, printer.doprint(_align_expr(rhs, tvars))))
        for eq in step.cluster.eqs:
            em.emit('%s = %s;'
                    % (printer.doprint(_align_expr(eq.lhs, tvars)),
                       printer.doprint(_align_expr(eq.rhs, tvars))))
        for _ in dims:
            em.close_block()


def _emit_sparse_c(em, step, printer, tvars):
    sparse = step.op.sparse
    if step.kind == 'inject':
        em.open_block('for (int p = 0; p < %d; p += 1) /* inject %s */'
                      % (sparse.npoint, sparse.name))
        em.emit('/* multilinear scatter into %s (support-owner ranks '
                'only) */' % step.field_access.function.name)
        em.close_block()
    else:
        em.open_block('for (int p = 0; p < %d; p += 1) /* interpolate %s */'
                      % (sparse.npoint, sparse.name))
        em.emit('/* multilinear gather; partial sums reduced across '
                'sharing ranks */')
        em.close_block()


def _emit_halo_callable(em, schedule, uid, req, kind):
    """Emit one halo-exchange callable for function ``req.function``."""
    fname = req.function.name
    mode = schedule.mpi_mode
    ndim = schedule.grid.dim
    if kind == 'begin':
        header = ('static void halobegin%d_%s(float *restrict %s_vec, '
                  'MPI_Comm comm, int t, MPI_Request *reqs)'
                  % (uid, fname, fname))
    else:
        header = ('static void haloupdate%d_%s(float *restrict %s_vec, '
                  'MPI_Comm comm, int t)' % (uid, fname, fname))
    em.open_block(header)
    em.emit('int rank; MPI_Comm_rank(comm, &rank);')
    if mode == 'basic':
        em.emit('/* multi-step synchronous face exchanges: '
                '%d messages in %dD */' % (2 * ndim, ndim))
        for d, (wl, wr) in enumerate(req.widths):
            if not (wl or wr):
                continue
            em.emit('float *sendbuf%d = malloc(sizeof(float)*%d); '
                    '/* C-land runtime allocation */' % (d, max(wl, wr)))
            em.emit('MPI_Sendrecv(sendbuf%d, /*...*/ 1, MPI_FLOAT, '
                    'neighbor_pos[%d], %d, recvbuf%d, 1, MPI_FLOAT, '
                    'neighbor_neg[%d], %d, comm, MPI_STATUS_IGNORE);'
                    % (d, d, uid * 64 + d, d, d, uid * 64 + d))
            em.emit('MPI_Sendrecv(/* opposite direction */ sendbuf%d, 1, '
                    'MPI_FLOAT, neighbor_neg[%d], %d, recvbuf%d, 1, '
                    'MPI_FLOAT, neighbor_pos[%d], %d, comm, '
                    'MPI_STATUS_IGNORE);'
                    % (d, d, uid * 64 + d + 32, d, d, uid * 64 + d + 32))
            em.emit('free(sendbuf%d);' % d)
    else:
        nmsg = 3 ** ndim - 1
        em.emit('/* single-step neighborhood exchange incl. corners: '
                '%d messages in %dD; buffers preallocated in Python-land '
                '*/' % (nmsg, ndim))
        em.emit('int nreq = 0;')
        em.open_block('for (int n = 0; n < %d; n += 1)' % nmsg)
        em.emit('#pragma omp parallel for /* threaded pack */')
        em.emit('/* pack_halo(%s_vec, sendbufs[n], n, t); */' % fname)
        em.emit('MPI_Isend(sendbufs[n], counts[n], MPI_FLOAT, '
                'neighbors[n], tags[n], comm, &reqs[nreq++]);')
        em.emit('MPI_Irecv(recvbufs[n], counts[n], MPI_FLOAT, '
                'neighbors[n], rtags[n], comm, &reqs[nreq++]);')
        em.close_block()
        if kind != 'begin':
            em.emit('MPI_Waitall(nreq, reqs, MPI_STATUSES_IGNORE);')
            em.emit('#pragma omp parallel for /* threaded unpack */')
            em.emit('/* unpack_halo(%s_vec, recvbufs, t); */' % fname)
    em.close_block()
    em.emit()
    if kind == 'begin':
        em.open_block('static void halounpack%d_%s(float *restrict %s_vec, '
                      'int t)' % (uid, fname, fname))
        em.emit('#pragma omp parallel for /* threaded unpack */')
        em.emit('/* unpack_halo(%s_vec, recvbufs, t); */' % fname)
        em.close_block()
        em.emit()


# -- the executable emitter (backend='c') ----------------------------------------


def _layout(func):
    """Compile-time allocation layout of one function on this rank.

    Returns ``(shape, strides)`` of the full local allocation (halo
    included, leading time-buffer dimension for TimeFunctions) — must
    match :class:`repro.mpi.data.Data` exactly, since the compiled step
    indexes the NumPy buffer through a raw pointer.
    """
    dist = func.grid.distributor
    shape = [int(dist.shape_local[d]) + hl + hr
             for d, (hl, hr) in enumerate(func.halo)]
    if getattr(func, 'is_TimeFunction', False):
        shape = [function_nb(func)] + shape
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return tuple(shape), tuple(strides)


def _flat_index_printer(tvars, used_tvars):
    """CExecPrinter index callback: flattened pointer arithmetic.

    An access ``u[t+s, x+a, y+b]`` becomes
    ``u[t1*S0 + (x + a + H)*S1 + (y + b + H)]`` with every stride and
    halo offset folded to a literal; ``used_tvars`` collects the
    ``(shift, nbuffers)`` pairs the step consumes (they become its
    ``int`` arguments).
    """
    from ..ir.lowered import parse_index

    def index_printer(printer, indexed):
        func = indexed.base
        _, strides = _layout(func)
        sdims = list(func.space_dimensions)
        halo = dict(zip(sdims, func.halo))
        terms = []
        const = 0
        for dim, idx, stride in zip(func.dimensions, indexed.indices,
                                    strides):
            off = parse_index(idx, dim)
            if dim.is_Time:
                key = (off, function_nb(func))
                used_tvars.add(key)
                terms.append('%s*%d' % (tvars[key], stride))
            else:
                shift = off + halo[dim][0]
                if stride == 1:
                    terms.append(dim.name)
                    const += shift
                elif shift:
                    terms.append('(%s + %d)*%d' % (dim.name, shift, stride))
                else:
                    terms.append('%s*%d' % (dim.name, stride))
        if const:
            terms.append('%d' % const)
        return '%s[%s]' % (func.name, ' + '.join(terms))

    return index_printer


def _scalar_assignment_kinds(schedule):
    """Runtime NumPy kind ('w' weak float / 's' strong np.float64) of
    every hoisted scalar temporary, mirroring what the driver's Python
    preamble actually produces (``np.*`` calls return np.float64)."""
    from fractions import Fraction

    from ..symbolics import AppliedFunction
    from ..symbolics.expr import Float, Integer, Rational

    kinds = {}

    def kind_of(e):
        if isinstance(e, AppliedFunction):
            return 's'
        if e.is_Pow:
            exp = e.exp
            if isinstance(exp, (Integer, Rational, Float)):
                frac = Fraction(abs(exp.value))
                if frac == Fraction(1, 2):
                    return 's' if kind_of(e.base) != 's' else 's'
                if frac.denominator == 1 and 1 <= frac.numerator <= 3:
                    return kind_of(e.base)
            return 's' if any(kind_of(a) == 's' for a in e.args) else 'w'
        if e.is_Symbol:
            return kinds.get(e.name, 'w')
        if e.args:
            return 's' if any(kind_of(a) == 's' for a in e.args) else 'w'
        return 'w'

    for temp, rhs in schedule.scalar_assignments:
        kinds[temp.name] = kind_of(rhs)
    return kinds


def _free_scalars(expr, skip):
    """Names of free scalar symbols of ``expr`` (array indices, which
    only hold dimension symbols, are excluded)."""
    out = set()
    stack = [expr]
    while stack:
        e = stack.pop()
        if e.is_Indexed or getattr(e, 'is_DiscreteFunction', False):
            continue
        if e.is_Symbol:
            if e.name not in skip:
                out.add(e.name)
            continue
        stack.extend(e.args)
    return out


def _step_boxes(step, dist):
    """Compile-time iteration boxes of one compute step (same geometry
    as the NumPy backend's ``_region_boxes``)."""
    if step.region == 'domain':
        return [tuple((0, int(n)) for n in dist.shape_local)]
    widths = cluster_union_widths(step.cluster)
    if step.region == 'core':
        boxes = [core_region(dist, widths)]
    else:
        boxes = remainder_regions(dist, widths)
    return [tuple((int(lo), int(hi)) for lo, hi in box)
            for box in boxes if all(hi > lo for lo, hi in box)]


def _emit_blocked_nest(em, dims, box, body):
    """One (possibly cache-blocked) loop nest over ``box``."""
    plan = plan_blocking(box)
    closes = 0
    for dim, (lo, hi), block in zip(dims, box, plan):
        n = dim.name
        if block is None:
            em.open_block('for (int %s = %d; %s < %d; %s += 1)'
                          % (n, lo, n, hi, n))
            closes += 1
        else:
            em.open_block('for (int %sb = %d; %sb < %d; %sb += %d)'
                          % (n, lo, n, hi, n, block))
            em.emit('const int %se = %sb + %d < %d ? %sb + %d : %d;'
                    % (n, n, block, hi, n, block, hi))
            em.open_block('for (int %s = %sb; %s < %se; %s += 1)'
                          % (n, n, n, n, n))
            closes += 2
    body()
    for _ in range(closes):
        em.close_block()


def generate_c_steps(schedule, dtype=None):
    """Emit the executable per-step C translation unit for ``schedule``.

    Returns ``(source, steps)`` where ``steps`` maps a compute step's
    schedule index to::

        {'name': 'step<sid>',            # exported C symbol
         'sig':  ['p3', 'd', 'i', ...],  # ctypes binding codes
         'call': ['u', 'r0', '(time + 1) % 2', ...]}  # driver operands

    Dense fields are passed as raw float/double pointers (the driver
    hands the NumPy arrays straight to ctypes), every scalar as a
    ``double`` (weak-scalar semantics keep pure-scalar math in double —
    see :class:`~repro.symbolics.CExecPrinter`), and modulo time-buffer
    indices as ``int``.  Loop bounds, strides and halo offsets are baked
    per rank; the decomposition is part of the build fingerprint.
    """
    grid = schedule.grid
    dist = grid.distributor
    if dtype is None:
        dtype = grid.dtype
    import numpy as np
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError("compiled backend supports float32/float64 "
                         "grids, not %s" % dtype)
    for cl in schedule.clusters:
        for f in cl.functions:
            if np.dtype(f.dtype) != dtype:
                raise ValueError(
                    "compiled backend needs a uniform kernel dtype; "
                    "%s is %s on a %s grid"
                    % (f.name, np.dtype(f.dtype), dtype))
    single = dtype == np.dtype(np.float32)
    ctype = 'float' if single else 'double'
    tvars = _time_var_names(schedule)
    scalar_kinds = _scalar_assignment_kinds(schedule)

    em = _CEmitter()
    em.emit('/* repro compiled backend: one function per compute step; '
            'strict IEEE */')
    em.emit('#include <math.h>')
    em.emit()

    steps = {}
    for sid, step in enumerate(schedule.steps):
        if not step.is_compute:
            continue
        boxes = _step_boxes(step, dist)
        if not boxes:
            continue
        cluster = step.cluster
        dims = cluster.grid.dimensions
        name = 'step%d' % sid
        funcs = sorted(cluster.functions, key=lambda f: f.name)
        temps = [t.name for t, _ in cluster.temps]
        scalars = set()
        for _, rhs in cluster.temps:
            scalars |= _free_scalars(rhs, temps)
        for eq in cluster.eqs:
            scalars |= _free_scalars(eq.rhs, temps)
        scalars = sorted(scalars)

        used_tvars = set()
        printer = CExecPrinter(
            _flat_index_printer(tvars, used_tvars), dtype=str(dtype),
            symbol_kinds={s: scalar_kinds.get(s, 'w') for s in scalars})
        body_lines = []
        for temp, rhs in cluster.temps:
            text, kind = printer.doprint_kinded(rhs)
            decl = ctype if kind == 'A' else 'double'
            body_lines.append('const %s %s = %s;' % (decl, temp.name,
                                                     text))
            printer.symbol_kinds[temp.name] = kind if kind != 's' else 's'
        for eq in cluster.eqs:
            lhs_text = printer.doprint(eq.lhs)
            body_lines.append('%s = %s;' % (lhs_text,
                                            printer.doprint(eq.rhs)))

        targs = sorted(used_tvars, key=lambda k: tvars[k])
        args = ['%s *restrict %s' % (ctype, f.name) for f in funcs]
        args += ['const double %s' % s for s in scalars]
        args += ['const int %s' % tvars[k] for k in targs]
        em.open_block('void %s(%s)' % (name, ', '.join(args)))
        if step.region != 'domain':
            em.emit('/* %s region */' % step.region.upper())
        for box in boxes:
            _emit_blocked_nest(em, dims, box,
                               lambda: [em.emit(ln) for ln in body_lines])
        em.close_block()
        em.emit()

        sig = ['p%d' % len(_layout(f)[0]) for f in funcs]
        sig += ['d'] * len(scalars) + ['i'] * len(targs)
        call = [f.name for f in funcs] + list(scalars)
        call += ['(time + %d) %% %d' % (shift, nb) for shift, nb in targs]
        steps[sid] = {'name': name, 'sig': sig, 'call': call}

    return em.source(), steps
