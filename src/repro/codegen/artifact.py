"""Serializable kernel artifacts: the *value* side of the build cache.

A cold ``Operator`` build runs the whole pipeline (lowering, Cluster IR,
rewrites, halo placement, codegen, optionally the static verifier).
Everything the resulting :class:`~repro.codegen.pybackend.PyKernel`
needs at run time is either

* **pure data** that is a deterministic function of the build inputs —
  the generated source, the per-step source line map, the section
  metadata, exchanger geometry (widths/tags), flop and traffic counts,
  the verifier's diagnostics — or
* a **live object** of the calling program — grids, functions, sparse
  functions, constants — that must *not* be serialized (it owns runtime
  state such as ``data`` buffers and the MPI communicator).

:class:`KernelArtifact` captures the first kind as a JSON-able payload
and rebuilds the second kind by *rebinding*: the build-cache fingerprint
traversal (:mod:`repro.symbolics.hashing`) collects every function /
sparse function / constant by name, and :meth:`rehydrate` resolves the
recorded names against those live objects, reconstructs the exchangers
through :func:`~repro.mpi.halo.make_exchanger`, re-validates the tag
spaces, recompiles the cached source and returns a ready ``PyKernel`` —
without re-running lowering, optimization, scheduling or verification.

Any inconsistency (missing name, torn payload, version drift) raises
:class:`ArtifactError`; the cache treats that as a miss and falls back
to a cold build, so a bad cache entry can never produce a wrong kernel.
"""

from __future__ import annotations

from ..mpi import HaloWidths, check_tag_spaces, make_exchanger
from ..profiling import Profiler, SectionMeta

__all__ = ['ARTIFACT_VERSION', 'ArtifactError', 'KernelArtifact']

#: bump on any change to the payload layout below (old entries are then
#: rejected by :meth:`KernelArtifact.from_payload` and rebuilt cold).
#: 2: the static communication certificate joined the payload.
#: 3: the compiled execution backend joined the payload (backend,
#:    C source, shared-object path + checksum, per-step call metadata).
ARTIFACT_VERSION = 3

_REQUIRED_KEYS = ('version', 'source', 'step_lines', 'sections',
                  'exchangers', 'mpi_mode', 'sanitizer_writes',
                  'functions', 'sparse_functions', 'sparse_steps',
                  'constants', 'uses_dt', 'flops_per_point',
                  'traffic_per_point', 'analysis', 'certificate',
                  'build_seconds', 'backend', 'c_source', 'so_path',
                  'so_checksum', 'c_steps')


class ArtifactError(RuntimeError):
    """A cached artifact cannot be (de)serialized or rebound.

    Raised on version drift, malformed payloads, or live objects that no
    longer match the recorded names.  The build cache catches this and
    silently falls back to a cold build.
    """


class _SanitizerScheduleShim:
    """The minimal schedule surface :class:`HaloSanitizer` consumes."""

    def __init__(self, grid, mpi_mode, functions):
        self.grid = grid
        self.mpi_mode = mpi_mode
        self.functions = functions


class KernelArtifact:
    """All build products of one operator, as plain data.

    Construct via :meth:`extract` (from a cold-built operator) or
    :meth:`from_payload` (from a cache entry); turn back into a live
    kernel with :meth:`rehydrate`.
    """

    def __init__(self, payload):
        missing = [k for k in _REQUIRED_KEYS if k not in payload]
        if missing:
            raise ArtifactError("artifact payload missing keys: %s"
                                % ', '.join(missing))
        if payload['version'] != ARTIFACT_VERSION:
            raise ArtifactError(
                "artifact version %r != expected %d"
                % (payload['version'], ARTIFACT_VERSION))
        self.payload = payload
        #: memoized compiled code object (in-process tier only; never
        #: serialized — marshal output is interpreter-version-bound)
        self._code = None
        #: memoized dlopen handle of the compiled backend's .so (keeps
        #: the mapping alive across rehydrations of one artifact)
        self._lib = None

    # -- convenience accessors ---------------------------------------------------

    @property
    def source(self):
        return self.payload['source']

    @property
    def build_seconds(self):
        return float(self.payload['build_seconds'])

    @property
    def nbytes(self):
        """Approximate in-memory payload weight (source dominates)."""
        import json
        return len(json.dumps(self.payload))

    # -- extraction (cold build -> data) ------------------------------------------

    @classmethod
    def extract(cls, op, build_seconds=0.0):
        """Capture a cold-built ``Operator``'s kernel as an artifact."""
        kernel = op.kernel
        schedule = op.schedule
        sections = []
        for meta in op.profiler.sections.values():
            sections.append({
                'name': meta.name,
                'kind': meta.kind,
                'points': meta.points,
                'flops_per_point': meta.flops_per_point,
                'traffic_per_point': meta.traffic_per_point,
                'exchanger_keys': list(meta.exchanger_keys),
            })
        exchangers = []
        for key, ex in kernel.exchangers.items():
            exchangers.append({
                'key': key,
                'function': key.split('_', 1)[1],
                'widths': [list(w) for w in ex.widths],
                'tag_base': int(ex.tag_base),
            })
        san = kernel.sanitizer
        sanitizer_writes = None
        if san is not None:
            sanitizer_writes = {
                section: [[name, tshift] for name, tshift in keys]
                for section, keys in san._writes.items()}
        analysis = None
        if op.analysis is not None:
            analysis = [[d.code, d.message, d.step_index, d.where]
                        for d in op.analysis]
        certificate = None
        if getattr(op, 'certificate', None) is not None:
            certificate = op.certificate.to_payload()
        payload = {
            'version': ARTIFACT_VERSION,
            'source': kernel.source,
            'step_lines': [[int(sid), int(a), int(b)]
                           for sid, (a, b) in kernel.step_lines.items()],
            'sections': sections,
            'exchangers': exchangers,
            'mpi_mode': schedule.mpi_mode,
            'sanitizer_writes': sanitizer_writes,
            'functions': [f.name for f in schedule.functions],
            'sparse_functions': [s.name for s in schedule.sparse_functions],
            'sparse_steps': [[int(sid), step.op.sparse.name]
                             for sid, step in enumerate(schedule.steps)
                             if step.is_sparse],
            'constants': sorted(c.name for c in op._constants()),
            'uses_dt': bool(op._uses_dt()),
            'flops_per_point': op._flops_per_point,
            'traffic_per_point': op._traffic_per_point,
            'analysis': analysis,
            'certificate': certificate,
            'build_seconds': float(build_seconds),
            # compiled-backend products ('numpy' builds carry Nones).
            # so_path is rewritten by the disk cache tier when it copies
            # the object next to the JSON entry.
            'backend': kernel.backend,
            'c_source': kernel.c_source,
            'so_path': kernel.so_path,
            'so_checksum': kernel.so_checksum,
            'c_steps': kernel.c_steps,
        }
        return cls(payload)

    # -- (de)serialization ----------------------------------------------------------

    def to_payload(self):
        """The JSON-able dict (what the disk tier stores)."""
        return self.payload

    @classmethod
    def from_payload(cls, payload):
        if not isinstance(payload, dict):
            raise ArtifactError("artifact payload is not a mapping")
        return cls(payload)

    # -- rehydration (data -> live kernel) --------------------------------------------

    def rehydrate(self, symtab, progress=False, profiler=None):
        """Rebuild a ready ``PyKernel`` against the live objects.

        ``symtab`` is the :class:`~repro.symbolics.hashing.TokenEmitter`
        of the fingerprint traversal — it carries the live functions,
        sparse functions and constants by name.  Raises
        :class:`ArtifactError` when the recorded names cannot be
        resolved; the caller falls back to a cold build.
        """
        from ..dsl.sparse import PrecomputedSparseData
        from .pybackend import PyKernel

        p = self.payload
        try:
            functions = [symtab.functions[n] for n in p['functions']]
            sparse = [symtab.sparse[n] for n in p['sparse_functions']]
        except KeyError as e:
            raise ArtifactError("artifact references unknown object %s"
                                % (e,)) from None
        if not functions:
            raise ArtifactError("artifact carries no functions")
        grid = functions[0].grid
        dist = grid.distributor
        mode = p['mpi_mode']
        by_name = {f.name: f for f in functions}

        # exchangers: geometry from the artifact, topology from the live
        # distributor (same by construction: it is part of the cache key)
        exchangers = {}
        for spec in p['exchangers']:
            func = by_name.get(spec['function'])
            if func is None:
                raise ArtifactError("exchanger %r names unknown function %r"
                                    % (spec['key'], spec['function']))
            widths = HaloWidths([tuple(w) for w in spec['widths']])
            exchangers[spec['key']] = make_exchanger(
                mode or 'basic', dist, func.halo, widths,
                tag_base=int(spec['tag_base']), name=spec['key'],
                **({'progress': progress} if mode == 'full' else {}))
        check_tag_spaces(exchangers)

        # sparse plans: always rebuilt live (coordinates are runtime data)
        sparse_by_name = {s.name: s for s in sparse}
        sparse_plans = {}
        sparse_npoints = {}
        for sid, sname in p['sparse_steps']:
            s = sparse_by_name.get(sname)
            if s is None:
                raise ArtifactError("sparse step %d names unknown sparse "
                                    "function %r" % (sid, sname))
            plan = PrecomputedSparseData(s)
            sparse_plans[int(sid)] = {
                'pids': plan.point_ids,
                'w': plan.weights,
                'idx': plan.indices,
                'data': s.data,
            }
            sparse_npoints[int(sid)] = len(s.routing.local_points)

        # section registry: replayed in emission order; sparse point
        # counts are recomputed from the live routing (runtime data)
        if profiler is None:
            profiler = Profiler('off')
        sparse_sids = iter(sorted(sparse_npoints))
        for meta in p['sections']:
            npoints = 0
            if meta['kind'] == 'sparse':
                try:
                    npoints = sparse_npoints[next(sparse_sids)]
                except StopIteration:
                    raise ArtifactError(
                        "more sparse sections than sparse steps") from None
            profiler.register(SectionMeta(
                meta['name'], meta['kind'], points=meta['points'],
                flops_per_point=meta['flops_per_point'],
                traffic_per_point=meta['traffic_per_point'],
                exchanger_keys=tuple(meta['exchanger_keys']),
                sparse_npoints=npoints))

        # sanitizer: rebuilt from the live grid/functions, write map replayed
        san = None
        if p['sanitizer_writes'] is not None:
            from ..analysis.sanitizer import HaloSanitizer
            san = HaloSanitizer(_SanitizerScheduleShim(grid, mode,
                                                       functions))
            if not san.enabled:
                raise ArtifactError("sanitizer recorded but not "
                                    "rebuildable on this grid")
            for section, keys in p['sanitizer_writes'].items():
                san.register_writes(section,
                                    [(name, tshift) for name, tshift in keys])

        # compiled backend: re-attach the shared object.  The checksum
        # is the tamper seal — a deleted, truncated or modified .so
        # demotes the hit to a cold rebuild (never run stale or foreign
        # code, never silently recompile under a 'hit' status).
        backend = p.get('backend') or 'numpy'
        c_funcs = None
        if backend == 'c':
            import os
            from . import jit
            so_path = p['so_path']
            if not so_path or not os.path.isfile(so_path):
                raise ArtifactError("compiled artifact's shared object "
                                    "is missing: %r" % (so_path,))
            if jit.file_checksum(so_path) != p['so_checksum']:
                raise ArtifactError("compiled artifact's shared object "
                                    "fails its checksum: %r" % (so_path,))
            try:
                self._lib, c_funcs = jit.load_steps(
                    so_path,
                    {m['name']: m['sig']
                     for m in (p['c_steps'] or {}).values()},
                    grid.dtype)
            except jit.JITError as e:
                raise ArtifactError(str(e)) from None

        # compile + exec the cached source (memoized per artifact object)
        source = p['source']
        if self._code is None:
            self._code = compile(source, '<repro-jit-kernel>', 'exec')
        namespace = {}
        if san is not None:
            namespace['__SAN'] = san
        if c_funcs is not None:
            namespace['__C'] = c_funcs
        exec(self._code, namespace)  # noqa: S102 - the cached JIT artifact
        func = namespace.get('__kernel')
        if func is None:
            raise ArtifactError("cached source defines no __kernel")

        step_lines = {int(sid): (int(a), int(b))
                      for sid, a, b in p['step_lines']}
        return PyKernel(source, func, exchangers, sparse_plans,
                        schedule=None, profiler=profiler,
                        step_lines=step_lines, sanitizer=san,
                        backend=backend, c_source=p['c_source'],
                        so_path=p['so_path'],
                        so_checksum=p['so_checksum'],
                        c_steps=p['c_steps'],
                        lib=getattr(self, '_lib', None))

    def rehydrate_analysis(self, kernel=None):
        """Rebuild the cached verify-gate report (or None)."""
        if self.payload['analysis'] is None:
            return None
        from ..analysis.diagnostics import AnalysisReport, Diagnostic
        diagnostics = [Diagnostic(code, message, step_index=step_index,
                                  where=where)
                       for code, message, step_index, where
                       in self.payload['analysis']]
        return AnalysisReport(diagnostics=diagnostics, schedule=None,
                              kernel=kernel)

    def rehydrate_certificate(self):
        """Rebuild the cached static communication certificate (or
        None).  Certificates are per-rank and per-decomposition — both
        part of the cache key, so the cached prediction is exact for
        the rehydrated kernel."""
        payload = self.payload.get('certificate')
        if payload is None:
            return None
        from ..analysis.certificate import CommCertificate
        try:
            return CommCertificate.from_payload(payload)
        except (KeyError, TypeError, ValueError) as e:
            raise ArtifactError("malformed certificate payload: %s"
                                % (e,)) from None

    def __repr__(self):
        return ('KernelArtifact(v%d, %d sections, %d exchangers, %dB)'
                % (self.payload['version'], len(self.payload['sections']),
                   len(self.payload['exchangers']), self.nbytes))
