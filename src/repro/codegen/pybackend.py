"""JIT code generation: schedule -> executable vectorized NumPy kernel.

The generated artifact is real source code (inspectable via
``Operator.pycode``), compiled with ``compile``/``exec`` at operator build
time — the same JIT flow as the paper's C backend, with vectorized NumPy
slice arithmetic standing in for OpenMP/SIMD loops (per the HPC-Python
guidance: all hot loops are whole-array operations).

Key translation rule: an access ``u[t+s, x+a, y+b]`` over an iteration box
``[xb, xe) x [yb, ye)`` becomes the slice
``u[(time+s) % nb, a+H+xb : a+H+xe, b+H+yb : b+H+ye]`` where ``H`` is the
function's allocated halo ("access alignment", paper Section III-d).
Boxes and halo offsets are compile-time constants, so generated index
arithmetic is fully folded.
"""

from __future__ import annotations

import numpy as np

from ..mpi import (check_tag_spaces, core_region, make_exchanger,
                   remainder_regions)
from ..profiling import Profiler, SectionMeta, assign_section_names
from ..symbolics import PyPrinter
from .common import (RESERVED_NAMES, cluster_union_widths, function_nb,
                     validate_names)

__all__ = ['PyKernel', 'generate_kernel']

_INDENT = '    '


class PyKernel:
    """A compiled kernel plus everything needed to invoke it."""

    def __init__(self, source, func, exchangers, sparse_plans, schedule,
                 profiler=None, step_lines=None, sanitizer=None,
                 backend='numpy', c_source=None, so_path=None,
                 so_checksum=None, c_steps=None, lib=None):
        self.source = source
        self.func = func
        self.exchangers = exchangers
        self.sparse_plans = sparse_plans
        self.schedule = schedule
        self.profiler = profiler
        #: schedule step index -> (first, one-past-last) 0-based line
        #: numbers in ``source`` (consumed by the diagnostics renderer)
        self.step_lines = dict(step_lines or {})
        #: the HaloSanitizer when compiled in sanitizer mode, else None
        self.sanitizer = sanitizer
        #: 'numpy', or 'c' when the compute steps run as compiled C
        self.backend = backend
        #: the executable C translation unit ('c' backend only)
        self.c_source = c_source
        #: compiled shared object (path + BLAKE2b tamper seal)
        self.so_path = so_path
        self.so_checksum = so_checksum
        #: step metadata: {sid: {'name', 'sig', 'call'}} ('c' only)
        self.c_steps = c_steps
        #: the loaded ctypes library (keeps the dlopen handle alive)
        self.lib = lib

    def __call__(self, time_m, time_M, arrays, params, comm, timer=None,
                 resilience=None):
        return self.func(time_m, time_M, arrays, params, self.exchangers,
                         self.sparse_plans, comm, np, timer, resilience)


class _Emitter:
    def __init__(self):
        self.lines = []
        self.level = 0

    def emit(self, text=''):
        self.lines.append(_INDENT * self.level + text if text else '')

    def source(self):
        return '\n'.join(self.lines) + '\n'


def _slice_index_printer(box_bounds, time_var='time'):
    """Build a PyPrinter index callback for a given iteration box.

    ``box_bounds`` is a per-space-dim list of (begin, end) ints in
    domain-local coordinates.
    """
    from ..ir.lowered import parse_index

    def index_printer(printer, indexed):
        func = indexed.base
        dims = func.dimensions
        parts = []
        halo = dict(zip(func.space_dimensions, func.halo))
        sdims = list(func.space_dimensions)
        for dim, idx in zip(dims, indexed.indices):
            off = parse_index(idx, dim)
            if dim.is_Time:
                nb = function_nb(func)
                parts.append('(%s + %d) %% %d' % (time_var, off, nb))
            else:
                d = sdims.index(dim)
                lo, hi = box_bounds[d]
                hl = halo[dim][0]
                parts.append('%d:%d' % (off + hl + lo, off + hl + hi))
        return '%s[%s]' % (func.name, ', '.join(parts))

    return index_printer


def _sparse_index_printer(step_id, sparse_name, time_var='time'):
    """Index callback for sparse-operation expressions: grid accesses use
    the precomputed per-contribution fancy-index arrays."""
    def index_printer(printer, indexed):
        func = indexed.base
        if not getattr(func, 'is_DiscreteFunction', False):
            raise TypeError("unexpected indexed %s in sparse expr"
                            % (indexed,))
        from ..ir.lowered import parse_index
        head = func.name
        idx_arrays = []
        sdims = list(func.space_dimensions)
        for dim, idx in zip(func.dimensions, indexed.indices):
            off = parse_index(idx, dim)
            if dim.is_Time:
                nb = function_nb(func)
                head = '%s[(%s + %d) %% %d]' % (func.name, time_var, off, nb)
            else:
                d = sdims.index(dim)
                if off != 0:
                    idx_arrays.append('__s%d_i%d_%s + %d'
                                      % (step_id, d, func.name, off))
                else:
                    idx_arrays.append('__s%d_i%d_%s'
                                      % (step_id, d, func.name))
        return '%s[%s]' % (head, ', '.join(idx_arrays))

    return index_printer


class _SparsePrinter(PyPrinter):
    """PyPrinter that also resolves SparseFunction atoms."""

    def __init__(self, step_id, sparse, index_printer):
        super().__init__(index_printer=index_printer)
        self.step_id = step_id
        self.sparse = sparse

    def _print(self, expr):
        if getattr(expr, 'is_SparseFunction', False):
            if expr.name != self.sparse.name:
                raise ValueError("sparse expr references foreign sparse "
                                 "function %s" % expr.name)
            if expr.is_SparseTimeFunction:
                return "__sd%d[time, __p%d]" % (self.step_id, self.step_id)
            return "__sd%d[__p%d]" % (self.step_id, self.step_id)
        return super()._print(expr)


def generate_kernel(schedule, progress=False, profiler=None,
                    sanitizer=False, backend='numpy'):
    """Generate, compile and wrap the Python kernel for ``schedule``.

    When ``profiler`` is enabled (profiling level ``basic``/``advanced``),
    every schedule step is wrapped in a named, timed section; at level
    ``off`` the instrumentation is *compiled out* — the generated source
    contains no timing calls at all.

    With ``sanitizer=True`` the poisoned-halo sanitizer hooks are
    compiled in: neighbor-owned ghost cells are NaN-poisoned before the
    preamble and at the top of every iteration, and the DOMAIN of every
    written buffer is scanned after each writing step
    (:mod:`repro.analysis.sanitizer`).  Like the profiling calls, the
    hooks are *compiled out* entirely when disabled.

    With ``backend='c'`` the compute steps are emitted as C
    (:func:`~repro.codegen.cgen.generate_c_steps`), compiled into a
    shared object and called through ctypes; everything else — halo
    exchanges, sparse steps, profiling, sanitizer, resilience hooks —
    stays in the generated Python driver, byte-for-byte identical to
    the NumPy backend's.  Unsupported grids (dtype outside
    float32/float64) degrade to NumPy with a visible warning.
    """
    grid = schedule.grid
    dist = grid.distributor
    validate_names(schedule)
    if profiler is None:
        profiler = Profiler('off')
    instrument = profiler.enabled
    san = None
    if sanitizer:
        from ..analysis.sanitizer import make_sanitizer
        san = make_sanitizer(schedule)
        if not san.enabled:
            san = None
    preamble_names, step_names = assign_section_names(schedule)

    c_source = c_meta = c_funcs = so_path = so_checksum = lib = None
    if backend == 'c':
        from . import jit
        from .cgen import generate_c_steps
        try:
            c_source, c_meta = generate_c_steps(schedule)
            so_path = jit.compile_shared(c_source)
            so_checksum = jit.file_checksum(so_path)
            lib, c_funcs = jit.load_steps(
                so_path, {m['name']: m['sig'] for m in c_meta.values()},
                grid.dtype)
        except (ValueError, jit.JITError) as e:
            import warnings
            warnings.warn("compiled backend unavailable for this build "
                          "(%s); falling back to the NumPy backend"
                          % (e,), jit.ToolchainWarning, stacklevel=2)
            backend = 'numpy'
            c_source = c_meta = so_path = so_checksum = lib = None

    em = _Emitter()
    em.emit('def __kernel(time_m, time_M, __A, __P, __EX, __SP, __comm, '
            'np, __T, __RES=None):')
    em.level += 1

    def sec_begin():
        if instrument:
            em.emit('__t = __T.now()')

    def sec_end(name, in_loop=True):
        if instrument:
            em.emit("__T.add('%s', __t%s)"
                    % (name, ', time' if in_loop else ''))

    # -- unpack arrays and scalars ------------------------------------------------
    functions = {f.name: f for f in schedule.functions}
    for name in sorted(functions):
        em.emit("%s = __A['%s']" % (name, name))
    scalar_names = sorted({d.spacing.name for d in grid.dimensions}
                          | {'dt'} | set(_constant_names(schedule)))
    for name in scalar_names:
        em.emit("%s = __P['%s']" % (name, name))
    em.emit()

    # -- exchanger construction (done by the caller; named here) -------------------
    exchangers = {}
    sparse_plans = {}

    # -- preamble: loop-invariant scalars (Listing 11's r0, r1, ...) ---------------
    scalar_printer = PyPrinter()
    if schedule.scalar_assignments:
        em.emit('# loop-invariant scalar temporaries')
        for temp, rhs in schedule.scalar_assignments:
            em.emit('%s = %s' % (temp.name, scalar_printer.doprint(rhs)))
        em.emit()

    # -- preamble: sparse plan unpacking --------------------------------------------
    sparse_steps = [(i, s) for i, s in enumerate(schedule.steps)
                    if s.is_sparse]
    for sid, step in sparse_steps:
        plan_funcs = _sparse_grid_functions(step)
        em.emit("__p%d = __SP[%d]['pids']" % (sid, sid))
        em.emit("__w%d = __SP[%d]['w']" % (sid, sid))
        em.emit("__sd%d = __SP[%d]['data']" % (sid, sid))
        for f in plan_funcs:
            for d in range(grid.dim):
                hl = f.halo[d][0]
                em.emit("__s%d_i%d_%s = __SP[%d]['idx'][%d] + %d"
                        % (sid, d, f.name, sid, d, hl))
        em.emit()

    # -- preamble: hoisted halo exchanges of time-invariant functions ---------------
    tag_base = [0]

    def new_exchanger(key, func, widths):
        mode = schedule.mpi_mode or 'basic'
        ex = make_exchanger(mode, dist, func.halo, widths,
                            tag_base=tag_base[0], name=key,
                            **({'progress': progress}
                               if mode == 'full' else {}))
        tag_base[0] += 64
        exchangers[key] = ex
        return key

    if san is not None:
        em.emit('# sanitizer: poison every neighbor-owned ghost cell')
        em.emit('__SAN.poison_invariants(__A)')
        em.emit()

    if schedule.preamble_halo:
        em.emit('# hoisted halo exchanges (time-invariant functions)')
        for req, sname in zip(schedule.preamble_halo, preamble_names):
            key = 'pre_%s' % req.function.name
            new_exchanger(key, req.function, req.widths)
            profiler.register(SectionMeta(sname, 'halo',
                                          exchanger_keys=(key,)))
            sec_begin()
            em.emit("__EX['%s'].exchange(%s)" % (key, req.function.name))
            sec_end(sname, in_loop=False)
        em.emit()

    # -- the time loop ---------------------------------------------------------------
    em.emit('for time in range(time_m, time_M + 1):')
    em.level += 1
    # resilience hook first (a checkpoint due at the kill step must
    # complete before the kill fires), then the fault-injection hook
    em.emit('__RES is None or __RES.tick(time)')
    em.emit('__comm is None or __comm.fault_tick(time)')
    if san is not None:
        em.emit('# sanitizer: buffer rotation invalidated every halo')
        em.emit('__SAN.poison(__A)')
    body_emitted = False
    step_lines = {}

    for sid, step in enumerate(schedule.steps):
        sname = step_names[sid]
        first_line = len(em.lines)
        if step.is_halo:
            body_emitted = True
            keys = ['h%d_%s' % (step.uid, req.function.name)
                    for req in step.exchanges]
            profiler.register(SectionMeta(
                sname, 'halo' if step.kind != 'wait' else 'wait',
                exchanger_keys=keys if step.kind != 'wait' else ()))
            sec_begin()
            for req, key in zip(step.exchanges, keys):
                view = _view_expr(req.function, req.time_shift)
                if step.kind == 'update':
                    if key not in exchangers:
                        new_exchanger(key, req.function, req.widths)
                    em.emit("__EX['%s'].exchange(%s)" % (key, view))
                elif step.kind == 'begin':
                    if key not in exchangers:
                        new_exchanger(key, req.function, req.widths)
                    em.emit("__pend_%s = __EX['%s'].begin(%s)"
                            % (key, key, view))
                elif step.kind == 'wait':
                    em.emit("__EX['%s'].finish(%s, __pend_%s)"
                            % (key, view, key))
            sec_end(sname)
        elif step.is_compute:
            body_emitted = True
            boxes = [box for box in _region_boxes(step, dist)
                     if all(e > b for b, e in box)]
            npoints = sum(_box_volume(box) for box in boxes)
            profiler.register(SectionMeta(
                sname, 'compute', points=npoints,
                flops_per_point=step.cluster.flops_per_point(),
                traffic_per_point=step.cluster.traffic_per_point(
                    grid.dtype.itemsize)))
            if boxes:
                sec_begin()
                if backend == 'c' and sid in c_meta:
                    meta = c_meta[sid]
                    em.emit('# compiled %s over %s' % (
                        meta['name'],
                        ' + '.join(' x '.join('[%d:%d)' % b for b in box)
                                   for box in boxes)))
                    em.emit("__C['%s'](%s)" % (meta['name'],
                                               ', '.join(meta['call'])))
                else:
                    for box in boxes:
                        _emit_cluster(em, step.cluster, box)
                sec_end(sname)
                if san is not None:
                    san.register_writes(sname,
                                        sorted(step.cluster.write_keys))
                    em.emit("__SAN.check('%s', __A, time)" % sname)
        else:
            body_emitted = True
            profiler.register(SectionMeta(
                sname, 'sparse',
                sparse_npoints=len(step.op.sparse.routing.local_points)))
            sec_begin()
            _emit_sparse(em, sid, step, dist)
            sec_end(sname)
            if san is not None and step.field_access is not None:
                san.register_writes(sname, [step.field_access.key])
                em.emit("__SAN.check('%s', __A, time)" % sname)
        step_lines[sid] = (first_line, len(em.lines))

    if not body_emitted:
        em.emit('pass')
    em.level -= 1
    em.emit('return')

    # static communication hygiene: concurrently live exchangers must
    # own disjoint tag spaces (a collision would cross-deliver halos)
    check_tag_spaces(exchangers)

    source = em.source()
    namespace = {}
    if san is not None:
        namespace['__SAN'] = san
    if c_funcs is not None:
        namespace['__C'] = c_funcs
    code = compile(source, '<repro-jit-kernel>', 'exec')
    exec(code, namespace)  # noqa: S102 - this is the JIT compiler
    return PyKernel(source, namespace['__kernel'], exchangers, sparse_plans,
                    schedule, profiler=profiler, step_lines=step_lines,
                    sanitizer=san, backend=backend, c_source=c_source,
                    so_path=so_path, so_checksum=so_checksum,
                    c_steps=c_meta, lib=lib)


def _box_volume(box):
    return int(np.prod([max(e - b, 0) for b, e in box])) if box else 0


def _view_expr(func, time_shift):
    if time_shift is None:
        return func.name
    nb = function_nb(func)
    return '%s[(time + %d) %% %d]' % (func.name, time_shift, nb)


def _region_boxes(step, dist):
    """Compile-time iteration boxes for a compute step's region."""
    shape = dist.shape_local
    if step.region == 'domain':
        return [tuple((0, n) for n in shape)]
    widths = cluster_union_widths(step.cluster)
    if step.region == 'core':
        return [core_region(dist, widths)]
    if step.region == 'remainder':
        return remainder_regions(dist, widths)
    raise ValueError("unknown region %r" % (step.region,))


def _emit_cluster(em, cluster, box):
    printer = PyPrinter(index_printer=_slice_index_printer(box))
    label = ' x '.join('[%d:%d)' % b for b in box)
    em.emit('# cluster over %s' % label)
    for temp, rhs in cluster.temps:
        em.emit('%s = %s' % (temp.name, printer.doprint(rhs)))
    for eq in cluster.eqs:
        em.emit('%s = %s' % (printer.doprint(eq.lhs),
                             printer.doprint(eq.rhs)))


def _sparse_grid_functions(step):
    """Grid functions accessed by a sparse step (for index preambles)."""
    from ..ir.lowered import accesses_of
    seen = {}
    for acc in accesses_of(step.expr):
        seen[acc.function.name] = acc.function
    if step.field_access is not None:
        f = step.field_access.function
        seen[f.name] = f
    return [seen[k] for k in sorted(seen)]


def _emit_sparse(em, sid, step, dist):
    sparse = step.op.sparse
    printer = _SparsePrinter(sid, sparse,
                             _sparse_index_printer(sid, sparse.name))
    if step.kind == 'inject':
        facc = step.field_access
        f = facc.function
        em.emit('# inject %s into %s' % (sparse.name, f.name))
        em.emit('__vals%d = __w%d * (%s)' % (sid, sid,
                                             printer.doprint(step.expr)))
        head = _view_expr(f, facc.time_shift)
        idx = ', '.join('__s%d_i%d_%s' % (sid, d, f.name)
                        for d in range(len(facc.offsets)))
        em.emit('np.add.at(%s, (%s), __vals%d)' % (head, idx, sid))
    else:
        em.emit('# interpolate %s at %s points' % (step.expr, sparse.name))
        em.emit('__acc%d = np.zeros(%d, dtype=np.float64)'
                % (sid, sparse.npoint))
        em.emit('np.add.at(__acc%d, __p%d, __w%d * (%s))'
                % (sid, sid, sid, printer.doprint(step.expr)))
        if dist.is_parallel:
            em.emit('__acc%d = __comm.allreduce(__acc%d)' % (sid, sid))
        if sparse.is_SparseTimeFunction:
            em.emit('__sd%d[time, :] = __acc%d' % (sid, sid))
        else:
            em.emit('__sd%d[:] = __acc%d' % (sid, sid))


def _constant_names(schedule):
    from ..dsl.function import Constant
    from ..symbolics import unique_nodes
    names = set()
    exprs = []
    for _, rhs in schedule.scalar_assignments:
        exprs.append(rhs)
    for cluster in schedule.clusters:
        exprs.extend(rhs for _, rhs in cluster.temps)
        exprs.extend(eq.rhs for eq in cluster.eqs)
    for step in schedule.steps:
        if step.is_sparse:
            exprs.append(step.expr)
    for e in exprs:
        for node in unique_nodes(e):
            if isinstance(node, Constant):
                names.add(node.name)
    return names
