"""The C toolchain bridge: compile generated C and load it in-process.

This is the machinery behind ``backend='c'``: discover a working C
compiler (honoring ``$CC`` first, exactly so CI can mask the toolchain
with ``CC=/nonexistent`` to prove the fallback path), compile one
translation unit of per-step kernel functions into a shared object,
``dlopen`` it with :mod:`ctypes`, and bind argument types so the driver
can pass NumPy arrays (pointer + baked strides), Python floats
(``double``) and modulo time indices (``int``) directly.

Design points:

* **ctypes over cffi** — ctypes is stdlib (no extra dependency inside
  the generated-code path) and releases the GIL for the duration of a
  compiled step, so thread-per-rank SPMD runs and service workers
  overlap compute for real.  cffi availability is still reported by
  ``repro doctor`` for the curious.
* **Strict IEEE flags** — ``-ffp-contract=off`` and no fast-math, so a
  compiled step performs the same IEEE single/double operations as the
  vectorized NumPy backend and the two can agree bitwise.
* **Graceful fallback** — :func:`resolve_backend` demotes ``'c'`` to
  ``'numpy'`` with a visible :class:`ToolchainWarning` when no compiler
  exists; nothing in the pipeline hard-requires a toolchain.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings

import numpy as np

__all__ = ['JITError', 'ToolchainWarning', 'find_compiler',
           'compiler_version', 'cffi_available', 'resolve_backend',
           'compile_shared', 'load_steps', 'file_checksum',
           'toolchain_report']

#: compilers probed (in order) when ``$CC`` is not set
_DEFAULT_COMPILERS = ('cc', 'gcc', 'clang')

#: flags shared by every kernel compile; -ffp-contract=off keeps FMA
#: from fusing a*b+c (NumPy performs the rounding step, so must we)
CFLAGS = ('-O3', '-fPIC', '-shared', '-ffp-contract=off', '-fno-builtin')


class JITError(RuntimeError):
    """The C toolchain failed (missing compiler, compile error, bad
    shared object)."""


class ToolchainWarning(UserWarning):
    """Emitted when ``backend='c'`` silently degrades to NumPy."""


def _which(cmd):
    # an absolute/relative $CC must exist as given; bare names resolve
    # through PATH
    if os.path.sep in cmd:
        return cmd if os.access(cmd, os.X_OK) else None
    return shutil.which(cmd)


def find_compiler(env=None):
    """Path of a usable C compiler, or None.

    ``$CC`` wins when set — including when it points nowhere, which is
    deliberate: exporting ``CC=/nonexistent`` is the supported way to
    mask the toolchain (the CI fallback leg relies on it).
    """
    env = os.environ if env is None else env
    cc = env.get('CC')
    if cc is not None:
        cc = cc.strip()
        return _which(cc) if cc else None
    for cand in _DEFAULT_COMPILERS:
        path = _which(cand)
        if path is not None:
            return path
    return None


def compiler_version(cc):
    """First line of ``cc --version`` (or None on any failure)."""
    if not cc:
        return None
    try:
        out = subprocess.run([cc, '--version'], capture_output=True,
                             text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0 or not out.stdout:
        return None
    return out.stdout.splitlines()[0].strip()


def cffi_available():
    """Whether cffi is importable (informational; ctypes is used)."""
    try:
        import cffi  # noqa: F401
        return True
    except ImportError:
        return False


def resolve_backend(requested, env=None, warn=True):
    """Map a requested backend to the effective one.

    ``'c'`` stays ``'c'`` only when a compiler exists; otherwise the
    build degrades to ``'numpy'`` with a :class:`ToolchainWarning`.
    The *effective* backend is what joins the build fingerprint — a
    toolchain-less host must never rehydrate a compiled artifact.
    """
    if requested in (None, False, 'numpy', 'py'):
        return 'numpy'
    if requested != 'c':
        raise ValueError("unknown backend %r; accepted: 'numpy', 'c'"
                         % (requested,))
    if find_compiler(env=env) is not None:
        return 'c'
    if warn:
        warnings.warn(
            "backend='c' requested but no C toolchain was found "
            "(checked $CC, then cc/gcc/clang on PATH); falling back to "
            "the NumPy backend. Run 'repro doctor' for details.",
            ToolchainWarning, stacklevel=3)
    return 'numpy'


def file_checksum(path):
    """BLAKE2b-128 of a file's bytes (the artifact's tamper seal)."""
    h = hashlib.blake2b(digest_size=16)
    with open(path, 'rb') as f:
        for chunk in iter(lambda: f.read(1 << 20), b''):
            h.update(chunk)
    return h.hexdigest()


_workdir = None


def _get_workdir():
    """Per-process scratch directory for compiled objects."""
    global _workdir
    if _workdir is None or not os.path.isdir(_workdir):
        _workdir = tempfile.mkdtemp(prefix='repro-jit-')
    return _workdir


def compile_shared(source, cc=None, name=None, workdir=None):
    """Compile C ``source`` into a shared object; returns its path.

    Objects are content-addressed (``k_<blake2b(source)>.so``) inside a
    per-process scratch directory, so recompiling identical source —
    e.g. the same rank geometry across SPMD threads — is free.
    """
    if cc is None:
        cc = find_compiler()
    if cc is None:
        raise JITError("no C compiler available (set $CC or install cc/"
                       "gcc/clang)")
    if workdir is None:
        workdir = _get_workdir()
    digest = hashlib.blake2b(source.encode('utf-8'),
                             digest_size=12).hexdigest()
    base = name or 'k_%s' % digest
    so_path = os.path.join(workdir, '%s_%s.so' % (base, digest))
    if os.path.exists(so_path):
        return so_path
    # thread-unique scratch names: SPMD ranks are threads of one
    # process, and equal-geometry ranks compile byte-identical source
    # concurrently — a shared .c would be rewritten under a running
    # compiler (truncated reads), so each thread compiles its private
    # copy and only the final .so publish is shared (atomic)
    unique = '%d.%d' % (os.getpid(), threading.get_ident())
    c_path = os.path.join(workdir, '%s_%s.%s.c' % (base, digest, unique))
    with open(c_path, 'w', encoding='utf-8') as f:
        f.write(source)
    tmp_so = so_path + '.tmp' + unique
    cmd = [cc, *CFLAGS, '-march=native', c_path, '-o', tmp_so, '-lm']
    try:
        run = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=300)
        if run.returncode != 0:
            # -march=native is a best-effort flag; retry portable
            cmd = [cc, *CFLAGS, c_path, '-o', tmp_so, '-lm']
            run = subprocess.run(cmd, capture_output=True, text=True,
                                 timeout=300)
    except (OSError, subprocess.TimeoutExpired) as e:
        raise JITError("C compiler failed to run: %s" % (e,)) from None
    if run.returncode != 0:
        raise JITError("C compilation failed (%s):\n%s"
                       % (' '.join(cmd), run.stderr.strip()))
    os.replace(tmp_so, so_path)  # atomic publish (SPMD threads race here)
    return so_path


def _argtype(spec, dtype):
    """One ctypes argtype from a signature code.

    Codes: ``p<ndim>`` — pointer to a C-contiguous ndarray of the
    kernel dtype; ``d`` — double scalar; ``i`` — int (time index).
    """
    if spec.startswith('p'):
        return np.ctypeslib.ndpointer(dtype=dtype, ndim=int(spec[1:]),
                                      flags='C_CONTIGUOUS')
    if spec == 'd':
        return ctypes.c_double
    if spec == 'i':
        return ctypes.c_int
    raise JITError("unknown argument code %r in step signature" % (spec,))


def load_steps(so_path, signatures, dtype):
    """dlopen a compiled kernel and bind each step's argument types.

    ``signatures`` maps C function name -> list of argument codes (see
    :func:`_argtype`).  Returns ``(lib, funcs)`` where ``funcs`` maps
    name -> ready-to-call ctypes function (this is the ``__C`` namespace
    the generated driver indexes into).
    """
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as e:
        raise JITError("cannot load %s: %s" % (so_path, e)) from None
    funcs = {}
    for fname, argspecs in signatures.items():
        try:
            fn = getattr(lib, fname)
        except AttributeError:
            raise JITError("compiled object %s lacks symbol %r"
                           % (so_path, fname)) from None
        fn.restype = None
        fn.argtypes = [_argtype(s, dtype) for s in argspecs]
        funcs[fname] = fn
    return lib, funcs


def toolchain_report(env=None):
    """Everything ``repro doctor`` wants to know, as a dict."""
    cc = find_compiler(env=env)
    report = {
        'cc_env': (os.environ if env is None else env).get('CC'),
        'compiler': cc,
        'compiler_version': compiler_version(cc),
        'cffi': cffi_available(),
        'workdir': _workdir,
    }
    smoke = None
    if cc is not None:
        try:
            so = compile_shared(
                'void __repro_smoke(double *x) { x[0] = x[0] * 2.0; }\n',
                cc=cc, name='smoke')
            lib = ctypes.CDLL(so)
            fn = lib.__repro_smoke
            fn.restype = None
            fn.argtypes = [ctypes.POINTER(ctypes.c_double)]
            val = ctypes.c_double(21.0)
            fn(ctypes.byref(val))
            smoke = 'ok' if val.value == 42.0 else \
                'bad result %r' % val.value
        except (JITError, OSError) as e:
            smoke = 'failed: %s' % (e,)
    report['smoke'] = smoke
    report['backend_c_usable'] = smoke == 'ok'
    return report
