"""Code generation backends (vectorized NumPy JIT; C emitter)."""

from .common import RESERVED_NAMES, cluster_union_widths, function_nb
from .pybackend import PyKernel, generate_kernel

__all__ = ['RESERVED_NAMES', 'cluster_union_widths', 'function_nb',
           'PyKernel', 'generate_kernel']
