"""Shared helpers for the code-generation backends."""

from __future__ import annotations

from ..mpi import HaloWidths

__all__ = ['RESERVED_NAMES', 'validate_names', 'function_nb',
           'cluster_union_widths']

#: identifiers the generated kernels use internally
RESERVED_NAMES = frozenset({
    'time', 'time_m', 'time_M', 'np', 'range', 'comm',
    '__A', '__P', '__EX', '__SP', '__comm', '__kernel',
})


def validate_names(schedule):
    """Reject user names that would collide with generated identifiers."""
    names = {f.name for f in schedule.functions}
    names |= {s.name for s in schedule.sparse_functions}
    bad = names & RESERVED_NAMES
    if bad:
        raise ValueError("function names collide with generated code: %s"
                         % sorted(bad))
    for name in names:
        if name.startswith('__') or name.startswith('r') and \
                name[1:].isdigit():
            raise ValueError("function name %r is reserved for generated "
                             "temporaries" % name)


def function_nb(func):
    """Number of time buffers of a function (1 for time-invariant)."""
    return getattr(func, 'nbuffers', 1)


def cluster_union_widths(cluster):
    """Union of halo widths over all of a cluster's requirements.

    This defines the CORE region for the overlap (*full*) mode: points
    whose stencil never touches any of the halos being exchanged.
    """
    ndim = len(cluster.grid.shape)
    widths = [[0, 0] for _ in range(ndim)]
    for req in cluster.halo_requirements():
        for d, (wl, wr) in enumerate(req.widths):
            widths[d][0] = max(widths[d][0], wl)
            widths[d][1] = max(widths[d][1], wr)
    return HaloWidths(widths)
