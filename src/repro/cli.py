"""Command-line benchmark runner mirroring the paper's example scripts.

The paper's Appendix C runs jobs like::

    python examples/seismic/acoustic/acoustic_example.py \\
        -d 1024 1024 1024 --tn 512 -so 8 -a aggressive

This module provides the equivalent entry point::

    python -m repro.cli acoustic -d 101 101 --tn 250 -so 8 --mpi diagonal

printing the same kind of performance report (GPts/s, GFlops/s, OI) —
at laptop scale on the simulated substrate.  ``--ranks N`` runs the same
problem SPMD over N simulated MPI ranks and verifies the result against
the serial run.

A second mode runs the static verifier (:mod:`repro.analysis`) over the
generated schedule *without* executing anything::

    python -m repro.cli analyze acoustic -d 101 101 -so 8 \\
        --mpi diagonal --ranks 4 --dump-schedule

building the operator on every simulated rank, running all analysis
passes (halo coverage, race detection, bounds & dead-code lint, the
affine dataflow engine with its minimal-halo inference and in-bounds
proof) and printing the cross-rank merged diagnostic report; the exit
status is nonzero when any ``REPRO-E*`` diagnostic fires on any rank.
``--dump-schedule`` additionally prints the human-readable schedule,
``--certificate`` the per-rank static communication certificates, and
``--format json`` the stable machine-readable schema.  The benchmark
mode's ``--sanitize`` flag instead instruments the *run*: bare or
``poison`` for the NaN poisoned-halo sanitizer, ``reconcile`` to check
the commlog send ledger against the static certificate after every
``apply``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .mpi.faults import RankKilledError

__all__ = ['main', 'run_analyze', 'run_benchmark', 'run_cache',
           'run_doctor', 'run_fetch', 'run_serve', 'run_status',
           'run_submit']

_SETUPS = None


def _setups():
    global _SETUPS
    if _SETUPS is None:
        from .models import (acoustic_setup, elastic_setup, tti_setup,
                             viscoelastic_setup)
        _SETUPS = {'acoustic': acoustic_setup, 'elastic': elastic_setup,
                   'tti': tti_setup, 'viscoelastic': viscoelastic_setup}
    return _SETUPS


def _parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli',
        description='Run a wave-propagator benchmark (paper Listing 14 '
                    'style).')
    p.add_argument('kernel', choices=['acoustic', 'elastic', 'tti',
                                      'viscoelastic'])
    p.add_argument('-d', '--shape', nargs='+', type=int,
                   default=[101, 101], metavar='N',
                   help='grid points per dimension (2 or 3 values)')
    p.add_argument('--tn', type=float, default=250.0,
                   help='simulation end time in ms')
    p.add_argument('-so', '--space-order', type=int, default=8,
                   help='spatial discretization order (SDO)')
    p.add_argument('--nbl', type=int, default=10,
                   help='absorbing boundary layer width in points')
    p.add_argument('--mpi', choices=['basic', 'diagonal', 'full'],
                   default='basic', help='DMP communication pattern')
    p.add_argument('--ranks', type=int, default=1,
                   help='simulated MPI ranks (1 = serial)')
    p.add_argument('--topology', nargs='+', type=int, default=None,
                   help='process grid (0 entries auto-derived)')
    p.add_argument('-a', '--autotune', default='aggressive',
                   help='accepted for CLI parity; the flop-reducing '
                        'pipeline is always available via --no-opt')
    p.add_argument('--no-opt', action='store_true',
                   help='disable CSE/factorization/hoisting')
    p.add_argument('--verify', action='store_true',
                   help='with --ranks > 1: check against the serial run')
    p.add_argument('--inject-faults', default=None, metavar='SPEC',
                   help='deterministic transport fault injection, e.g. '
                        '"seed=1,drop=0.05,duplicate=0.01,kill=1@10" '
                        '(see repro.mpi.faults.FaultPlan.parse); '
                        'non-lethal plans must leave results bit-'
                        'identical (combine with --verify)')
    p.add_argument('--profile', nargs='?', const='basic',
                   choices=['basic', 'advanced'], default=None,
                   help='print the per-section performance table '
                        '(advanced: also record per-timestep traces and '
                        'write a JSON artifact, see --profile-out)')
    p.add_argument('--profile-out', default='repro_profile.json',
                   metavar='PATH',
                   help='JSON artifact path for --profile advanced '
                        '(loadable by repro.perfmodel.report.'
                        'load_profile_json)')
    p.add_argument('--recover',
                   choices=['abort', 'restart', 'shrink', 'grow'],
                   default=None,
                   help='survive lethal injected faults: restart '
                        '(same-world restore from the newest valid '
                        'checkpoint), shrink (drop the dead rank and '
                        'redistribute onto the survivors) or grow '
                        '(shrink, then repartition back onto the healed '
                        'rank once it rejoins); default abort')
    p.add_argument('--repartition-policy',
                   choices=['off', 'grow', 'balance'], default=None,
                   help='mid-run elastic repartitioning: grow onto '
                        'announced reserve ranks, or balance the current '
                        'world with weighted splits (default off)')
    p.add_argument('--repartition-every', type=int, default=None,
                   metavar='N',
                   help='repartition cadence in timesteps (0: once, at '
                        'the earliest legal step)')
    p.add_argument('--repartition-weights', default=None, metavar='W,...',
                   help='comma-separated per-rank split weights for '
                        '--repartition-policy balance (default: measured '
                        'per-rank compute time when profiling is on, '
                        'else equal)')
    p.add_argument('--checkpoint-every', type=int, default=None,
                   metavar='N',
                   help='checkpoint cadence in timesteps (0: only the '
                        'baseline snapshot a recovery policy needs)')
    p.add_argument('--checkpoint-dir', default=None, metavar='PATH',
                   help='checkpoint directory shared by all ranks '
                        '(default .repro_checkpoints)')
    p.add_argument('--checkpoint-keep', type=int, default=None,
                   metavar='K',
                   help='number of most-recent checkpoints retained')
    p.add_argument('--resume', action='store_true',
                   help='start from the newest valid checkpoint in '
                        '--checkpoint-dir instead of timestep 0')
    p.add_argument('--health-check-every', type=int, default=None,
                   metavar='N',
                   help='NaN/Inf/blowup scan cadence in timesteps')
    p.add_argument('--sanitize', nargs='?', const='poison',
                   choices=['poison', 'reconcile'], default=None,
                   help='runtime sanitizer mode.  poison (the default '
                        'when the flag is given bare): generate the '
                        'kernel with NaN-poisoned neighbor-owned ghost '
                        'cells so a stale-halo read aborts the run.  '
                        'reconcile: after every apply, compare the '
                        'commlog send ledger against the static '
                        'communication certificate and abort on any '
                        'message-count or byte mismatch')
    p.add_argument('--dump-schedule', action='store_true',
                   help='print the human-readable schedule of the '
                        'generated operator (one line per step, with '
                        'profiling section names and halo depths)')
    p.add_argument('--cache', choices=['on', 'memory', 'disk', 'off'],
                   default=None,
                   help='operator build cache mode for this run: on '
                        '(memory + disk under --cache-dir/REPRO_CACHE_'
                        'DIR), memory, disk, or off (default: '
                        'configuration, i.e. REPRO_CACHE or memory)')
    p.add_argument('--cache-dir', default=None, metavar='PATH',
                   help='directory of the on-disk build-cache tier '
                        '(default .repro_cache or REPRO_CACHE_DIR)')
    p.add_argument('--backend', choices=['numpy', 'c'], default=None,
                   help='execution backend for compute steps: numpy '
                        '(vectorized whole-array expressions) or c '
                        '(compile generated C and run cache-blocked '
                        'loop nests via ctypes; falls back to numpy '
                        'with a warning when no toolchain is found). '
                        'Default: configuration, i.e. REPRO_BACKEND '
                        'or numpy')
    return p


def _doctor_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli doctor',
        description='Diagnose the execution environment: C toolchain '
                    'discovery ($CC, then cc/gcc/clang), a smoke '
                    'compile+dlopen round trip, cffi availability, '
                    'build-cache directory health, and which backend '
                    'an Operator build would select right now.')
    p.add_argument('--require-c', action='store_true',
                   help='exit nonzero unless the compiled backend is '
                        'usable end-to-end (the CI exec-job gate)')
    p.add_argument('--cache-dir', default=None, metavar='PATH',
                   help='build-cache directory to inspect (default: '
                        'configuration cache_dir)')
    p.add_argument('--json', action='store_true',
                   help='machine-readable JSON output')
    return p


def _cache_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli cache',
        description='Inspect or clear the on-disk operator build cache '
                    '(the content-addressed store under REPRO_CACHE_DIR '
                    'that warm Operator builds rehydrate from).')
    p.add_argument('action', choices=['stats', 'clear'],
                   help='stats: print cumulative hit/miss counters and '
                        'disk usage; clear: delete every cached entry '
                        '(and the counters)')
    p.add_argument('--cache-dir', default=None, metavar='PATH',
                   help='cache directory (default: configuration '
                        'cache_dir, i.e. .repro_cache or '
                        'REPRO_CACHE_DIR)')
    p.add_argument('--min-hits', type=int, default=None, metavar='N',
                   help='stats: exit nonzero unless the cumulative hit '
                        'count is >= N (the CI cache-warm gate)')
    p.add_argument('--json', action='store_true',
                   help='stats: machine-readable JSON output')
    return p


def _analyze_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli analyze',
        description='Statically verify the generated schedule of a '
                    'propagator (halo coverage, race detection, bounds '
                    '& dead-code lint, minimal-halo inference, the '
                    'in-bounds proof) without running it.')
    p.add_argument('kernel', choices=['acoustic', 'elastic', 'tti',
                                      'viscoelastic'])
    p.add_argument('-d', '--shape', nargs='+', type=int,
                   default=[101, 101], metavar='N',
                   help='grid points per dimension (2 or 3 values)')
    p.add_argument('-so', '--space-order', type=int, default=8,
                   help='spatial discretization order (SDO)')
    p.add_argument('--nbl', type=int, default=10,
                   help='absorbing boundary layer width in points')
    p.add_argument('--mpi', choices=['basic', 'diagonal', 'full'],
                   default='basic', help='DMP communication pattern')
    p.add_argument('--ranks', type=int, default=2,
                   help='simulated MPI ranks the schedule is built for '
                        '(1 = serial: the halo pass is vacuous but '
                        'races/bounds/dead-code still run)')
    p.add_argument('--topology', nargs='+', type=int, default=None,
                   help='process grid (0 entries auto-derived)')
    p.add_argument('--weights', default=None, metavar='W,...',
                   help='comma-separated per-rank split weights (one per '
                        'rank): verify the schedule a weighted elastic '
                        'repartition would run, before running it')
    p.add_argument('--no-opt', action='store_true',
                   help='disable CSE/factorization/hoisting')
    p.add_argument('--dump-schedule', action='store_true',
                   help='also print the human-readable schedule dump')
    p.add_argument('--count-nodes', action='store_true',
                   help='print DAG statistics of the scheduled '
                        'expressions (unique vs tree node counts, '
                        'sharing factor, depth)')
    p.add_argument('--certificate', action='store_true',
                   help='also print every rank\'s static communication '
                        'certificate: the predicted per-neighbor message '
                        'counts and byte volumes the reconcile sanitizer '
                        'checks at runtime')
    p.add_argument('--format', dest='fmt', choices=['text', 'json'],
                   default='text',
                   help='output format; json emits the stable machine-'
                        'readable schema (merged diagnostics with rank '
                        'lists, per-rank certificates and inferred '
                        'minimal halo widths) with the same exit status')
    p.add_argument('-v', '--verbose', action='store_true',
                   help='text format: append every rank\'s verbatim '
                        'report (schedule/source excerpts included) '
                        'after the merged cross-rank summary')
    return p


def _submit_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli submit',
        description='Enqueue one shot for the survey service (a JSON '
                    'spec under <dir>/queue, picked up by the next '
                    '`repro serve`).')
    p.add_argument('kernel', choices=['acoustic', 'elastic', 'tti',
                                      'viscoelastic'])
    p.add_argument('-d', '--shape', nargs='+', type=int,
                   default=[51, 51], metavar='N',
                   help='grid points per dimension (2 or 3 values)')
    p.add_argument('--tn', type=float, default=100.0,
                   help='simulation end time in ms')
    p.add_argument('-so', '--space-order', type=int, default=4,
                   help='spatial discretization order (SDO)')
    p.add_argument('--nbl', type=int, default=10,
                   help='absorbing boundary layer width in points')
    p.add_argument('--nrec', type=int, default=8,
                   help='number of surface receivers (0: none)')
    p.add_argument('--dt', type=float, default=None,
                   help='timestep override in ms (default CFL-stable)')
    p.add_argument('--priority', type=int, default=0,
                   help='scheduling priority; higher runs earlier, '
                        'ties are FIFO')
    p.add_argument('--inject-faults', default=None, metavar='SPEC',
                   help='per-job fault plan (FaultPlan grammar, e.g. '
                        '"seed=1,kill=0@5"); applied to this job\'s '
                        'private world only')
    p.add_argument('--retries', type=int, default=None, metavar='N',
                   help='per-job retry budget override')
    p.add_argument('--job-id', default=None,
                   help='explicit job id (default: generated)')
    p.add_argument('--dir', dest='service_dir', default=None,
                   metavar='PATH',
                   help='service root (default .repro_service or '
                        'REPRO_SERVICE_DIR)')
    return p


def _serve_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli serve',
        description='Drain the queued shots over a warm operator pool: '
                    'results land in <dir>/store, per-job records in '
                    '<dir>/jobs, the batch report in <dir>/report.json. '
                    'Exits nonzero when any job failed.')
    p.add_argument('--dir', dest='service_dir', default=None,
                   metavar='PATH',
                   help='service root (default .repro_service or '
                        'REPRO_SERVICE_DIR)')
    p.add_argument('--workers', type=int, default=None, metavar='N',
                   help='jobs in flight at once (default configuration '
                        'service_workers)')
    p.add_argument('--retries', type=int, default=None, metavar='N',
                   help='default per-job retry budget (default '
                        'configuration service_retries)')
    p.add_argument('--cache', choices=['on', 'memory', 'disk', 'off'],
                   default=None,
                   help='build-cache mode backing the pool (default: '
                        'configuration build_cache)')
    p.add_argument('--keep-queue', action='store_true',
                   help='leave consumed spec files in <dir>/queue '
                        '(default: delete them after the drain)')
    return p


def _status_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli status',
        description='Show the survey service state: queued specs, '
                    'per-job records and the latest batch report.')
    p.add_argument('job_id', nargs='?', default=None,
                   help='show one job\'s full record instead of the '
                        'batch summary')
    p.add_argument('--dir', dest='service_dir', default=None,
                   metavar='PATH',
                   help='service root (default .repro_service or '
                        'REPRO_SERVICE_DIR)')
    p.add_argument('--json', action='store_true',
                   help='machine-readable JSON output')
    return p


def _fetch_parser():
    p = argparse.ArgumentParser(
        prog='python -m repro.cli fetch',
        description='Load a stored result array (CRC-verified) and '
                    'write it to a .npy file or print its stats.')
    p.add_argument('key',
                   help='store key, e.g. <job-id>/wavefield or '
                        '<job-id>/rec')
    p.add_argument('-o', '--out', default=None, metavar='PATH',
                   help='write the array as .npy here (default: print '
                        'shape/dtype/norm only)')
    p.add_argument('--dir', dest='service_dir', default=None,
                   metavar='PATH',
                   help='service root (default .repro_service or '
                        'REPRO_SERVICE_DIR)')
    return p


def run_benchmark(kernel, shape, tn, space_order, nbl=10, mpi='basic',
                  ranks=1, topology=None, opt=True, verify=False,
                  out=None, profile=None, profile_out=None, faults=None,
                  recover=None, checkpoint_every=None, checkpoint_dir=None,
                  checkpoint_keep=None, resume=False,
                  health_check_every=None, sanitize=False,
                  dump_schedule=False, cache=None, cache_dir=None,
                  repartition=None, repartition_every=None,
                  repartition_weights=None, backend=None):
    """Run one benchmark; returns (summary, gathered primary field)."""
    # resolve stdout at call time (pytest capture swaps sys.stdout)
    out = out if out is not None else sys.stdout
    from . import configuration
    saved_cache = configuration['build_cache']
    saved_cache_dir = configuration['cache_dir']
    if cache is not None:
        configuration['build_cache'] = cache
    if cache_dir is not None:
        configuration['cache_dir'] = cache_dir
    saved_backend = configuration['backend']
    if backend is not None:
        configuration['backend'] = backend
        if backend == 'c':
            print('backend         : compiled C (cache-blocked loop '
                  'nests via ctypes)', file=out)
    saved_sanitizer = configuration['sanitizer']
    if sanitize:
        if sanitize == 'reconcile':
            configuration['sanitizer'] = 'reconcile'
            print('sanitizer       : certificate reconcile mode',
                  file=out)
        else:  # True / 'poison'
            configuration['sanitizer'] = True
            print('sanitizer       : poisoned-halo (NaN) mode', file=out)
    if profile is not None:
        saved_level = configuration['profiling']
        configuration['profiling'] = profile
    saved_faults = configuration['faults']
    if faults is not None:
        configuration['faults'] = faults
        plan = configuration['faults']
        if plan:
            print('fault injection : %s' % plan.describe(), file=out)
    overrides = {'recovery': recover, 'checkpoint_every': checkpoint_every,
                 'checkpoint_dir': checkpoint_dir,
                 'checkpoint_keep': checkpoint_keep,
                 'health_check_every': health_check_every,
                 'repartition': repartition,
                 'repartition_every': repartition_every,
                 'repartition_weights': repartition_weights}
    overrides = {k: v for k, v in overrides.items() if v is not None}
    # also snapshot the keys --verify resets for its serial reference
    saved_cfg = {k: configuration[k]
                 for k in set(overrides) | {'recovery', 'checkpoint_every',
                                            'health_check_every',
                                            'repartition',
                                            'repartition_every',
                                            'repartition_weights'}}
    for k, v in overrides.items():
        configuration[k] = v
    if recover is not None and recover != 'abort':
        print('recovery policy : %s' % recover, file=out)
    if repartition is not None and repartition != 'off':
        print('repartitioning  : %s' % repartition, file=out)
    setup = _setups()[kernel]
    spacing = (10.0,) * len(shape)

    def single(comm=None, resume_run=False):
        solver, tr = setup(shape=tuple(shape), spacing=spacing, tn=tn,
                           space_order=space_order, nbl=nbl, comm=comm,
                           topology=tuple(topology) if topology else None,
                           mpi=mpi if comm is not None else None,
                           opt=opt, nrec=16)
        result = solver.forward(**({'resume': True} if resume_run else {}))
        summary = result[-1]
        wf = result[1]
        field = wf.data.gather() if hasattr(wf, 'data') \
            else wf[0].data.gather()
        return summary, field, solver.op

    def spmd(comm):
        try:
            return single(comm, resume_run=resume)
        except RankKilledError:
            if configuration['recovery'] == 'shrink':
                # under shrink the victim leaves the job; the survivors
                # carry the run to completion without it
                return None
            raise

    try:
        if ranks == 1:
            summary, field, op = single(resume_run=resume)
            if dump_schedule:
                print(op.schedule.dump(), file=out)
            _report(kernel, shape, space_order, mpi, 1, summary, op, out,
                    profile=profile, profile_out=profile_out)
            return summary, field

        from .mpi import run_parallel
        results = run_parallel(spmd, ranks)
        survivors = [r for r in results if r is not None]
        summary, field, op = survivors[0]
        if dump_schedule:
            print(op.schedule.dump(), file=out)
        _report(kernel, shape, space_order, mpi, ranks, summary, op, out,
                profile=profile, profile_out=profile_out)
        if verify:
            # the serial reference runs fault-free and recovery-free:
            # IDENTICAL proves injected faults were fully masked (non-
            # lethal plans) or fully recovered (kills + --recover)
            configuration['faults'] = False
            for key in ('recovery', 'checkpoint_every',
                        'health_check_every', 'repartition',
                        'repartition_every', 'repartition_weights'):
                del configuration[key]  # reset to defaults
            serial_summary, serial_field, _ = single()
            ok = np.array_equal(field, serial_field)
            print('verification vs serial run: %s'
                  % ('IDENTICAL' if ok else 'MISMATCH'), file=out)
            if not ok:
                raise SystemExit(1)
        return summary, field
    finally:
        configuration['faults'] = saved_faults
        configuration['sanitizer'] = saved_sanitizer
        configuration['backend'] = saved_backend
        configuration['build_cache'] = saved_cache
        configuration['cache_dir'] = saved_cache_dir
        for k, v in saved_cfg.items():
            configuration[k] = v
        if profile is not None:
            configuration['profiling'] = saved_level


def run_analyze(kernel, shape, space_order, nbl=10, mpi='basic', ranks=2,
                topology=None, weights=None, opt=True, dump_schedule=False,
                count_nodes=False, certificate=False, fmt='text',
                verbose=False, out=None):
    """Build the operator (on every simulated rank when ``ranks > 1``)
    and run the static verifier over its schedule — no execution.

    ``weights`` (one non-negative float per rank) builds the schedule on
    the weighted decomposition an elastic rebalance would install, so a
    planned repartition can be statically verified up front.

    Diagnostics from *every* rank are merged: findings identical across
    ranks print once with the reporting rank list (``verbose`` appends
    the per-rank verbatim reports).  ``certificate`` additionally prints
    each rank's static :class:`~repro.analysis.CommCertificate`.

    ``fmt='json'`` emits the stable machine-readable schema instead
    (keys are a contract — add, never rename)::

        {"schema": 1, "kernel": ..., "shape": [...],
         "space_order": ..., "mpi": "basic"|...|null, "ranks": N,
         "clean": bool, "errors": n, "warnings": n,
         "diagnostics": [{code, severity, title, message, step_index,
                          where, ranks: [...]}, ...],
         "certificates": [per-rank CommCertificate payload, ...],
         "inferred_widths": [{"u[t]": [[l, r], ...], ...}, ...]}

    Returns the merged cross-rank :class:`~repro.analysis.
    AnalysisReport` — its ``errors`` decide the exit status, so an
    error on *any* rank fails the run in every output format.
    """
    out = out if out is not None else sys.stdout
    from .analysis import (AnalysisReport, analyze_schedule,
                           build_certificate, describe_key,
                           infer_min_widths, merge_reports, render_merged)
    setup = _setups()[kernel]
    spacing = (10.0,) * len(shape)

    dim_weights = None
    if weights is not None:
        weights = tuple(float(w) for w in weights)
        if len(weights) != ranks:
            raise SystemExit('--weights expects one value per rank '
                             '(%d), got %d' % (ranks, len(weights)))
        from .mpi.cart import compute_dims
        from .resilience.elastic import rank_weights_to_dim_weights
        dims = compute_dims(ranks, len(shape),
                            given=tuple(topology) if topology else None)
        dim_weights = rank_weights_to_dim_weights(weights, dims)

    def build(comm=None):
        solver, _ = setup(shape=tuple(shape), spacing=spacing, tn=100.0,
                          space_order=space_order, nbl=nbl, comm=comm,
                          topology=tuple(topology) if topology else None,
                          weights=dim_weights if comm is not None else None,
                          mpi=mpi if comm is not None else None,
                          opt=opt, nrec=16)
        op = solver.op
        report = analyze_schedule(op.schedule, kernel=op.kernel,
                                  profiler=op.profiler)
        return (report, build_certificate(op.schedule),
                infer_min_widths(op.schedule), op)

    if ranks == 1:
        results = [build()]
    else:
        from .mpi import run_parallel
        results = run_parallel(build, ranks)
    reports = [r[0] for r in results]
    certificates = [r[1] for r in results]
    inferred = [r[2] for r in results]
    op = results[0][3]

    merged_pairs = merge_reports(reports)
    merged = AnalysisReport(diagnostics=[d for d, _ in merged_pairs],
                            schedule=op.schedule, kernel=op.kernel)

    if fmt == 'json':
        import json as _json
        payload = {
            'schema': 1,
            'kernel': kernel,
            'shape': [int(n) for n in shape],
            'space_order': int(space_order),
            'mpi': mpi if ranks > 1 else None,
            'ranks': int(ranks),
            'clean': not merged.diagnostics,
            'errors': len(merged.errors),
            'warnings': len(merged.warnings),
            'diagnostics': [dict(d.to_payload(), ranks=list(rk))
                            for d, rk in merged_pairs],
            'certificates': [c.to_payload() for c in certificates],
            'inferred_widths': [
                {describe_key(k): [list(w) for w in v]
                 for k, v in sorted(ws.items(),
                                    key=lambda kv: describe_key(kv[0]))}
                for ws in inferred],
        }
        print(_json.dumps(payload, indent=2, sort_keys=True), file=out)
        return merged

    print('--- analyze %s | shape %s | SDO %d | mpi=%s | ranks=%d ---'
          % (kernel, 'x'.join(map(str, shape)), space_order,
             mpi if ranks > 1 else 'off', ranks), file=out)
    if dim_weights is not None:
        print('weighted split   : %s' % (tuple(
            w if w is None else tuple(round(x, 4) for x in w)
            for w in dim_weights),), file=out)
    if dump_schedule:
        print(op.schedule.dump(), file=out)
    if count_nodes:
        stats = op.schedule.dag_stats()
        print('DAG: %d roots | %d unique nodes | %d tree nodes | '
              '%.2fx sharing | depth %d'
              % (stats['roots'], stats['unique_nodes'],
                 stats['tree_nodes'], stats['sharing'], stats['depth']),
              file=out)
    print(render_merged(reports, verbose=verbose), file=out)
    if certificate:
        for cert in certificates:
            print(cert.describe(), file=out)
    return merged


def _report(kernel, shape, so, mpi, ranks, summary, op, out,
            profile=None, profile_out=None):
    print('--- %s | shape %s | SDO %d | mpi=%s | ranks=%d ---'
          % (kernel, 'x'.join(map(str, shape)), so, mpi, ranks), file=out)
    print('timesteps        : %d' % summary.timesteps, file=out)
    print('elapsed          : %.4f s' % summary.elapsed, file=out)
    print('throughput       : %.4f GPts/s' % summary.gpointss, file=out)
    print('performance      : %.3f GFlops/s' % summary.gflopss, file=out)
    print('flops/point      : %d' % op.flops_per_point, file=out)
    print('operational int. : %.2f F/B (compile-time, from the AST)'
          % op.oi, file=out)
    cinfo = op.cache_info()
    if cinfo['status'] == 'hit':
        print('build cache      : hit (%s tier, saved %.3f s)'
              % (cinfo['tier'], cinfo['saved_seconds']), file=out)
    elif cinfo['status'] == 'miss':
        print('build cache      : miss (entry stored)', file=out)
    health = getattr(summary, 'comm_health', {})
    if health.get('drops_injected') or health.get('duplicates_injected') \
            or health.get('redelivered') or health.get('retries'):
        print('comm health      : drops=%d redelivered=%d retries=%d '
              'duplicates=%d unmatched=%d'
              % (health.get('drops_injected', 0),
                 health.get('redelivered', 0), health.get('retries', 0),
                 health.get('duplicates_injected', 0),
                 health.get('unmatched', 0)), file=out)
    if profile is not None and len(summary):
        print(file=out)
        print('per-section performance (rank 0 view; min/max/avg across '
              '%d rank%s):' % (summary.nranks,
                               's' if summary.nranks != 1 else ''),
              file=out)
        for line in summary.table():
            print(line, file=out)
        if profile == 'advanced' and profile_out:
            summary.save_json(profile_out)
            print('profile JSON written to %s' % profile_out, file=out)


def run_cache(action, cache_dir=None, min_hits=None, as_json=False,
              out=None):
    """The ``cache`` subcommand: inspect or clear the on-disk tier.

    Returns a process exit status (nonzero when the ``--min-hits`` gate
    fails), so CI can assert a warmed cache actually served hits.
    """
    import json as _json

    out = out if out is not None else sys.stdout
    from . import configuration
    from .buildcache import clear_disk, disk_usage, read_disk_stats
    directory = cache_dir if cache_dir is not None \
        else configuration['cache_dir']
    if action == 'clear':
        removed = clear_disk(directory)
        print('build cache cleared: %d entr%s removed from %s'
              % (removed, 'y' if removed == 1 else 'ies', directory),
              file=out)
        return 0
    stats = read_disk_stats(directory)
    nentries, nbytes = disk_usage(directory)
    stats.update(entries=nentries, disk_bytes=nbytes,
                 directory=str(directory))
    if as_json:
        print(_json.dumps(stats, indent=2, sort_keys=True), file=out)
    else:
        print('build cache at %s' % directory, file=out)
        print('  entries       : %d (%d bytes on disk)'
              % (nentries, nbytes), file=out)
        print('  hits          : %d (memory %d, disk %d)'
              % (stats['hits'], stats['memory_hits'], stats['disk_hits']),
              file=out)
        print('  misses        : %d' % stats['misses'], file=out)
        print('  stores        : %d' % stats['stores'], file=out)
        print('  errors        : %d' % stats['errors'], file=out)
        print('  time saved    : %.3f s' % stats['saved_seconds'],
              file=out)
    if min_hits is not None and stats['hits'] < min_hits:
        print('FAIL: %d cumulative hit(s) < required %d'
              % (stats['hits'], min_hits), file=out)
        return 1
    return 0


def run_doctor(require_c=False, cache_dir=None, as_json=False, out=None):
    """The ``doctor`` subcommand: diagnose the execution environment.

    Reports the discovered C toolchain (with a smoke compile+dlopen
    round trip), cffi availability, build-cache directory health and
    the backend an Operator build would select right now.  Returns a
    process exit status; ``require_c=True`` makes a missing/broken
    toolchain fatal (the first step of the CI exec job).
    """
    import json as _json
    import os

    out = out if out is not None else sys.stdout
    from . import configuration
    from .buildcache import disk_usage, read_disk_stats
    from .codegen import jit

    report = jit.toolchain_report()
    report['backend_requested'] = configuration['backend']
    report['backend_effective'] = jit.resolve_backend(
        configuration['backend'], warn=False)
    directory = os.path.abspath(cache_dir if cache_dir is not None
                                else configuration['cache_dir'])
    nentries, nbytes = disk_usage(directory)
    stats = read_disk_stats(directory)
    report['cache'] = {
        'directory': directory,
        'exists': os.path.isdir(directory),
        'writable': os.access(directory if os.path.isdir(directory)
                              else os.path.dirname(directory) or '.',
                              os.W_OK),
        'entries': nentries,
        'disk_bytes': nbytes,
        'errors': stats['errors'],
        'mode': configuration['build_cache'],
    }
    ok = report['backend_c_usable']
    if as_json:
        print(_json.dumps(report, indent=2, sort_keys=True), file=out)
    else:
        print('repro doctor', file=out)
        print('  CC (env)        : %s'
              % (report['cc_env'] or '<unset>'), file=out)
        print('  compiler        : %s'
              % (report['compiler'] or 'NOT FOUND'), file=out)
        if report['compiler_version']:
            print('  version         : %s' % report['compiler_version'],
                  file=out)
        print('  smoke compile   : %s' % (report['smoke'] or 'skipped'),
              file=out)
        print('  cffi            : %s'
              % ('available' if report['cffi'] else 'not installed '
                 '(fine; ctypes is used)'), file=out)
        cache = report['cache']
        print('  build cache     : %s (%s, %d entr%s, %d bytes'
              ', %d error%s)'
              % (cache['directory'], cache['mode'], cache['entries'],
                 'y' if cache['entries'] == 1 else 'ies',
                 cache['disk_bytes'], cache['errors'],
                 '' if cache['errors'] == 1 else 's'), file=out)
        if cache['exists'] and not cache['writable']:
            print('  WARNING         : cache directory is not writable',
                  file=out)
        print('  backend         : requested %r -> effective %r'
              % (report['backend_requested'],
                 report['backend_effective']), file=out)
        print('  compiled backend: %s'
              % ('usable' if ok else 'UNAVAILABLE (builds fall back '
                 'to numpy)'), file=out)
    if require_c and not ok:
        print('FAIL: --require-c set but the compiled backend is not '
              'usable', file=out)
        return 1
    return 0


def _service_dir(service_dir):
    import os

    from . import configuration
    return os.path.abspath(service_dir if service_dir is not None
                           else configuration['service_dir'])


def run_submit(kernel, shape, tn=100.0, space_order=4, nbl=10, nrec=8,
               dt=None, priority=0, faults=None, retries=None,
               job_id=None, service_dir=None, out=None):
    """The ``submit`` subcommand: enqueue one shot spec; returns its id."""
    import os

    from .service import ShotSpec, new_job_id

    out = out if out is not None else sys.stdout
    root = _service_dir(service_dir)
    job_id = job_id or new_job_id()
    spec = ShotSpec(kernel, tuple(shape), tn=tn, space_order=space_order,
                    nbl=nbl, nrec=nrec, dt=dt, priority=priority,
                    faults=faults, max_retries=retries, job_id=job_id)
    queue = os.path.join(root, 'queue')
    os.makedirs(queue, exist_ok=True)
    path = os.path.join(queue, '%s.json' % job_id)
    if os.path.exists(path):
        raise SystemExit('job %s is already queued' % job_id)
    spec.save(path)
    print('queued %s: %r -> %s' % (job_id, spec, path), file=out)
    return job_id


def run_serve(service_dir=None, workers=None, retries=None, cache=None,
              keep_queue=False, out=None):
    """The ``serve`` subcommand: drain the queue over the warm pool.

    Returns a process exit status (nonzero when any job failed), so a
    scripted survey can gate on batch health.
    """
    import glob
    import os

    from .service import ShotSpec, SurveyScheduler

    out = out if out is not None else sys.stdout
    root = _service_dir(service_dir)
    queue = os.path.join(root, 'queue')
    paths = sorted(glob.glob(os.path.join(queue, '*.json')))
    if not paths:
        print('nothing queued under %s' % queue, file=out)
        return 0
    specs = []
    for path in paths:
        try:
            specs.append((path, ShotSpec.load(path)))
        except (ValueError, TypeError, OSError) as exc:
            print('skipping unreadable spec %s: %s' % (path, exc),
                  file=out)
    sched = SurveyScheduler(workers=workers,
                            store=os.path.join(root, 'store'),
                            cache=cache, max_retries=retries,
                            record_dir=os.path.join(root, 'jobs'))
    for _, spec in specs:
        sched.submit(spec)
    print('serving %d job(s) with %d worker(s) from %s'
          % (len(specs), sched.workers, queue), file=out)
    report = sched.run()
    if not keep_queue:
        for path, _ in specs:
            try:
                os.unlink(path)
            except OSError:
                pass
    print(report.render(), file=out)
    print('report written to %s'
          % os.path.join(root, 'jobs', 'report.json'), file=out)
    return 1 if report.failed else 0


def run_status(job_id=None, service_dir=None, as_json=False, out=None):
    """The ``status`` subcommand: queued/recorded job state."""
    import glob
    import json as _json
    import os

    out = out if out is not None else sys.stdout
    root = _service_dir(service_dir)
    if job_id is not None:
        path = os.path.join(root, 'jobs', '%s.json' % job_id)
        try:
            with open(path, encoding='utf-8') as f:
                record = _json.load(f)
        except FileNotFoundError:
            queued = os.path.join(root, 'queue', '%s.json' % job_id)
            if os.path.exists(queued):
                record = {'job_id': job_id, 'state': 'queued'}
            else:
                print('no such job %s under %s' % (job_id, root),
                      file=out)
                return 1
        if as_json:
            print(_json.dumps(record, indent=2, sort_keys=True), file=out)
        else:
            for key in ('job_id', 'state', 'attempts', 'error',
                        'latency_seconds', 'cache_statuses',
                        'result_keys'):
                if key in record:
                    print('%-16s: %s' % (key, record[key]), file=out)
        return 0
    queued = sorted(
        os.path.splitext(os.path.basename(p))[0]
        for p in glob.glob(os.path.join(root, 'queue', '*.json')))
    records = []
    for path in sorted(glob.glob(os.path.join(root, 'jobs', '*.json'))):
        if os.path.basename(path) == 'report.json':
            continue
        try:
            with open(path, encoding='utf-8') as f:
                records.append(_json.load(f))
        except (OSError, ValueError):
            continue
    if as_json:
        print(_json.dumps({'queued': queued, 'jobs': records}, indent=2,
                          sort_keys=True), file=out)
        return 0
    print('service root %s: %d queued, %d recorded'
          % (root, len(queued), len(records)), file=out)
    for jid in queued:
        print('  %-24s queued' % jid, file=out)
    for record in records:
        line = '  %-24s %-8s attempts=%s' % (
            record.get('job_id'), record.get('state'),
            record.get('attempts'))
        if record.get('error'):
            line += ' error=%s' % record['error']
        print(line, file=out)
    return 0


def run_fetch(key, out_path=None, service_dir=None, out=None):
    """The ``fetch`` subcommand: read one stored array (CRC-checked)."""
    import os

    from .service import ArrayStore, StoreError

    out = out if out is not None else sys.stdout
    root = _service_dir(service_dir)
    store = ArrayStore(os.path.join(root, 'store'))
    try:
        array = store.get(key)
    except KeyError:
        print('no stored array %r (have: %s)'
              % (key, ', '.join(store.keys()) or 'none'), file=out)
        return 1
    except StoreError as exc:
        print('FAIL: %s' % exc, file=out)
        return 1
    print('%s: shape %s dtype %s | min %.6g max %.6g norm %.6g'
          % (key, 'x'.join(map(str, array.shape)), array.dtype,
             array.min(), array.max(), np.linalg.norm(array)), file=out)
    if out_path:
        np.save(out_path, array)
        print('written to %s' % out_path, file=out)
    return 0


def main(argv=None):
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == 'submit':
        args = _submit_parser().parse_args(argv[1:])
        if len(args.shape) not in (2, 3):
            raise SystemExit('-d expects 2 or 3 dimensions')
        run_submit(args.kernel, args.shape, tn=args.tn,
                   space_order=args.space_order, nbl=args.nbl,
                   nrec=args.nrec, dt=args.dt, priority=args.priority,
                   faults=args.inject_faults, retries=args.retries,
                   job_id=args.job_id, service_dir=args.service_dir)
        return
    if argv and argv[0] == 'serve':
        args = _serve_parser().parse_args(argv[1:])
        status = run_serve(service_dir=args.service_dir,
                           workers=args.workers, retries=args.retries,
                           cache=args.cache, keep_queue=args.keep_queue)
        if status:
            raise SystemExit(status)
        return
    if argv and argv[0] == 'status':
        args = _status_parser().parse_args(argv[1:])
        status = run_status(job_id=args.job_id,
                            service_dir=args.service_dir,
                            as_json=args.json)
        if status:
            raise SystemExit(status)
        return
    if argv and argv[0] == 'fetch':
        args = _fetch_parser().parse_args(argv[1:])
        status = run_fetch(args.key, out_path=args.out,
                           service_dir=args.service_dir)
        if status:
            raise SystemExit(status)
        return
    if argv and argv[0] == 'doctor':
        args = _doctor_parser().parse_args(argv[1:])
        status = run_doctor(require_c=args.require_c,
                            cache_dir=args.cache_dir, as_json=args.json)
        if status:
            raise SystemExit(status)
        return
    if argv and argv[0] == 'cache':
        args = _cache_parser().parse_args(argv[1:])
        status = run_cache(args.action, cache_dir=args.cache_dir,
                           min_hits=args.min_hits, as_json=args.json)
        if status:
            raise SystemExit(status)
        return
    if argv and argv[0] == 'analyze':
        args = _analyze_parser().parse_args(argv[1:])
        if len(args.shape) not in (2, 3):
            raise SystemExit('-d expects 2 or 3 dimensions')
        weights = None
        if args.weights is not None:
            try:
                weights = [float(w) for w in args.weights.split(',')]
            except ValueError:
                raise SystemExit('--weights expects comma-separated '
                                 'numbers, got %r' % args.weights)
        report = run_analyze(args.kernel, args.shape, args.space_order,
                             nbl=args.nbl, mpi=args.mpi, ranks=args.ranks,
                             topology=args.topology, weights=weights,
                             opt=not args.no_opt,
                             dump_schedule=args.dump_schedule,
                             count_nodes=args.count_nodes,
                             certificate=args.certificate, fmt=args.fmt,
                             verbose=args.verbose)
        if report.errors:
            raise SystemExit(1)
        return
    args = _parser().parse_args(argv)
    if len(args.shape) not in (2, 3):
        raise SystemExit('-d expects 2 or 3 dimensions')
    run_benchmark(args.kernel, args.shape, args.tn, args.space_order,
                  nbl=args.nbl, mpi=args.mpi, ranks=args.ranks,
                  topology=args.topology, opt=not args.no_opt,
                  verify=args.verify, profile=args.profile,
                  profile_out=args.profile_out,
                  faults=args.inject_faults, recover=args.recover,
                  checkpoint_every=args.checkpoint_every,
                  checkpoint_dir=args.checkpoint_dir,
                  checkpoint_keep=args.checkpoint_keep,
                  resume=args.resume,
                  health_check_every=args.health_check_every,
                  sanitize=args.sanitize,
                  dump_schedule=args.dump_schedule,
                  cache=args.cache, cache_dir=args.cache_dir,
                  repartition=args.repartition_policy,
                  repartition_every=args.repartition_every,
                  repartition_weights=args.repartition_weights,
                  backend=args.backend)


if __name__ == '__main__':
    try:
        main()
    except BrokenPipeError:
        # downstream consumer (e.g. ``status --json | grep -q``) closed
        # the pipe early; redirect stdout at the fd so the interpreter's
        # exit-time flush doesn't raise a second time, and exit cleanly
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
