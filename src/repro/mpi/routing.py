"""Sparse ("off-the-grid") point routing across ranks.

Implements the paper's Figure 3 semantics: each sparse point has physical
coordinates; its interpolation/injection support (the surrounding grid
cell, widened by the interpolation radius) may straddle rank boundaries.
Every rank whose subdomain intersects a point's support participates in
operations on that point: injection touches only locally-owned grid
points (so nothing is double-counted), while interpolation produces
partial sums that are reduced across the sharing ranks.
"""

from __future__ import annotations

import numpy as np

__all__ = ['PointRouting', 'block_intersections', 'support_points',
           'bilinear_coefficients']


def block_intersections(space_ranges, distributor):
    """Route a global block to the ranks of a (possibly new) decomposition.

    ``space_ranges`` is a per-grid-dimension list of global ``(start,
    stop)`` intervals describing a block of grid points — e.g. the
    domain region one rank of an *old* decomposition wrote into a
    checkpoint.  Returns ``[(rank, ranges), ...]`` listing every rank of
    ``distributor`` whose owned subdomain intersects the block, with the
    per-dimension global ranges of the (non-empty) intersection.

    This is the dense-block counterpart of :class:`PointRouting`: the
    shrink-recovery repartitioner uses it to scatter checkpointed blocks
    rank-to-rank after the Cartesian topology changed.
    """
    out = []
    for rank in range(distributor.nprocs):
        coords = distributor.comm.Get_coords(rank)
        isect = []
        for d, (start, stop) in enumerate(space_ranges):
            lo, hi = distributor.decompositions[d].intersection(
                coords[d], start, stop)
            if lo >= hi:
                break
            isect.append((lo, hi))
        else:
            out.append((rank, tuple(isect)))
    return out


def support_points(coords, origin, spacing, radius=1):
    """Global grid indices of the interpolation support of one point.

    ``radius=1`` yields the 2**ndim cell corners (multi-linear
    interpolation).  Returns (lows, highs) inclusive per dimension.
    """
    lows, highs = [], []
    for c, o, h in zip(coords, origin, spacing):
        pos = (c - o) / h
        lo = int(np.floor(pos)) - (radius - 1)
        hi = int(np.floor(pos)) + radius
        lows.append(lo)
        highs.append(hi)
    return tuple(lows), tuple(highs)


def bilinear_coefficients(coords, origin, spacing):
    """Per-dimension (low_index, low_weight, high_weight) of multilinear
    interpolation for one point."""
    out = []
    for c, o, h in zip(coords, origin, spacing):
        pos = (c - o) / h
        lo = int(np.floor(pos))
        frac = pos - lo
        out.append((lo, 1.0 - frac, frac))
    return out


class PointRouting:
    """Ownership and local index plans for a set of sparse points.

    Parameters
    ----------
    coordinates : (npoints, ndim) array
        Physical coordinates.
    distributor : Distributor
    origin, spacing : tuples
        Grid geometry.
    radius : int
        Interpolation radius (1 = multilinear).

    Attributes
    ----------
    local_points : list of int
        Indices of points whose support intersects this rank.
    owned_points : list of int
        Points whose *primary owner* (owner of the low corner, clamped
        into the domain) is this rank — used when a single responsible
        rank is needed (e.g. writing receiver output).
    """

    def __init__(self, coordinates, distributor, origin, spacing, radius=1):
        self.coordinates = np.asarray(coordinates, dtype=np.float64)
        if self.coordinates.ndim != 2:
            raise ValueError("coordinates must be (npoints, ndim)")
        self.distributor = distributor
        self.origin = tuple(origin)
        self.spacing = tuple(spacing)
        self.radius = int(radius)
        self.shape = distributor.shape
        self._build()

    def _build(self):
        dist = self.distributor
        ranges = dist.local_ranges()
        self.local_points = []
        self.owned_points = []
        #: per local point: list of (local_indices, weight) contributions
        self.plans = {}
        for p, coords in enumerate(self.coordinates):
            per_dim = bilinear_coefficients(coords, self.origin, self.spacing)
            # enumerate support corners with weights; clamp to the domain
            corners = [()]
            weights = [1.0]
            for (lo, wlo, whi), n in zip(per_dim, self.shape):
                new_corners, new_weights = [], []
                for corner, w in zip(corners, weights):
                    for idx, wi in ((lo, wlo), (lo + 1, whi)):
                        idx_clamped = min(max(idx, 0), n - 1)
                        new_corners.append(corner + (idx_clamped,))
                        new_weights.append(w * wi)
                corners, weights = new_corners, new_weights
            # merge duplicate corners produced by clamping
            merged = {}
            for corner, w in zip(corners, weights):
                merged[corner] = merged.get(corner, 0.0) + w
            local_contribs = []
            for corner, w in merged.items():
                if w == 0.0:
                    continue
                loc = dist.glb_to_loc_point(corner)
                if loc is not None:
                    local_contribs.append((loc, w))
            if local_contribs:
                self.local_points.append(p)
                self.plans[p] = local_contribs
            # primary owner: rank owning the clamped low corner
            primary = tuple(min(max(lo, 0), n - 1)
                            for (lo, _, _), n in zip(per_dim, self.shape))
            if dist.owns(primary):
                self.owned_points.append(p)

    # -- vectorized plan assembly (consumed by generated kernels) -------------------

    def gather_plan(self):
        """Flatten plans into arrays for vectorized injection/interpolation.

        Returns (point_ids, index_arrays, weights): parallel 1-D arrays
        where entry k says "point point_ids[k] touches local grid point
        (index_arrays[0][k], ...) with weight weights[k]".
        """
        point_ids, weights = [], []
        index_cols = [[] for _ in range(self.distributor.ndim)]
        for p in self.local_points:
            for loc, w in self.plans[p]:
                point_ids.append(p)
                weights.append(w)
                for d, i in enumerate(loc):
                    index_cols[d].append(i)
        return (np.asarray(point_ids, dtype=np.int64),
                tuple(np.asarray(col, dtype=np.int64) for col in index_cols),
                np.asarray(weights, dtype=np.float64))

    def stats(self):
        """Routing instrumentation for the profiling subsystem.

        ``ncontribs`` is the number of (point, grid-cell) contribution
        pairs this rank evaluates per sparse operation — the work metric
        that load-imbalance in sparse sections is measured against.
        """
        return {'npoints': len(self.coordinates),
                'nlocal': len(self.local_points),
                'nowned': len(self.owned_points),
                'ncontribs': sum(len(p) for p in self.plans.values())}

    def __repr__(self):
        return ('PointRouting(%d points, %d local, %d owned, rank=%d)'
                % (len(self.coordinates), len(self.local_points),
                   len(self.owned_points), self.distributor.myrank))
