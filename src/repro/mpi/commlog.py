"""Communication-correctness validation for the simulated MPI runtime.

An always-available :class:`CommLog` lives on every
:class:`~repro.mpi.sim.SimWorld` and records every send and receive
(src, dst, tag, bytes, section).  It provides three families of checks:

* **Message matching** — at the end of every ``Operator.apply`` (and on
  demand via :meth:`CommLog.validate`), a rank's mailbox must contain no
  leftover user-tagged messages: a leftover is an *unmatched send*, i.e.
  a peer posted a send this rank never received.
* **Tag-space hygiene** — :func:`check_tag_spaces` statically verifies
  that no two concurrently live exchangers of one kernel have
  overlapping tag ranges (a collision would silently cross-deliver halo
  slabs between functions), and that no exchanger strays into the
  transport's reserved out-of-band bands
  (:data:`~repro.mpi.sim.RESERVED_TAG_SPACES`: collective tags — also
  carrying the resilience layer's repartitioning ``alltoall`` — and the
  ``ANY_SOURCE``/``ANY_TAG``/``PROC_NULL`` sentinels).
* **Deadlock detection** — every blocked receive registers a wait-for
  edge ``rank -> source``; when a receive times out a scheduling slice,
  :meth:`CommLog.deadlock_probe` looks for a cycle in the wait-for graph
  and, if one is *live* (every member still blocked with no satisfying
  message in its mailbox or drop-limbo), raises a :class:`DeadlockError`
  that **names the cycle** instead of burning the full timeout.

The probe is sound against the obvious races because ``collect`` clears
a rank's wait entry *before* popping the matching message: if a member's
entry is observed unchanged both before and after the mailboxes are
inspected, that member cannot have consumed a message in between.

With ``configuration['commlog'] = False`` recording is skipped entirely;
with it on (the default) the cost is a few dict updates per *message* —
noise next to the per-message ``ndarray`` copies of the transport.
"""

from __future__ import annotations

import threading

from .sim import ANY_SOURCE, RemoteRankError

__all__ = ['CommLog', 'CommValidationError', 'TagCollisionError',
           'DeadlockError', 'check_tag_spaces']


class CommValidationError(RuntimeError):
    """A communication-correctness invariant was violated."""


class TagCollisionError(CommValidationError):
    """Two concurrently live exchangers own overlapping tag ranges."""


class DeadlockError(RemoteRankError):
    """A cycle was found in the wait-for graph (names the cycle)."""

    def __init__(self, cycle, details):
        self.cycle = tuple(cycle)
        super().__init__(
            "communication deadlock detected: cycle %s [%s]"
            % (' -> '.join(str(r) for r in
                           tuple(cycle) + (cycle[0],)), '; '.join(details)))


class CommLog:
    """Send/recv ledger + wait-for graph of one :class:`SimWorld`."""

    def __init__(self, size, enabled=True):
        self.size = int(size)
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        #: aggregate counters (monotonic)
        self.nsends = 0
        self.nrecvs = 0
        self.nbytes_sent = 0
        self.nbytes_recv = 0
        self.nunmatched = 0
        #: (src, dst, tag) -> [count, bytes, section]
        self._sends = {}
        #: (src, dst, tag) -> [count, bytes]
        self._recvs = {}
        #: rank -> (comm_id, source, tag, generation)
        self._waits = {}
        self._wait_gen = 0

    # -- ledger ------------------------------------------------------------------

    def record_send(self, src, dst, tag, nbytes, section=None):
        if not self.enabled:
            return
        with self._lock:
            self.nsends += 1
            self.nbytes_sent += nbytes
            rec = self._sends.get((src, dst, tag))
            if rec is None:
                self._sends[(src, dst, tag)] = [1, nbytes, section]
            else:
                rec[0] += 1
                rec[1] += nbytes
                if section is not None:
                    rec[2] = section

    def record_recv(self, src, dst, tag, nbytes):
        if not self.enabled:
            return
        with self._lock:
            self.nrecvs += 1
            self.nbytes_recv += nbytes
            rec = self._recvs.get((src, dst, tag))
            if rec is None:
                self._recvs[(src, dst, tag)] = [1, nbytes]
            else:
                rec[0] += 1
                rec[1] += nbytes

    def clear_ledgers(self):
        """Forget the per-(src, dst, tag) send/recv ledgers.

        Called by :meth:`SimWorld.reset` during coordinated recovery:
        sends recorded before a failure were wiped from the mailboxes,
        so keeping their ledger entries would report them as *unmatched*
        at the end of the resumed run.  The aggregate monotonic counters
        (``nsends`` etc.) are deliberately preserved.
        """
        with self._lock:
            self._sends.clear()
            self._recvs.clear()

    def sends_snapshot(self, src=None, user_only=True):
        """Immutable view of the send ledger: ``{(src, dst, tag): (count,
        bytes)}``.

        This is the comparison surface of the static
        :class:`~repro.analysis.certificate.CommCertificate` (the
        ``reconcile`` sanitizer mode): snapshot before and after an
        ``apply``, diff with :meth:`sends_delta`, and the result is the
        exact per-(destination, tag) traffic the transport recorded for
        the run.  ``src`` filters to one sender; ``user_only`` (default)
        drops the negative-tag out-of-band traffic (collectives,
        recovery control messages).
        """
        with self._lock:
            out = {}
            for (s, d, tag), (count, nbytes, _) in self._sends.items():
                if src is not None and s != src:
                    continue
                if user_only and tag < 0:
                    continue
                out[(s, d, tag)] = (count, nbytes)
            return out

    @staticmethod
    def sends_delta(before, after):
        """Per-key (count, bytes) difference of two send snapshots,
        zero entries removed — the traffic recorded between the two."""
        out = {}
        for key, (count, nbytes) in after.items():
            c0, b0 = before.get(key, (0, 0))
            if count - c0 or nbytes - b0:
                out[key] = (count - c0, nbytes - b0)
        return out

    def unmatched(self):
        """(src, dst, tag, outstanding, section) with sends > recvs."""
        with self._lock:
            out = []
            for key, (nsend, _, section) in sorted(self._sends.items()):
                nrecv = self._recvs.get(key, (0, 0))[0]
                if nsend > nrecv:
                    out.append(key + (nsend - nrecv, section))
            return out

    # -- wait-for graph ----------------------------------------------------------

    def set_wait(self, rank, comm_id, source, tag):
        """Register that ``rank`` is blocked on (source, tag)."""
        with self._lock:
            self._wait_gen += 1
            self._waits[rank] = (comm_id, source, tag, self._wait_gen)

    def clear_wait(self, rank):
        with self._lock:
            self._waits.pop(rank, None)

    def clear_all_waits(self):
        with self._lock:
            self._waits.clear()

    def snapshot_waits(self):
        with self._lock:
            return dict(self._waits)

    def _cycle_from(self, waits, start):
        """Follow concrete wait edges from ``start``; return a cycle
        through ``start``'s chain, or None."""
        path = []
        seen = {}
        cur = start
        while True:
            entry = waits.get(cur)
            if entry is None:
                return None
            source = entry[1]
            if not isinstance(source, int) or source == ANY_SOURCE or \
                    source < 0 or source >= self.size:
                return None  # wildcard or invalid: no concrete edge
            if cur in seen:
                return path[seen[cur]:]
            seen[cur] = len(path)
            path.append(cur)
            cur = source

    def deadlock_probe(self, world, rank):
        """A verified-live wait-for cycle through ``rank``, or None.

        Soundness: a member's wait entry is cleared *before* it pops a
        message, so "entry unchanged across the mailbox inspection"
        implies it consumed nothing while we looked.
        """
        if not self.enabled:
            return None
        snap = self.snapshot_waits()
        cycle = self._cycle_from(snap, rank)
        if not cycle:
            return None
        # every member must truly have nothing to consume (mailbox or
        # drop-limbo) for its registered wait
        for r in cycle:
            comm_id, source, tag, _ = snap[r]
            if world.probe_pending(r, comm_id, source, tag):
                return None
        # re-read: if any member's entry changed, it made progress
        snap2 = self.snapshot_waits()
        for r in cycle:
            if snap2.get(r) != snap[r]:
                return None
        details = ['rank %d waits on rank %d (tag=%s)'
                   % (r, snap[r][1], snap[r][2]) for r in cycle]
        return DeadlockError(cycle, details)

    # -- end-of-run validation ----------------------------------------------------

    def validate(self, world, rank):
        """Check message matching for ``rank`` at a quiescent point.

        Called at the end of ``Operator.apply`` (after the last halo
        wait, before the profiling collective): every user-tagged
        message still sitting in this rank's mailbox — or stranded in
        its drop-limbo — is a send no receive ever matched.  Raises
        :class:`CommValidationError` naming the culprits.
        """
        if not self.enabled:
            return 0
        leftovers = []
        cond = world._conds[rank]
        with cond:
            for msg in world._boxes[rank]:
                if msg.tag >= 0:
                    leftovers.append(msg)
            for msg in world._dropped[rank]:
                if msg.tag >= 0:
                    leftovers.append(msg)
        if leftovers:
            with self._lock:
                self.nunmatched += len(leftovers)
            detail = ', '.join(
                '(src=%d, tag=%d, section=%s)'
                % (m.source, m.tag, m.section) for m in leftovers[:8])
            raise CommValidationError(
                "unmatched sends: %d message(s) addressed to rank %d were "
                "never received: %s%s"
                % (len(leftovers), rank, detail,
                   ', ...' if len(leftovers) > 8 else ''))
        return 0

    def counters(self):
        with self._lock:
            return {'nsends': self.nsends, 'nrecvs': self.nrecvs,
                    'nbytes_sent': self.nbytes_sent,
                    'nbytes_recv': self.nbytes_recv,
                    'unmatched': self.nunmatched}

    def __repr__(self):
        return ('CommLog(%d ranks, %d sends, %d recvs, enabled=%s)'
                % (self.size, self.nsends, self.nrecvs, self.enabled))


def check_tag_spaces(exchangers, reserved=None):
    """Verify the tag ranges of concurrently live exchangers are disjoint
    — both from each other and from the transport's reserved bands.

    ``exchangers`` is the ``{key: exchanger}`` mapping of one generated
    kernel; each exchanger owns ``[tag_base, tag_base + 3**ndim)``.

    ``reserved`` is a sequence of out-of-band ``(lo, hi, label)`` ranges
    (half-open) no exchanger may touch; it defaults to
    :data:`repro.mpi.sim.RESERVED_TAG_SPACES`, which covers the
    collective tag band (shared by the resilience layer's
    shrink-and-redistribute ``alltoall``) and the sentinel values
    (``ANY_SOURCE``/``ANY_TAG``/``PROC_NULL``), so recovery traffic can
    never alias a halo exchange.

    Raises :class:`TagCollisionError` naming the colliding pair (or the
    violated reserved band).
    """
    if reserved is None:
        from .sim import RESERVED_TAG_SPACES
        reserved = RESERVED_TAG_SPACES
    items = sorted(((ex.tag_range, name)
                    for name, ex in dict(exchangers).items()))
    for (lo, hi), name in items:
        for rlo, rhi, label in reserved:
            if lo < rhi and rlo < hi:
                raise TagCollisionError(
                    "tag collision: exchanger %r [%d, %d) intersects the "
                    "reserved out-of-band range [%d, %d) (%s); exchanger "
                    "tag ranges must be non-negative"
                    % (name, lo, hi, rlo, rhi, label))
    for ((lo_a, hi_a), name_a), ((lo_b, hi_b), name_b) in zip(items,
                                                              items[1:]):
        if hi_a > lo_b:
            raise TagCollisionError(
                "tag collision between exchangers %r [%d, %d) and %r "
                "[%d, %d): messages of one would match receives of the "
                "other" % (name_a, lo_a, hi_a, name_b, lo_b, hi_b))
