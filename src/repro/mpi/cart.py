"""Cartesian process topologies (MPI_Cart_create / MPI_Dims_create).

Devito logically partitions the grid over ranks using MPI's Cartesian
topology abstraction; this module reproduces that machinery: balanced
dimension factorization, rank<->coordinate mapping (C row-major order,
like MPI), neighbor shifts, and full neighborhood enumeration (needed by
the *diagonal* and *full* communication patterns, which also exchange
corners).
"""

from __future__ import annotations

import itertools

import numpy as np

from .sim import PROC_NULL, SimComm

__all__ = ['compute_dims', 'shrink_dims', 'CartComm',
           'neighborhood_offsets']


def shrink_dims(old_dims, nprocs):
    """Process grid for a world shrunk from ``prod(old_dims)`` to
    ``nprocs`` ranks (ULFM ``MPI_Comm_shrink``-style recovery).

    Preference order: (1) keep the old topology if it still matches,
    (2) shrink a single axis if ``nprocs`` factorizes that way (keeps
    the other axes' decompositions — and thus most checkpoint blocks —
    in place), (3) fall back to a balanced refactorization.
    """
    old_dims = tuple(int(d) for d in old_dims)
    if int(np.prod(old_dims)) == nprocs:
        return old_dims
    best = None
    for axis in range(len(old_dims)):
        rest = int(np.prod(old_dims)) // old_dims[axis]
        if rest and nprocs % rest == 0 and nprocs // rest >= 1:
            cand = list(old_dims)
            cand[axis] = nprocs // rest
            # prefer shrinking the axis that changes the least
            score = abs(old_dims[axis] - cand[axis])
            if best is None or score < best[0]:
                best = (score, tuple(cand))
    if best is not None:
        return best[1]
    return compute_dims(nprocs, len(old_dims))


def compute_dims(nprocs, ndims, given=None):
    """Balanced factorization of ``nprocs`` over ``ndims`` dimensions.

    Equivalent to ``MPI_Dims_create``: factors are as close to each other
    as possible, sorted in non-increasing order.  Entries of ``given``
    that are nonzero are kept fixed (the user-specified ``topology``
    argument of ``Grid``).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    given = list(given) if given is not None else [0] * ndims
    if len(given) != ndims:
        raise ValueError("topology length %d != ndims %d"
                         % (len(given), ndims))
    fixed = 1
    free_slots = []
    for i, g in enumerate(given):
        if g:
            if nprocs % g and nprocs % fixed == 0:
                pass  # validated below
            fixed *= g
        else:
            free_slots.append(i)
    if nprocs % fixed:
        raise ValueError("fixed topology %s does not divide %d processes"
                         % (given, nprocs))
    remaining = nprocs // fixed
    if not free_slots:
        if remaining != 1:
            raise ValueError("topology %s does not use all %d processes"
                             % (given, nprocs))
        return tuple(given)

    # greedy: repeatedly assign the largest prime factor to the smallest slot
    dims = [1] * len(free_slots)
    for p in sorted(_prime_factors(remaining), reverse=True):
        smallest = min(range(len(dims)), key=lambda i: dims[i])
        dims[smallest] *= p
    dims.sort(reverse=True)
    out = list(given)
    for slot, d in zip(free_slots, dims):
        out[slot] = d
    return tuple(out)


def _prime_factors(n):
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def neighborhood_offsets(ndims, diagonals=True):
    """All neighbor offsets of a rank in an ``ndims``-D Cartesian grid.

    With ``diagonals`` this is the full Moore neighborhood (``3**n - 1``
    offsets: 26 in 3D, matching Table I); without, only the faces
    (``2*n``: 6 in 3D, the *basic* pattern).
    """
    if diagonals:
        offs = [o for o in itertools.product((-1, 0, 1), repeat=ndims)
                if any(o)]
    else:
        offs = []
        for d in range(ndims):
            for s in (-1, 1):
                o = [0] * ndims
                o[d] = s
                offs.append(tuple(o))
    return offs


class CartComm(SimComm):
    """A communicator with an attached Cartesian topology."""

    def __init__(self, world, rank, dims, periods=None, comm_id=('cart',)):
        super().__init__(world, rank, comm_id=comm_id)
        self.dims = tuple(int(d) for d in dims)
        if int(np.prod(self.dims)) != world.size:
            raise ValueError("topology %s does not match world size %d"
                             % (self.dims, world.size))
        self.periods = tuple(periods) if periods is not None \
            else (False,) * len(self.dims)
        self.coords = self.Get_coords(rank)

    @property
    def ndims(self):
        return len(self.dims)

    def Get_coords(self, rank):
        """Rank -> Cartesian coordinates (C row-major order, as MPI)."""
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def Get_cart_rank(self, coords):
        """Cartesian coordinates -> rank; PROC_NULL if outside a
        non-periodic boundary."""
        wrapped = []
        for c, d, p in zip(coords, self.dims, self.periods):
            if p:
                wrapped.append(c % d)
            elif 0 <= c < d:
                wrapped.append(c)
            else:
                return PROC_NULL
        return int(np.ravel_multi_index(wrapped, self.dims))

    def Shift(self, direction, disp=1):
        """(source, dest) ranks for a shift along ``direction``."""
        src = list(self.coords)
        dst = list(self.coords)
        src[direction] -= disp
        dst[direction] += disp
        return self.Get_cart_rank(src), self.Get_cart_rank(dst)

    def neighbor(self, offset):
        """Rank at ``coords + offset`` (PROC_NULL outside the domain)."""
        coords = [c + o for c, o in zip(self.coords, offset)]
        return self.Get_cart_rank(coords)

    def neighborhood(self, diagonals=True):
        """Mapping offset -> rank over the (Moore or face) neighborhood,
        excluding PROC_NULL entries."""
        out = {}
        for off in neighborhood_offsets(self.ndims, diagonals=diagonals):
            r = self.neighbor(off)
            if r != PROC_NULL:
                out[off] = r
        return out


def create_cart(comm, dims, periods=None):
    """MPI_Cart_create: derive a Cartesian communicator from ``comm``."""
    new_id = comm._id + ('cart%d' % next(comm._dup_seq),)
    return CartComm(comm.world, comm.rank, dims, periods=periods,
                    comm_id=new_id)
