"""Simulated distributed-memory substrate.

Provides everything the paper's generated code needs from MPI: an
in-process message-passing layer with mpi4py semantics (:mod:`.sim`),
Cartesian topologies (:mod:`.cart`), block domain decomposition
(:mod:`.decomposition`, :mod:`.distributor`), logically-global distributed
arrays (:mod:`.data`), the three halo-exchange patterns (:mod:`.halo`)
and sparse-point routing (:mod:`.routing`).
"""

from .sim import (ANY_SOURCE, ANY_TAG, PROC_NULL, CompletedRequest,
                  RecvRequest, RemoteRankError, Request, SimComm, SimWorld,
                  parallel, run_parallel, serial_comm)
from .faults import FaultPlan, RankKilledError
from .commlog import (CommLog, CommValidationError, DeadlockError,
                      TagCollisionError, check_tag_spaces)
from .cart import (CartComm, compute_dims, create_cart,
                   neighborhood_offsets, shrink_dims)
from .decomposition import Decomposition
from .distributor import Distributor
from .data import Data, DimSpec
from .halo import (BasicExchanger, DiagonalExchanger, FullExchanger,
                   HaloWidths, core_region, make_exchanger,
                   remainder_regions)
from .routing import (PointRouting, bilinear_coefficients,
                      block_intersections, support_points)

__all__ = [
    'ANY_SOURCE', 'ANY_TAG', 'PROC_NULL', 'CompletedRequest', 'RecvRequest',
    'RemoteRankError', 'Request', 'SimComm', 'SimWorld', 'parallel',
    'run_parallel', 'serial_comm', 'FaultPlan', 'RankKilledError',
    'CommLog', 'CommValidationError', 'DeadlockError', 'TagCollisionError',
    'check_tag_spaces', 'CartComm', 'compute_dims', 'create_cart',
    'neighborhood_offsets', 'shrink_dims', 'Decomposition', 'Distributor',
    'Data', 'DimSpec', 'BasicExchanger', 'DiagonalExchanger',
    'FullExchanger', 'HaloWidths', 'core_region', 'make_exchanger',
    'remainder_regions', 'PointRouting', 'bilinear_coefficients',
    'block_intersections', 'support_points',
]
