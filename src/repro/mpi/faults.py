"""Deterministic fault injection for the simulated MPI transport.

The paper's central robustness claim is that the generated halo-exchange
schedules are deadlock-free and drop-in equivalent; this module provides
the adversary used to *test* that claim.  A :class:`FaultPlan` is a
seedable, fully deterministic schedule of transport faults:

``drop``
    The message is diverted into a per-destination "limbo" list instead
    of the mailbox.  The receiver's bounded retry path
    (:meth:`~repro.mpi.sim.SimWorld.collect`) redelivers it, modelling a
    reliable transport retransmitting a lost eager packet.
``duplicate``
    The message is enqueued twice; the receiver discards the stale alias
    on consumption (transport-level dedup).
``reorder``
    The message is enqueued at the *front* of the mailbox; per-pair
    sequence numbers preserve MPI's non-overtaking guarantee at match
    time, so the fault is observable only as latency.
``delay``
    The sender sleeps for :attr:`delay` seconds before delivery.
``kill``
    Rank *r* raises :class:`RankKilledError` at the top of timestep *t*
    (``kill=r@t``), exercising the collective teardown path of
    ``Operator.apply``.

Determinism does not rely on a shared RNG consumed in delivery order
(which would be scheduling-dependent): every decision is a pure hash of
``(seed, src, dst, tag, seq)``, so the same seed yields the *same* fault
schedule regardless of thread interleaving — and therefore bit-identical
results for any non-lethal plan.

Plans are configured via ``configuration['faults']``, the
``REPRO_FAULTS`` environment variable, or the CLI ``--inject-faults``
flag, all of which accept the spec grammar of :meth:`FaultPlan.parse`.
"""

from __future__ import annotations

from .sim import RemoteRankError

__all__ = ['FaultPlan', 'RankKilledError']

_MASK = (1 << 64) - 1

# per-channel salts so the fault channels draw independent decisions
_CH_DROP = 0x9E3779B97F4A7C15
_CH_DUP = 0xC2B2AE3D27D4EB4F
_CH_REORDER = 0x165667B19E3779F9
_CH_DELAY = 0x27D4EB2F165667C5


class RankKilledError(RemoteRankError):
    """Raised in a rank killed by an injected fault.

    A subclass of :class:`~repro.mpi.sim.RemoteRankError` so that the
    *same* exception type surfaces from ``Operator.apply`` on every rank
    of the job: the killed rank raises :class:`RankKilledError`, its
    peers are woken with plain :class:`RemoteRankError`.
    """

    def __init__(self, rank, timestep):
        self.rank = int(rank)
        self.timestep = int(timestep)
        super().__init__("rank %d killed by fault injection at timestep %d"
                         % (rank, timestep))


def _mix(*parts):
    """splitmix64-style avalanche of integer parts (order-sensitive)."""
    x = 0x243F6A8885A308D3
    for p in parts:
        x = (x ^ (p & _MASK)) & _MASK
        x = (x * 0xBF58476D1CE4E5B9) & _MASK
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & _MASK
        x ^= x >> 31
    return x


class FaultPlan:
    """A deterministic, seedable schedule of transport faults.

    Parameters
    ----------
    seed : int
        Root of all per-message decisions.
    drop, duplicate, reorder, delay : float in [0, 1]
        Per-message fault probabilities (independent channels; a dropped
        message is only dropped).
    delay_time : float
        Seconds slept by the ``delay`` channel (default 1 ms).
    kills : iterable of (rank, timestep)
        Deterministic rank kills.
    """

    def __init__(self, seed=0, drop=0.0, duplicate=0.0, reorder=0.0,
                 delay=0.0, delay_time=1e-3, kills=()):
        self.seed = int(seed)
        for name, p in (('drop', drop), ('duplicate', duplicate),
                        ('reorder', reorder), ('delay', delay)):
            if not 0.0 <= float(p) <= 1.0:
                raise ValueError("fault probability %r=%r outside [0, 1]"
                                 % (name, p))
        self.p_drop = float(drop)
        self.p_duplicate = float(duplicate)
        self.p_reorder = float(reorder)
        self.p_delay = float(delay)
        self.delay = float(delay_time)
        if self.delay < 0:
            raise ValueError("delay_time must be >= 0")
        self.kills = tuple((int(r), int(t)) for r, t in kills)
        for r, t in self.kills:
            if r < 0 or t < 0:
                raise ValueError("kill spec rank@timestep must be "
                                 "non-negative, got %d@%d" % (r, t))

    # -- parsing -----------------------------------------------------------------

    _PROB_KEYS = {'drop': 'drop', 'duplicate': 'duplicate',
                  'dup': 'duplicate', 'reorder': 'reorder',
                  'delay': 'delay'}

    @classmethod
    def parse(cls, spec):
        """Build a plan from a spec string.

        Grammar (comma-separated ``key=value`` fields)::

            seed=<int>                  decision seed (default 0)
            drop=<p>                    drop probability
            duplicate=<p> (alias dup)   duplication probability
            reorder=<p>                 reordering probability
            delay=<p>                   delay probability
            delay_ms=<float>            delay duration (default 1.0)
            kill=<rank>@<timestep>      kill a rank (repeatable)

        Example: ``"seed=42,drop=0.05,duplicate=0.01,kill=1@10"``.
        """
        if isinstance(spec, cls):
            return spec
        kwargs = {'seed': 0, 'kills': []}
        probs = {}
        for field in str(spec).split(','):
            field = field.strip()
            if not field:
                continue
            if '=' not in field:
                raise ValueError("malformed fault spec field %r (expected "
                                 "key=value)" % field)
            key, _, value = field.partition('=')
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == 'seed':
                    kwargs['seed'] = int(value)
                elif key in cls._PROB_KEYS:
                    probs[cls._PROB_KEYS[key]] = float(value)
                elif key == 'delay_ms':
                    kwargs['delay_time'] = float(value) / 1e3
                elif key == 'kill':
                    rank, _, step = value.partition('@')
                    if not step:
                        raise ValueError("kill expects rank@timestep")
                    kwargs['kills'].append((int(rank), int(step)))
                else:
                    raise ValueError(
                        "unknown fault spec key %r (accepted: seed, drop, "
                        "duplicate/dup, reorder, delay, delay_ms, kill)"
                        % key)
            except ValueError as err:
                raise ValueError("invalid fault spec field %r: %s"
                                 % (field, err)) from None
        return cls(**kwargs, **probs)

    # -- decisions ---------------------------------------------------------------

    def _uniform(self, channel, src, dst, tag, seq):
        return _mix(self.seed, channel, src, dst, tag, seq) / float(1 << 64)

    def decide(self, src, dst, tag, seq):
        """The fault actions applied to one message (a pure function).

        Returns a tuple drawn from ``('drop', 'duplicate', 'reorder',
        'delay')``; ``'drop'`` excludes the other channels.
        """
        if self.p_drop and self._uniform(_CH_DROP, src, dst, tag,
                                         seq) < self.p_drop:
            return ('drop',)
        actions = []
        if self.p_delay and self._uniform(_CH_DELAY, src, dst, tag,
                                          seq) < self.p_delay:
            actions.append('delay')
        if self.p_reorder and self._uniform(_CH_REORDER, src, dst, tag,
                                            seq) < self.p_reorder:
            actions.append('reorder')
        if self.p_duplicate and self._uniform(_CH_DUP, src, dst, tag,
                                              seq) < self.p_duplicate:
            actions.append('duplicate')
        return tuple(actions)

    def schedule(self, messages):
        """Decisions over an explicit message list (determinism tests)."""
        return [self.decide(*m) for m in messages]

    def tick(self, rank, timestep, disarmed=()):
        """Raise :class:`RankKilledError` if ``rank`` dies at ``timestep``.

        Called by the generated kernel at the top of every timestep
        (through ``SimComm.fault_tick``).  ``disarmed`` is a collection
        of ``(rank, timestep)`` kills that already fired and were
        recovered from (see :mod:`repro.resilience`): skipping them lets
        a checkpoint-restored run replay the killed timestep.
        """
        for r, t in self.kills:
            if r == rank and t == timestep and (r, t) not in disarmed:
                raise RankKilledError(rank, timestep)

    @property
    def lethal(self):
        return bool(self.kills)

    # -- introspection ------------------------------------------------------------

    def describe(self):
        parts = ['seed=%d' % self.seed]
        for key, p in (('drop', self.p_drop), ('duplicate',
                                               self.p_duplicate),
                       ('reorder', self.p_reorder), ('delay', self.p_delay)):
            if p:
                parts.append('%s=%g' % (key, p))
        if self.p_delay:
            parts.append('delay_ms=%g' % (self.delay * 1e3))
        for r, t in self.kills:
            parts.append('kill=%d@%d' % (r, t))
        return ','.join(parts)

    def __eq__(self, other):
        return isinstance(other, FaultPlan) and \
            self.describe() == other.describe()

    def __hash__(self):
        return hash(self.describe())

    def __repr__(self):
        return 'FaultPlan(%s)' % self.describe()
