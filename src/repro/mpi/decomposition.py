"""Per-dimension block decomposition and global<->local index algebra.

A :class:`Decomposition` describes how one grid dimension of ``N`` points
is partitioned over ``P`` process slots (MPI block distribution: the first
``N % P`` parts get one extra point).  With per-part ``weights`` the
split is proportional instead (largest-remainder apportionment), which
is how elastic repartitioning rebalances work across heterogeneous
ranks.  It provides the robust global-to-local conversion routines that
make distributed arrays look logically centralized (paper Section
III-b).
"""

from __future__ import annotations

import math

__all__ = ['Decomposition']


def _weighted_sizes(npoints, nparts, weights):
    """Largest-remainder apportionment of ``npoints`` over ``nparts``.

    Invariants (asserted by the constructor): the sizes sum exactly to
    ``npoints``, and no part is empty when ``npoints >= nparts`` — a
    zero (or tiny) weight is floored to one point so every rank keeps a
    valid subdomain.
    """
    weights = [float(w) for w in weights]
    if len(weights) != nparts:
        raise ValueError("expected %d weights, got %d"
                         % (nparts, len(weights)))
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = sum(weights)
    if total <= 0:
        raise ValueError("weights must not all be zero")
    quotas = [npoints * w / total for w in weights]
    sizes = [int(math.floor(q)) for q in quotas]
    # distribute the remainder by largest fractional part (ties by
    # index, so equal weights reproduce the unweighted divmod split)
    remainder = npoints - sum(sizes)
    order = sorted(range(nparts), key=lambda i: (sizes[i] - quotas[i], i))
    for i in order[:remainder]:
        sizes[i] += 1
    # exact-coverage floor: steal from the largest parts until no part
    # is empty (always possible when npoints >= nparts)
    while 0 in sizes:
        taker = sizes.index(0)
        giver = max(range(nparts), key=lambda i: sizes[i])
        if sizes[giver] <= 1:
            break
        sizes[giver] -= 1
        sizes[taker] += 1
    return tuple(sizes)


class Decomposition:
    """Block decomposition of ``npoints`` over ``nparts`` slots.

    ``weights`` (optional, one non-negative float per part, not all
    zero) switches from the balanced MPI block split to a proportional
    split — part ``i`` gets ``~npoints * weights[i] / sum(weights)``
    points, never zero while ``npoints >= nparts``.
    """

    def __init__(self, npoints, nparts, weights=None):
        if npoints < 0:
            raise ValueError("npoints must be >= 0")
        if nparts < 1:
            raise ValueError("nparts must be >= 1")
        if nparts > npoints > 0:
            raise ValueError("cannot split %d points over %d parts"
                             % (npoints, nparts))
        self.npoints = int(npoints)
        self.nparts = int(nparts)
        if weights is None:
            base, extra = divmod(self.npoints, self.nparts)
            self._sizes = tuple(base + (1 if i < extra else 0)
                                for i in range(self.nparts))
        else:
            self._sizes = _weighted_sizes(self.npoints, self.nparts,
                                          weights)
        assert sum(self._sizes) == self.npoints
        assert self.npoints < self.nparts or 0 not in self._sizes
        self.weights = tuple(float(w) for w in weights) \
            if weights is not None else None
        offsets = [0]
        for s in self._sizes[:-1]:
            offsets.append(offsets[-1] + s)
        self._offsets = tuple(offsets)

    # -- queries -------------------------------------------------------------

    def size(self, part):
        """Number of points owned by ``part``."""
        return self._sizes[part]

    def offset(self, part):
        """Global index of the first point of ``part``."""
        return self._offsets[part]

    def local_range(self, part):
        """Global half-open interval ``[start, stop)`` owned by ``part``."""
        start = self._offsets[part]
        return start, start + self._sizes[part]

    @property
    def sizes(self):
        return self._sizes

    def intersection(self, part, start, stop):
        """Intersect the global interval ``[start, stop)`` with ``part``'s
        owned range.  Returns ``(lo, hi)``; empty when ``lo >= hi``.

        Used by the shrink-recovery repartitioner to route checkpointed
        blocks (expressed in the *old* decomposition's global ranges)
        to the ranks of a *new* decomposition.
        """
        lo, hi = self.local_range(part)
        return max(int(start), lo), min(int(stop), hi)

    def owner(self, glb_index):
        """The part owning global index ``glb_index``."""
        if not 0 <= glb_index < self.npoints:
            raise IndexError("global index %d out of range [0, %d)"
                             % (glb_index, self.npoints))
        # binary search over offsets
        lo, hi = 0, self.nparts - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._offsets[mid] <= glb_index:
                lo = mid
            else:
                hi = mid - 1
        return lo

    # -- conversions -----------------------------------------------------------

    def glb_to_loc(self, part, glb_index):
        """Local index of ``glb_index`` on ``part``; None if not owned."""
        start, stop = self.local_range(part)
        if start <= glb_index < stop:
            return glb_index - start
        return None

    def loc_to_glb(self, part, loc_index):
        """Global index of local index ``loc_index`` on ``part``."""
        if not 0 <= loc_index < self._sizes[part]:
            raise IndexError("local index %d out of range on part %d"
                             % (loc_index, part))
        return self._offsets[part] + loc_index

    def slice_glb_to_loc(self, part, sl):
        """Intersect a *global* slice with ``part``'s range.

        Returns ``(local_slice, value_offset, count)`` where
        ``local_slice`` selects the owned points in local coordinates,
        ``value_offset`` is the index into the (global) right-hand-side
        selection where this part's data starts, and ``count`` the number
        of selected points.  ``count`` is 0 when the slice misses the
        part entirely.
        """
        start, stop, step = sl.indices(self.npoints)
        if step <= 0:
            raise NotImplementedError("negative slice steps are not "
                                      "supported on distributed dimensions")
        lo, hi = self.local_range(part)
        eff_start = max(start, lo)
        # first selected global index >= eff_start
        if eff_start > start:
            k0 = start + math.ceil((eff_start - start) / step) * step
        else:
            k0 = start
        eff_stop = min(stop, hi)
        if k0 >= eff_stop:
            return slice(0, 0, 1), 0, 0
        count = (eff_stop - k0 + step - 1) // step
        local = slice(k0 - lo, eff_stop - lo, step)
        value_offset = (k0 - start) // step
        return local, value_offset, count

    def index_glb_to_loc(self, part, index):
        """Normalize+convert a global int index; None if not owned here."""
        if index < 0:
            index += self.npoints
        if not 0 <= index < self.npoints:
            raise IndexError("global index out of range")
        return self.glb_to_loc(part, index)

    def __repr__(self):
        return 'Decomposition(%d points, %d parts, sizes=%s)' % (
            self.npoints, self.nparts, list(self._sizes))
