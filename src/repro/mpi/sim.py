"""An in-process simulated MPI.

The paper's generated code runs under real MPI on a cluster; this module
provides a faithful single-process stand-in: each rank is a thread, and a
:class:`SimComm` exposes the mpi4py surface the generated communication
schedules need — blocking/non-blocking point-to-point with MPI matching
semantics (source/tag wildcards, per-pair non-overtaking), requests with
``wait``/``test``, and the usual collectives.

Semantics notes
---------------
* ``Send`` is *buffered* (copies the payload and returns immediately), the
  behaviour of eager-protocol sends for the small-to-medium messages halo
  exchanges produce.  This cannot deadlock, like ``MPI_Sendrecv``-based
  schedules on real implementations.
* Collectives are built over point-to-point using a reserved tag space and
  per-communicator sequence numbers, so they are safe to interleave with
  user messages as long as ranks call them SPMD-style (an MPI requirement).
* If any rank raises, every blocked peer is woken with
  :class:`RemoteRankError` instead of deadlocking.

Robustness layer
----------------
The transport integrates with two sibling modules:

* :mod:`.faults` — a deterministic :class:`FaultPlan` (drop / delay /
  duplicate / reorder / rank-kill) hooked into :meth:`SimWorld.deliver`
  and :meth:`SimWorld.collect`.  Dropped messages land in a per-rank
  "limbo" and are *redelivered* by the receiver's bounded retry path;
  duplicates are deduplicated on consumption; per-(pair, tag) sequence
  numbers keep matching non-overtaking under reordering, so any
  non-lethal plan is maskable and results stay bit-identical.
* :mod:`.commlog` — an always-on send/recv ledger plus a wait-for graph;
  blocked receives that time out a scheduling slice probe for wait
  cycles and raise a :class:`~repro.mpi.commlog.DeadlockError` naming
  the cycle instead of burning the full timeout.
"""

from __future__ import annotations

import copy as _copy
import itertools
import threading
import time as _time

import numpy as np

__all__ = ['ANY_SOURCE', 'ANY_TAG', 'PROC_NULL', 'RESERVED_TAG_SPACES',
           'SimWorld', 'SimComm', 'Request', 'CompletedRequest',
           'RecvRequest', 'RemoteRankError', 'new_lineage', 'parallel',
           'run_parallel', 'serial_comm']

ANY_SOURCE = -101
ANY_TAG = -102
PROC_NULL = -1

#: collectives use tags below this threshold; user tags must be >= 0
_COLLECTIVE_TAG_BASE = -10_000

#: out-of-band tag ranges ``(lo, hi, label)`` (half-open ``[lo, hi)``)
#: claimed by the transport itself.  Exchangers — and any other user of
#: plain point-to-point tags — must stay out of these bands:
#:
#: * all collectives (``allgather``/``allreduce``/``alltoall``/``bcast``/
#:   ``barrier``) draw descending tags ``<= _COLLECTIVE_TAG_BASE``; the
#:   resilience layer's shrink-and-redistribute repartitioning rides on
#:   ``alltoall`` and therefore lives in the same band;
#: * the wildcard/sentinel values (``ANY_SOURCE``, ``ANY_TAG``,
#:   ``PROC_NULL``) sit just below zero and must never double as real
#:   message tags;
#: * ``SimWorld.coordinate`` (the rendezvous used to spawn operators on a
#:   fresh set of ranks during recovery) is condition-variable based and
#:   uses no tags at all, but the band below zero is reserved wholesale
#:   so any future out-of-band traffic has a home.
#:
#: Effectively: user tag ranges must be non-negative.
#: :func:`repro.mpi.commlog.check_tag_spaces` enforces this statically.
RESERVED_TAG_SPACES = (
    (-(2**63), _COLLECTIVE_TAG_BASE + 1,
     'collectives & resilience repartitioning'),
    (_COLLECTIVE_TAG_BASE + 1, 0,
     'sentinels (ANY_SOURCE/ANY_TAG/PROC_NULL) & out-of-band control'),
)


class RemoteRankError(RuntimeError):
    """Raised in ranks blocked on communication when another rank failed."""


class _Message:
    __slots__ = ('comm_id', 'source', 'tag', 'payload', 'seq', 'section')

    def __init__(self, comm_id, source, tag, payload, seq=0, section=None):
        self.comm_id = comm_id
        self.source = source
        self.tag = tag
        self.payload = payload
        #: per-(comm, source, dest, tag) sequence number, assigned by the
        #: sender; preserves non-overtaking under fault-injected
        #: reordering and enables duplicate discarding
        self.seq = seq
        #: the exchanger/section label active at send time (commlog)
        self.section = section

    def key(self):
        return (self.comm_id, self.source, self.tag)


def _copy_payload(obj):
    if isinstance(obj, np.ndarray):
        return np.ascontiguousarray(obj).copy()
    return _copy.deepcopy(obj)


def _payload_nbytes(obj):
    return obj.nbytes if isinstance(obj, np.ndarray) else 0


def _matches(msg, comm_id, source, tag):
    if msg.comm_id != comm_id:
        return False
    if source != ANY_SOURCE and msg.source != source:
        return False
    if tag != ANY_TAG and msg.tag != tag:
        return False
    return True


def new_lineage():
    """A fresh elastic-lineage record (see :mod:`repro.resilience.elastic`).

    The lineage is the one object threaded *unchanged* through every
    world generation of a logical run (original -> shrunk -> grown), so
    ranks that left a generation — healed kill victims, parked reserve
    ranks — can rendezvous with whichever generation decides to grow:

    ``awaiting``
        original-rank ids announced as ready to (re)join;
    ``grant``
        the latest grow decision (new world, topology, resume step,
        joiner set) published by the coordinator, under ``cond``;
    ``epoch``
        monotonically increasing grant counter;
    ``topology0``
        the pre-shrink Cartesian topology, captured at the first shrink
        so a later grow back to full size restores the original process
        grid instead of re-deriving a possibly different one.
    """
    return {'cond': threading.Condition(), 'awaiting': {}, 'grant': None,
            'epoch': 0, 'topology0': None}


def _configured(key, fallback):
    """Read a configuration key, tolerating bootstrap/circular imports."""
    try:
        from .. import configuration
    except ImportError:  # pragma: no cover - package bootstrap only
        return fallback
    try:
        return configuration[key]
    except (KeyError, ValueError):  # pragma: no cover - unregistered key
        return fallback


class SimWorld:
    """The shared state of a simulated MPI job: one mailbox per rank.

    Parameters
    ----------
    size : int
        Number of ranks.
    faults : FaultPlan, False or None
        Fault-injection plan; ``None`` reads ``configuration['faults']``,
        ``False`` disables injection regardless of configuration.
    recv_timeout : float, optional
        Default per-receive timeout in seconds (the budget across all
        retries); defaults to ``configuration['comm_timeout']``.
    max_retries : int, optional
        Bound on drop-recovery redelivery attempts per blocked receive;
        defaults to ``configuration['comm_retries']``.
    check_interval : float
        Scheduling slice of a blocked receive: every slice the receiver
        retries dropped messages (with linear backoff) and probes the
        wait-for graph for deadlock cycles.
    orig_of : tuple of int, optional
        For worlds rebuilt by shrink recovery: ``orig_of[new_rank]`` is
        the rank the thread had in the *original* world.  Fault plans
        and checkpoint manifests are always expressed in original ranks,
        so :meth:`SimComm.fault_tick` translates through this table.
        Defaults to the identity.
    lineage : dict, optional
        The shared elastic-lineage record (:func:`new_lineage`) carried
        across shrink/grow generations of one logical run; a fresh one
        is created when omitted.
    """

    def __init__(self, size, faults=None, recv_timeout=None,
                 max_retries=None, check_interval=0.05, orig_of=None,
                 lineage=None):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._boxes = [[] for _ in range(size)]
        #: fault-injected dropped messages awaiting redelivery, per rank
        self._dropped = [[] for _ in range(size)]
        self._conds = [threading.Condition() for _ in range(size)]
        self._failed = threading.Event()
        self._fail_reason = None
        if faults is None:
            faults = _configured('faults', False)
        self.faults = faults or None
        self.recv_timeout = float(recv_timeout
                                  if recv_timeout is not None
                                  else _configured('comm_timeout', 60.0))
        self.max_retries = int(max_retries
                               if max_retries is not None
                               else _configured('comm_retries', 3))
        self.check_interval = float(check_interval)
        from .commlog import CommLog
        self.commlog = CommLog(size, enabled=_configured('commlog', True))
        #: transport-level instrumentation: messages/bytes delivered per
        #: destination rank (monotonic; profiling reads, never resets)
        self.ndelivered = [0] * size
        self.nbytes_delivered = [0] * size
        #: robustness instrumentation, per destination rank (monotonic)
        self.ndrops_injected = [0] * size
        self.ndups_injected = [0] * size
        self.nredelivered = [0] * size
        self.nretries = [0] * size
        # -- resilience state (repro.resilience) ---------------------------
        #: new rank -> original rank (identity unless shrink-recovered)
        self.orig_of = tuple(orig_of) if orig_of is not None \
            else tuple(range(size))
        if len(self.orig_of) != size:
            raise ValueError("orig_of must have one entry per rank")
        #: ranks (in *this* world's numbering) confirmed dead
        self.dead = set()
        #: (orig_rank, timestep) kills that already fired — consulted by
        #: :meth:`SimComm.fault_tick` so a restarted/shrunk run does not
        #: re-execute the same kill
        self.disarmed_kills = set()
        #: (orig_rank, timestep) kills observed this run, not yet disarmed
        self.pending_kills = set()
        #: recovery instrumentation (flows into ``comm_health`` and the
        #: advanced profile JSON; carried over to shrunk worlds)
        self.recovery_stats = {'recoveries': 0, 'ranks_lost': 0,
                               'checkpoints_written': 0,
                               'checkpoints_restored': 0,
                               'checkpoint_bytes': 0, 'restored_bytes': 0,
                               'recovery_time': 0.0,
                               'repartitions': 0, 'grown_ranks': 0,
                               'repartition_bytes': 0}
        #: shared elastic-lineage record (rendezvous point for healed
        #: victims and reserve joiners); threaded *unchanged* through
        #: every shrink/grow so all generations of this logical run meet
        #: on the same condition variable (repro.resilience.elastic)
        self.lineage = lineage if lineage is not None else new_lineage()
        #: live communicators (for coordinated sequence resets)
        import weakref
        self._comms = weakref.WeakSet()
        # out-of-band rendezvous state (works on a *failed* world — the
        # regular transport refuses service once ``fail`` was called)
        self._rv_cond = threading.Condition()
        self._rv_epoch = 0
        self._rv_joined = set()
        self._rv_result = (True, None)

    # -- transport ---------------------------------------------------------

    def deliver(self, dest, message):
        if not 0 <= dest < self.size:
            raise ValueError("invalid destination rank %d" % dest)
        plan = self.faults
        actions = ()
        if plan is not None:
            actions = plan.decide(message.source, dest, message.tag,
                                  message.seq)
            if 'delay' in actions:
                _time.sleep(plan.delay)
        self.commlog.record_send(message.source, dest, message.tag,
                                 _payload_nbytes(message.payload),
                                 section=message.section)
        cond = self._conds[dest]
        with cond:
            if 'drop' in actions:
                self._dropped[dest].append(message)
                self.ndrops_injected[dest] += 1
                # no notify: the receiver recovers it on its retry path
                return
            box = self._boxes[dest]
            if 'reorder' in actions and box:
                box.insert(0, message)
            else:
                box.append(message)
            if 'duplicate' in actions:
                # enqueue the *same* object again; consumption discards
                # aliases by identity (transport-level dedup)
                box.append(message)
                self.ndups_injected[dest] += 1
            self.ndelivered[dest] += 1
            self.nbytes_delivered[dest] += _payload_nbytes(message.payload)
            cond.notify_all()

    def _redeliver_locked(self, dest):
        """Move dropped messages into the mailbox (``cond`` held)."""
        dropped = self._dropped[dest]
        if dropped:
            self._boxes[dest].extend(dropped)
            self.nredelivered[dest] += len(dropped)
            dropped.clear()

    def _find(self, dest, comm_id, source, tag):
        """Index of the next matching message, honoring non-overtaking.

        Among matching messages of the same (comm, source, tag) stream
        the lowest sequence number wins, so fault-injected reordering is
        invisible to MPI matching semantics.  If an *earlier* message of
        the winning stream is stranded in drop-limbo, it is redelivered
        on the spot (receiver-driven retransmission).
        """
        box = self._boxes[dest]
        best = None
        for i, msg in enumerate(box):
            if not _matches(msg, comm_id, source, tag):
                continue
            if best is None:
                best = i
            else:
                cand = box[best]
                if msg.key() == cand.key() and msg.seq < cand.seq:
                    best = i
        if best is not None and self._dropped[dest]:
            winner = box[best]
            for msg in self._dropped[dest]:
                if msg.key() == winner.key() and msg.seq < winner.seq:
                    # an earlier message of this stream was dropped:
                    # recover it before matching out of order
                    self.nretries[dest] += 1
                    self._redeliver_locked(dest)
                    return self._find(dest, comm_id, source, tag)
        return best

    def _pop_locked(self, dest, index):
        """Remove and return ``box[index]``, discarding duplicate
        aliases of the same message object (``cond`` held)."""
        box = self._boxes[dest]
        msg = box.pop(index)
        if msg in box:  # fault-injected duplicate: purge aliases
            box[:] = [m for m in box if m is not msg]
        return msg

    def probe(self, dest, comm_id, source, tag):
        """Non-destructively check for a matching message."""
        cond = self._conds[dest]
        with cond:
            return self._find(dest, comm_id, source, tag) is not None

    def probe_pending(self, dest, comm_id, source, tag):
        """Lock-free scan of mailbox *and* drop-limbo (deadlock probes).

        Reads list snapshots without taking ``dest``'s condition (the
        caller typically holds its *own* rank's condition; taking
        another rank's here could deadlock the runtime itself).  Safe
        under the GIL; at worst conservatively reports a message that is
        about to be consumed, which only suppresses a deadlock report.
        """
        for msg in list(self._boxes[dest]) + list(self._dropped[dest]):
            if _matches(msg, comm_id, source, tag):
                return True
        return False

    def collect(self, dest, comm_id, source, tag, block=True, timeout=None):
        """Remove and return the first matching message (or None).

        Blocking receives wait in ``check_interval`` slices: each
        expired slice first redelivers fault-dropped messages (bounded
        by ``max_retries``, with linearly growing backoff), then probes
        the wait-for graph and raises a
        :class:`~repro.mpi.commlog.DeadlockError` naming any live cycle;
        only after ``timeout`` seconds (default ``recv_timeout``) does
        it give up with a plain :class:`RemoteRankError`.
        """
        cond = self._conds[dest]
        log = self.commlog
        timeout = self.recv_timeout if timeout is None else timeout
        deadline = _time.monotonic() + timeout
        retries = 0
        registered = False
        try:
            with cond:
                while True:
                    if self._failed.is_set():
                        raise RemoteRankError(self._fail_reason
                                              or "a peer rank failed")
                    i = self._find(dest, comm_id, source, tag)
                    if i is not None:
                        if registered:
                            # clear *before* popping: the deadlock probe
                            # relies on this ordering for soundness
                            log.clear_wait(dest)
                            registered = False
                        msg = self._pop_locked(dest, i)
                        log.record_recv(msg.source, dest, msg.tag,
                                        _payload_nbytes(msg.payload))
                        return msg
                    if not block:
                        return None
                    if not registered:
                        log.set_wait(dest, comm_id, source, tag)
                        registered = True
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        raise RemoteRankError(
                            "timed out waiting for message (source=%s, "
                            "tag=%s) on rank %d — likely communication "
                            "deadlock" % (source, tag, dest))
                    # linear backoff across retry attempts
                    slice_ = min(self.check_interval * (1 + retries),
                                 remaining)
                    if cond.wait(timeout=slice_):
                        continue  # traffic arrived; re-match
                    if self._dropped[dest] and retries < self.max_retries:
                        retries += 1
                        self.nretries[dest] += 1
                        self._redeliver_locked(dest)
                        continue
                    error = log.deadlock_probe(self, dest)
                    if error is not None:
                        self.fail(origin=dest, reason=str(error))
                        raise error
        finally:
            if registered:
                log.clear_wait(dest)

    def fail(self, origin=None, reason=None):
        """Mark the job failed and wake all blocked ranks."""
        if reason is not None and self._fail_reason is None:
            self._fail_reason = ("rank %s failed: %s" % (origin, reason)
                                 if origin is not None else str(reason))
        self._failed.set()
        for cond in self._conds:
            with cond:
                cond.notify_all()

    def reset(self):
        """Recover a failed world: clear the failure flag, all mailboxes,
        fault-injection drop-limbo, wait registrations, the commlog
        send/recv ledgers, *and* every live communicator's point-to-point
        and collective sequence counters (monotonic instrumentation
        counters are preserved).  Without the ledger/sequence clearing a
        reused world could replay stale in-flight messages or desync
        collective tag streams across ranks.  All ranks must be quiescent
        when one rank calls this (recovery synchronizes through
        :meth:`coordinate`; graceful-degradation tests use a barrier)."""
        self._failed.clear()
        self._fail_reason = None
        for cond, box, dropped in zip(self._conds, self._boxes,
                                      self._dropped):
            with cond:
                box.clear()
                dropped.clear()
        self.commlog.clear_all_waits()
        self.commlog.clear_ledgers()
        for comm in list(self._comms):
            comm.reset_sequences()

    # -- resilience --------------------------------------------------------

    def alive_ranks(self):
        """Sorted ranks (this world's numbering) not marked dead."""
        return [r for r in range(self.size) if r not in self.dead]

    def mark_dead(self, rank):
        """Declare ``rank`` dead (it will never rejoin this world) and
        wake any rendezvous waiting on it."""
        self.dead.add(rank)
        with self._rv_cond:
            self._rv_cond.notify_all()

    def coordinate(self, rank, fn=None, timeout=None):
        """Out-of-band rendezvous of all *alive* ranks.

        Every alive rank must call this (SPMD).  Once all have joined,
        the lowest alive rank runs ``fn()`` (with no locks held) and its
        return value — or exception — is propagated to every
        participant.  With ``fn=None`` this is a fault-tolerant barrier.

        Unlike the regular transport this keeps working after
        :meth:`fail` was called, which is exactly when the recovery
        driver needs it; the alive set is re-evaluated every scheduling
        slice so a concurrent :meth:`mark_dead` unblocks the rendezvous.
        """
        timeout = self.recv_timeout if timeout is None else timeout
        deadline = _time.monotonic() + timeout
        cond = self._rv_cond
        with cond:
            epoch = self._rv_epoch
            self._rv_joined.add(rank)
            cond.notify_all()
            while True:
                if self._rv_epoch != epoch:
                    ok, value = self._rv_result
                    if not ok:
                        raise value
                    return value
                alive = self.alive_ranks()
                if rank not in alive:
                    raise RemoteRankError(
                        "dead rank %d joined a rendezvous" % rank)
                if set(alive) <= self._rv_joined and rank == alive[0]:
                    break  # all joined: this rank is the coordinator
                if _time.monotonic() > deadline:
                    self._rv_joined.discard(rank)
                    raise RemoteRankError(
                        "recovery rendezvous timed out on rank %d "
                        "(joined: %s, alive: %s)"
                        % (rank, sorted(self._rv_joined), alive))
                cond.wait(timeout=self.check_interval)
        # coordinator path — run fn without holding the rendezvous lock
        # (fn typically takes per-rank mailbox conditions in reset())
        try:
            result = (True, fn() if fn is not None else None)
        except BaseException as exc:  # noqa: BLE001 - propagate to peers
            result = (False, exc)
        with cond:
            self._rv_result = result
            self._rv_joined.clear()
            self._rv_epoch += 1
            cond.notify_all()
        ok, value = result
        if not ok:
            raise value
        return value

    # -- robustness instrumentation -----------------------------------------

    def comm_health(self):
        """Aggregate robustness counters (flows into profiling JSON)."""
        out = {'drops_injected': sum(self.ndrops_injected),
               'duplicates_injected': sum(self.ndups_injected),
               'redelivered': sum(self.nredelivered),
               'retries': sum(self.nretries)}
        out.update(self.commlog.counters())
        out.update(self.recovery_stats)
        return out


class Request:
    """Base class of non-blocking operation handles."""

    def wait(self):
        raise NotImplementedError

    def test(self):
        raise NotImplementedError

    # mpi4py-style aliases
    def Wait(self):
        return self.wait()

    def Test(self):
        return self.test()

    @staticmethod
    def waitall(requests):
        return [req.wait() for req in requests]

    Waitall = waitall


class CompletedRequest(Request):
    """A request that completed at initiation (buffered sends)."""

    def __init__(self, value=None):
        self._value = value

    def wait(self):
        return self._value

    def test(self):
        return True, self._value


class RecvRequest(Request):
    """Handle for a pending non-blocking receive."""

    def __init__(self, comm, source, tag, buf=None):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._buf = buf
        self._done = False
        self._value = None

    def wait(self):
        if not self._done:
            msg = self._comm.world.collect(self._comm.rank, self._comm._id,
                                           self._source, self._tag)
            self._value = self._comm._land(msg.payload, self._buf)
            self._done = True
        return self._value

    def test(self):
        if self._done:
            return True, self._value
        msg = self._comm.world.collect(self._comm.rank, self._comm._id,
                                       self._source, self._tag, block=False)
        if msg is None:
            return False, None
        self._value = self._comm._land(msg.payload, self._buf)
        self._done = True
        return True, self._value


class SimComm:
    """A communicator over a :class:`SimWorld` (mpi4py-like surface)."""

    def __init__(self, world, rank, comm_id=('world',)):
        self.world = world
        self.rank = rank
        self._id = comm_id
        self._coll_seq = itertools.count()
        self._dup_seq = itertools.count()
        #: per-(dest, tag) send sequence numbers (non-overtaking streams)
        self._pt_seq = {}
        #: label attached to outgoing messages (set by exchangers so the
        #: commlog can attribute traffic to kernel sections)
        self.section = None
        world._comms.add(self)

    def reset_sequences(self):
        """Restart point-to-point and collective sequence counters.

        Called (on every live communicator) by :meth:`SimWorld.reset`
        during coordinated recovery so all ranks resume with aligned
        message streams.  Deliberately does *not* reset the ``Dup``
        counter: derived-communicator ids must stay unique for the
        lifetime of the world.
        """
        self._pt_seq.clear()
        self._coll_seq = itertools.count()

    def fault_tick(self, timestep):
        """Fault-injection hook called by generated kernels at the top
        of every timestep; kills this rank if the active plan says so.

        Kill coordinates are expressed in *original* ranks (translated
        through ``world.orig_of`` after a shrink) and kills already
        fired-and-recovered (``world.disarmed_kills``) are skipped so a
        resumed run makes progress past the fault.
        """
        plan = self.world.faults
        if plan is not None:
            orig = self.world.orig_of[self.rank]
            try:
                plan.tick(orig, timestep,
                          disarmed=self.world.disarmed_kills)
            except BaseException:
                self.world.pending_kills.add((orig, timestep))
                raise

    # -- introspection ---------------------------------------------------------

    @property
    def size(self):
        return self.world.size

    def Get_rank(self):
        return self.rank

    def Get_size(self):
        return self.size

    @staticmethod
    def Wtime():
        """MPI-style wall clock (used by the profiling subsystem)."""
        import time
        return time.perf_counter()

    def Dup(self):
        """A new communicator with an isolated message space.

        SPMD-deterministic: all ranks must call in the same order.
        """
        new_id = self._id + ('dup%d' % next(self._dup_seq),)
        return SimComm(self.world, self.rank, comm_id=new_id)

    def _derived(self, label, cls, *args, **kwargs):
        new_id = self._id + (label,)
        return cls(self.world, self.rank, *args, comm_id=new_id, **kwargs)

    # -- point-to-point ---------------------------------------------------------

    def send(self, obj, dest, tag=0):
        if dest == PROC_NULL:
            return
        key = (dest, tag)
        seq = self._pt_seq.get(key, 0)
        self._pt_seq[key] = seq + 1
        self.world.deliver(dest, _Message(self._id, self.rank, tag,
                                          _copy_payload(obj), seq=seq,
                                          section=self.section))

    Send = send

    def isend(self, obj, dest, tag=0):
        self.send(obj, dest, tag=tag)
        return CompletedRequest()

    Isend = isend

    def _land(self, payload, buf):
        if buf is not None and isinstance(buf, np.ndarray):
            flat = np.asarray(payload)
            buf[...] = flat.reshape(buf.shape)
            return buf
        return payload

    def recv(self, buf=None, source=ANY_SOURCE, tag=ANY_TAG):
        if source == PROC_NULL:
            return buf
        msg = self.world.collect(self.rank, self._id, source, tag)
        return self._land(msg.payload, buf)

    def Recv(self, buf, source=ANY_SOURCE, tag=ANY_TAG):
        return self.recv(buf=buf, source=source, tag=tag)

    def irecv(self, buf=None, source=ANY_SOURCE, tag=ANY_TAG):
        if source == PROC_NULL:
            return CompletedRequest(buf)
        return RecvRequest(self, source, tag, buf=buf)

    Irecv = irecv

    def sendrecv(self, sendobj, dest, sendtag=0, source=ANY_SOURCE,
                 recvtag=ANY_TAG, recvbuf=None):
        """Combined send/recv; deadlock-free like MPI_Sendrecv."""
        self.send(sendobj, dest, tag=sendtag)
        if source == PROC_NULL:
            return recvbuf
        return self.recv(buf=recvbuf, source=source, tag=recvtag)

    Sendrecv = sendrecv

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG):
        return self.world.probe(self.rank, self._id, source, tag)

    # -- collectives -----------------------------------------------------------

    def _ctag(self):
        return _COLLECTIVE_TAG_BASE - next(self._coll_seq)

    def barrier(self):
        self.allgather(None)

    Barrier = barrier

    def bcast(self, obj, root=0):
        tag = self._ctag()
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=tag)
            return _copy_payload(obj)
        return self.recv(source=root, tag=tag)

    Bcast = bcast

    def gather(self, obj, root=0):
        tag = self._ctag()
        if self.rank == root:
            out = [None] * self.size
            out[root] = _copy_payload(obj)
            for source in range(self.size):
                if source != root:
                    out[source] = self.recv(source=source, tag=tag)
            return out
        self.send(obj, root, tag=tag)
        return None

    def scatter(self, objs, root=0):
        tag = self._ctag()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one object per rank")
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest, tag=tag)
            return _copy_payload(objs[root])
        return self.recv(source=root, tag=tag)

    def allgather(self, obj):
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj, op=None, root=0):
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        return _apply_reduction(gathered, op)

    def allreduce(self, obj, op=None):
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    Allreduce = allreduce

    def alltoall(self, objs):
        tag = self._ctag()
        if objs is None or len(objs) != self.size:
            raise ValueError("alltoall needs one object per rank")
        for dest in range(self.size):
            if dest != self.rank:
                self.send(objs[dest], dest, tag=tag)
        out = [None] * self.size
        out[self.rank] = _copy_payload(objs[self.rank])
        for source in range(self.size):
            if source != self.rank:
                out[source] = self.recv(source=source, tag=tag)
        return out


def _apply_reduction(values, op):
    if op is None or op == 'sum':
        result = values[0]
        for v in values[1:]:
            result = result + v
        return result
    if op == 'max':
        result = values[0]
        for v in values[1:]:
            result = np.maximum(result, v) if isinstance(
                result, np.ndarray) else max(result, v)
        return result
    if op == 'min':
        result = values[0]
        for v in values[1:]:
            result = np.minimum(result, v) if isinstance(
                result, np.ndarray) else min(result, v)
        return result
    if op == 'prod':
        result = values[0]
        for v in values[1:]:
            result = result * v
        return result
    if callable(op):
        result = values[0]
        for v in values[1:]:
            result = op(result, v)
        return result
    raise ValueError("unknown reduction op %r" % (op,))


def serial_comm():
    """A single-rank communicator (the no-MPI default)."""
    return SimComm(SimWorld(1), 0)


def run_parallel(fn, ranks, *args, timeout=600.0, **kwargs):
    """Run ``fn(comm, *args, **kwargs)`` SPMD-style on ``ranks`` threads.

    Returns the per-rank return values.  The first exception raised by any
    rank is re-raised in the caller (peers blocked on communication are
    woken with :class:`RemoteRankError`).
    """
    world = SimWorld(ranks)
    results = [None] * ranks
    errors = []
    lock = threading.Lock()

    def body(rank):
        comm = SimComm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with lock:
                errors.append((rank, exc))
            world.fail()

    threads = [threading.Thread(target=body, args=(r,), daemon=True,
                                name='sim-mpi-rank-%d' % r)
               for r in range(ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.fail()
            raise RemoteRankError("rank thread did not terminate "
                                  "(deadlock?)")
    if errors:
        errors.sort(key=lambda e: e[0])
        # prefer the most informative error: a genuine application error
        # beats a fault/deadlock diagnostic, which beats the generic
        # peer-failed wakeup the other ranks were unblocked with
        rank, exc = errors[0]
        primary = [e for e in errors if not isinstance(e[1], RemoteRankError)]
        if not primary:
            primary = [e for e in errors
                       if type(e[1]) is not RemoteRankError]
        if primary:
            rank, exc = primary[0]
        raise exc
    return results


def parallel(ranks, **run_kwargs):
    """Decorator form of :func:`run_parallel`.

    >>> @parallel(ranks=4)
    ... def job(comm):
    ...     return comm.rank
    >>> job()
    [0, 1, 2, 3]
    """
    def wrap(fn):
        def invoke(*args, **kwargs):
            return run_parallel(fn, ranks, *args, timeout=run_kwargs.get(
                'timeout', 600.0), **kwargs)
        invoke.__name__ = getattr(fn, '__name__', 'parallel_job')
        invoke.__doc__ = fn.__doc__
        return invoke
    return wrap
