"""An in-process simulated MPI.

The paper's generated code runs under real MPI on a cluster; this module
provides a faithful single-process stand-in: each rank is a thread, and a
:class:`SimComm` exposes the mpi4py surface the generated communication
schedules need — blocking/non-blocking point-to-point with MPI matching
semantics (source/tag wildcards, per-pair non-overtaking), requests with
``wait``/``test``, and the usual collectives.

Semantics notes
---------------
* ``Send`` is *buffered* (copies the payload and returns immediately), the
  behaviour of eager-protocol sends for the small-to-medium messages halo
  exchanges produce.  This cannot deadlock, like ``MPI_Sendrecv``-based
  schedules on real implementations.
* Collectives are built over point-to-point using a reserved tag space and
  per-communicator sequence numbers, so they are safe to interleave with
  user messages as long as ranks call them SPMD-style (an MPI requirement).
* If any rank raises, every blocked peer is woken with
  :class:`RemoteRankError` instead of deadlocking.
"""

from __future__ import annotations

import copy as _copy
import itertools
import threading

import numpy as np

__all__ = ['ANY_SOURCE', 'ANY_TAG', 'PROC_NULL', 'SimWorld', 'SimComm',
           'Request', 'CompletedRequest', 'RecvRequest', 'RemoteRankError',
           'parallel', 'run_parallel', 'serial_comm']

ANY_SOURCE = -101
ANY_TAG = -102
PROC_NULL = -1

#: collectives use tags below this threshold; user tags must be >= 0
_COLLECTIVE_TAG_BASE = -10_000


class RemoteRankError(RuntimeError):
    """Raised in ranks blocked on communication when another rank failed."""


class _Message:
    __slots__ = ('comm_id', 'source', 'tag', 'payload')

    def __init__(self, comm_id, source, tag, payload):
        self.comm_id = comm_id
        self.source = source
        self.tag = tag
        self.payload = payload


def _copy_payload(obj):
    if isinstance(obj, np.ndarray):
        return np.ascontiguousarray(obj).copy()
    return _copy.deepcopy(obj)


class SimWorld:
    """The shared state of a simulated MPI job: one mailbox per rank."""

    def __init__(self, size):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._boxes = [[] for _ in range(size)]
        self._conds = [threading.Condition() for _ in range(size)]
        self._failed = threading.Event()
        #: transport-level instrumentation: messages/bytes delivered per
        #: destination rank (monotonic; profiling reads, never resets)
        self.ndelivered = [0] * size
        self.nbytes_delivered = [0] * size

    # -- transport ---------------------------------------------------------

    def deliver(self, dest, message):
        if not 0 <= dest < self.size:
            raise ValueError("invalid destination rank %d" % dest)
        cond = self._conds[dest]
        with cond:
            self._boxes[dest].append(message)
            self.ndelivered[dest] += 1
            if isinstance(message.payload, np.ndarray):
                self.nbytes_delivered[dest] += message.payload.nbytes
            cond.notify_all()

    def _find(self, dest, comm_id, source, tag):
        box = self._boxes[dest]
        for i, msg in enumerate(box):
            if msg.comm_id != comm_id:
                continue
            if source != ANY_SOURCE and msg.source != source:
                continue
            if tag != ANY_TAG and msg.tag != tag:
                continue
            return i
        return None

    def probe(self, dest, comm_id, source, tag):
        """Non-destructively check for a matching message."""
        cond = self._conds[dest]
        with cond:
            return self._find(dest, comm_id, source, tag) is not None

    def collect(self, dest, comm_id, source, tag, block=True, timeout=60.0):
        """Remove and return the first matching message (or None)."""
        cond = self._conds[dest]
        with cond:
            while True:
                if self._failed.is_set():
                    raise RemoteRankError("a peer rank failed")
                i = self._find(dest, comm_id, source, tag)
                if i is not None:
                    return self._boxes[dest].pop(i)
                if not block:
                    return None
                if not cond.wait(timeout=timeout):
                    raise RemoteRankError(
                        "timed out waiting for message (source=%s, tag=%s) "
                        "on rank %d — likely communication deadlock"
                        % (source, tag, dest))

    def fail(self):
        """Mark the job failed and wake all blocked ranks."""
        self._failed.set()
        for cond in self._conds:
            with cond:
                cond.notify_all()


class Request:
    """Base class of non-blocking operation handles."""

    def wait(self):
        raise NotImplementedError

    def test(self):
        raise NotImplementedError

    # mpi4py-style aliases
    def Wait(self):
        return self.wait()

    def Test(self):
        return self.test()

    @staticmethod
    def waitall(requests):
        return [req.wait() for req in requests]

    Waitall = waitall


class CompletedRequest(Request):
    """A request that completed at initiation (buffered sends)."""

    def __init__(self, value=None):
        self._value = value

    def wait(self):
        return self._value

    def test(self):
        return True, self._value


class RecvRequest(Request):
    """Handle for a pending non-blocking receive."""

    def __init__(self, comm, source, tag, buf=None):
        self._comm = comm
        self._source = source
        self._tag = tag
        self._buf = buf
        self._done = False
        self._value = None

    def wait(self):
        if not self._done:
            msg = self._comm.world.collect(self._comm.rank, self._comm._id,
                                           self._source, self._tag)
            self._value = self._comm._land(msg.payload, self._buf)
            self._done = True
        return self._value

    def test(self):
        if self._done:
            return True, self._value
        msg = self._comm.world.collect(self._comm.rank, self._comm._id,
                                       self._source, self._tag, block=False)
        if msg is None:
            return False, None
        self._value = self._comm._land(msg.payload, self._buf)
        self._done = True
        return True, self._value


class SimComm:
    """A communicator over a :class:`SimWorld` (mpi4py-like surface)."""

    def __init__(self, world, rank, comm_id=('world',)):
        self.world = world
        self.rank = rank
        self._id = comm_id
        self._coll_seq = itertools.count()
        self._dup_seq = itertools.count()

    # -- introspection ---------------------------------------------------------

    @property
    def size(self):
        return self.world.size

    def Get_rank(self):
        return self.rank

    def Get_size(self):
        return self.size

    @staticmethod
    def Wtime():
        """MPI-style wall clock (used by the profiling subsystem)."""
        import time
        return time.perf_counter()

    def Dup(self):
        """A new communicator with an isolated message space.

        SPMD-deterministic: all ranks must call in the same order.
        """
        new_id = self._id + ('dup%d' % next(self._dup_seq),)
        return SimComm(self.world, self.rank, comm_id=new_id)

    def _derived(self, label, cls, *args, **kwargs):
        new_id = self._id + (label,)
        return cls(self.world, self.rank, *args, comm_id=new_id, **kwargs)

    # -- point-to-point ---------------------------------------------------------

    def send(self, obj, dest, tag=0):
        if dest == PROC_NULL:
            return
        self.world.deliver(dest, _Message(self._id, self.rank, tag,
                                          _copy_payload(obj)))

    Send = send

    def isend(self, obj, dest, tag=0):
        self.send(obj, dest, tag=tag)
        return CompletedRequest()

    Isend = isend

    def _land(self, payload, buf):
        if buf is not None and isinstance(buf, np.ndarray):
            flat = np.asarray(payload)
            buf[...] = flat.reshape(buf.shape)
            return buf
        return payload

    def recv(self, buf=None, source=ANY_SOURCE, tag=ANY_TAG):
        if source == PROC_NULL:
            return buf
        msg = self.world.collect(self.rank, self._id, source, tag)
        return self._land(msg.payload, buf)

    def Recv(self, buf, source=ANY_SOURCE, tag=ANY_TAG):
        return self.recv(buf=buf, source=source, tag=tag)

    def irecv(self, buf=None, source=ANY_SOURCE, tag=ANY_TAG):
        if source == PROC_NULL:
            return CompletedRequest(buf)
        return RecvRequest(self, source, tag, buf=buf)

    Irecv = irecv

    def sendrecv(self, sendobj, dest, sendtag=0, source=ANY_SOURCE,
                 recvtag=ANY_TAG, recvbuf=None):
        """Combined send/recv; deadlock-free like MPI_Sendrecv."""
        self.send(sendobj, dest, tag=sendtag)
        if source == PROC_NULL:
            return recvbuf
        return self.recv(buf=recvbuf, source=source, tag=recvtag)

    Sendrecv = sendrecv

    def probe(self, source=ANY_SOURCE, tag=ANY_TAG):
        return self.world.probe(self.rank, self._id, source, tag)

    # -- collectives -----------------------------------------------------------

    def _ctag(self):
        return _COLLECTIVE_TAG_BASE - next(self._coll_seq)

    def barrier(self):
        self.allgather(None)

    Barrier = barrier

    def bcast(self, obj, root=0):
        tag = self._ctag()
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=tag)
            return _copy_payload(obj)
        return self.recv(source=root, tag=tag)

    Bcast = bcast

    def gather(self, obj, root=0):
        tag = self._ctag()
        if self.rank == root:
            out = [None] * self.size
            out[root] = _copy_payload(obj)
            for source in range(self.size):
                if source != root:
                    out[source] = self.recv(source=source, tag=tag)
            return out
        self.send(obj, root, tag=tag)
        return None

    def scatter(self, objs, root=0):
        tag = self._ctag()
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError("scatter needs one object per rank")
            for dest in range(self.size):
                if dest != root:
                    self.send(objs[dest], dest, tag=tag)
            return _copy_payload(objs[root])
        return self.recv(source=root, tag=tag)

    def allgather(self, obj):
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj, op=None, root=0):
        gathered = self.gather(obj, root=root)
        if self.rank != root:
            return None
        return _apply_reduction(gathered, op)

    def allreduce(self, obj, op=None):
        reduced = self.reduce(obj, op=op, root=0)
        return self.bcast(reduced, root=0)

    Allreduce = allreduce

    def alltoall(self, objs):
        tag = self._ctag()
        if objs is None or len(objs) != self.size:
            raise ValueError("alltoall needs one object per rank")
        for dest in range(self.size):
            if dest != self.rank:
                self.send(objs[dest], dest, tag=tag)
        out = [None] * self.size
        out[self.rank] = _copy_payload(objs[self.rank])
        for source in range(self.size):
            if source != self.rank:
                out[source] = self.recv(source=source, tag=tag)
        return out


def _apply_reduction(values, op):
    if op is None or op == 'sum':
        result = values[0]
        for v in values[1:]:
            result = result + v
        return result
    if op == 'max':
        result = values[0]
        for v in values[1:]:
            result = np.maximum(result, v) if isinstance(
                result, np.ndarray) else max(result, v)
        return result
    if op == 'min':
        result = values[0]
        for v in values[1:]:
            result = np.minimum(result, v) if isinstance(
                result, np.ndarray) else min(result, v)
        return result
    if op == 'prod':
        result = values[0]
        for v in values[1:]:
            result = result * v
        return result
    if callable(op):
        result = values[0]
        for v in values[1:]:
            result = op(result, v)
        return result
    raise ValueError("unknown reduction op %r" % (op,))


def serial_comm():
    """A single-rank communicator (the no-MPI default)."""
    return SimComm(SimWorld(1), 0)


def run_parallel(fn, ranks, *args, timeout=600.0, **kwargs):
    """Run ``fn(comm, *args, **kwargs)`` SPMD-style on ``ranks`` threads.

    Returns the per-rank return values.  The first exception raised by any
    rank is re-raised in the caller (peers blocked on communication are
    woken with :class:`RemoteRankError`).
    """
    world = SimWorld(ranks)
    results = [None] * ranks
    errors = []
    lock = threading.Lock()

    def body(rank):
        comm = SimComm(world, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            with lock:
                errors.append((rank, exc))
            world.fail()

    threads = [threading.Thread(target=body, args=(r,), daemon=True,
                                name='sim-mpi-rank-%d' % r)
               for r in range(ranks)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            world.fail()
            raise RemoteRankError("rank thread did not terminate "
                                  "(deadlock?)")
    if errors:
        errors.sort(key=lambda e: e[0])
        rank, exc = errors[0]
        primary = [e for e in errors if not isinstance(e[1], RemoteRankError)]
        if primary:
            rank, exc = primary[0]
        raise exc
    return results


def parallel(ranks, **run_kwargs):
    """Decorator form of :func:`run_parallel`.

    >>> @parallel(ranks=4)
    ... def job(comm):
    ...     return comm.rank
    >>> job()
    [0, 1, 2, 3]
    """
    def wrap(fn):
        def invoke(*args, **kwargs):
            return run_parallel(fn, ranks, *args, timeout=run_kwargs.get(
                'timeout', 600.0), **kwargs)
        invoke.__name__ = getattr(fn, '__name__', 'parallel_job')
        invoke.__doc__ = fn.__doc__
        return invoke
    return wrap
