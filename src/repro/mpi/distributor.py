"""Grid-level domain decomposition (the paper's Section III-a).

A :class:`Distributor` binds a grid shape to a communicator: it chooses
(or accepts) a Cartesian process topology, builds one per-dimension
:class:`Decomposition`, and answers all locality questions the compiler
and the distributed data container need (local shapes, neighbor ranks,
boundary-ness, global/local conversion per dimension).
"""

from __future__ import annotations

import numpy as np

from .cart import CartComm, compute_dims, create_cart
from .decomposition import Decomposition
from .sim import PROC_NULL, SimComm, serial_comm

__all__ = ['Distributor']


class Distributor:
    """Decomposition of an n-dimensional grid over a communicator.

    Parameters
    ----------
    shape : tuple of int
        Global grid shape.
    comm : SimComm, optional
        The communicator; ``None`` means a serial 1-rank world.
    topology : tuple of int, optional
        User-specified process grid (``Grid(..., topology=...)``); zero
        entries are filled in by ``compute_dims``.
    weights : tuple, optional
        Per-dimension split weights: one entry per grid dimension, each
        either ``None`` (balanced split) or a sequence of
        ``topology[d]`` non-negative floats steering a proportional
        split along that dimension (elastic rebalancing).
    """

    def __init__(self, shape, comm=None, topology=None, weights=None):
        self.shape = tuple(int(s) for s in shape)
        self.ndim = len(self.shape)
        if comm is None:
            comm = serial_comm()
        if isinstance(comm, CartComm):
            if len(comm.dims) != self.ndim:
                raise ValueError("cartesian communicator dimensionality "
                                 "mismatch")
            self.comm = comm
        else:
            dims = compute_dims(comm.size, self.ndim, given=topology)
            self.comm = create_cart(comm, dims)
        self.topology = self.comm.dims
        if weights is None:
            weights = (None,) * self.ndim
        if len(weights) != self.ndim:
            raise ValueError("weights must have one entry per grid "
                             "dimension (%d), got %d"
                             % (self.ndim, len(weights)))
        self.weights = tuple(tuple(float(x) for x in w)
                             if w is not None else None for w in weights)
        self.decompositions = tuple(
            Decomposition(n, p, weights=w)
            for n, p, w in zip(self.shape, self.topology, self.weights))

    # -- identity ----------------------------------------------------------------

    @property
    def myrank(self):
        return self.comm.rank

    @property
    def mycoords(self):
        return self.comm.coords

    @property
    def nprocs(self):
        return self.comm.size

    @property
    def is_parallel(self):
        return self.nprocs > 1

    # -- local geometry ------------------------------------------------------------

    @property
    def shape_local(self):
        """Shape of this rank's subdomain."""
        return tuple(d.size(c) for d, c in zip(self.decompositions,
                                               self.mycoords))

    @property
    def offsets_global(self):
        """Global index of this rank's first point, per dimension."""
        return tuple(d.offset(c) for d, c in zip(self.decompositions,
                                                 self.mycoords))

    def local_ranges(self):
        """Per-dimension global ``[start, stop)`` owned by this rank."""
        return tuple(d.local_range(c) for d, c in zip(self.decompositions,
                                                      self.mycoords))

    def is_distributed(self, dim_index):
        """True if the grid is actually split along ``dim_index``."""
        return self.topology[dim_index] > 1

    def is_boundary_rank(self, dim_index, side):
        """True if this rank touches the global domain boundary.

        ``side`` is ``-1`` (left/low) or ``+1`` (right/high).
        """
        c = self.mycoords[dim_index]
        if side < 0:
            return c == 0
        return c == self.topology[dim_index] - 1

    # -- neighbors ---------------------------------------------------------------------

    def neighbor(self, offset):
        return self.comm.neighbor(offset)

    def neighborhood(self, diagonals=True):
        return self.comm.neighborhood(diagonals=diagonals)

    def shift(self, dim_index, disp=1):
        return self.comm.Shift(dim_index, disp)

    # -- ownership of points (used for sparse routing) -----------------------------------

    def owner_of(self, glb_indices):
        """Rank owning the grid point at global indices ``glb_indices``."""
        coords = tuple(d.owner(i) for d, i in zip(self.decompositions,
                                                  glb_indices))
        return self.comm.Get_cart_rank(coords)

    def owns(self, glb_indices):
        """True if this rank owns the grid point ``glb_indices``."""
        for d, c, i in zip(self.decompositions, self.mycoords, glb_indices):
            if d.glb_to_loc(c, i) is None:
                return False
        return True

    def glb_to_loc_point(self, glb_indices):
        """Convert a global point to local coordinates; None if not owned."""
        out = []
        for d, c, i in zip(self.decompositions, self.mycoords, glb_indices):
            loc = d.glb_to_loc(c, i)
            if loc is None:
                return None
            out.append(loc)
        return tuple(out)

    def __repr__(self):
        return ('Distributor(shape=%s, topology=%s, rank=%d/%d)'
                % (self.shape, self.topology, self.myrank, self.nprocs))
