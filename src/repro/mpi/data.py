"""Distributed data container: physically distributed, logically global.

This is the paper's "distributed NumPy arrays" contribution (Section
III-b): each rank stores only its subdomain (plus halo), but indexing and
slicing use *global* coordinates — every rank transparently converts the
global selection to its local intersection, so user code is unchanged
between serial and MPI execution (Listings 1-3).
"""

from __future__ import annotations

import numpy as np

__all__ = ['Data', 'DimSpec']


class DimSpec:
    """Layout of one array dimension of a :class:`Data` container.

    ``dist_index`` is the grid-dimension index when the dimension is
    decomposed over ranks (None for rank-local dimensions like time
    buffers).  ``halo`` is the (left, right) ghost width.
    """

    __slots__ = ('size', 'dist_index', 'halo')

    def __init__(self, size, dist_index=None, halo=(0, 0)):
        self.size = int(size)
        self.dist_index = dist_index
        self.halo = tuple(halo)

    def __repr__(self):
        return 'DimSpec(size=%d, dist=%s, halo=%s)' % (
            self.size, self.dist_index, self.halo)


class Data:
    """A logically global array stored as per-rank local blocks.

    Parameters
    ----------
    specs : list of DimSpec
        Per-dimension layout (sizes are *global*).
    distributor : Distributor
        The grid decomposition (also used in serial mode with 1 rank).
    dtype : numpy dtype
    """

    def __init__(self, specs, distributor, dtype=np.float32):
        self.specs = list(specs)
        self.distributor = distributor
        self.dtype = np.dtype(dtype)
        shape = []
        self._domain_slices = []
        for spec in self.specs:
            if spec.dist_index is None:
                local = spec.size
            else:
                dec = distributor.decompositions[spec.dist_index]
                coord = distributor.mycoords[spec.dist_index]
                local = dec.size(coord)
            left, right = spec.halo
            shape.append(local + left + right)
            self._domain_slices.append(slice(left, left + local))
        self._array = np.zeros(tuple(shape), dtype=self.dtype)

    # -- views ------------------------------------------------------------------

    @property
    def with_halo(self):
        """The full local allocation, halo included."""
        return self._array

    @property
    def local(self):
        """This rank's domain region (halo excluded), writable view."""
        return self._array[tuple(self._domain_slices)]

    @property
    def shape_global(self):
        return tuple(spec.size for spec in self.specs)

    @property
    def shape_local(self):
        return self.local.shape

    @property
    def halo(self):
        return tuple(spec.halo for spec in self.specs)

    # -- global indexing ----------------------------------------------------------

    def _normalize_key(self, key):
        if not isinstance(key, tuple):
            key = (key,)
        if any(k is Ellipsis for k in key):
            n_missing = len(self.specs) - sum(1 for k in key
                                              if k is not Ellipsis)
            expanded = []
            for k in key:
                if k is Ellipsis:
                    expanded.extend([slice(None)] * n_missing)
                else:
                    expanded.append(k)
            key = tuple(expanded)
        key = key + (slice(None),) * (len(self.specs) - len(key))
        if len(key) != len(self.specs):
            raise IndexError("too many indices")
        return key

    def _resolve(self, key):
        """Map a global key to (local_key, value_key, squeeze_axes, count).

        ``local_key`` selects into the local domain view; ``value_key``
        selects the matching part of a global right-hand-side array;
        ``count`` is 0 when this rank holds none of the selection.
        """
        key = self._normalize_key(key)
        local_key, value_key, squeeze = [], [], []
        nonempty = True
        for axis, (spec, k) in enumerate(zip(self.specs, key)):
            if spec.dist_index is None:
                # rank-local dimension: plain numpy semantics
                if isinstance(k, (int, np.integer)):
                    idx = int(k)
                    if idx < 0:
                        idx += spec.size
                    if not 0 <= idx < spec.size:
                        raise IndexError("index %d out of range" % k)
                    local_key.append(idx)
                    squeeze.append(axis)
                elif isinstance(k, slice):
                    local_key.append(k)
                    value_key.append(slice(None))
                else:
                    raise TypeError("unsupported index %r" % (k,))
                continue
            dec = self.distributor.decompositions[spec.dist_index]
            coord = self.distributor.mycoords[spec.dist_index]
            if isinstance(k, (int, np.integer)):
                loc = dec.index_glb_to_loc(coord, int(k))
                if loc is None:
                    nonempty = False
                    local_key.append(slice(0, 0))
                else:
                    local_key.append(loc)
                squeeze.append(axis)
            elif isinstance(k, slice):
                loc_slice, voff, count = dec.slice_glb_to_loc(coord, k)
                if count == 0:
                    nonempty = False
                local_key.append(loc_slice)
                value_key.append(slice(voff, voff + count))
            else:
                raise TypeError("unsupported index %r on a distributed "
                                "dimension" % (k,))
        return tuple(local_key), tuple(value_key), squeeze, nonempty

    def __getitem__(self, key):
        """Return this rank's portion of the global selection.

        Matches the paper's rank-local views (Listing 2): ranks not
        intersecting the selection get an empty array; integer indices on
        distributed dimensions yield empty arrays off-owner.
        """
        local_key, _, squeeze, nonempty = self._resolve(key)
        view = self.local
        if not nonempty:
            # build an empty result of the correct dimensionality
            empty_key = []
            for axis, k in enumerate(local_key):
                if axis in squeeze:
                    empty_key.append(slice(0, 0))
                else:
                    empty_key.append(slice(0, 0) if isinstance(k, slice)
                                     else k)
            return view[tuple(empty_key)]
        out = view[local_key]
        return out

    def __setitem__(self, key, value):
        local_key, value_key, _, nonempty = self._resolve(key)
        if not nonempty:
            return
        if np.isscalar(value) or (isinstance(value, np.ndarray)
                                  and value.ndim == 0):
            self.local[local_key] = value
            return
        value = np.asarray(value)
        # global-shaped value: every rank takes its slab
        self.local[local_key] = value[value_key]

    def fill(self, value):
        self._array.fill(value)

    def scatter_block(self, space_ranges, block):
        """Write a global-coordinate block into this rank's DOMAIN region.

        ``space_ranges`` gives, per *grid* dimension (indexed by
        ``dist_index``), the global ``(start, stop)`` interval the block
        covers; rank-local dimensions (e.g. time buffers) must be
        covered in full.  Only the intersection with this rank's owned
        subdomain is written (the halo is left untouched — it is
        reconstructed by the next exchange).  Returns the number of
        bytes written locally.

        This is the receive side of the shrink-recovery repartitioner:
        checkpointed blocks expressed in the *old* decomposition's
        global ranges land here under the *new* decomposition.
        """
        block = np.asarray(block)
        local_key, block_key = [], []
        for spec, dom in zip(self.specs, self._domain_slices):
            if spec.dist_index is None:
                local_key.append(dom)
                block_key.append(slice(None))
                continue
            start, stop = space_ranges[spec.dist_index]
            dec = self.distributor.decompositions[spec.dist_index]
            coord = self.distributor.mycoords[spec.dist_index]
            lo, hi = dec.intersection(coord, start, stop)
            if lo >= hi:
                return 0
            own_lo = dec.offset(coord)
            left = spec.halo[0]
            local_key.append(slice(left + lo - own_lo, left + hi - own_lo))
            block_key.append(slice(lo - start, hi - start))
        target = self._array[tuple(local_key)]
        target[...] = block[tuple(block_key)]
        return int(target.nbytes)

    # -- global assembly (for verification / post-processing) ----------------------

    def gather(self):
        """Assemble the full global array on every rank (collective).

        Intended for testing and post-processing at laptop scale; a real
        run would use parallel I/O instead.
        """
        comm = self.distributor.comm
        payload = (self.distributor.mycoords, np.ascontiguousarray(self.local))
        pieces = comm.allgather(payload)
        out = np.zeros(self.shape_global, dtype=self.dtype)
        for coords, block in pieces:
            key = []
            for spec, c_axis in zip(self.specs, range(len(self.specs))):
                if spec.dist_index is None:
                    key.append(slice(None))
                else:
                    dec = self.distributor.decompositions[spec.dist_index]
                    start, stop = dec.local_range(coords[spec.dist_index])
                    key.append(slice(start, stop))
            out[tuple(key)] = block
        return out

    # -- numpy conveniences -----------------------------------------------------------

    def __array__(self, dtype=None):
        arr = self.local
        return arr.astype(dtype) if dtype is not None else arr

    @property
    def shape(self):
        return self.shape_local

    def __repr__(self):
        return ('Data(global=%s, local=%s, rank=%d)'
                % (self.shape_global, self.shape_local,
                   self.distributor.myrank))
