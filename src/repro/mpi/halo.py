"""Runtime halo exchanges: the *basic*, *diagonal* and *full* patterns.

These are the three computation/communication patterns of the paper's
Section III-h (Table I, Figure 5):

``basic``
    Blocking point-to-point exchanges perpendicular to the Cartesian
    planes, one dimension at a time (multi-step).  Corner data propagates
    implicitly because each step's slabs include the halo regions already
    updated by earlier steps.  Exchange buffers are allocated per call
    ("C-land" allocation in the paper).

``diagonal``
    A single step of non-blocking exchanges over the full Moore
    neighborhood (8 messages in 2D, 26 in 3D) including corners, using
    buffers preallocated at operator-build time ("Python-land").

``full``
    Same message set as ``diagonal`` but split into ``begin``/``finish``
    so the compiler can overlap the CORE computation with communication
    (Listing 8), optionally prodding the progress engine like the
    sacrificed OpenMP thread calling ``MPI_Test``.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from .sim import PROC_NULL, Request

__all__ = ['HaloWidths', 'BasicExchanger', 'DiagonalExchanger',
           'FullExchanger', 'make_exchanger', 'core_region',
           'remainder_regions']


class HaloWidths:
    """Per-dimension (left, right) halo extents actually needed.

    The compiler derives these from the stencil access offsets — they can
    be narrower than the allocated halo (an ablation knob).
    """

    def __init__(self, widths):
        self.widths = tuple((int(l), int(r)) for l, r in widths)

    def __iter__(self):
        return iter(self.widths)

    def __getitem__(self, i):
        return self.widths[i]

    def __len__(self):
        return len(self.widths)

    def __eq__(self, other):
        return isinstance(other, HaloWidths) and self.widths == other.widths

    def __hash__(self):
        return hash(self.widths)

    def __repr__(self):
        return 'HaloWidths(%s)' % (list(self.widths),)


class _ExchangerBase:
    """Common geometry for halo exchanges on one function's data.

    Parameters
    ----------
    distributor : Distributor
    halo : tuple of (left, right)
        *Allocated* halo per decomposed grid dimension (array layout).
    widths : HaloWidths
        Halo extents to actually exchange.
    tag_base : int
        Disambiguates concurrent exchanges of different functions.
    name : str, optional
        Label used by the commlog validator to attribute traffic (the
        code generator passes the kernel-local exchanger key).
    """

    def __init__(self, distributor, halo, widths, tag_base=0, name=None):
        self.distributor = distributor
        self.halo = tuple(halo)
        self.widths = HaloWidths(widths)
        self.tag_base = int(tag_base)
        self.name = name if name is not None else 'x@%d' % self.tag_base
        self.ndim = distributor.ndim
        if len(self.halo) != self.ndim or len(self.widths) != self.ndim:
            raise ValueError("halo/widths dimensionality mismatch")
        for (wl, wr), (hl, hr) in zip(self.widths, self.halo):
            if wl > hl or wr > hr:
                raise ValueError("required halo widths %s exceed allocated "
                                 "halo %s" % (self.widths, self.halo))
        self.local_shape = distributor.shape_local
        #: monotonic instrumentation counters.  These *accumulate* across
        #: calls; consumers interested in per-``apply`` figures must
        #: snapshot :meth:`counters` before the run and subtract
        #: (``Operator.apply`` does exactly that, so repeated applies
        #: never double-count messages in their summaries).
        self.nmessages = 0
        self.nbytes_sent = 0
        self.nbytes_recv = 0
        self.wait_time = 0.0
        self.ncalls = 0
        #: pending receive batches posted by ``begin`` and not yet
        #: consumed by ``finish``; ``abort`` clears them so aborted
        #: applies leave no stale state behind
        self._inflight = []
        if distributor.is_parallel:
            self.validate_geometry()

    # -- robustness ---------------------------------------------------------------

    @property
    def tag_range(self):
        """Half-open tag interval owned by this exchanger (used by the
        commlog's static tag-collision check)."""
        return (self.tag_base, self.tag_base + 3 ** self.ndim)

    def validate_geometry(self):
        """Check send/recv region volume consistency with every neighbor.

        For each neighbor, the volume this rank sends toward it must
        equal the halo volume the neighbor's matching receive expects —
        computable locally from the shared per-dimension decompositions
        (perpendicular extents come from the neighbor's coordinates,
        which agree with ours along every zero-offset dimension).
        Raises ``ValueError`` on mismatch (an uneven-decomposition or
        width-disagreement bug the transport would otherwise surface as
        a cryptic reshape error mid-run).
        """
        dist = self.distributor
        for offsets, rank in dist.neighborhood(diagonals=True).items():
            if rank == PROC_NULL or not any(offsets):
                continue
            ncoords = tuple(c + o for c, o in zip(dist.mycoords, offsets))
            send_vol = recv_vol = 1
            for d, off in enumerate(offsets):
                wl, wr = self.widths[d]
                if off == 0:
                    send_vol *= dist.shape_local[d]
                    recv_vol *= dist.decompositions[d].size(ncoords[d])
                elif off > 0:
                    send_vol *= wl
                    recv_vol *= wl
                else:
                    send_vol *= wr
                    recv_vol *= wr
            if send_vol != recv_vol:
                raise ValueError(
                    "halo volume mismatch toward neighbor %s (rank %d): "
                    "sending %d points but its receive region holds %d "
                    "— inconsistent decomposition/widths"
                    % (offsets, rank, send_vol, recv_vol))

    def abort(self):
        """Collective-teardown hook: discard pending receive state.

        Called by ``Operator.apply`` when a run aborts (e.g. a peer rank
        was killed by fault injection) so the next ``apply`` on the same
        operator starts from a clean slate."""
        self._inflight.clear()

    def _enter(self):
        """Start one exchange: bump the call counter and label outgoing
        traffic with this exchanger's name for the commlog."""
        self.ncalls += 1
        self.distributor.comm.section = self.name

    # -- instrumentation ---------------------------------------------------------

    def counters(self):
        """Snapshot of the monotonic instrumentation counters."""
        return {'nmessages': self.nmessages,
                'nbytes_sent': self.nbytes_sent,
                'nbytes_recv': self.nbytes_recv,
                'wait_time': self.wait_time,
                'ncalls': self.ncalls}

    def reset_counters(self):
        self.nmessages = 0
        self.nbytes_sent = 0
        self.nbytes_recv = 0
        self.wait_time = 0.0
        self.ncalls = 0

    # -- region algebra ----------------------------------------------------------

    def _domain_slice(self, d, lo_extend=0, hi_extend=0):
        """Slice of dim ``d`` covering the domain, optionally extended
        into the halo (array coordinates)."""
        hl = self.halo[d][0]
        return slice(hl - lo_extend, hl + self.local_shape[d] + hi_extend)

    def _send_region(self, offsets, extended_dims=()):
        """Array-coordinate region sent toward neighbor ``offsets``."""
        key = []
        for d, off in enumerate(offsets):
            hl = self.halo[d][0]
            n = self.local_shape[d]
            wl, wr = self.widths[d]
            if off == 0:
                if d in extended_dims:
                    # include already-updated halo (multi-step propagation)
                    key.append(slice(hl - wl, hl + n + wr))
                else:
                    key.append(self._domain_slice(d))
            elif off > 0:
                # neighbor's left halo = my last wl points
                key.append(slice(hl + n - wl, hl + n))
            else:
                # neighbor's right halo = my first wr points
                key.append(slice(hl, hl + wr))
        return tuple(key)

    def _recv_region(self, offsets, extended_dims=()):
        """Array-coordinate halo region receiving from neighbor ``offsets``."""
        key = []
        for d, off in enumerate(offsets):
            hl = self.halo[d][0]
            n = self.local_shape[d]
            wl, wr = self.widths[d]
            if off == 0:
                if d in extended_dims:
                    key.append(slice(hl - wl, hl + n + wr))
                else:
                    key.append(self._domain_slice(d))
            elif off > 0:
                # from my right neighbor into my right halo
                key.append(slice(hl + n, hl + n + wr))
            else:
                key.append(slice(hl - wl, hl))
        return tuple(key)

    def _tag(self, offsets):
        """A tag unique to (function, direction): receiver matches the
        sender's direction as seen from the sender."""
        code = 0
        for off in offsets:
            code = code * 3 + (off + 1)
        return self.tag_base + code

    def _active_dims(self):
        """Decomposed dimensions with a nonzero exchange width."""
        return [d for d in range(self.ndim)
                if self.distributor.is_distributed(d)
                and (self.widths[d][0] or self.widths[d][1])]


class BasicExchanger(_ExchangerBase):
    """Multi-step synchronous face exchanges (paper's *basic* mode)."""

    diagonals = False

    def exchange(self, view):
        """Update all halo regions of ``view`` (array incl. halo)."""
        comm = self.distributor.comm
        done_dims = []
        self._enter()
        for d in self._active_dims():
            for sign in (1, -1):
                offsets = tuple(sign if i == d else 0
                                for i in range(self.ndim))
                dest = self.distributor.neighbor(offsets)
                src = self.distributor.neighbor(
                    tuple(-o for o in offsets))
                ext = tuple(done_dims)
                sendbuf = None
                if dest != PROC_NULL:
                    # allocated at call time, as in the paper's basic mode
                    sendbuf = np.ascontiguousarray(
                        view[self._send_region(offsets, ext)])
                    self.nmessages += 1
                    self.nbytes_sent += sendbuf.nbytes
                tag = self._tag(offsets)
                if dest != PROC_NULL and src != PROC_NULL:
                    recv_region = self._recv_region(
                        tuple(-o for o in offsets), ext)
                    recvbuf = np.empty(view[recv_region].shape,
                                       dtype=view.dtype)
                    tic = perf_counter()
                    comm.sendrecv(sendbuf, dest, sendtag=tag,
                                  source=src, recvtag=tag, recvbuf=recvbuf)
                    self.wait_time += perf_counter() - tic
                    self.nbytes_recv += recvbuf.nbytes
                    view[recv_region] = recvbuf
                elif dest != PROC_NULL:
                    comm.send(sendbuf, dest, tag=tag)
                elif src != PROC_NULL:
                    recv_region = self._recv_region(
                        tuple(-o for o in offsets), ext)
                    recvbuf = np.empty(view[recv_region].shape,
                                       dtype=view.dtype)
                    tic = perf_counter()
                    comm.recv(buf=recvbuf, source=src, tag=tag)
                    self.wait_time += perf_counter() - tic
                    self.nbytes_recv += recvbuf.nbytes
                    view[recv_region] = recvbuf
            done_dims.append(d)


class DiagonalExchanger(_ExchangerBase):
    """Single-step neighborhood exchange with corners (*diagonal* mode)."""

    diagonals = True

    def __init__(self, distributor, halo, widths, tag_base=0, name=None):
        super().__init__(distributor, halo, widths, tag_base=tag_base,
                         name=name)
        active = set(self._active_dims())
        self._neighbors = {}
        for offsets, rank in distributor.neighborhood(diagonals=True).items():
            if any(offsets[d] != 0 and d not in active
                   for d in range(self.ndim)):
                continue
            if not any(offsets):
                continue
            self._neighbors[offsets] = rank
        # Python-land preallocated buffers, one per neighbor (paper Table I)
        self._sendbufs = {}
        self._recvbufs = {}

    def _buffers(self, view, offsets):
        send_region = self._send_region(offsets)
        recv_region = self._recv_region(offsets)
        shape_s = view[send_region].shape
        shape_r = view[recv_region].shape
        sb = self._sendbufs.get(offsets)
        if sb is None or sb.shape != shape_s or sb.dtype != view.dtype:
            sb = np.empty(shape_s, dtype=view.dtype)
            self._sendbufs[offsets] = sb
        rb = self._recvbufs.get(offsets)
        if rb is None or rb.shape != shape_r or rb.dtype != view.dtype:
            rb = np.empty(shape_r, dtype=view.dtype)
            self._recvbufs[offsets] = rb
        return sb, rb, send_region, recv_region

    def begin(self, view):
        """Post all sends/receives; return the pending receive list."""
        comm = self.distributor.comm
        pending = []
        self._enter()
        for offsets, rank in self._neighbors.items():
            sb, rb, send_region, recv_region = self._buffers(view, offsets)
            # pack (OpenMP-threaded in the paper; vectorized copy here)
            sb[...] = view[send_region]
            comm.isend(sb, rank, tag=self._tag(offsets))
            self.nmessages += 1
            self.nbytes_sent += sb.nbytes
            # matching receive: neighbor sent with the direction as seen
            # from *their* side, i.e. the negated offsets
            req = comm.irecv(buf=rb,
                             source=rank,
                             tag=self._tag(tuple(-o for o in offsets)))
            pending.append((req, rb, recv_region))
        self._inflight.append(pending)
        return pending

    def finish(self, view, pending):
        """Wait for all receives and unpack into the halo."""
        try:
            for req, rb, recv_region in pending:
                tic = perf_counter()
                req.wait()
                self.wait_time += perf_counter() - tic
                self.nbytes_recv += rb.nbytes
                view[recv_region] = rb
        finally:
            # consumed (or abandoned on error): either way no longer
            # pending — a subsequent apply must not see stale state
            self._inflight = [p for p in self._inflight
                              if p is not pending]

    def exchange(self, view):
        self.finish(view, self.begin(view))


class FullExchanger(DiagonalExchanger):
    """Asynchronous exchange for communication/computation overlap.

    Identical message set to :class:`DiagonalExchanger`; the compiler
    emits ``begin`` before the CORE computation and ``finish`` before the
    REMAINDER computation (Listing 8).  ``progress_thread`` emulates the
    sacrificed OpenMP worker that periodically calls ``MPI_Test``.
    """

    def __init__(self, distributor, halo, widths, tag_base=0,
                 progress=False, test_period=1e-4, name=None):
        super().__init__(distributor, halo, widths, tag_base=tag_base,
                         name=name)
        self.progress = progress
        self.test_period = test_period
        self._stop = None
        self._thread = None

    def begin(self, view):
        pending = super().begin(view)
        if self.progress and pending:
            self._stop = threading.Event()

            def prod():
                while not self._stop.is_set():
                    try:
                        for req, _, _ in pending:
                            req.test()
                    except Exception:
                        # a peer failed mid-run: the main thread will
                        # surface the error; just stop prodding quietly
                        break
                    self._stop.wait(self.test_period)

            self._thread = threading.Thread(target=prod, daemon=True,
                                            name='mpi-progress')
            self._thread.start()
        return pending

    def _join_progress(self):
        """Stop and join the progress thread (idempotent)."""
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None

    def finish(self, view, pending):
        # join *before* draining so the exception path (a receive
        # raising RemoteRankError) can never leak the daemon thread
        try:
            self._join_progress()
        finally:
            super().finish(view, pending)

    def abort(self):
        self._join_progress()
        super().abort()


def make_exchanger(mode, distributor, halo, widths, tag_base=0, **kwargs):
    """Factory keyed on the paper's mode names.

    ``mode`` is one of ``'basic'``, ``'diagonal'`` or ``'full'``.  The
    Devito-compatible aliases ``'diag'`` and ``'diag2'`` (the names
    ``DEVITO_MPI`` accepts for the corner-exchanging single-step
    pattern) both map to :class:`DiagonalExchanger`.
    """
    table = {'basic': BasicExchanger,
             'diag': DiagonalExchanger,
             'diagonal': DiagonalExchanger,
             'diag2': DiagonalExchanger,
             'full': FullExchanger}
    try:
        cls = table[mode]
    except KeyError:
        raise ValueError(
            "unknown MPI mode %r (expected one of basic, diag, diagonal, "
            "diag2, full; diag/diag2 are aliases of diagonal)" % (mode,))
    return cls(distributor, halo, widths, tag_base=tag_base, **kwargs)


def core_region(distributor, widths):
    """The CORE area: domain points whose stencil never reads halo data.

    Returned as per-dimension (start, stop) in *domain-local* coordinates
    (0 = first owned point).  At global boundaries the core extends to the
    domain edge (no neighbor to wait for).
    """
    out = []
    for d, (wl, wr) in enumerate(HaloWidths(widths)):
        n = distributor.shape_local[d]
        lo = 0
        hi = n
        if distributor.is_distributed(d):
            if not distributor.is_boundary_rank(d, -1):
                lo = min(wl, n)
            if not distributor.is_boundary_rank(d, +1):
                hi = max(hi - wr, lo)
        out.append((lo, hi))
    return tuple(out)


def remainder_regions(distributor, widths):
    """The REMAINDER (OWNED) areas: domain minus CORE, as disjoint boxes.

    Boxes are produced dimension-major: for dimension ``d``, the left and
    right slabs span the full domain in dimensions < d and are clamped to
    the core range in dimensions already peeled — yielding the faces and
    vector-like areas of the paper's Figure 5c.
    """
    core = core_region(distributor, widths)
    shape = distributor.shape_local
    boxes = []
    prefix = []  # (start, stop) ranges already restricted to core
    for d in range(len(shape)):
        lo, hi = core[d]
        full = [(0, shape[i]) for i in range(len(shape))]
        for i, rng in enumerate(prefix):
            full[i] = rng
        if lo > 0:
            box = list(full)
            box[d] = (0, lo)
            boxes.append(tuple(box))
        if hi < shape[d]:
            box = list(full)
            box[d] = (hi, shape[d])
            boxes.append(tuple(box))
        prefix.append((lo, hi))
    return [b for b in boxes
            if all(stop > start for start, stop in b)]
