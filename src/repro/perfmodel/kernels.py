"""Kernel characteristics feeding the performance model.

Single-node/single-device throughput is *calibrated* against the paper's
own 1-node columns (the paper likewise normalizes strong-scaling
efficiency to the 1-node rate); everything that varies with node count —
surface-to-volume ratios, message counts, pattern behaviour — is modeled.
Gaps in the paper's tables (the corrupted Table IV) are interpolated
between neighboring SDOs and pinned by the Section IV-D text.
"""

from __future__ import annotations

__all__ = ['KernelSpec', 'KERNEL_SPECS', 'BASE_CPU', 'BASE_GPU']


class KernelSpec:
    """Communication/computation character of one wave propagator.

    ``comm_fields``: number of field-sized halo volumes exchanged per
    timestep (acoustic exchanges one wavefield buffer; the coupled
    systems exchange velocity + stress (+ memory-variable coupling);
    these ratios reproduce the paper's "elastic communicates ~4.4x the
    acoustic volume" and "viscoelastic ~65% more than elastic").

    ``exchange_steps``: halo-exchange points per timestep (1 for the
    single-equation kernels, 2 for the velocity/stress systems which
    exchange mid-timestep as well).

    ``cache_bonus``: superlinear locality gain when strong scaling (only
    the very arithmetically intense TTI shows it, Section IV-D).
    """

    def __init__(self, name, comm_fields, exchange_steps, working_set,
                 cache_bonus=0.0, comm_fields_weak=None,
                 gpu_comm_scale=1.0):
        self.name = name
        self.comm_fields = comm_fields
        self.exchange_steps = exchange_steps
        self.working_set = working_set
        self.cache_bonus = cache_bonus
        #: physically exchanged field count (weak scaling / GPU packing)
        self.comm_fields_weak = comm_fields_weak if comm_fields_weak \
            is not None else comm_fields
        #: GPU-side communication calibration (device-side packing is
        #: tighter than the CPU path)
        self.gpu_comm_scale = gpu_comm_scale

    def __repr__(self):
        return 'KernelSpec(%s)' % self.name


# comm_fields values are calibrated against the paper's scaling tables
# (grid-searched to minimize error + winner disagreement + headline
# efficiency deviation); their ordering tracks the paper's working-set
# narrative: acoustic << TTI << elastic/viscoelastic.
KERNEL_SPECS = {
    'acoustic': KernelSpec('acoustic', comm_fields=1, exchange_steps=1,
                           working_set=5, comm_fields_weak=1,
                           gpu_comm_scale=1.0),
    'tti': KernelSpec('tti', comm_fields=3.5, exchange_steps=1,
                      working_set=12, cache_bonus=0.06,
                      comm_fields_weak=2, gpu_comm_scale=0.65),
    'elastic': KernelSpec('elastic', comm_fields=16, exchange_steps=2,
                          working_set=22, comm_fields_weak=9,
                          gpu_comm_scale=0.25),
    'viscoelastic': KernelSpec('viscoelastic', comm_fields=15,
                               exchange_steps=2, working_set=36,
                               comm_fields_weak=9, gpu_comm_scale=0.30),
}

#: calibrated 1-node CPU throughput (GPts/s), from the paper's tables;
#: entries marked in comments are interpolated over the corrupted rows
BASE_CPU = {
    'acoustic': {4: 13.4, 8: 12.6, 12: 11.5, 16: 11.0},   # so8/so16 interp
    'elastic': {4: 1.85, 8: 1.8, 12: 1.5, 16: 1.1},
    'tti': {4: 4.3, 8: 3.5, 12: 2.7, 16: 2.0},
    'viscoelastic': {4: 1.2, 8: 1.15, 12: 1.0, 16: 0.7},  # so8 interp
}

#: calibrated 1-GPU throughput (GPts/s), Tables XIX-XXXIV
BASE_GPU = {
    'acoustic': {4: 34.3, 8: 31.2, 12: 28.8, 16: 25.8},
    'elastic': {4: 6.5, 8: 5.2, 12: 4.0, 16: 2.5},
    'tti': {4: 10.5, 8: 8.5, 12: 7.5, 16: 5.8},
    'viscoelastic': {4: 3.4, 8: 2.8, 12: 2.5, 16: 1.6},
}
