"""The analytic strong/weak scaling predictor.

Per-timestep cost model, node (or GPU) count ``P``:

* compute: local points / effective rate, where the effective rate
  degrades as halo width grows relative to the shrinking local domain
  (``cache_gamma``) and gains locality for the very compute-intense TTI
  (``cache_bonus``);
* communication, per pattern (Table I):

  - *basic*   — blocking multi-step: full surface volume at network
    bandwidth, plus per-step synchronization (paid once per decomposed
    dimension) and per-message overhead for 2 messages/dim/rank;
  - *diagonal*— single-step batch of the full Moore neighborhood:
    volume (+corner overhead) at ``batch_gain``-improved effective
    bandwidth, one synchronization, but 3^d-1 messages/rank whose
    injection overhead dominates at scale (why basic wins the largest
    acoustic runs);
  - *full*    — ``max(core compute, diagonal comm) + remainder``, the
    remainder running ``stride_penalty`` slower (Section III-h); the
    core fraction shrinks with P, which is why full degrades at scale.
"""

from __future__ import annotations

import numpy as np

from ..mpi.cart import compute_dims
from .kernels import BASE_CPU, BASE_GPU, KERNEL_SPECS
from .machine import ARCHER2, TURSA, Machine

__all__ = ['ScalingModel', 'strong_scaling_table', 'weak_scaling_table']

_BYTES = 4
#: exchanged halo width factor relative to so/2 (Devito exchanges the
#: full allocated halo region; ablation knob)
_WIDTH_FACTOR = 2.0


class ScalingModel:
    """Throughput predictor for one (kernel, SDO, machine) triple."""

    def __init__(self, kernel, so, machine=None, gpu=False,
                 width_factor=_WIDTH_FACTOR):
        self.kernel = kernel
        self.spec = KERNEL_SPECS[kernel]
        self.so = int(so)
        self.gpu = gpu
        self.machine = machine if machine is not None else (
            TURSA if gpu else ARCHER2)
        base = BASE_GPU if gpu else BASE_CPU
        self.base_rate = base[kernel][self.so] * 1e9  # points/s per unit
        self.width = (self.so // 2) * width_factor

    # -- geometry helpers ----------------------------------------------------------

    def _unit_dims(self, nunits, shape):
        """Process-grid dims at the network-unit granularity (nodes on
        CPU, GPUs on Tursa)."""
        return compute_dims(nunits, len(shape))

    def _local_shape(self, shape, dims):
        return tuple(int(np.ceil(n / d)) for n, d in zip(shape, dims))

    def _surface_volume(self, local, dims, corners=False, weak=False):
        """Bytes sent per unit per exchange step."""
        vol = 0.0
        ndim = len(local)
        width = self.width if not weak else self.width / _WIDTH_FACTOR
        for d in range(ndim):
            if dims[d] < 2:
                continue
            area = 1
            for j in range(ndim):
                if j != d:
                    area *= local[j]
            vol += 2 * width * area
        if corners:
            vol *= 1.04  # edges + corners add a few percent
        fields = self.spec.comm_fields_weak if weak \
            else self.spec.comm_fields
        scale = self.spec.gpu_comm_scale if self.gpu else 1.0
        return vol * fields * scale * _BYTES

    def _ndecomposed(self, dims):
        return sum(1 for d in dims if d > 1)

    # -- compute time -----------------------------------------------------------------

    def _rate_eff(self, nunits, local_rank, weak=False):
        m = self.machine
        rate = self.base_rate
        if weak:
            rate *= m.weak_efficiency if not self.gpu else 1.0
        min_dim = max(min(local_rank), 1)
        rate /= (1.0 + m.cache_gamma * self.width / min_dim)
        if self.spec.cache_bonus and nunits > 1 and not weak:
            rate *= (1.0 + self.spec.cache_bonus *
                     min(np.log2(nunits) / 7.0, 1.0))
        return rate

    def _rank_geometry(self, shape, nunits):
        m = self.machine
        nranks = nunits * m.ranks_per_node
        rank_dims = compute_dims(nranks, len(shape))
        return self._local_shape(shape, rank_dims), rank_dims

    # -- communication time per pattern --------------------------------------------------

    def _bandwidth(self, nunits):
        m = self.machine
        if self.gpu and nunits <= m.intra_node_devices:
            return m.intra_bandwidth
        return m.net_bandwidth

    def _comm_times(self, shape, nunits, weak=False):
        """(t_basic, t_diag) per exchange step, per unit."""
        m = self.machine
        unit_dims = self._unit_dims(nunits, shape)
        local_unit = self._local_shape(shape, unit_dims)
        bw = self._bandwidth(nunits)
        vol = self._surface_volume(local_unit, unit_dims, weak=weak)
        vol_diag = self._surface_volume(local_unit, unit_dims, corners=True,
                                        weak=weak)
        _, rank_dims = self._rank_geometry(shape, nunits)
        ndd = self._ndecomposed(rank_dims)
        if ndd == 0:
            return 0.0, 0.0
        msgs_basic = 2 * ndd * m.ranks_per_node
        msgs_diag = (3 ** ndd - 1) * m.ranks_per_node
        t_basic = (vol / bw
                   + ndd * m.sync_overhead
                   + msgs_basic * m.msg_overhead)
        t_diag = (vol_diag * m.batch_gain / bw
                  + m.sync_overhead
                  + msgs_diag * m.msg_overhead)
        return t_basic, t_diag

    def _core_fraction(self, local_rank, rank_dims):
        frac = 1.0
        for n, d in zip(local_rank, rank_dims):
            if d < 2:
                continue
            frac *= max(n - 2 * self.width, 0) / n
        return frac

    # -- public API -----------------------------------------------------------------------

    def step_time(self, shape, nunits, mode, weak=False):
        """Predicted wall time of one timestep on ``nunits`` units."""
        m = self.machine
        points = float(np.prod(shape))
        local_rank, rank_dims = self._rank_geometry(shape, nunits)
        rate = self._rate_eff(nunits, local_rank, weak=weak)
        t_comp = points / nunits / rate
        if nunits == 1 and m.ranks_per_node == 1:
            return t_comp
        t_basic, t_diag = self._comm_times(shape, nunits, weak=weak)
        steps = self.spec.exchange_steps
        if mode == 'basic':
            return t_comp + steps * t_basic
        if mode in ('diag', 'diagonal'):
            return t_comp + steps * t_diag
        if mode == 'full':
            # each overlapped exchange step splits its cluster group into
            # CORE/REMAINDER, so the coupled two-step kernels (elastic,
            # viscoelastic) pay the strided-remainder penalty twice
            frac = self._core_fraction(local_rank, rank_dims) ** steps
            t_core = t_comp * frac
            # the remainder's inefficient strides arise from splitting the
            # innermost (vectorized) dimension; an x/y-only topology keeps
            # z contiguous and mostly avoids the penalty (Section IV-F)
            penalty = m.stride_penalty if rank_dims[-1] > 1 else \
                1.0 + 0.3 * (m.stride_penalty - 1.0)
            t_rem = t_comp * (1.0 - frac) * penalty
            return max(t_core, steps * t_diag) + t_rem
        raise ValueError("unknown mode %r" % (mode,))

    def throughput(self, shape, nunits, mode, weak=False):
        """Predicted GPts/s."""
        points = float(np.prod(shape))
        return points / self.step_time(shape, nunits, mode, weak=weak) / 1e9

    def efficiency(self, shape, nunits, mode):
        ideal = self.throughput(shape, 1, mode) * nunits
        return self.throughput(shape, nunits, mode) / ideal


def strong_scaling_table(kernel, so, size, gpu=False,
                         modes=('basic', 'diag', 'full'),
                         nodes=(1, 2, 4, 8, 16, 32, 64, 128),
                         machine=None):
    """{mode: [GPts/s per node count]} for a cubic problem of edge ``size``."""
    model = ScalingModel(kernel, so, gpu=gpu, machine=machine)
    shape = (size,) * 3
    out = {}
    for mode in modes:
        out[mode] = [model.throughput(shape, n, mode) for n in nodes]
    return out


def weak_scaling_table(kernel, so, local_size=256, gpu=False,
                       modes=('basic', 'diag', 'full'),
                       nodes=(1, 2, 4, 8, 16, 32, 64, 128), machine=None):
    """{mode: [seconds per timestep]} with a fixed per-unit local size.

    The global shape doubles one dimension at a time as units double
    (Section IV-E: 512x256x256 on 2 nodes ... 2048x1024x1024 on 128).
    """
    model = ScalingModel(kernel, so, gpu=gpu, machine=machine)
    out = {mode: [] for mode in modes}
    for n in nodes:
        shape = _weak_shape(local_size, n)
        for mode in modes:
            out[mode].append(model.step_time(shape, n, mode, weak=True))
    return out


def _weak_shape(local_size, nunits):
    """Cyclically double dimensions as the unit count doubles."""
    shape = [local_size] * 3
    k = int(round(np.log2(nunits)))
    for i in range(k):
        shape[i % 3] *= 2
    return tuple(shape)
